//! # SpinRace — ad-hoc synchronization detection for race detectors
//!
//! A full reproduction of *Jannesari & Tichy, "Identifying Ad-hoc
//! Synchronization for Enhanced Race Detection" (IPDPS 2010)*: a hybrid
//! dynamic race detector in the style of Helgrind+, extended with static
//! detection and runtime exploitation of **spinning read loops** — the
//! common implementation pattern behind ad-hoc, programmer-written
//! synchronization and behind the primitives of unknown synchronization
//! libraries.
//!
//! This facade crate re-exports the whole workspace. See the individual
//! crates for details:
//!
//! * [`tir`] — the threaded IR that plays the role of machine code
//! * [`cfg`](mod@cfg) — control-flow graphs, dominators, natural loops,
//!   slices
//! * [`spinfind`] — the paper's instrumentation phase (spin-loop detection)
//! * [`synclib`] — spin-loop based sync primitives + `nolib` lowering
//! * [`vm`] — the deterministic multithreaded interpreter
//! * [`detector`] — vector clocks, locksets, the hybrid detector, spin-HB
//! * [`suites`] — the `data-race-test`-style suite and PARSEC-style workloads
//! * [`workloads`] — parameterized workload generators with computable
//!   ground-truth race oracles
//! * [`tracefmt`] — the binary columnar trace encoding with chunked
//!   streaming replay
//! * [`report`] — tables and experiment summaries
//! * [`core`] — the staged [`core::Session`] pipeline (prepare → execute
//!   → detect over a replayable [`vm::Trace`]), the unified
//!   [`core::DetectRequest`] entry point, and the one-call
//!   [`core::Analyzer`] wrapper
//! * [`serve`] — detection as a service: a streaming analysis server
//!   accepting framed trace uploads over TCP or stdin, multiplexing
//!   concurrent `DetectRequest` sessions across a bounded worker pool

pub use spinrace_cfg as cfg;
pub use spinrace_core as core;
pub use spinrace_detector as detector;
pub use spinrace_report as report;
pub use spinrace_serve as serve;
pub use spinrace_spinfind as spinfind;
pub use spinrace_suites as suites;
pub use spinrace_synclib as synclib;
pub use spinrace_tir as tir;
pub use spinrace_tracefmt as tracefmt;
pub use spinrace_vm as vm;
pub use spinrace_workloads as workloads;

pub use spinrace_core::{
    AnalysisOutcome, Analyzer, DetectOutcome, DetectRequest, ExecutedRun, PreparedModule, Session,
    Tool,
};
pub use spinrace_detector::{DetectorConfig, DetectorKind, RaceReport};
pub use spinrace_tir::{Module, ModuleBuilder};
pub use spinrace_vm::{Trace, TraceRecorder};
