//! Quickstart: build a program with ad-hoc flag synchronization, run the
//! paper's four detector configurations on it, and see why spin-loop
//! detection matters.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use spinrace::core::{Analyzer, Tool};
use spinrace::tir::ModuleBuilder;

fn main() {
    // The paper's motivating pattern:
    //
    //   Thread 1:  DATA++; FLAG = 1;
    //   Thread 2:  while (FLAG == 0) {}  DATA--;
    //
    let mut mb = ModuleBuilder::new("motivating-example");
    let flag = mb.global("FLAG", 1);
    let data = mb.global("DATA", 1);

    let thread2 = mb.function("thread2", 1, |f| {
        let head = f.new_block();
        let done = f.new_block();
        f.jump(head);
        f.switch_to(head);
        let v = f.load(flag.at(0)); // the spinning read
        f.branch(v, done, head);
        f.switch_to(done);
        let d = f.load(data.at(0));
        let d2 = f.sub(d, 1);
        f.store(data.at(0), d2);
        f.ret(None);
    });

    mb.entry("main", |f| {
        let t = f.spawn(thread2, 0);
        let d = f.load(data.at(0));
        let d2 = f.add(d, 1);
        f.store(data.at(0), d2); // DATA++
        f.store(flag.at(0), 1); // FLAG = 1
        f.join(t);
        let final_d = f.load(data.at(0));
        f.output(final_d);
        f.ret(None);
    });
    let module = mb.finish().expect("valid program");

    println!("Program: DATA++/FLAG=1 vs spin-wait/DATA--  (race-free!)\n");
    for tool in Tool::paper_lineup() {
        let out = Analyzer::tool(tool).analyze(&module).expect("analysis");
        println!(
            "{:<26} racy contexts: {:>2}   spin loops found: {}",
            tool.label(),
            out.contexts,
            out.spin_loops_found
        );
        for r in &out.reports {
            println!(
                "    {:?} race on `{}` between t{}@{} and t{}@{}",
                r.report.kind,
                r.location,
                r.report.prior.tid,
                r.report.prior.pc,
                r.report.current.tid,
                r.report.current.pc
            );
        }
    }
    println!();
    println!("Without spin detection the detector reports a synchronization");
    println!("race on FLAG and an apparent race on DATA. With the paper's");
    println!("spinning-read-loop analysis both disappear: the condition load");
    println!("is instrumented, FLAG is promoted to a synchronization location,");
    println!("and the counterpart write happens-before the loop exit.");
}
