//! Dump the raw event stream the VM feeds the detector — the exact
//! information a binary-instrumentation framework exposes: memory
//! accesses (with spin tagging and stack contexts), synchronization
//! operations, and spin-loop lifecycle events.
//!
//! ```text
//! cargo run --example event_trace
//! ```

use spinrace::spinfind::SpinFinder;
use spinrace::tir::ModuleBuilder;
use spinrace::vm::{run_module, Event, RecordingSink, VmConfig};

fn main() {
    let mut mb = ModuleBuilder::new("trace-demo");
    let flag = mb.global("flag", 1);
    let data = mb.global("data", 1);
    let waiter = mb.function("waiter", 1, |f| {
        let head = f.new_block();
        let done = f.new_block();
        f.jump(head);
        f.switch_to(head);
        let v = f.load(flag.at(0));
        f.branch(v, done, head);
        f.switch_to(done);
        let d = f.load(data.at(0));
        f.output(d);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t = f.spawn(waiter, 0);
        f.store(data.at(0), 7);
        f.store(flag.at(0), 1);
        f.join(t);
        f.ret(None);
    });
    let mut module = mb.finish().expect("valid module");
    let analysis = SpinFinder::default().instrument(&mut module);
    println!(
        "instrumented: {} spinning read loop(s), {} tagged load(s)\n",
        analysis.accepted(),
        module
            .spin
            .as_ref()
            .map(|s| s.tagged_loads.len())
            .unwrap_or(0)
    );

    let mut sink = RecordingSink::default();
    let summary = run_module(&module, VmConfig::round_robin(), &mut sink).expect("run");

    for (i, ev) in sink.events.iter().enumerate() {
        let line = match ev {
            Event::Spawn { parent, child, .. } => format!("t{parent} spawns t{child}"),
            Event::Join { parent, child, .. } => format!("t{parent} joins t{child}"),
            Event::ThreadEnd { tid } => format!("t{tid} ends"),
            Event::Read {
                tid,
                addr,
                value,
                spin,
                ..
            } => format!(
                "t{tid} read  {} = {value}{}",
                module.describe_addr(*addr),
                spin.map(|s| format!("   [spin-read of {s:?}]"))
                    .unwrap_or_default()
            ),
            Event::Write {
                tid, addr, value, ..
            } => format!("t{tid} write {} <- {value}", module.describe_addr(*addr)),
            Event::SpinEnter { tid, spin } => format!("t{tid} enters spin loop {spin:?}"),
            Event::SpinExit { tid, spin, reads } => format!(
                "t{tid} exits spin loop {spin:?}; final-iteration reads: {}",
                reads
                    .iter()
                    .map(|(a, _)| module.describe_addr(*a))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            Event::Output { tid, value } => format!("t{tid} outputs {value}"),
            other => format!("{other:?}"),
        };
        println!("{i:>4}  {line}");
    }
    println!(
        "\n{} events, {} steps, {} spin instance(s)",
        sink.events.len(),
        summary.steps,
        summary.spin_exits
    );
}
