//! The universal race detector: analyze a lock-based program with *zero*
//! library knowledge.
//!
//! The program below synchronizes with ordinary mutexes. We lower it
//! through `spinrace-synclib` (mutexes become test-and-test-and-set spin
//! locks — what the machine code of any lock ultimately looks like) and
//! run the `nolib+spin` configuration, which knows nothing about any
//! library. The spin-loop analysis recovers the synchronization by itself.
//!
//! ```text
//! cargo run --example unknown_library
//! ```

use spinrace::core::{Analyzer, Tool};
use spinrace::spinfind::SpinFinder;
use spinrace::synclib::lower_to_spinlib;
use spinrace::tir::ModuleBuilder;

fn main() {
    let mut mb = ModuleBuilder::new("bank");
    let mu = mb.global("mu", 1);
    let balance = mb.global("balance", 1);
    let deposit = mb.function("deposit", 1, |f| {
        for _ in 0..4 {
            f.lock(mu.at(0));
            let b = f.load(balance.at(0));
            let b2 = f.add(b, f.param(0));
            f.store(balance.at(0), b2);
            f.unlock(mu.at(0));
        }
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t1 = f.spawn(deposit, 10);
        let t2 = f.spawn(deposit, 25);
        f.join(t1);
        f.join(t2);
        let b = f.load(balance.at(0));
        f.output(b);
        f.ret(None);
    });
    let module = mb.finish().expect("valid program");

    // Show what the lowering produces.
    let lowered = lower_to_spinlib(&module).expect("lowering");
    println!(
        "Original module: {} functions; lowered: {} (the spin library)",
        module.functions.len(),
        lowered.functions.len()
    );
    let analysis = SpinFinder::default().analyze(&lowered);
    println!(
        "Instrumentation phase on the lowered module: {} spinning read loops",
        analysis.accepted()
    );
    for info in &analysis.table.loops {
        println!(
            "    {:?} in `{}` (weight {}, {} condition loads)",
            info.id,
            lowered.functions[info.func.0 as usize].name,
            info.weight,
            info.cond_loads.len()
        );
    }
    println!();

    // Full pipeline comparison: the detector with library knowledge vs
    // the universal detector with none.
    for tool in [Tool::HelgrindLib, Tool::HelgrindNolibSpin { window: 7 }] {
        let out = Analyzer::tool(tool).analyze(&module).expect("analysis");
        println!(
            "{:<26} racy contexts: {}  (program output: {:?})",
            tool.label(),
            out.contexts,
            out.summary
                .outputs
                .iter()
                .map(|(_, v)| *v)
                .collect::<Vec<_>>()
        );
    }
    println!();
    println!("Both configurations stay silent — the universal detector");
    println!("re-derived the mutex semantics from the TTAS spin loops alone,");
    println!("with no knowledge of any synchronization library.");
}
