//! Record once, replay everywhere: record a PARSEC-style workload as a
//! serializable trace and replay it under all four paper tools.
//!
//! ```text
//! cargo run --example trace_replay
//! ```
//!
//! The staged session API splits the classic `Analyzer::analyze` into
//! prepare → execute → detect. Because the VM is deterministic, tools
//! whose preparation produced the same module (same fingerprint) share
//! one recorded execution — here `Helgrind+ lib` and `DRD`, which both
//! run the unmodified program — and every detector configuration replays
//! the stream with results identical to a live run.

use spinrace::core::{DetectRequest, ExecutedRun, Session, Tool};
use spinrace::suites::all_programs;
use spinrace::vm::Trace;

fn main() {
    // dedup: a pipeline program with ad-hoc spin synchronization.
    let prog = all_programs()
        .into_iter()
        .find(|p| p.name == "dedup")
        .expect("dedup in the PARSEC set");
    let module = (prog.build)(prog.threads, prog.size);
    let session = Session::for_module(&module);

    // Prepare all four tools, but execute only once per *distinct*
    // prepared module.
    let mut runs: Vec<ExecutedRun> = Vec::new();
    let mut executions = 0;
    println!("workload: {} ({} threads)\n", prog.name, prog.threads);
    println!(
        "{:<26} {:>8} {:>9} {:>11}  execution",
        "tool", "contexts", "promoted", "spin loops"
    );
    for tool in Tool::paper_lineup() {
        let prepared = session.prepare(tool).expect("prepare");
        let fp = prepared.fingerprint();
        let idx = match runs.iter().position(|r| r.prepared().fingerprint() == fp) {
            Some(i) => i,
            None => {
                runs.push(prepared.execute().expect("execute"));
                executions += 1;
                runs.len() - 1
            }
        };
        let out = runs[idx].run(&DetectRequest::tool(tool)).into_single();
        println!(
            "{:<26} {:>8} {:>9} {:>11}  #{} ({} events)",
            out.tool_label,
            out.contexts,
            out.promoted_locations,
            out.spin_loops_found,
            idx + 1,
            runs[idx].trace().events.len(),
        );
    }
    println!(
        "\n{} tool configurations served by {} execution(s)",
        Tool::paper_lineup().len(),
        executions
    );

    // The trace is a stable, versioned artifact: serialize, parse back,
    // and the replay is byte-identical.
    let trace = runs[0].trace();
    let json = trace.to_json();
    let parsed = Trace::from_json(&json).expect("parse");
    assert_eq!(&parsed, trace);
    println!(
        "\nserialized execution #1: {} bytes of JSON, {} events, fingerprint {:#018x}",
        json.len(),
        parsed.events.len(),
        parsed.header.module_fingerprint,
    );
    println!("round trip lossless; replay of the parsed trace is identical to the live run");
}
