//! Explore the PARSEC-skeleton workloads: run any program under any tool
//! and print the racy contexts with their locations.
//!
//! ```text
//! cargo run --example parsec_explorer                 # list programs
//! cargo run --example parsec_explorer -- vips         # all four tools
//! cargo run --example parsec_explorer -- x264 drd 42  # one tool, seed 42
//! ```

use spinrace::core::{Analyzer, Tool};
use spinrace::suites::all_programs;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let programs = all_programs();

    let Some(name) = args.first() else {
        println!("available programs:");
        for p in &programs {
            println!(
                "  {:<14} {:<7} threads={} size={} adhoc={}",
                p.name, p.model, p.threads, p.size, p.has_adhoc
            );
        }
        println!("\nusage: parsec_explorer <program> [lib|spin|nolib|drd] [seed]");
        return;
    };

    let Some(prog) = programs.iter().find(|p| p.name == name.as_str()) else {
        eprintln!("unknown program `{name}` (run without arguments for the list)");
        std::process::exit(2);
    };
    let module = (prog.build)(prog.threads, prog.size);

    let tools: Vec<Tool> = match args.get(1).map(|s| s.as_str()) {
        None => Tool::paper_lineup().to_vec(),
        Some("lib") => vec![Tool::HelgrindLib],
        Some("spin") => vec![Tool::HelgrindLibSpin { window: 7 }],
        Some("nolib") => vec![Tool::HelgrindNolibSpin { window: 7 }],
        Some("drd") => vec![Tool::Drd],
        Some(other) => {
            eprintln!("unknown tool `{other}` (lib|spin|nolib|drd)");
            std::process::exit(2);
        }
    };
    let seed: Option<u64> = args.get(2).and_then(|s| s.parse().ok());

    println!(
        "{} ({}, {} threads, size {})  paper row: lib={} spin={} nolib={} drd={}\n",
        prog.name,
        prog.model,
        prog.threads,
        prog.size,
        prog.paper.lib,
        prog.paper.lib_spin,
        prog.paper.nolib_spin,
        prog.paper.drd
    );

    for tool in tools {
        let mut analyzer = Analyzer::tool(tool).long_msm();
        if let Some(s) = seed {
            analyzer = analyzer.seed(s);
        }
        if prog.obscure_nolib {
            analyzer = analyzer.obscure_nolib();
        }
        match analyzer.analyze(&module) {
            Ok(out) => {
                println!(
                    "{:<26} contexts={:<4} spin loops={:<3} promoted locations={:<4} steps={}",
                    tool.label(),
                    out.contexts,
                    out.spin_loops_found,
                    out.promoted_locations,
                    out.summary.steps
                );
                for r in out.reports.iter().take(8) {
                    println!("    {:?} on `{}`", r.report.kind, r.location);
                }
                if out.reports.len() > 8 {
                    println!("    ... and {} more", out.reports.len() - 8);
                }
            }
            Err(e) => println!("{:<26} failed: {e}", tool.label()),
        }
    }
}
