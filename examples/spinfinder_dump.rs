//! Inspect the instrumentation phase: dump every natural loop the
//! analysis considered, its verdict, and the final instrumented module
//! with spin annotations.
//!
//! ```text
//! cargo run --example spinfinder_dump
//! ```

use spinrace::spinfind::{Decision, SpinCriteria, SpinFinder};
use spinrace::tir::{ModuleBuilder, Operand};

fn main() {
    // A module with four kinds of loops: a plain counter loop, a clean
    // flag spin, a spin whose condition is evaluated through a pure
    // helper, and a loop that works (stores) in its body.
    let mut mb = ModuleBuilder::new("zoo");
    let flag = mb.global("flag", 1);
    let work = mb.global("work", 1);

    let check = mb.function("check_flag", 0, |f| {
        let mid = f.new_block();
        f.nop();
        f.jump(mid);
        f.switch_to(mid);
        let v = f.load(flag.at(0));
        f.ret(Some(Operand::Reg(v)));
    });

    mb.entry("main", |f| {
        // 1. counter loop — rejected (no load in condition)
        let c_head = f.new_block();
        let c_body = f.new_block();
        let after1 = f.new_block();
        let i = f.const_(0);
        f.jump(c_head);
        f.switch_to(c_head);
        let c = f.lt(i, 10);
        f.branch(c, c_body, after1);
        f.switch_to(c_body);
        let i2 = f.add(i, 1);
        f.mov(i, i2);
        f.jump(c_head);
        f.switch_to(after1);

        // 2. clean flag spin — accepted
        let s_head = f.new_block();
        let after2 = f.new_block();
        f.jump(s_head);
        f.switch_to(s_head);
        let v = f.load(flag.at(0));
        f.branch(v, after2, s_head);
        f.switch_to(after2);

        // 3. condition via a pure call — accepted, callee blocks counted
        let p_head = f.new_block();
        let after3 = f.new_block();
        f.jump(p_head);
        f.switch_to(p_head);
        let r = f.call(check, &[]);
        f.branch(r, after3, p_head);
        f.switch_to(after3);

        // 4. working loop — rejected (side-effecting body)
        let w_head = f.new_block();
        let w_body = f.new_block();
        let after4 = f.new_block();
        f.jump(w_head);
        f.switch_to(w_head);
        let v4 = f.load(flag.at(0));
        f.branch(v4, after4, w_body);
        f.switch_to(w_body);
        let w = f.load(work.at(0));
        let w2 = f.add(w, 1);
        f.store(work.at(0), w2);
        f.jump(w_head);
        f.switch_to(after4);
        f.ret(None);
    });
    let mut module = mb.finish().expect("valid module");

    let finder = SpinFinder::new(SpinCriteria::default());
    let analysis = finder.instrument(&mut module);

    println!("=== loop verdicts (window = 7) ===");
    for v in &analysis.verdicts {
        let func = &module.functions[v.func.0 as usize].name;
        match &v.decision {
            Decision::Accepted { cond_loads } => println!(
                "ACCEPT  {func}:{:?}  size={} weight={}  condition loads: {:?}",
                v.header, v.size, v.weight, cond_loads
            ),
            Decision::Rejected { reason } => println!(
                "reject  {func}:{:?}  size={} weight={}  ({reason:?})",
                v.header, v.size, v.weight
            ),
        }
    }

    println!("\n=== instrumented module ===");
    println!("{module}");
}
