//! Offline shim for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shim `serde` crate without depending on `syn`/`quote` (unavailable in
//! this build environment). The input item is parsed by hand from the raw
//! token stream — which is tractable because only the *shape* of the type
//! matters (field and variant names); field types never need to be parsed
//! since the generated code just recurses through the `Serialize` /
//! `Deserialize` traits.
//!
//! Supported shapes: non-generic structs (named / tuple / unit) and enums
//! whose variants are unit, tuple, or struct-like. `#[serde(...)]`
//! attributes are not supported (the workspace uses none).

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::str::FromStr;

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    shape: Shape,
}

fn compile_error(msg: &str) -> TokenStream {
    TokenStream::from_str(&format!("compile_error!({msg:?});")).unwrap()
}

/// Skip attributes (`#[...]`, which is also how doc comments arrive) and a
/// visibility qualifier (`pub`, optionally followed by `(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => return i,
        }
    }
}

/// Split a token slice at top-level commas, tracking `<...>` nesting so
/// commas inside generic arguments (e.g. `HashMap<Pc, SpinLoopId>`) do not
/// split. Groups are single tokens, so parens/brackets/braces nest for free.
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle: i32 = 0;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            // The '>' of an `->` (fn-pointer return type) is not a closing
            // angle bracket; it always follows a '-' punct.
            let after_dash =
                matches!(cur.last(), Some(TokenTree::Punct(prev)) if prev.as_char() == '-');
            match p.as_char() {
                '<' => angle += 1,
                '>' if !after_dash => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Parse the field names of a named-fields body (`{ a: T, b: U }`).
fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for field in split_top_level_commas(tokens) {
        let i = skip_attrs_and_vis(&field, 0);
        match field.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            None => continue,
            other => return Err(format!("unexpected token in field position: {other:?}")),
        }
    }
    Ok(names)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "the serde shim derive does not support generic types ({name})"
        ));
    }
    if kind == "struct" {
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Fields::Named(parse_named_fields(&inner)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Fields::Tuple(split_top_level_commas(&inner).len())
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
            None => Fields::Unit,
            other => return Err(format!("unexpected struct body: {other:?}")),
        };
        return Ok(Item {
            name,
            shape: Shape::Struct(fields),
        });
    }
    // enum
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => return Err(format!("expected enum body, found {other:?}")),
    };
    let body_tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    for vtokens in split_top_level_commas(&body_tokens) {
        let mut j = skip_attrs_and_vis(&vtokens, 0);
        let vname = match vtokens.get(j) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => continue,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        j += 1;
        let fields = match vtokens.get(j) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Fields::Tuple(split_top_level_commas(&inner).len())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Fields::Named(parse_named_fields(&inner)?)
            }
            // unit variant, possibly with an explicit discriminant.
            _ => Fields::Unit,
        };
        variants.push(Variant {
            name: vname,
            fields,
        });
    }
    Ok(Item {
        name,
        shape: Shape::Enum(variants),
    })
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::serde::Content::Str({f:?}.to_string()), \
                         ::serde::Serialize::to_content(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Content::Map(vec![{}])", entries.join(", "))
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", entries.join(", "))
        }
        Shape::Struct(Fields::Unit) => "::serde::Content::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Content::Str({vname:?}.to_string()),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_content({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({binds}) => ::serde::Content::Map(vec![\
                                 (::serde::Content::Str({vname:?}.to_string()), \
                                 ::serde::Content::Seq(vec![{items}]))]),",
                                binds = binds.join(", "),
                                items = items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::serde::Content::Str({f:?}.to_string()), \
                                         ::serde::Serialize::to_content({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Content::Map(vec![\
                                 (::serde::Content::Str({vname:?}.to_string()), \
                                 ::serde::Content::Map(vec![{entries}]))]),",
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

fn gen_named_ctor(path: &str, fields: &[String], map_expr: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::from_field({map_expr}, {f:?})?"))
        .collect();
    format!("{path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let ctor = gen_named_ctor(name, fields, "__m");
            format!(
                "let __m = __c.as_map().ok_or_else(|| \
                 ::serde::DeError::msg(concat!(\"expected map for struct \", {name:?})))?;\n\
                 Ok({ctor})"
            )
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let args: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&__s[{i}])?"))
                .collect();
            format!(
                "let __s = __c.as_seq().ok_or_else(|| \
                 ::serde::DeError::msg(concat!(\"expected seq for struct \", {name:?})))?;\n\
                 if __s.len() != {n} {{ return Err(::serde::DeError::msg(\
                 format!(\"expected {n} fields for {name}, got {{}}\", __s.len()))); }}\n\
                 Ok({name}({args}))",
                args = args.join(", ")
            )
        }
        Shape::Struct(Fields::Unit) => format!("let _ = __c; Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("{vn:?} => Ok({name}::{vn}),", vn = v.name))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(n) => {
                            let args: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_content(&__s[{i}])?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                 let __s = __payload.as_seq().ok_or_else(|| \
                                 ::serde::DeError::msg(concat!(\"expected seq payload for \", {vn:?})))?;\n\
                                 if __s.len() != {n} {{ return Err(::serde::DeError::msg(\
                                 format!(\"expected {n} fields for {name}::{vn}, got {{}}\", __s.len()))); }}\n\
                                 Ok({name}::{vn}({args}))\n\
                                 }}",
                                args = args.join(", ")
                            ))
                        }
                        Fields::Named(fields) => {
                            let ctor = gen_named_ctor(&format!("{name}::{vn}"), fields, "__m");
                            Some(format!(
                                "{vn:?} => {{\n\
                                 let __m = __payload.as_map().ok_or_else(|| \
                                 ::serde::DeError::msg(concat!(\"expected map payload for \", {vn:?})))?;\n\
                                 Ok({ctor})\n\
                                 }}"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __c {{\n\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                 {units}\n\
                 __other => Err(::serde::DeError::msg(format!(\
                 \"unknown unit variant {{__other}} for {name}\"))),\n\
                 }},\n\
                 ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag_c, __payload) = &__entries[0];\n\
                 let __tag = __tag_c.as_str().ok_or_else(|| \
                 ::serde::DeError::msg(\"expected string variant tag\"))?;\n\
                 match __tag {{\n\
                 {payloads}\n\
                 __other => Err(::serde::DeError::msg(format!(\
                 \"unknown variant {{__other}} for {name}\"))),\n\
                 }}\n\
                 }},\n\
                 __other => Err(::serde::DeError::msg(format!(\
                 \"unexpected content for enum {name}: {{__other:?}}\"))),\n\
                 }}",
                units = unit_arms.join("\n"),
                payloads = payload_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let src = gen_serialize(&item);
            TokenStream::from_str(&src)
                .unwrap_or_else(|e| compile_error(&format!("serde shim codegen error: {e:?}")))
        }
        Err(e) => compile_error(&e),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let src = gen_deserialize(&item);
            TokenStream::from_str(&src)
                .unwrap_or_else(|e| compile_error(&format!("serde shim codegen error: {e:?}")))
        }
        Err(e) => compile_error(&e),
    }
}
