//! Offline shim for `rand` 0.8.
//!
//! The workspace only needs a deterministic, seedable generator with
//! `gen_range` over half-open integer ranges and `gen_bool`; this shim
//! provides exactly that with `rand 0.8` import paths
//! (`rand::rngs::StdRng`, `rand::{Rng, SeedableRng}`). The core generator
//! is SplitMix64 — statistically fine for test/schedule fuzzing and, most
//! importantly here, bit-stable across runs and platforms.

/// Low-level generator interface (object safe, so range sampling can take
/// `&mut dyn RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, matching the `rand::SeedableRng::seed_from_u64`
/// entry point the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`] like in real `rand`.
pub trait Rng: RngCore {
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 uniform mantissa bits, same construction rand uses.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A half-open range that can be sampled uniformly.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut dyn RngCore) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift reduction; span is far below 2^64 for all
                // uses here, so bias is negligible and determinism exact.
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range {start}..={end}");
                let span = (end as i128 - start as i128 + 1) as u128;
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + r) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator under the `StdRng` name, with
    /// its 256-bit state expanded from the `u64` seed by SplitMix64 (the
    /// same seeding construction real `rand` uses).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..9u32);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(0..1usize + 1);
            assert!(w < 2);
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
