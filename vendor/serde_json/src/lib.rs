//! Offline shim for `serde_json`, built on the shim `serde` crate's
//! [`Content`](serde::Content) data model (re-exported here as [`Value`]).
//!
//! Provides the subset the workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`to_value`], the [`json!`] macro,
//! and `Value` inspection (`as_array`, `as_u64`, indexing, `Display`) via
//! the inherent methods on `Content`.

pub use serde::Content as Value;
use serde::{DeError, Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize a value to its `Content`/`Value` tree. Infallible in the shim
/// data model, so the plain value is returned (call sites in this
/// workspace use the result directly, not as a `Result`).
pub fn to_value<T: ?Sized + Serialize>(v: &T) -> Value {
    v.to_content()
}

/// Deserialize a typed value back out of a `Value` tree.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    Ok(T::from_content(v)?)
}

/// Render a value as compact JSON.
pub fn to_string<T: ?Sized + Serialize>(v: &T) -> Result<String, Error> {
    Ok(v.to_content().to_string())
}

/// Render a value as 2-space-indented JSON.
pub fn to_string_pretty<T: ?Sized + Serialize>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    render_pretty(&v.to_content(), 0, &mut out);
    Ok(out)
}

fn render_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, it) in items.iter().enumerate() {
                out.push_str(&pad_in);
                render_pretty(it, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                out.push_str(&pad_in);
                let key = match k {
                    Value::Str(s) => s.clone(),
                    other => other.to_string(),
                };
                out.push_str(&Value::Str(key).to_string());
                out.push_str(": ");
                render_pretty(val, indent + 1, out);
                if i + 1 < entries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

/// Parse JSON text into a typed value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    Ok(T::from_content(&v)?)
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected ',' or ']' at byte {}, found {:?}",
                                self.pos,
                                other.map(|c| c as char)
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let v = self.value()?;
                    entries.push((Value::Str(k), v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected ',' or '}}' at byte {}, found {:?}",
                                self.pos,
                                other.map(|c| c as char)
                            )))
                        }
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error(format!(
                "unexpected byte {:?} at {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    /// Read four hex digits starting at byte offset `at`.
    fn hex4(&self, at: usize) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(at..at + 4)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error("bad \\u escape".into()))?,
            16,
        )
        .map_err(|_| Error("bad \\u escape".into()))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex4(self.pos + 1)?;
                            self.pos += 4;
                            let code = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: JSON escapes non-BMP chars
                                // as a \uXXXX\uXXXX pair.
                                if self.bytes.get(self.pos + 1..self.pos + 3)
                                    != Some(b"\\u".as_slice())
                                {
                                    return Err(Error(
                                        "high surrogate not followed by \\u escape".into(),
                                    ));
                                }
                                let low = self.hex4(self.pos + 3)?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error(format!("invalid low surrogate {low:#06x}")));
                                }
                                self.pos += 6;
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("bad escape {:?}", other.map(|c| c as char))))
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    // Bulk-copy the whole run of plain ASCII up to the
                    // next quote, escape, or multi-byte character —
                    // validating from the current position onward per
                    // character would make parsing quadratic in the
                    // document size (fatal for multi-million-event
                    // traces).
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' || b >= 0x80 {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
                Some(_) => {
                    // Decode one multi-byte UTF-8 character from a
                    // bounded 4-byte window (a longest-valid prefix may
                    // exist when the window straddles the next char).
                    let end = (self.pos + 4).min(self.bytes.len());
                    let window = &self.bytes[self.pos..end];
                    let valid = match std::str::from_utf8(window) {
                        Ok(s) => s,
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&window[..e.valid_up_to()]).unwrap()
                        }
                        Err(_) => return Err(Error("invalid UTF-8".into())),
                    };
                    let c = valid.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error(format!("bad number {text:?}: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error(format!("bad number {text:?}: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error(format!("bad number {text:?}: {e}")))
        }
    }
}

/// Build a [`Value`] from JSON-like syntax. Supports object and array
/// literals, `null`, and arbitrary serializable expressions in value
/// position (the subset real `serde_json::json!` usage in this workspace
/// exercises).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($items:tt)* ]) => { $crate::json_array!([] $($items)*) };
    ({ $($body:tt)* }) => { $crate::json_object!([] $($body)*) };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_array {
    ([$(($done:expr))*]) => { $crate::Value::Seq(vec![ $($done),* ]) };
    ([$(($done:expr))*] { $($obj:tt)* } , $($rest:tt)*) => {
        $crate::json_array!([$(($done))* ($crate::json!({ $($obj)* }))] $($rest)*)
    };
    ([$(($done:expr))*] { $($obj:tt)* }) => {
        $crate::json_array!([$(($done))* ($crate::json!({ $($obj)* }))])
    };
    ([$(($done:expr))*] $item:expr , $($rest:tt)*) => {
        $crate::json_array!([$(($done))* ($crate::to_value(&$item))] $($rest)*)
    };
    ([$(($done:expr))*] $item:expr) => {
        $crate::json_array!([$(($done))* ($crate::to_value(&$item))])
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_object {
    ([$(($k:expr, $v:expr))*]) => {
        $crate::Value::Map(vec![ $( ($crate::Value::Str($k.to_string()), $v) ),* ])
    };
    ([$(($dk:expr, $dv:expr))*] $key:literal : { $($obj:tt)* } , $($rest:tt)*) => {
        $crate::json_object!([$(($dk, $dv))* ($key, $crate::json!({ $($obj)* }))] $($rest)*)
    };
    ([$(($dk:expr, $dv:expr))*] $key:literal : { $($obj:tt)* }) => {
        $crate::json_object!([$(($dk, $dv))* ($key, $crate::json!({ $($obj)* }))])
    };
    ([$(($dk:expr, $dv:expr))*] $key:literal : [ $($arr:tt)* ] , $($rest:tt)*) => {
        $crate::json_object!([$(($dk, $dv))* ($key, $crate::json!([ $($arr)* ]))] $($rest)*)
    };
    ([$(($dk:expr, $dv:expr))*] $key:literal : [ $($arr:tt)* ]) => {
        $crate::json_object!([$(($dk, $dv))* ($key, $crate::json!([ $($arr)* ]))])
    };
    ([$(($dk:expr, $dv:expr))*] $key:literal : null , $($rest:tt)*) => {
        $crate::json_object!([$(($dk, $dv))* ($key, $crate::Value::Null)] $($rest)*)
    };
    ([$(($dk:expr, $dv:expr))*] $key:literal : null) => {
        $crate::json_object!([$(($dk, $dv))* ($key, $crate::Value::Null)])
    };
    ([$(($dk:expr, $dv:expr))*] $key:literal : $val:expr , $($rest:tt)*) => {
        $crate::json_object!([$(($dk, $dv))* ($key, $crate::to_value(&$val))] $($rest)*)
    };
    ([$(($dk:expr, $dv:expr))*] $key:literal : $val:expr) => {
        $crate::json_object!([$(($dk, $dv))* ($key, $crate::to_value(&$val))])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_text() {
        let v = json!({
            "name": "x",
            "n": 3u32,
            "nested": { "flag": true, "xs": [1, 2, 3] },
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        assert_eq!(v["nested"]["xs"].as_array().unwrap().len(), 3);
        assert_eq!(v["n"].as_u64(), Some(3));
        assert!(v["missing"].is_null());
    }

    #[test]
    fn parses_escapes_and_negatives() {
        let v: Value = from_str(r#"{"s": "a\nbA", "i": -5, "f": 1.5}"#).unwrap();
        assert_eq!(v["s"].as_str(), Some("a\nbA"));
        assert_eq!(v["i"].as_i64(), Some(-5));
        assert_eq!(v["f"].as_f64(), Some(1.5));
    }

    #[test]
    fn whole_valued_floats_stay_floats_in_text() {
        let v = json!({ "mean": 2.0f64, "frac": 153.4f64 });
        let text = to_string(&v).unwrap();
        assert_eq!(text, r#"{"mean":2.0,"frac":153.4}"#);
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back["mean"], Value::F64(2.0));
    }

    #[test]
    fn surrogate_pair_escapes_parse() {
        let v: Value = from_str(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        assert!(
            from_str::<Value>(r#""\ud83d""#).is_err(),
            "lone high surrogate"
        );
        assert!(
            from_str::<Value>(r#""\ud83dA""#).is_err(),
            "high surrogate + non-low-surrogate"
        );
    }

    #[test]
    fn pretty_is_reparseable() {
        let v = json!({ "rows": [{ "a": 1 }, { "a": 2 }] });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }
}
