//! Offline shim for [serde](https://serde.rs).
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate reimplements the *subset* of serde the workspace uses, with
//! the same import paths (`use serde::{Serialize, Deserialize};` plus the
//! derive macros of the same names).
//!
//! Instead of serde's visitor-based zero-copy data model, values are
//! serialized through a small self-describing tree, [`Content`]. The
//! companion `serde_json` shim renders/parses `Content` as JSON and
//! re-exports it as `serde_json::Value`. Encoding conventions (chosen for
//! lossless round-trips, the only property the workspace relies on):
//!
//! * named structs → `Map` keyed by field-name strings, in field order;
//! * tuple structs → `Seq` of the fields;
//! * unit structs → `Null`;
//! * enums → externally tagged: unit variants are a bare `Str`, payload
//!   variants a single-entry `Map` from the variant name to a `Seq`
//!   (tuple variants) or `Map` (struct variants);
//! * maps (`HashMap`/`BTreeMap`) → `Seq` of two-element `Seq` pairs, so
//!   non-string keys survive the trip through JSON text unchanged.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A self-describing serialized value: the data model of this shim.
#[derive(Clone, Debug)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(Content, Content)>),
}

/// Numeric equality across the signed/unsigned split (JSON text has one
/// number syntax, so `I64(1)` and `U64(1)` must compare equal — matching
/// real `serde_json::Value` semantics).
impl PartialEq for Content {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Content::Null, Content::Null) => true,
            (Content::Bool(a), Content::Bool(b)) => a == b,
            (Content::I64(a), Content::I64(b)) => a == b,
            (Content::U64(a), Content::U64(b)) => a == b,
            (Content::I64(a), Content::U64(b)) | (Content::U64(b), Content::I64(a)) => {
                *a >= 0 && *a as u64 == *b
            }
            (Content::F64(a), Content::F64(b)) => a == b,
            (Content::Str(a), Content::Str(b)) => a == b,
            (Content::Seq(a), Content::Seq(b)) => a == b,
            (Content::Map(a), Content::Map(b)) => a == b,
            _ => false,
        }
    }
}

/// Deserialization error: a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialize into the [`Content`] tree (the shim's analogue of
/// `serde::Serialize`).
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// Reconstruct from a [`Content`] tree (the shim's analogue of
/// `serde::Deserialize`).
pub trait Deserialize: Sized {
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Content accessors (serde_json re-exports Content as Value, so the usual
// Value inspection API lives here to satisfy the orphan rule).
// ---------------------------------------------------------------------------

static NULL: Content = Content::Null;

impl Content {
    pub fn as_map(&self) -> Option<&[(Content, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// `serde_json::Value::as_array` compatible accessor.
    pub fn as_array(&self) -> Option<&Vec<Content>> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Content::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Content::U64(v) => Some(*v),
            Content::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Content::I64(v) => Some(*v),
            Content::U64(v) if *v <= i64::MAX as u64 => Some(*v as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Content::F64(v) => Some(*v),
            Content::I64(v) => Some(*v as f64),
            Content::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Content::Null)
    }

    /// Object-style lookup (maps with string keys); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Content> {
        self.as_map().and_then(|m| {
            m.iter()
                .find(|(k, _)| matches!(k, Content::Str(s) if s == key))
                .map(|(_, v)| v)
        })
    }
}

impl std::ops::Index<&str> for Content {
    type Output = Content;
    fn index(&self, key: &str) -> &Content {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Content {
    type Output = Content;
    fn index(&self, i: usize) -> &Content {
        match self {
            Content::Seq(s) => s.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Compact JSON rendering (the `Display` that `serde_json::to_string`
/// builds on; kept here because `Content` is defined here).
impl fmt::Display for Content {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Content::Null => f.write_str("null"),
            Content::Bool(b) => write!(f, "{b}"),
            Content::I64(v) => write!(f, "{v}"),
            Content::U64(v) => write!(f, "{v}"),
            Content::F64(v) => {
                if !v.is_finite() {
                    // JSON has no NaN/Infinity; serde_json emits null.
                    f.write_str("null")
                } else if v.trunc() == *v && v.abs() < 1e15 {
                    // Keep whole-valued floats float-typed in the text
                    // ("2.0", not "2"), like real serde_json, so parsing
                    // the output back preserves the number's type.
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Content::Str(s) => write_json_string(f, s),
            Content::Seq(items) => {
                f.write_str("[")?;
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{it}")?;
                }
                f.write_str("]")
            }
            Content::Map(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    match k {
                        Content::Str(s) => write_json_string(f, s)?,
                        other => write_json_string(f, &other.to_string())?,
                    }
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

// ---------------------------------------------------------------------------
// Helpers used by the generated derive code.
// ---------------------------------------------------------------------------

/// Look up a struct field by name in a `Map` payload.
pub fn field<'a>(m: &'a [(Content, Content)], key: &str) -> Option<&'a Content> {
    m.iter()
        .find(|(k, _)| matches!(k, Content::Str(s) if s == key))
        .map(|(_, v)| v)
}

/// Deserialize a struct field by name, with a missing-field error.
pub fn from_field<T: Deserialize>(m: &[(Content, Content)], key: &str) -> Result<T, DeError> {
    match field(m, key) {
        Some(v) => T::from_content(v),
        None => Err(DeError(format!("missing field `{key}`"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive and container impls.
// ---------------------------------------------------------------------------

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(c.clone())
    }
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = c.as_u64().ok_or_else(|| {
                    DeError(format!(concat!("expected ", stringify!($t), ", got {:?}"), c))
                })?;
                <$t>::try_from(v).map_err(|_| DeError(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = c.as_i64().ok_or_else(|| {
                    DeError(format!(concat!("expected ", stringify!($t), ", got {:?}"), c))
                })?;
                <$t>::try_from(v).map_err(|_| DeError(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_f64()
            .ok_or_else(|| DeError(format!("expected f64, got {c:?}")))
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(f64::from_content(c)? as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_bool()
            .ok_or_else(|| DeError(format!("expected bool, got {c:?}")))
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError(format!("expected string, got {c:?}")))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let s = String::from_content(c)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(DeError(format!("expected single char, got {s:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError(format!("expected sequence, got {c:?}")))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => Ok(Some(T::from_content(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(Box::new(T::from_content(c)?))
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let s = c
                    .as_seq()
                    .ok_or_else(|| DeError(format!("expected tuple sequence, got {c:?}")))?;
                let expected = [$($n,)+].len();
                if s.len() != expected {
                    return Err(DeError(format!(
                        "expected {expected}-tuple, got {} elements",
                        s.len()
                    )));
                }
                Ok(($($t::from_content(&s[$n])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        Content::Seq(
            self.iter()
                .map(|(k, v)| Content::Seq(vec![k.to_content(), v.to_content()]))
                .collect(),
        )
    }
}
impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let s = c
            .as_seq()
            .ok_or_else(|| DeError(format!("expected map pair sequence, got {c:?}")))?;
        let mut out = HashMap::with_capacity_and_hasher(s.len(), S::default());
        for pair in s {
            let p = pair
                .as_seq()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| DeError(format!("expected [key, value] pair, got {pair:?}")))?;
            out.insert(K::from_content(&p[0])?, V::from_content(&p[1])?);
        }
        Ok(out)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Seq(
            self.iter()
                .map(|(k, v)| Content::Seq(vec![k.to_content(), v.to_content()]))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let s = c
            .as_seq()
            .ok_or_else(|| DeError(format!("expected map pair sequence, got {c:?}")))?;
        let mut out = BTreeMap::new();
        for pair in s {
            let p = pair
                .as_seq()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| DeError(format!("expected [key, value] pair, got {pair:?}")))?;
            out.insert(K::from_content(&p[0])?, V::from_content(&p[1])?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_content(&42u32.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-7i64).to_content()).unwrap(), -7);
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u8>::from_content(&Content::Null).unwrap(),
            None::<u8>
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u64, 2i64), (3, 4)];
        assert_eq!(Vec::<(u64, i64)>::from_content(&v.to_content()).unwrap(), v);
        let mut m = HashMap::new();
        m.insert(5u32, "five".to_string());
        assert_eq!(
            HashMap::<u32, String>::from_content(&m.to_content()).unwrap(),
            m
        );
    }

    #[test]
    fn display_renders_json() {
        let c = Content::Map(vec![
            (
                Content::Str("a".into()),
                Content::Seq(vec![Content::U64(1), Content::Null]),
            ),
            (Content::Str("b".into()), Content::Bool(true)),
        ]);
        assert_eq!(c.to_string(), r#"{"a":[1,null],"b":true}"#);
    }
}
