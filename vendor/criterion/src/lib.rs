//! Offline shim for `criterion`.
//!
//! Implements the API surface this workspace's benches use —
//! `benchmark_group`, `sample_size`, `throughput`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `criterion_group!`, `criterion_main!` —
//! with a simple wall-clock measurement loop instead of criterion's
//! statistical machinery. Each benchmark runs a short warm-up, then
//! `sample_size` timed samples, and prints mean/min per iteration (plus
//! derived throughput when configured).

use std::fmt::Display;
use std::hint::black_box;
use std::time::Instant;

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new<S: Display, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Units for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level harness handle, passed to every bench function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let group = self.benchmark_group(name.to_string());
        let mut b = Bencher::default();
        f(&mut b);
        group.report(name, &b);
        group.finish();
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            ..Bencher::default()
        };
        f(&mut b, input);
        self.report(&id.name, &b);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            ..Bencher::default()
        };
        f(&mut b);
        self.report(&id.name, &b);
        self
    }

    fn report(&self, bench_name: &str, b: &Bencher) {
        let mean = b.mean_ns();
        let min = b.min_ns();
        let mut line = format!(
            "{}/{}: mean {} min {} ({} samples)",
            self.name,
            bench_name,
            fmt_ns(mean),
            fmt_ns(min),
            b.sample_times_ns.len()
        );
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            if mean > 0.0 {
                let per_sec = count as f64 / (mean * 1e-9);
                line.push_str(&format!(" — {per_sec:.3e} {unit}"));
            }
        }
        println!("{line}");
    }

    pub fn finish(self) {}
}

/// Measurement driver handed to the bench closure.
#[derive(Default)]
pub struct Bencher {
    samples: usize,
    sample_times_ns: Vec<f64>,
}

impl Bencher {
    /// Time the closure: a warm-up call, then `samples` timed runs.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let samples = self.samples.max(1);
        self.sample_times_ns = (0..samples)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed().as_secs_f64() * 1e9
            })
            .collect();
    }

    fn mean_ns(&self) -> f64 {
        if self.sample_times_ns.is_empty() {
            return 0.0;
        }
        self.sample_times_ns.iter().sum::<f64>() / self.sample_times_ns.len() as f64
    }

    fn min_ns(&self) -> f64 {
        self.sample_times_ns
            .iter()
            .copied()
            .fold(f64::MAX, f64::min)
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("count", 1), &5u64, |b, &n| {
            b.iter(|| {
                runs += 1;
                (0..n).sum::<u64>()
            })
        });
        group.finish();
        // one warm-up + three samples
        assert_eq!(runs, 4);
    }
}
