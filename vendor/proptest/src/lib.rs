//! Offline shim for `proptest`.
//!
//! Supports the subset this workspace uses: the `proptest!` macro (with an
//! optional `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! `prop_assert!` / `prop_assert_eq!`, integer-range strategies
//! (`0u64..100`), and `proptest::collection::vec(strategy, size_range)`.
//!
//! Unlike real proptest there is no shrinking: each test runs `cases`
//! deterministic random samples (seeded from the test name, so failures
//! reproduce exactly) and panics with the failing case's message.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Test-case failure raised by `prop_assert!` and friends.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Run configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the deterministic suite
        // fast while still exercising a spread of inputs.
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. The shim analogue of `proptest::strategy::Strategy`,
/// reduced to deterministic sampling (no value tree / shrinking).
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `proptest::bool` — boolean strategies.
pub mod bool {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// The strategy type behind [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniformly random booleans (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen_range(0u8..2) == 1
        }
    }
}

/// `proptest::option` — optional-value strategies.
pub mod option {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Option<T>` values: `None` half the time, otherwise `Some` drawn
    /// from `inner` (`proptest::option::of`).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_range(0u8..2) == 1 {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

/// `proptest::collection` — sized container strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generate a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Deterministic per-test RNG, seeded from the test path so failures are
/// reproducible run to run.
pub fn rng_for(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{} != {}` (both {:?})",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_hold(x in 3u32..9, y in 0usize..4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vec_strategy_sizes(xs in crate::collection::vec(0u64..20, 0..8)) {
            prop_assert!(xs.len() < 8);
            prop_assert!(xs.iter().all(|&v| v < 20));
        }

        #[test]
        fn bool_and_option_strategies(b in crate::bool::ANY, o in crate::option::of(1u32..5)) {
            let _: bool = b;
            if let Some(v) = o {
                prop_assert!((1..5).contains(&v));
            }
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use rand::Rng;
        let mut a = crate::rng_for("a::b");
        let mut b = crate::rng_for("a::b");
        assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
    }
}
