//! Offline shim of `fxhash` — the Firefox/rustc fast non-cryptographic
//! hash, vendored because crates.io is unreachable in this build
//! environment.
//!
//! The detector's sync-object maps are keyed by small integers (object
//! addresses, interned ids): SipHash's per-lookup cost dominates there,
//! while Fx's single multiply-rotate round is enough — these tables are
//! internal, never fed attacker-controlled keys, so HashDoS resistance is
//! not needed.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiply constant (64-bit golden-ratio-derived, as in rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// One round: rotate, xor the word in, multiply.
#[inline]
fn combine(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED)
}

/// The Fx hasher: word-at-a-time multiply-rotate, no finalization.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.hash = combine(self.hash, u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.hash = combine(self.hash, u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.hash = combine(self.hash, n as u64);
    }
    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.hash = combine(self.hash, n as u64);
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.hash = combine(self.hash, n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.hash = combine(self.hash, n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.hash = combine(self.hash, n as u64);
    }
    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.hash = combine(combine(self.hash, n as u64), (n >> 64) as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

/// Hash one hashable value with Fx (convenience mirroring `fxhash::hash64`).
pub fn hash64<T: std::hash::Hash + ?Sized>(v: &T) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_and_sets_work() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 0x1000, i as u32);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 0x1000)), Some(&(i as u32)));
        }
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
    }

    #[test]
    fn hashes_are_stable_and_spread() {
        assert_eq!(hash64(&42u64), hash64(&42u64));
        assert_ne!(hash64(&1u64), hash64(&2u64));
        // sequential keys must not collapse to sequential buckets only
        let hashes: Vec<u64> = (0..64u64).map(|i| hash64(&i)).collect();
        let distinct: std::collections::HashSet<_> = hashes.iter().collect();
        assert_eq!(distinct.len(), 64);
    }

    #[test]
    fn byte_stream_matches_word_writes_for_exact_words() {
        let mut a = FxHasher::default();
        a.write(&7u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
    }
}
