//! The universal-detector claim, tested exhaustively: for every race-free
//! library-synchronization case in the suite, the `nolib+spin`
//! configuration (zero library knowledge) must reach the same verdict as
//! the library-aware tools; for every plainly racy case it must still
//! find the race.

use spinrace::core::{Analyzer, Tool};
use spinrace::suites::{all_cases, Category};

#[test]
fn nolib_is_clean_on_every_lib_sync_case() {
    let nolib = Analyzer::tool(Tool::HelgrindNolibSpin { window: 7 });
    for case in all_cases()
        .iter()
        .filter(|c| matches!(c.category, Category::LibSync))
    {
        let out = nolib
            .analyze(&case.module)
            .unwrap_or_else(|e| panic!("case {} ({}) failed to run: {e}", case.id, case.name));
        assert!(
            out.is_clean(),
            "case {} ({}): universal detector reported {:?}",
            case.id,
            case.name,
            out.reports
        );
    }
}

#[test]
fn nolib_catches_every_plain_race() {
    let nolib = Analyzer::tool(Tool::HelgrindNolibSpin { window: 7 });
    for case in all_cases()
        .iter()
        .filter(|c| matches!(c.category, Category::RacyPlain))
    {
        let out = nolib.analyze(&case.module).unwrap();
        assert!(
            out.has_race_on(case.race_location.unwrap()),
            "case {} ({}): race missed",
            case.id,
            case.name
        );
    }
}

#[test]
fn lowering_preserves_every_case_outcome() {
    // Execution must terminate and produce identical Output logs in lib
    // and nolib pipelines for every deterministic (round-robin) run.
    for case in all_cases()
        .iter()
        .filter(|c| matches!(c.category, Category::LibSync))
    {
        let lib = Analyzer::tool(Tool::HelgrindLib)
            .analyze(&case.module)
            .unwrap();
        let nolib = Analyzer::tool(Tool::HelgrindNolibSpin { window: 7 })
            .analyze(&case.module)
            .unwrap();
        let a: Vec<i64> = lib.summary.outputs.iter().map(|(_, v)| *v).collect();
        let b: Vec<i64> = nolib.summary.outputs.iter().map(|(_, v)| *v).collect();
        assert_eq!(
            a, b,
            "case {} ({}): lowering changed program results",
            case.id, case.name
        );
    }
}

#[test]
fn spin_instrumentation_finds_loops_in_every_lowered_case() {
    // Every lowered lib-sync case that blocks must contain detectable
    // spin loops (the primitives themselves).
    let nolib = Analyzer::tool(Tool::HelgrindNolibSpin { window: 7 });
    let mut with_loops = 0;
    let mut total = 0;
    for case in all_cases()
        .iter()
        .filter(|c| matches!(c.category, Category::LibSync))
    {
        let out = nolib.analyze(&case.module).unwrap();
        total += 1;
        if out.spin_loops_found > 0 {
            with_loops += 1;
        }
    }
    assert_eq!(
        with_loops, total,
        "every lowered module carries the spin library's wait loops"
    );
}
