//! Workspace smoke test: guards the end-to-end pipeline (build → spin
//! instrumentation → VM execution → detection → report) independently of
//! the full evaluation suites. If this file fails, the pipeline itself is
//! broken, not a particular workload.

use spinrace::core::{Analyzer, Tool};
use spinrace::tir::{Module, ModuleBuilder};

/// Two threads increment a shared counter with no synchronization at all.
fn racy_module() -> Module {
    let mut mb = ModuleBuilder::new("smoke-racy");
    let victim = mb.global("victim", 1);
    let w = mb.function("w", 1, |f| {
        let v = f.load(victim.at(0));
        let v2 = f.add(v, 1);
        f.store(victim.at(0), v2);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t1 = f.spawn(w, 0);
        let t2 = f.spawn(w, 1);
        f.join(t1);
        f.join(t2);
        f.ret(None);
    });
    mb.finish().expect("valid racy module")
}

/// The paper's motivating pattern, race-free via an ad-hoc spin loop:
/// writer does `DATA++; FLAG = 1`, reader spins on `FLAG` then `DATA--`.
fn spin_synchronized_module() -> Module {
    let mut mb = ModuleBuilder::new("smoke-spin-sync");
    let flag = mb.global("FLAG", 1);
    let data = mb.global("DATA", 1);
    let reader = mb.function("reader", 1, |f| {
        let head = f.new_block();
        let done = f.new_block();
        f.jump(head);
        f.switch_to(head);
        let v = f.load(flag.at(0));
        f.branch(v, done, head);
        f.switch_to(done);
        let d = f.load(data.at(0));
        let d2 = f.sub(d, 1);
        f.store(data.at(0), d2);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t = f.spawn(reader, 0);
        let d = f.load(data.at(0));
        let d2 = f.add(d, 1);
        f.store(data.at(0), d2);
        f.store(flag.at(0), 1);
        f.join(t);
        f.ret(None);
    });
    mb.finish().expect("valid spin module")
}

#[test]
fn racy_module_reports_at_least_one_context() {
    for tool in Tool::paper_lineup() {
        let out = Analyzer::tool(tool)
            .analyze(&racy_module())
            .expect("analysis succeeds");
        assert!(
            out.contexts >= 1,
            "{} must flag the unsynchronized counter, got {} contexts",
            tool.label(),
            out.contexts
        );
        assert!(
            out.has_race_on("victim"),
            "{}: {:?}",
            tool.label(),
            out.reports
        );
    }
}

#[test]
fn spin_synchronized_module_is_clean_under_spin_tools() {
    for tool in [
        Tool::HelgrindLibSpin { window: 7 },
        Tool::HelgrindNolibSpin { window: 7 },
    ] {
        let out = Analyzer::tool(tool)
            .analyze(&spin_synchronized_module())
            .expect("analysis succeeds");
        assert_eq!(
            out.contexts,
            0,
            "{} must accept the flag handoff as synchronization: {:?}",
            tool.label(),
            out.reports
        );
        assert!(
            out.spin_loops_found >= 1,
            "{} should have instrumented the spin loop",
            tool.label()
        );
    }
}

#[test]
fn spin_blind_tool_sees_the_adhoc_pattern_as_racy() {
    // The contrast that motivates the paper: without spin-loop knowledge,
    // the same race-free program produces reports.
    let out = Analyzer::tool(Tool::HelgrindLib)
        .analyze(&spin_synchronized_module())
        .expect("analysis succeeds");
    assert!(
        out.contexts >= 1,
        "library-only mode should report the flag/data accesses"
    );
}
