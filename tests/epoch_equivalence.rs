//! Differential proptest: the epoch-fast-path [`RaceDetector`] and the
//! retained slow full-VC [`ReferenceDetector`] must produce **identical**
//! results on arbitrary event schedules — same racy contexts, same report
//! lists (locations, kinds, order), same promoted locations — under every
//! detector configuration. This is the semantic safety net for the paged
//! shadow memory, the adaptive read representation, and every early exit
//! in `on_plain_read`/`on_plain_write`.
//!
//! Since the trace redesign the differential also runs through the
//! [`Trace`] artifact instead of hand-fed streams: each schedule is
//! wrapped in a trace, the fast detector replays it directly, and the
//! reference replays a **serialize → parse** round trip of the same trace
//! — so one generator exercises the detector equivalence *and* the stable
//! serde encoding of every event variant at once.

use proptest::prelude::*;
use spinrace::detector::{DetectorConfig, MsmMode, RaceDetector, ReferenceDetector};
use spinrace::tir::{BlockId, FuncId, MemOrder, Pc, SpinLoopId};
use spinrace::vm::{Event, RunSummary, Trace, TraceHeader, VmConfig, TRACE_FORMAT_VERSION};

/// Threads used by generated schedules (0 is the implicit main thread).
const THREADS: u32 = 4;
/// Distinct data addresses.
const DATA_ADDRS: [u64; 8] = [
    0x1000, 0x1001, 0x1002, 0x1040, 0x2000, 0x2001, 0x5008, 0x9000,
];
/// Distinct sync-object addresses (mutexes/CVs/semaphores/barriers).
const SYNC_ADDRS: [u64; 4] = [0x7000, 0x7001, 0x7002, 0x7003];

fn pc(v: u64) -> Pc {
    Pc::new(
        FuncId((v % 3) as u32),
        BlockId((v % 5) as u32),
        (v % 7) as u32,
    )
}

/// Decode one raw `u64` into an event. The decoding is total: every raw
/// value maps to some event, so schedules cover promotions, suppressions,
/// racy and ordered interleavings, lockset churn, and sync-object reuse.
fn decode(raw: u64) -> Event {
    let tid = 1 + ((raw >> 8) % (THREADS as u64 - 1)) as u32; // workers 1..=3
    let any_tid = ((raw >> 8) % THREADS as u64) as u32;
    let addr = DATA_ADDRS[((raw >> 16) % DATA_ADDRS.len() as u64) as usize];
    let sync = SYNC_ADDRS[((raw >> 16) % SYNC_ADDRS.len() as u64) as usize];
    let stack = (raw >> 24) % 3;
    let site = pc(raw >> 32);
    match raw % 17 {
        0 | 1 => Event::Read {
            tid,
            addr,
            value: 0,
            pc: site,
            stack,
            atomic: None,
            spin: None,
        },
        2 | 3 => Event::Write {
            tid,
            addr,
            value: 1,
            pc: site,
            stack,
            atomic: None,
        },
        4 => Event::Read {
            tid,
            addr,
            value: 0,
            pc: site,
            stack,
            atomic: Some(MemOrder::Acquire),
            spin: None,
        },
        5 => Event::Write {
            tid,
            addr,
            value: 1,
            pc: site,
            stack,
            atomic: Some(MemOrder::Release),
        },
        6 => Event::Update {
            tid,
            addr,
            old: 0,
            new: 1,
            pc: site,
            stack,
            order: MemOrder::SeqCst,
        },
        7 => Event::Read {
            tid,
            addr,
            value: 0,
            pc: site,
            stack,
            atomic: None,
            spin: Some(SpinLoopId((raw % 2) as u32)),
        },
        8 => Event::SpinExit {
            tid,
            spin: SpinLoopId((raw % 2) as u32),
            reads: vec![(addr, site)],
        },
        9 => Event::MutexLock {
            tid,
            mutex: sync,
            pc: site,
        },
        10 => Event::MutexUnlock {
            tid,
            mutex: sync,
            pc: site,
        },
        11 => Event::CondSignal {
            tid,
            cv: sync,
            pc: site,
        },
        12 => Event::CondWaitReturn {
            tid,
            cv: sync,
            mutex: sync,
            pc: site,
        },
        13 => Event::SemPost {
            tid,
            sem: sync,
            pc: site,
        },
        14 => Event::SemAcquired {
            tid,
            sem: sync,
            pc: site,
        },
        15 => {
            if (raw >> 40).is_multiple_of(2) {
                Event::BarrierEnter {
                    tid,
                    barrier: sync,
                    gen: (raw >> 41) % 2,
                    pc: site,
                }
            } else {
                Event::BarrierLeave {
                    tid,
                    barrier: sync,
                    gen: (raw >> 41) % 2,
                    pc: site,
                }
            }
        }
        _ => Event::Join {
            parent: any_tid,
            child: tid,
            pc: site,
        },
    }
}

fn schedule(raw_ops: &[u64]) -> Vec<Event> {
    let mut evs: Vec<Event> = (1..THREADS)
        .map(|child| Event::Spawn {
            parent: 0,
            child,
            pc: pc(0),
        })
        .collect();
    evs.extend(raw_ops.iter().map(|&r| decode(r)));
    evs
}

fn configs() -> Vec<DetectorConfig> {
    vec![
        DetectorConfig::helgrind_lib(MsmMode::Short),
        DetectorConfig::helgrind_lib(MsmMode::Long),
        DetectorConfig::helgrind_lib_spin(MsmMode::Long),
        DetectorConfig::helgrind_nolib_spin(MsmMode::Short),
        DetectorConfig::drd(),
        // Tiny cap: saturation order must agree too.
        DetectorConfig::helgrind_lib(MsmMode::Short).with_cap(3),
    ]
}

/// Wrap a synthetic schedule in a trace artifact (there is no source
/// module; the header carries placeholder provenance).
fn trace_of(events: &[Event]) -> Trace {
    Trace {
        header: TraceHeader {
            version: TRACE_FORMAT_VERSION,
            module_name: "synthetic-schedule".into(),
            module_fingerprint: 0,
            tool_label: String::new(),
            vm: VmConfig::round_robin(),
            events: events.len() as u64,
        },
        summary: RunSummary::default(),
        events: events.to_vec(),
    }
}

/// The recorded trace and its serialize→parse round trip, which must be
/// lossless for every generated event variant.
fn roundtrip(events: &[Event]) -> Result<(Trace, Trace), TestCaseError> {
    let trace = trace_of(events);
    let parsed = Trace::from_json(&trace.to_json())
        .map_err(|e| TestCaseError(format!("trace failed to parse back: {e}")))?;
    prop_assert_eq!(&parsed, &trace, "serde round trip must be lossless");
    Ok((trace, parsed))
}

fn assert_equivalent(
    cfg: DetectorConfig,
    trace: &Trace,
    parsed: &Trace,
) -> Result<(), TestCaseError> {
    let mut fast = RaceDetector::new(cfg);
    trace.replay(&mut fast);
    let mut slow = ReferenceDetector::new(cfg);
    parsed.replay(&mut slow);
    prop_assert_eq!(fast.events_seen(), slow.events_seen());
    prop_assert_eq!(
        fast.racy_contexts(),
        slow.racy_contexts(),
        "contexts diverge under {:?}",
        cfg
    );
    prop_assert_eq!(
        fast.reports().reports(),
        slow.reports().reports(),
        "report lists diverge under {:?}",
        cfg
    );
    prop_assert_eq!(fast.reports().dropped(), slow.reports().dropped());
    prop_assert_eq!(
        fast.promoted_locations(),
        slow.promoted_locations(),
        "promotions diverge under {:?}",
        cfg
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random mixed schedules: both detectors agree exactly, under every
    /// configuration — the fast detector fed from the recorded trace, the
    /// reference from its serialized round trip.
    #[test]
    fn epoch_detector_matches_reference(raw in proptest::collection::vec(0u64..u64::MAX, 0..160)) {
        let events = schedule(&raw);
        let (trace, parsed) = roundtrip(&events)?;
        for cfg in configs() {
            assert_equivalent(cfg, &trace, &parsed)?;
        }
    }

    /// Plain-access-only schedules stress the shadow hot paths hardest
    /// (every event lands in `on_plain_read`/`on_plain_write`).
    #[test]
    fn plain_access_storms_match(raw in proptest::collection::vec(0u64..u64::MAX, 0..200)) {
        let events = schedule(
            &raw.iter().map(|r| (r % 4) | (r & !0xffu64)).collect::<Vec<_>>(),
        );
        let (trace, parsed) = roundtrip(&events)?;
        for cfg in [
            DetectorConfig::helgrind_lib(MsmMode::Short),
            DetectorConfig::helgrind_lib(MsmMode::Long),
        ] {
            assert_equivalent(cfg, &trace, &parsed)?;
        }
    }
}

/// A handcrafted worst case for the adaptive read state: many concurrent
/// readers promote to `Shared`, a write collapses it, an exclusive reader
/// reclaims it — every transition must match the reference.
#[test]
fn read_state_transitions_match_reference() {
    let mut events = vec![
        Event::Spawn {
            parent: 0,
            child: 1,
            pc: pc(0),
        },
        Event::Spawn {
            parent: 0,
            child: 2,
            pc: pc(0),
        },
        Event::Spawn {
            parent: 0,
            child: 3,
            pc: pc(0),
        },
    ];
    // all three workers read the same word concurrently (promotes),
    for t in 1..=3u32 {
        events.push(Event::Read {
            tid: t,
            addr: 0x1000,
            value: 0,
            pc: pc(t as u64),
            stack: 0,
            atomic: None,
            spin: None,
        });
    }
    // thread 1 writes (racy vs readers 2,3; collapses the read set),
    events.push(Event::Write {
        tid: 1,
        addr: 0x1000,
        value: 1,
        pc: pc(9),
        stack: 0,
        atomic: None,
    });
    // then 1 re-reads its own write twice (exclusive fast path),
    for i in 0..2u64 {
        events.push(Event::Read {
            tid: 1,
            addr: 0x1000,
            value: 1,
            pc: pc(10 + i),
            stack: 0,
            atomic: None,
            spin: None,
        });
    }
    // and thread 2 writes again (racy write + racy-read candidates).
    events.push(Event::Write {
        tid: 2,
        addr: 0x1000,
        value: 2,
        pc: pc(20),
        stack: 0,
        atomic: None,
    });
    let trace = trace_of(&events);
    for cfg in configs() {
        let mut fast = RaceDetector::new(cfg);
        let mut slow = ReferenceDetector::new(cfg);
        trace.replay(&mut fast);
        trace.replay(&mut slow);
        assert_eq!(fast.racy_contexts(), slow.racy_contexts(), "{cfg:?}");
        assert_eq!(fast.reports().reports(), slow.reports().reports());
        assert!(fast.racy_contexts() > 0 || cfg.spin, "sanity: races exist");
    }
}
