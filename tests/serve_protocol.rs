//! End-to-end protocol coverage for the `spinrace-serve` analysis
//! server: concurrent sessions must reproduce offline detection
//! byte-for-byte, corrupt uploads must come back as structured error
//! frames (reusing the `mutate` byte-surgery helpers), budget trips
//! must carry partial metrics, a mid-upload disconnect must free its
//! session slot, and streamed sessions must emit verdicts before the
//! upload has finished.

use spinrace::core::{DetectRequest, ExecutedRun, Session, Tool};
use spinrace::serve::{
    handle_session, outcome_json, read_frame, run_client, serve, write_request, CoreBudget,
    FrameKind, ServeOptions,
};
use spinrace::tracefmt::encode_trace_chunked;
use spinrace::vm::Trace;
use spinrace::workloads::{Family, WorkloadSpec};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

mod mutate;
use mutate::{base_binary, header_counts_offsets, recorded};

/// Request body naming one tool, with optional extra fields.
fn params(tool: Tool, extra: &[(&str, serde_json::Value)]) -> serde_json::Value {
    let mut entries = vec![(
        serde_json::Value::Str("tools".into()),
        serde_json::Value::Seq(vec![serde_json::Value::Str(tool.label())]),
    )];
    for (k, v) in extra {
        entries.push((serde_json::Value::Str((*k).into()), v.clone()));
    }
    serde_json::Value::Map(entries)
}

/// The offline rendering of one tool's detection over a recorded trace —
/// the exact bytes `trace replay --json` writes and the server's `O`
/// frame must reproduce.
fn offline_payload(trace: &Trace, tool: Tool) -> String {
    let prepared = mutate::recorded().0;
    let run = ExecutedRun::from_trace(prepared, trace.clone()).unwrap();
    let out = run.run(&DetectRequest::tool(tool)).into_single();
    serde_json::to_string_pretty(&outcome_json(&out)).unwrap() + "\n"
}

#[test]
fn concurrent_sessions_match_offline_detection_byte_for_byte() {
    let (_, trace) = recorded();
    let bytes = encode_trace_chunked(&trace, 16);
    let expected_lib = offline_payload(&trace, Tool::HelgrindLib);
    let expected_drd = offline_payload(&trace, Tool::Drd);

    let handle = serve("127.0.0.1:0", ServeOptions::default()).unwrap();
    let addr = handle.addr().to_string();

    // Six concurrent sessions across two tools and three modes
    // (streamed, 2-worker, 4-worker parallel) — more clients than the
    // default four slots, so the queue must multiplex.
    let cases: Vec<(Tool, u64, &str)> = vec![
        (Tool::HelgrindLib, 0, &expected_lib),
        (Tool::HelgrindLib, 2, &expected_lib),
        (Tool::HelgrindLib, 4, &expected_lib),
        (Tool::Drd, 0, &expected_drd),
        (Tool::Drd, 2, &expected_drd),
        (Tool::Drd, 4, &expected_drd),
    ];
    std::thread::scope(|s| {
        let mut workers = Vec::new();
        for (tool, client_workers, expected) in &cases {
            let (addr, bytes) = (&addr, &bytes);
            workers.push(s.spawn(move || {
                let body = params(
                    *tool,
                    &[("workers", serde_json::Value::U64(*client_workers))],
                );
                let out = run_client(addr, &body, bytes).expect("client io");
                assert!(out.succeeded(), "session failed: {:?}", out.error);
                assert_eq!(out.outcomes.len(), 1);
                let (label, payload) = &out.outcomes[0];
                assert_eq!(label, &tool.label());
                assert_eq!(
                    payload,
                    *expected,
                    "server outcome diverged from offline replay for {} at {} workers",
                    tool.label(),
                    client_workers,
                );
                // Streamed sessions must have reported incremental
                // verdicts; parallel sessions report none.
                if *client_workers == 0 {
                    assert!(out.verdicts > 0, "streamed session sent no verdicts");
                }
            }));
        }
        for w in workers {
            w.join().unwrap();
        }
    });
    handle.shutdown();
}

#[test]
fn corrupt_uploads_get_structured_error_frames() {
    let handle = serve("127.0.0.1:0", ServeOptions::default()).unwrap();
    let addr = handle.addr().to_string();
    let body = params(Tool::HelgrindLib, &[]);
    let bytes = base_binary();

    // Wrong trace magic.
    let mut wrong_magic = bytes.to_vec();
    wrong_magic[0] ^= 0xff;
    let out = run_client(&addr, &body, &wrong_magic).unwrap();
    let err = out.error.expect("wrong magic must fail the session");
    assert_eq!(err.code, "magic");
    assert!(out.outcomes.is_empty() && out.done.is_none());

    // Truncated mid-stream: the reader sees fewer chunks than the
    // header promised (or a cut inside the header itself).
    let out = run_client(&addr, &body, &bytes[..bytes.len() / 2]).unwrap();
    let err = out.error.expect("truncated upload must fail the session");
    assert!(
        matches!(err.code.as_str(), "chunk-count" | "corrupt" | "io"),
        "unexpected code {:?}",
        err.code
    );

    // A flipped byte in the last chunk's column data: checksum failure.
    let (counts_pos, _) = header_counts_offsets(bytes);
    let total_chunks = u32::from_le_bytes(bytes[counts_pos..][..4].try_into().unwrap());
    assert!(total_chunks > 1);
    let mut flipped = bytes.to_vec();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x01;
    let out = run_client(&addr, &body, &flipped).unwrap();
    let err = out.error.expect("corrupted chunk must fail the session");
    assert!(
        matches!(err.code.as_str(), "checksum" | "chunk-count"),
        "unexpected code {:?}",
        err.code
    );

    // A request frame that is not the protocol at all.
    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    // Best-effort half-close: the server may have already rejected the
    // bad magic and closed the connection.
    let _ = raw.shutdown(Shutdown::Write);
    let (kind, payload) = read_frame(&mut raw).unwrap().expect("an error frame");
    assert_eq!(kind, FrameKind::Error);
    let doc: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
    assert_eq!(doc["code"].as_str(), Some("bad-request"));

    // An unknown tool label in an otherwise well-formed request.
    let bad_tool = serde_json::json!({"tools": ["definitely-not-a-detector"]});
    let out = run_client(&addr, &bad_tool, bytes).unwrap();
    assert_eq!(out.error.expect("unknown tool").code, "bad-request");

    handle.shutdown();
}

#[test]
fn budget_exhaustion_reports_partial_metrics() {
    let (_, trace) = recorded();
    let total = trace.events.len() as u64;
    let limit = total / 2;
    let bytes = encode_trace_chunked(&trace, 16);
    let handle = serve("127.0.0.1:0", ServeOptions::default()).unwrap();
    let addr = handle.addr().to_string();

    // Both the streamed (workers 0) and parallel (workers 2) paths trip
    // the same event budget with the same exact partial count.
    for client_workers in [0u64, 2] {
        let body = params(
            Tool::HelgrindLib,
            &[
                ("workers", serde_json::Value::U64(client_workers)),
                ("max_events", serde_json::Value::U64(limit)),
            ],
        );
        let out = run_client(&addr, &body, &bytes).unwrap();
        let err = out.error.expect("budget must trip");
        assert_eq!(err.code, "budget-exhausted", "workers={client_workers}");
        let (events_processed, _contexts, _shadow) =
            err.partial.expect("budget errors carry partial metrics");
        assert_eq!(events_processed, limit, "workers={client_workers}");
        assert!(out.done.is_none());
    }

    // A server-side ceiling clamps a more generous client request.
    let capped = serve(
        "127.0.0.1:0",
        ServeOptions {
            max_events: Some(limit),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let body = params(
        Tool::HelgrindLib,
        &[("max_events", serde_json::Value::U64(total * 10))],
    );
    let out = run_client(&capped.addr().to_string(), &body, &bytes).unwrap();
    assert_eq!(out.error.expect("server ceiling").code, "budget-exhausted");
    capped.shutdown();
    handle.shutdown();
}

/// The predictive tool over the wire: a `tool=sync-preserving` upload
/// (streamed, the `workers=0` default) produces an outcome document
/// byte-identical to the offline sequential replay of the same trace,
/// and asking the server to run it on the parallel engine comes back as
/// the stable `unsupported` error code — never a silent downgrade.
#[test]
fn sync_preserving_sessions_are_byte_stable_and_refuse_parallel() {
    let (_, trace) = recorded();
    let bytes = encode_trace_chunked(&trace, 16);
    let expected = offline_payload(&trace, Tool::SyncPreserving);

    // The server must also parse the short label form off the wire.
    let body = serde_json::json!({"tools": ["sync-preserving"]});
    let handle = serve(
        "127.0.0.1:0",
        ServeOptions {
            cores: 4,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = handle.addr().to_string();
    let out = run_client(&addr, &body, &bytes).unwrap();
    assert!(out.succeeded(), "session failed: {:?}", out.error);
    assert_eq!(out.outcomes.len(), 1);
    let (label, payload) = &out.outcomes[0];
    assert_eq!(label, &Tool::SyncPreserving.label());
    assert_eq!(
        payload, &expected,
        "server outcome diverged from offline sequential replay"
    );
    assert!(out.verdicts > 0, "streamed session sent no verdicts");

    let parallel = params(
        Tool::SyncPreserving,
        &[("workers", serde_json::Value::U64(2))],
    );
    let out = run_client(&addr, &parallel, &bytes).unwrap();
    let err = out.error.expect("parallel predictive must be refused");
    assert_eq!(err.code, "unsupported");
    assert!(out.outcomes.is_empty() && out.done.is_none());
    handle.shutdown();
}

/// A session input that yields some prefix, then panics — the worst
/// failure shape a session body can produce.
struct PanicAfterPrefix {
    data: Vec<u8>,
    pos: usize,
}

impl Read for PanicAfterPrefix {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            panic!("injected read panic after {} bytes", self.pos);
        }
        let n = buf.len().min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// The core-budget regression: every failing session — structured
/// failures and panics unwinding through the session body alike — must
/// return its claimed cores, so the free pool is back at its initial
/// value once the hammering stops. (The claim is RAII now; this pins
/// the leak that a manual claim/release pair reintroduces.)
#[test]
fn failing_sessions_release_their_core_claims() {
    let cores = CoreBudget::new(8);
    assert_eq!(cores.free(), 8);

    // A well-formed request (so the session claims 4 cores) followed by
    // bytes that are not a trace: the session fails after the claim.
    let mut garbage_session: Vec<u8> = Vec::new();
    write_request(
        &mut garbage_session,
        &params(Tool::HelgrindLib, &[("workers", serde_json::Value::U64(4))]),
    )
    .unwrap();
    garbage_session.extend_from_slice(b"this is definitely not a trace stream");

    for round in 0..50 {
        let mut out = Vec::new();
        let code = handle_session(
            &garbage_session[..],
            &mut out,
            ServeOptions::default(),
            &cores,
        )
        .expect_err("a garbage upload must fail the session");
        assert_eq!(code, "magic");
        assert_eq!(
            cores.free(),
            8,
            "session failure leaked its core claim (round {round})"
        );
    }

    // A panic mid-upload unwinds through the session body; the RAII
    // guard must still release on the unwind path. The prefix ends
    // exactly at the request frame, so the first trace-stream read is
    // the panicking one (a garbage prefix would fail the magic check
    // before ever reaching the panic).
    let mut request_only: Vec<u8> = Vec::new();
    write_request(
        &mut request_only,
        &params(Tool::HelgrindLib, &[("workers", serde_json::Value::U64(4))]),
    )
    .unwrap();
    for round in 0..10 {
        let input = PanicAfterPrefix {
            data: request_only.clone(),
            pos: 0,
        };
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut out = Vec::new();
            let _ = handle_session(input, &mut out, ServeOptions::default(), &cores);
        }));
        assert!(panicked.is_err(), "the injected panic must propagate");
        assert_eq!(
            cores.free(),
            8,
            "panicking session leaked its core claim (round {round})"
        );
    }
}

/// A client that stalls past the server's read timeout fails its
/// session with the stable `timeout` wire code — whether it stalls
/// before the request frame or mid-upload — instead of pinning the
/// session slot forever or surfacing a shape-dependent decode error.
#[test]
fn stalled_uploads_fail_with_the_timeout_code() {
    let handle = serve(
        "127.0.0.1:0",
        ServeOptions {
            read_timeout_ms: Some(150),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = handle.addr().to_string();

    let expect_error_code = |reader: &mut TcpStream, expected: &str| loop {
        let (kind, payload) = read_frame(reader)
            .unwrap()
            .expect("an error frame before end-of-stream");
        match kind {
            FrameKind::Error => {
                let doc: serde_json::Value =
                    serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
                assert_eq!(doc["code"].as_str(), Some(expected), "{:?}", doc);
                return;
            }
            FrameKind::Hello | FrameKind::Verdict => continue,
            other => panic!("unexpected frame {other:?} while waiting for the error"),
        }
    };

    // Stall after the request frame: the trace-magic read times out.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = stream.try_clone().unwrap();
    write_request(&mut stream, &params(Tool::HelgrindLib, &[])).unwrap();
    expect_error_code(&mut reader, "timeout");

    // Stall before even the request frame.
    let idle = TcpStream::connect(&addr).unwrap();
    idle.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = idle.try_clone().unwrap();
    expect_error_code(&mut reader, "timeout");

    handle.shutdown();
}

#[test]
fn mid_upload_disconnect_frees_the_session_slot() {
    let (_, trace) = recorded();
    let bytes = encode_trace_chunked(&trace, 16);
    // One slot total: if the abandoned session wedged its worker, the
    // follow-up client would hang past its read timeout.
    let handle = serve(
        "127.0.0.1:0",
        ServeOptions {
            sessions: 1,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = handle.addr().to_string();

    {
        let mut dying = TcpStream::connect(&addr).unwrap();
        write_request(&mut dying, &params(Tool::HelgrindLib, &[])).unwrap();
        dying.write_all(&bytes[..bytes.len() / 2]).unwrap();
        // Dropped here without the write-side shutdown handshake: the
        // server's reader hits EOF mid-chunk and must error out, not
        // wait forever.
    }

    let out =
        run_client(&addr, &params(Tool::HelgrindLib, &[]), &bytes).expect("follow-up client io");
    assert!(
        out.succeeded(),
        "slot not freed after disconnect: {:?}",
        out.error
    );
    handle.shutdown();
}

#[test]
fn streamed_sessions_emit_verdicts_before_end_of_upload() {
    // A long seeded stream over many small chunks, so half the bytes is
    // still dozens of whole chunks.
    let spec = WorkloadSpec::new(Family::Ring)
        .threads(4)
        .addr_space(256)
        .seed(9)
        .with_total_events(40_000);
    let wl = spec.build();
    let trace = Session::for_module(&wl.module)
        .vm_config(spec.vm_config())
        .prepare(Tool::HelgrindLib)
        .unwrap()
        .execute()
        .unwrap()
        .into_trace();
    let bytes = encode_trace_chunked(&trace, 512);

    let handle = serve("127.0.0.1:0", ServeOptions::default()).unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = stream.try_clone().unwrap();

    write_request(&mut stream, &params(Tool::HelgrindLib, &[])).unwrap();
    stream.write_all(&bytes[..bytes.len() / 2]).unwrap();
    stream.flush().unwrap();

    // With only half the upload written (and our write side still
    // open), the hello and the first incremental verdict must already
    // flow back: detection is overlapped with the upload.
    let (kind, _) = read_frame(&mut reader).unwrap().expect("hello frame");
    assert_eq!(kind, FrameKind::Hello);
    let (kind, payload) = read_frame(&mut reader).unwrap().expect("verdict frame");
    assert_eq!(
        kind,
        FrameKind::Verdict,
        "first verdict must arrive before end-of-upload"
    );
    let doc: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
    assert!(doc["events"].as_u64().unwrap() > 0);

    // Finish the upload; the session must complete normally.
    stream.write_all(&bytes[bytes.len() / 2..]).unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut saw_done = false;
    while let Some((kind, _)) = read_frame(&mut reader).unwrap() {
        match kind {
            FrameKind::Done => {
                saw_done = true;
                break;
            }
            FrameKind::Error => panic!("session failed after staged upload"),
            _ => {}
        }
    }
    assert!(saw_done, "session must end with a done frame");
    handle.shutdown();
}
