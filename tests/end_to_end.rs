//! Cross-crate integration: facade-level pipeline behaviour.

use spinrace::core::{Analyzer, Tool};
use spinrace::detector::RaceKind;
use spinrace::tir::{MemOrder, ModuleBuilder};

/// The paper's motivating example, end to end through the facade.
#[test]
fn motivating_example_through_facade() {
    let mut mb = ModuleBuilder::new("motivating");
    let flag = mb.global("FLAG", 1);
    let data = mb.global("DATA", 1);
    let t2 = mb.function("thread2", 1, |f| {
        let head = f.new_block();
        let done = f.new_block();
        f.jump(head);
        f.switch_to(head);
        let v = f.load(flag.at(0));
        f.branch(v, done, head);
        f.switch_to(done);
        let d = f.load(data.at(0));
        let d2 = f.sub(d, 1);
        f.store(data.at(0), d2);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t = f.spawn(t2, 0);
        let d = f.load(data.at(0));
        let d2 = f.add(d, 1);
        f.store(data.at(0), d2);
        f.store(flag.at(0), 1);
        f.join(t);
        f.ret(None);
    });
    let m = mb.finish().unwrap();

    let lib = Analyzer::tool(Tool::HelgrindLib).analyze(&m).unwrap();
    assert!(lib.has_race_on("FLAG"), "synchronization race");
    assert!(lib.has_race_on("DATA"), "apparent race");

    let spin = Analyzer::tool(Tool::HelgrindLibSpin { window: 7 })
        .analyze(&m)
        .unwrap();
    assert!(spin.is_clean());
    assert_eq!(spin.spin_loops_found, 1);

    let nolib = Analyzer::tool(Tool::HelgrindNolibSpin { window: 7 })
        .analyze(&m)
        .unwrap();
    assert!(nolib.is_clean());
}

/// Program output is identical across every tool's preparation pipeline
/// (lowering must preserve semantics).
#[test]
fn outputs_agree_across_tools() {
    let mut mb = ModuleBuilder::new("sum");
    let mu = mb.global("mu", 1);
    let acc = mb.global("acc", 1);
    let w = mb.function("w", 1, |f| {
        f.lock(mu.at(0));
        let v = f.load(acc.at(0));
        let v2 = f.add(v, f.param(0));
        f.store(acc.at(0), v2);
        f.unlock(mu.at(0));
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t1 = f.spawn(w, 5);
        let t2 = f.spawn(w, 7);
        let t3 = f.spawn(w, 11);
        f.join(t1);
        f.join(t2);
        f.join(t3);
        let v = f.load(acc.at(0));
        f.output(v);
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    let mut outputs = Vec::new();
    for tool in Tool::paper_lineup() {
        let out = Analyzer::tool(tool).analyze(&m).unwrap();
        outputs.push(
            out.summary
                .outputs
                .iter()
                .map(|(_, v)| *v)
                .collect::<Vec<_>>(),
        );
    }
    for o in &outputs {
        assert_eq!(o, &vec![23], "all pipelines compute the same result");
    }
}

/// The lockset stage catches a race that every pure-HB view misses.
#[test]
fn lockset_violation_end_to_end() {
    let mut mb = ModuleBuilder::new("wrong-locks");
    let m1 = mb.global("m1", 1);
    let m2 = mb.global("m2", 1);
    let m3 = mb.global("m3", 1);
    let victim = mb.global("victim", 1);
    // T1 writes under m1, then syncs with main through m3; main hands the
    // "baton" to T2 through m3; T2 writes under m2. HB-ordered, but no
    // common lock protects `victim`.
    let t1 = mb.function("t1", 1, |f| {
        f.lock(m1.at(0));
        f.store(victim.at(0), 1);
        f.unlock(m1.at(0));
        f.lock(m3.at(0));
        f.unlock(m3.at(0));
        f.ret(None);
    });
    let t2 = mb.function("t2", 1, |f| {
        for _ in 0..12 {
            f.yield_();
        }
        f.lock(m3.at(0));
        f.unlock(m3.at(0));
        f.lock(m2.at(0));
        f.store(victim.at(0), 2);
        f.unlock(m2.at(0));
        f.ret(None);
    });
    mb.entry("main", |f| {
        let a = f.spawn(t1, 0);
        let b = f.spawn(t2, 0);
        f.join(a);
        f.join(b);
        f.ret(None);
    });
    let m = mb.finish().unwrap();

    let hybrid = Analyzer::tool(Tool::HelgrindLib).analyze(&m).unwrap();
    // Either the schedule exposes the HB race directly, or the lockset
    // stage flags the discipline violation — the hybrid must not be silent.
    assert!(hybrid.has_race_on("victim"), "{:?}", hybrid.reports);
    let has_lockset_kind = hybrid
        .reports
        .iter()
        .any(|r| r.report.kind == RaceKind::LocksetViolation);
    let drd = Analyzer::tool(Tool::Drd).analyze(&m).unwrap();
    if has_lockset_kind {
        assert!(
            !drd.has_race_on("victim"),
            "DRD misses what the lockset stage catches"
        );
    }
}

/// Atomics-based ad-hoc sync: DRD clean, lib floods, spin configs clean.
#[test]
fn atomic_adhoc_tool_matrix() {
    let mut mb = ModuleBuilder::new("atomic-adhoc");
    let flag = mb.global("flag", 1);
    let data = mb.global("data", 1);
    let waiter = mb.function("waiter", 1, |f| {
        let head = f.new_block();
        let done = f.new_block();
        f.jump(head);
        f.switch_to(head);
        let v = f.load_atomic(flag.at(0), MemOrder::Acquire);
        f.branch(v, done, head);
        f.switch_to(done);
        let d = f.load(data.at(0));
        f.output(d);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t = f.spawn(waiter, 0);
        f.store(data.at(0), 9);
        f.store_atomic(flag.at(0), 1, MemOrder::Release);
        f.join(t);
        f.ret(None);
    });
    let m = mb.finish().unwrap();

    assert!(!Analyzer::tool(Tool::HelgrindLib)
        .analyze(&m)
        .unwrap()
        .is_clean());
    assert!(Analyzer::tool(Tool::HelgrindLibSpin { window: 7 })
        .analyze(&m)
        .unwrap()
        .is_clean());
    assert!(Analyzer::tool(Tool::Drd).analyze(&m).unwrap().is_clean());
}

/// Seeds explore different interleavings but never produce spurious
/// reports on a fully locked program.
#[test]
fn no_false_positives_across_seeds_on_locked_program() {
    let mut mb = ModuleBuilder::new("locked");
    let mu = mb.global("mu", 1);
    let g = mb.global("g", 1);
    let w = mb.function("w", 1, |f| {
        for _ in 0..3 {
            f.lock(mu.at(0));
            let v = f.load(g.at(0));
            let v2 = f.add(v, 1);
            f.store(g.at(0), v2);
            f.unlock(mu.at(0));
        }
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t1 = f.spawn(w, 0);
        let t2 = f.spawn(w, 1);
        let t3 = f.spawn(w, 2);
        f.join(t1);
        f.join(t2);
        f.join(t3);
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    for seed in 0..15 {
        for tool in Tool::paper_lineup() {
            let out = Analyzer::tool(tool).seed(seed).analyze(&m).unwrap();
            assert!(
                out.is_clean(),
                "{} seed {} reported {:?}",
                tool.label(),
                seed,
                out.reports
            );
        }
    }
}
