//! The ground-truth oracle suite: generated workloads where the true race
//! set is known by construction, checked against **every** tool in the
//! paper lineup plus the predictive `SyncPreserving` pass, for **every**
//! detection path — live (detector attached to the VM run), sequential
//! trace replay, streamed chunked replay, and (for the HB tools)
//! parallel sharded replay at 1/2/4/8 workers under the occupancy-
//! balanced scheduler plus a static-ownership cross-check.
//!
//! This turns the tool lineup from "matches recorded numbers" into
//! "sound and complete on known ground truth": race-free families must
//! yield zero reports (no false positives anywhere in the pipeline), and
//! seeded families must yield exactly the injected race set, by victim
//! variable and thread pair (no misses, no extras). The reorder-only
//! families split the lineup by class: every HB tool owes **0** (the
//! recorded interleaving orders the pair) while the predictive tool owes
//! exactly the injected set. The predictive tool is a single sequential
//! pass — asking the parallel engine for it must be a structured
//! `EngineError::Unsupported`, never a silent sequential fallback.

use proptest::prelude::*;
use spinrace::core::{AnalysisOutcome, DetectRequest, EngineError, Schedule, Session, Tool};
use spinrace::suites::judge_outcome;
use spinrace::tracefmt::{encode_trace_chunked, ChunkedTraceReader, DEFAULT_CHUNK_EVENTS};
use spinrace::workloads::{Family, Workload, WorkloadSpec};

/// Judge one outcome against the ground truth the producing tool's
/// class owes, panicking with a readable description on any mismatch.
fn assert_oracle(wl: &Workload, out: &AnalysisOutcome, path: &str) -> Result<(), TestCaseError> {
    let verdict = judge_outcome(&wl.oracle, out);
    prop_assert!(
        verdict.pass(),
        "{} under {} [{path}]: {verdict}",
        wl.module.name,
        out.tool_label
    );
    let predictive = out
        .tool_label
        .parse::<Tool>()
        .map(|t| t.is_predictive())
        .unwrap_or(false);
    prop_assert_eq!(
        out.contexts,
        wl.oracle.expected_for(predictive).len(),
        "{} under {} [{path}]: context count",
        &wl.module.name,
        &out.tool_label
    );
    Ok(())
}

/// The full check for one spec: for every HB tool, run the VM once with
/// the live detector and a trace recorder teed, then fan detection out
/// over the recorded trace sequentially and at every worker width; for
/// the predictive tool, cover live, sequential and streamed replay and
/// pin the parallel refusal.
fn check_spec(spec: WorkloadSpec) -> Result<(), TestCaseError> {
    let wl = spec.build();
    let session = Session::for_module(&wl.module).vm_config(spec.vm_config());
    for tool in Tool::paper_lineup() {
        let prepared = session.prepare(tool).unwrap();
        let (run, live) = prepared.execute_detecting().unwrap();
        assert_oracle(&wl, &live, "live")?;
        let sequential = run.run(&DetectRequest::own()).into_single();
        assert_oracle(&wl, &sequential, "sequential replay")?;
        for workers in [1usize, 2, 4, 8] {
            // The default path is the occupancy-balanced scheduler …
            let par = run
                .run(&DetectRequest::own().parallel(workers))
                .into_single();
            assert_oracle(&wl, &par, &format!("parallel x{workers}"))?;
            // Parallel replay must agree with sequential bit-for-bit,
            // not merely satisfy the oracle.
            prop_assert_eq!(&par.metrics, &sequential.metrics);
            prop_assert_eq!(par.reports.len(), sequential.reports.len());
        }
        // … and static modular ownership must land on the same bytes.
        let stat = run
            .run(&DetectRequest::own().parallel(4).scheduled(Schedule::Static))
            .into_single();
        assert_oracle(&wl, &stat, "parallel x4 static")?;
        prop_assert_eq!(&stat.metrics, &sequential.metrics);
    }
    check_predictive(&wl, &session)
}

/// The predictive leg of [`check_spec`]: live, sequential replay, and
/// streamed chunked replay must agree with each other and with the
/// oracle; the parallel engine must refuse with
/// [`EngineError::Unsupported`] at any genuine worker count.
fn check_predictive(wl: &Workload, session: &Session) -> Result<(), TestCaseError> {
    let tool = Tool::SyncPreserving;
    let prepared = session.prepare(tool).unwrap();
    let (run, live) = prepared.execute_detecting().unwrap();
    assert_oracle(wl, &live, "live")?;
    let sequential = run.run(&DetectRequest::own()).into_single();
    assert_oracle(wl, &sequential, "sequential replay")?;
    prop_assert_eq!(&live.metrics, &sequential.metrics);

    // Streamed chunked replay: encode the recorded trace, decode it
    // chunk-by-chunk into a fresh detector. Same outcome bytes.
    let bytes = encode_trace_chunked(run.trace(), DEFAULT_CHUNK_EVENTS);
    let reader = ChunkedTraceReader::new(std::io::Cursor::new(bytes)).unwrap();
    let prepared = session.prepare(tool).unwrap();
    let (streamed, _) = prepared
        .try_run_streamed(&DetectRequest::own().streamed(), reader)
        .unwrap();
    let streamed = streamed.into_single();
    assert_oracle(wl, &streamed, "streamed replay")?;
    prop_assert_eq!(&streamed.metrics, &sequential.metrics);
    prop_assert_eq!(streamed.reports.len(), sequential.reports.len());

    // A parallel request for the sequential-only predictive pass is a
    // structured refusal, not a silent downgrade. (`workers <= 1` is
    // the engine's sequential fast path and stays allowed.)
    for workers in [2usize, 8] {
        let err = run
            .try_run(&DetectRequest::own().parallel(workers))
            .expect_err("parallel predictive detection must be refused");
        prop_assert!(
            matches!(err, EngineError::Unsupported { .. }),
            "expected Unsupported at {workers} workers, got {err}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Race-free variants of every family: zero reports under every tool
    /// on every path, across random thread counts, event budgets,
    /// address-space sizes, skews and seeds.
    #[test]
    fn race_free_families_report_nothing(
        fam_ix in 0usize..7,
        threads in 2u32..6,
        events in 16u32..120,
        addr_space in 8u32..600,
        skew in 0u32..4,
        seed in 0u64..10_000,
    ) {
        let fam = Family::all()[fam_ix];
        let spec = WorkloadSpec::new(fam)
            .threads(threads)
            .events_per_thread(events)
            .addr_space(addr_space)
            .skew(skew)
            .seed(seed);
        check_spec(spec)?;
    }

    /// Seeded variants: exactly the injected race set — by victim
    /// variable and thread pair — under every tool on every path. For
    /// the reorder-only families this is the class split: HB tools owe
    /// zero, the predictive tool owes the set.
    #[test]
    fn seeded_families_report_exactly_the_injected_races(
        fam_ix in 0usize..7,
        threads in 2u32..6,
        events in 16u32..120,
        addr_space in 8u32..600,
        skew in 0u32..4,
        races in 1u32..4,
        seed in 0u64..10_000,
    ) {
        let fam = Family::all()[fam_ix];
        let spec = WorkloadSpec::new(fam)
            .threads(threads)
            .events_per_thread(events)
            .addr_space(addr_space)
            .skew(skew)
            .races(races)
            .seed(seed);
        check_spec(spec)?;
    }
}

/// One deterministic pinned case per family (race-free and seeded), so a
/// regression names the family directly instead of a proptest seed.
#[test]
fn every_family_passes_its_oracle_pinned() {
    for fam in Family::all() {
        check_spec(WorkloadSpec::new(fam)).unwrap();
        check_spec(WorkloadSpec::new(fam).races(2).seed(3)).unwrap();
    }
}

/// The headline predictive claim, pinned per reorder-only family: on a
/// trace where every injected racy pair is ordered by a happens-before
/// path through an *unrelated* critical section, all four HB tools
/// report 0 while `SyncPreserving` reports exactly the injected set —
/// the races that exist only in sync-preserving reorderings of the
/// recorded interleaving.
#[test]
fn reorder_only_families_split_the_lineup_by_class() {
    for fam in [Family::Straddle, Family::Publish] {
        for races in [1u32, 2, 3] {
            let spec = WorkloadSpec::new(fam).races(races).seed(41 + races as u64);
            let wl = spec.build();
            assert_eq!(
                wl.oracle.expected().len(),
                races as usize,
                "{fam:?} must inject all {races} requested races"
            );
            assert!(wl.oracle.expected_for(false).is_empty());
            check_spec(spec).unwrap();
        }
    }
}

/// The structural soundness guarantee, tested differentially: on the
/// *same* recorded stream, `SyncPreserving` only ever drops
/// happens-before edges, so every race an HB tool reports must also be
/// reported by the predictive pass — as a context on the same location
/// between the same thread pair. Checked on the seeded variant of every
/// family, across sequential and streamed replay of the shared
/// unmodified-module trace.
#[test]
fn predictive_reports_are_a_superset_of_hb_reports() {
    for fam in Family::all() {
        let spec = WorkloadSpec::new(fam).races(2).seed(17);
        let wl = spec.build();
        let session = Session::for_module(&wl.module).vm_config(spec.vm_config());
        // Drd shares the unmodified module with SyncPreserving, so one
        // execution yields the identical event stream for both tools.
        let prepared = session.prepare(Tool::Drd).unwrap();
        let (run, _) = prepared.execute_detecting().unwrap();

        let context_set = |out: &AnalysisOutcome| -> std::collections::BTreeSet<_> {
            out.reports
                .iter()
                .map(|r| {
                    (
                        r.location.clone(),
                        r.report.prior.tid.min(r.report.current.tid),
                        r.report.prior.tid.max(r.report.current.tid),
                    )
                })
                .collect()
        };
        let hb = context_set(&run.run(&DetectRequest::tool(Tool::Drd)).into_single());
        let sp_sequential = run
            .run(&DetectRequest::tool(Tool::SyncPreserving))
            .into_single();
        let sp = context_set(&sp_sequential);
        assert!(
            hb.is_subset(&sp),
            "{fam:?}: HB races {:?} not all predicted; SP reported {:?}",
            hb,
            sp
        );

        // The streamed predictive pass lands on the same bytes as the
        // sequential one — the superset holds on every replay mode.
        let bytes = encode_trace_chunked(run.trace(), DEFAULT_CHUNK_EVENTS);
        let reader = ChunkedTraceReader::new(std::io::Cursor::new(bytes)).unwrap();
        let prepared = session.prepare(Tool::SyncPreserving).unwrap();
        let (streamed, _) = prepared
            .try_run_streamed(
                &DetectRequest::tool(Tool::SyncPreserving).streamed(),
                reader,
            )
            .unwrap();
        let streamed = streamed.into_single();
        assert_eq!(context_set(&streamed), sp);
        assert_eq!(streamed.metrics, sp_sequential.metrics);
    }
}

/// Wide fan-out at genuinely wide thread counts (the `ReadState` read
/// vectors and vector clocks reach the full width).
#[test]
fn wide_fanout_oracles_hold_at_32_and_48_threads() {
    for threads in [32u32, 48] {
        check_spec(
            WorkloadSpec::new(Family::Fanout)
                .threads(threads)
                .events_per_thread(24),
        )
        .unwrap();
        check_spec(
            WorkloadSpec::new(Family::Fanout)
                .threads(threads)
                .events_per_thread(24)
                .races(3)
                .seed(threads as u64),
        )
        .unwrap();
    }
}
