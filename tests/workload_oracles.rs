//! The ground-truth oracle suite: generated workloads where the true race
//! set is known by construction, checked against **every** tool in the
//! paper lineup, for **every** detection path — live (detector attached
//! to the VM run), sequential trace replay, and parallel sharded replay
//! at 1/2/4/8 workers under the occupancy-balanced scheduler plus a
//! static-ownership cross-check.
//!
//! This turns the tool lineup from "matches recorded numbers" into
//! "sound and complete on known ground truth": race-free families must
//! yield zero reports (no false positives anywhere in the pipeline), and
//! seeded families must yield exactly the injected race set, by victim
//! variable and thread pair (no misses, no extras).

use proptest::prelude::*;
use spinrace::core::{AnalysisOutcome, DetectRequest, Schedule, Session, Tool};
use spinrace::suites::judge_outcome;
use spinrace::workloads::{Family, Workload, WorkloadSpec};

/// Judge one outcome against the workload's oracle, panicking with a
/// readable description on any mismatch.
fn assert_oracle(wl: &Workload, out: &AnalysisOutcome, path: &str) -> Result<(), TestCaseError> {
    let verdict = judge_outcome(&wl.oracle, out);
    prop_assert!(
        verdict.pass(),
        "{} under {} [{path}]: {verdict}",
        wl.module.name,
        out.tool_label
    );
    prop_assert_eq!(
        out.contexts,
        wl.oracle.expected().len(),
        "{} under {} [{path}]: context count",
        &wl.module.name,
        &out.tool_label
    );
    Ok(())
}

/// The full check for one spec: for every tool, run the VM once with the
/// live detector and a trace recorder teed, then fan detection out over
/// the recorded trace sequentially and at every worker width.
fn check_spec(spec: WorkloadSpec) -> Result<(), TestCaseError> {
    let wl = spec.build();
    let session = Session::for_module(&wl.module).vm_config(spec.vm_config());
    for tool in Tool::paper_lineup() {
        let prepared = session.prepare(tool).unwrap();
        let (run, live) = prepared.execute_detecting().unwrap();
        assert_oracle(&wl, &live, "live")?;
        let sequential = run.run(&DetectRequest::own()).into_single();
        assert_oracle(&wl, &sequential, "sequential replay")?;
        for workers in [1usize, 2, 4, 8] {
            // The default path is the occupancy-balanced scheduler …
            let par = run
                .run(&DetectRequest::own().parallel(workers))
                .into_single();
            assert_oracle(&wl, &par, &format!("parallel x{workers}"))?;
            // Parallel replay must agree with sequential bit-for-bit,
            // not merely satisfy the oracle.
            prop_assert_eq!(&par.metrics, &sequential.metrics);
            prop_assert_eq!(par.reports.len(), sequential.reports.len());
        }
        // … and static modular ownership must land on the same bytes.
        let stat = run
            .run(&DetectRequest::own().parallel(4).scheduled(Schedule::Static))
            .into_single();
        assert_oracle(&wl, &stat, "parallel x4 static")?;
        prop_assert_eq!(&stat.metrics, &sequential.metrics);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Race-free variants of every family: zero reports under every tool
    /// on every path, across random thread counts, event budgets,
    /// address-space sizes, skews and seeds.
    #[test]
    fn race_free_families_report_nothing(
        fam_ix in 0usize..5,
        threads in 2u32..6,
        events in 16u32..120,
        addr_space in 8u32..600,
        skew in 0u32..4,
        seed in 0u64..10_000,
    ) {
        let fam = Family::all()[fam_ix];
        let spec = WorkloadSpec::new(fam)
            .threads(threads)
            .events_per_thread(events)
            .addr_space(addr_space)
            .skew(skew)
            .seed(seed);
        check_spec(spec)?;
    }

    /// Seeded variants: exactly the injected race set — by victim
    /// variable and thread pair — under every tool on every path.
    #[test]
    fn seeded_families_report_exactly_the_injected_races(
        fam_ix in 0usize..5,
        threads in 2u32..6,
        events in 16u32..120,
        addr_space in 8u32..600,
        skew in 0u32..4,
        races in 1u32..4,
        seed in 0u64..10_000,
    ) {
        let fam = Family::all()[fam_ix];
        let spec = WorkloadSpec::new(fam)
            .threads(threads)
            .events_per_thread(events)
            .addr_space(addr_space)
            .skew(skew)
            .races(races)
            .seed(seed);
        check_spec(spec)?;
    }
}

/// One deterministic pinned case per family (race-free and seeded), so a
/// regression names the family directly instead of a proptest seed.
#[test]
fn every_family_passes_its_oracle_pinned() {
    for fam in Family::all() {
        check_spec(WorkloadSpec::new(fam)).unwrap();
        check_spec(WorkloadSpec::new(fam).races(2).seed(3)).unwrap();
    }
}

/// Wide fan-out at genuinely wide thread counts (the `ReadState` read
/// vectors and vector clocks reach the full width).
#[test]
fn wide_fanout_oracles_hold_at_32_and_48_threads() {
    for threads in [32u32, 48] {
        check_spec(
            WorkloadSpec::new(Family::Fanout)
                .threads(threads)
                .events_per_thread(24),
        )
        .unwrap();
        check_spec(
            WorkloadSpec::new(Family::Fanout)
                .threads(threads)
                .events_per_thread(24)
                .races(3)
                .seed(threads as u64),
        )
        .unwrap();
    }
}
