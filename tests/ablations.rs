//! Ablations for the design choices DESIGN.md calls out: the short/long
//! memory state machine, the interprocedural condition extension, and
//! the report cap.
//!
//! Detector-side ablations (MSM flavour, report cap) are pure replay
//! fan-out since the session redesign: each program executes **once** and
//! every ablated configuration detects on the recorded trace.

use spinrace::core::{Analyzer, DetectRequest, Session, Tool};
use spinrace::detector::{DetectorConfig, MsmMode};
use spinrace::spinfind::{SpinCriteria, SpinFinder};
use spinrace::suites::all_programs;
use spinrace::tir::{ModuleBuilder, Operand};

/// Long MSM trades first-iteration sensitivity for fewer false positives
/// (Helgrind+'s short-vs-long distinction): on a one-shot unordered
/// access pattern the short machine reports and the long machine stays
/// silent; on a repeated pattern both report.
#[test]
fn msm_short_vs_long_sensitivity() {
    // One-shot handoff with a *benign* (ordered-by-luck, unprotected)
    // access pattern the detectors see as unordered exactly once.
    let build = |repeats: i64| {
        let mut mb = ModuleBuilder::new("msm-abl");
        let g = mb.global("g", 1);
        let w = mb.function("w", 1, |f| {
            for _ in 0..repeats {
                let v = f.load(g.at(0));
                let v2 = f.add(v, 1);
                f.store(g.at(0), v2);
            }
            f.ret(None);
        });
        mb.entry("main", |f| {
            let a = f.spawn(w, 0);
            let b = f.spawn(w, 1);
            f.join(a);
            f.join(b);
            f.ret(None);
        });
        mb.finish().unwrap()
    };

    let one_shot = build(1);
    let repeated = build(3);

    // The MSM flavour is a detector knob, not an execution knob: record
    // each program once and fan both MSM configurations out on the trace.
    let msm_configs = [
        DetectorConfig::helgrind_lib(MsmMode::Short),
        DetectorConfig::helgrind_lib(MsmMode::Long),
    ];
    let run = Session::for_module(&one_shot)
        .prepare(Tool::HelgrindLib)
        .unwrap()
        .execute()
        .unwrap();
    let outs = run.run(&DetectRequest::configs(&msm_configs)).into_vec();
    let (short, long) = (&outs[0], &outs[1]);
    assert!(
        !short.is_clean(),
        "short MSM reports the first unordered pair"
    );
    assert!(
        long.contexts <= short.contexts,
        "long MSM is never more sensitive"
    );

    let run = Session::for_module(&repeated)
        .prepare(Tool::HelgrindLib)
        .unwrap()
        .execute()
        .unwrap();
    let outs = run.run(&DetectRequest::configs(&msm_configs)).into_vec();
    assert!(
        !outs[1].is_clean(),
        "long MSM catches it on the second iteration"
    );
}

/// Disabling the interprocedural condition extension loses the loops
/// whose conditions evaluate through helper functions — the mechanism
/// behind the paper's "templates and complex function calls" note.
#[test]
fn interprocedural_extension_ablation() {
    let mut mb = ModuleBuilder::new("interproc-abl");
    let flag = mb.global("flag", 1);
    let check = mb.function("check", 0, |f| {
        let v = f.load(flag.at(0));
        f.ret(Some(Operand::Reg(v)));
    });
    mb.entry("main", |f| {
        let head = f.new_block();
        let done = f.new_block();
        f.jump(head);
        f.switch_to(head);
        let v = f.call(check, &[]);
        f.branch(v, done, head);
        f.switch_to(done);
        f.ret(None);
    });
    let m = mb.finish().unwrap();

    let with = SpinFinder::new(SpinCriteria {
        interprocedural: true,
        ..Default::default()
    })
    .analyze(&m);
    let without = SpinFinder::new(SpinCriteria {
        interprocedural: false,
        ..Default::default()
    })
    .analyze(&m);
    assert_eq!(with.accepted(), 1);
    assert_eq!(without.accepted(), 0);
}

/// The report cap changes *counts*, never verdict direction: raising it
/// can only reveal more contexts.
#[test]
fn report_cap_is_monotone() {
    let p = all_programs()
        .into_iter()
        .find(|p| p.name == "vips")
        .unwrap();
    let m = (p.build)(p.threads, p.size);
    // One execution; the cap sweep is pure detector fan-out on the trace.
    let run = Session::for_module(&m)
        .long_msm()
        .prepare(Tool::HelgrindLib)
        .unwrap()
        .execute()
        .unwrap();
    let caps = [5usize, 25, 100, 1000];
    let configs: Vec<DetectorConfig> = caps
        .iter()
        .map(|&cap| DetectorConfig::helgrind_lib(MsmMode::Long).with_cap(cap))
        .collect();
    let mut prev = 0;
    let outs = run.run(&DetectRequest::configs(&configs));
    for (out, &cap) in outs.iter().zip(&caps) {
        assert!(out.contexts <= cap);
        assert!(out.contexts >= prev.min(cap));
        prev = out.contexts;
    }
}

/// The obscure-library flavour is what creates the PARSEC `nolib`
/// regressions: with the textbook library instead, the obscure programs'
/// nolib runs match their lib+spin runs much more closely.
#[test]
fn obscure_library_drives_nolib_regressions() {
    let p = all_programs()
        .into_iter()
        .find(|p| p.name == "bodytrack")
        .unwrap();
    let m = (p.build)(p.threads, p.size);
    let spin = Analyzer::tool(Tool::HelgrindLibSpin { window: 7 })
        .long_msm()
        .seed(1)
        .analyze(&m)
        .unwrap()
        .contexts;
    let nolib_textbook = Analyzer::tool(Tool::HelgrindNolibSpin { window: 7 })
        .long_msm()
        .seed(1)
        .analyze(&m)
        .unwrap()
        .contexts;
    let nolib_obscure = Analyzer::tool(Tool::HelgrindNolibSpin { window: 7 })
        .long_msm()
        .seed(1)
        .obscure_nolib()
        .analyze(&m)
        .unwrap()
        .contexts;
    assert!(
        nolib_obscure > nolib_textbook,
        "obscure internals add contexts: {nolib_obscure} vs {nolib_textbook}"
    );
    assert!(
        nolib_textbook <= spin + 4,
        "textbook nolib stays close to lib+spin ({nolib_textbook} vs {spin})"
    );
}
