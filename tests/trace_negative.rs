//! Negative-path coverage for the trace decode pipeline: every way a
//! trace file can be wrong must surface as the *right* typed error —
//! never a panic, and never a misleading downstream parse failure.

use spinrace::core::{AnalyzeError, ExecutedRun, Session, Tool};
use spinrace::vm::trace::{TraceError, TRACE_FORMAT_VERSION};
use spinrace::vm::Trace;
use spinrace::workloads::{Family, WorkloadSpec};

mod mutate;
use mutate::{base_binary, base_json, decode_rejects, header_counts_offsets, recorded};

#[test]
fn garbage_and_truncated_documents_are_json_errors() {
    for text in [
        "",
        "{not json",
        "[]",
        "42",
        "\"a trace, honest\"",
        "{\"header\": 7}",
        "{}",
    ] {
        match Trace::from_json(text) {
            Err(TraceError::Json(_)) => {}
            other => panic!("{text:?}: expected a Json error, got {other:?}"),
        }
    }
    // A structurally valid document cut off mid-stream.
    let (_, trace) = recorded();
    let json = trace.to_json();
    let cut = &json[..json.len() / 2];
    assert!(matches!(Trace::from_json(cut), Err(TraceError::Json(_))));
}

#[test]
fn corrupt_header_fields_are_json_errors_not_panics() {
    let (_, trace) = recorded();
    let json = trace.to_json();
    // Header field holding the wrong type.
    let bad = json.replacen(
        &format!("\"module_name\":\"{}\"", trace.header.module_name),
        "\"module_name\":[1,2]",
        1,
    );
    assert_ne!(bad, json, "the replacement must have applied");
    assert!(matches!(Trace::from_json(&bad), Err(TraceError::Json(_))));
    // Header entirely replaced by a scalar.
    let gutted = r#"{"header":null,"summary":{},"events":[]}"#;
    assert!(matches!(Trace::from_json(gutted), Err(TraceError::Json(_))));
}

#[test]
fn version_mismatch_is_reported_before_event_decoding() {
    let (_, trace) = recorded();
    // A future version whose *events* would also fail to decode: the
    // version check must win, so the user sees "version 99" instead of a
    // confusing event parse error.
    let mut doc = trace.to_json();
    doc = doc.replacen(
        &format!("\"version\":{TRACE_FORMAT_VERSION}"),
        "\"version\":99",
        1,
    );
    doc = doc.replacen("\"events\":[", "\"events\":[{\"FutureEvent\":{}},", 1);
    match Trace::from_json(&doc) {
        Err(TraceError::Version {
            found: 99,
            supported,
        }) => {
            assert_eq!(supported, TRACE_FORMAT_VERSION);
        }
        other => panic!("expected a version error, got {other:?}"),
    }
}

#[test]
fn event_count_mismatch_is_detected_in_both_directions() {
    let (_, trace) = recorded();
    let n = trace.events.len() as u64;

    // Header claims more events than the stream holds (truncation).
    let mut over = trace.clone();
    over.header.events += 3;
    match Trace::from_json(&over.to_json()) {
        Err(TraceError::EventCount { header, actual }) => {
            assert_eq!((header, actual), (n + 3, n));
        }
        other => panic!("expected an event-count error, got {other:?}"),
    }

    // Header claims fewer (a stream that grew past its header).
    let mut under = trace.clone();
    under.header.events -= 1;
    assert!(matches!(
        Trace::from_json(&under.to_json()),
        Err(TraceError::EventCount { .. })
    ));
}

#[test]
fn fingerprint_mismatch_rejects_rebinding_with_both_prints() {
    let (prepared, trace) = recorded();
    let fp = prepared.fingerprint();
    assert_eq!(trace.header.module_fingerprint, fp);

    // The same family one seed over: same shape, different module.
    let other_spec = WorkloadSpec::new(Family::Ring)
        .events_per_thread(12)
        .seed(2);
    let other = Session::for_module(&other_spec.build().module)
        .vm_config(other_spec.vm_config())
        .prepare(Tool::HelgrindLib)
        .unwrap();
    assert_ne!(other.fingerprint(), fp);

    match ExecutedRun::from_trace(other, trace.clone()) {
        Err(AnalyzeError::TraceMismatch {
            trace_fingerprint,
            module_fingerprint,
        }) => {
            assert_eq!(trace_fingerprint, fp);
            assert_ne!(module_fingerprint, fp);
        }
        other => panic!("expected a TraceMismatch, got {other:?}"),
    }

    // The matching preparation still binds.
    assert!(ExecutedRun::from_trace(prepared, trace).is_ok());
}

#[test]
fn errors_render_actionable_messages() {
    let (_, trace) = recorded();
    let mut v = trace.clone();
    v.header.version = 2;
    let msg = Trace::from_json(&v.to_json()).unwrap_err().to_string();
    assert!(msg.contains("version 2"), "{msg}");
    let mut c = trace;
    c.header.events += 1;
    let msg = Trace::from_json(&c.to_json()).unwrap_err().to_string();
    assert!(msg.contains("truncated"), "{msg}");
}

// ---- randomized byte mutations of the serialized artifact ----

use proptest::prelude::*;
use std::panic::catch_unwind;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The document is a single JSON object, so every strict prefix is
    /// malformed — and must come back as a typed error, never a panic.
    #[test]
    fn truncation_is_always_rejected_without_panicking(pos in 0usize..1 << 16) {
        let json = base_json();
        let cut = pos % json.len();
        let rejected = catch_unwind(move || decode_rejects(&json[..cut]))
            .expect("truncated trace decode panicked");
        prop_assert!(rejected, "truncation at byte {cut} decoded successfully");
    }

    /// Splicing a random run of bytes out of the document must never
    /// panic the load path. (It nearly always breaks parsing; the rare
    /// splice that leaves valid JSON — digits removed from inside a
    /// number, say — may legitimately decode, which is fine.)
    #[test]
    fn byte_splices_never_panic(pos in 0usize..1 << 16, len in 1usize..64) {
        let json = base_json();
        let pos = pos % json.len();
        let len = len.min(json.len() - pos);
        let mut bytes = json.to_vec();
        bytes.drain(pos..pos + len);
        let outcome = catch_unwind(move || {
            decode_rejects(&bytes);
        });
        prop_assert!(outcome.is_ok(), "spliced trace decode panicked");
    }

    /// Flipping any byte to any other value must never panic the load
    /// path — whether the flip lands in structure (parse error), a
    /// string (usually fine), or breaks UTF-8 (rejected before parsing).
    #[test]
    fn byte_flips_never_panic(pos in 0usize..1 << 16, flip in 1u8..=255) {
        let json = base_json();
        let pos = pos % json.len();
        let mut bytes = json.to_vec();
        bytes[pos] ^= flip;
        let outcome = catch_unwind(move || {
            decode_rejects(&bytes);
        });
        prop_assert!(outcome.is_ok(), "byte-flipped trace decode panicked");
    }
}

// ---- binary (columnar) format negative paths ----

use spinrace::tracefmt::{
    decode_trace, encode_trace_chunked, fnv1a, load_trace_bytes, BINARY_FORMAT_VERSION, MAGIC,
};

#[test]
fn bad_magic_is_a_magic_error() {
    // A corrupted magic byte, and inputs that are neither encoding.
    let mut bytes = base_binary().to_vec();
    bytes[0] ^= 0xff;
    assert!(matches!(decode_trace(&bytes), Err(TraceError::Magic)));
    for garbage in [&b""[..], b"SPINRTRX", b"\x00\x01\x02\x03"] {
        assert!(matches!(load_trace_bytes(garbage), Err(TraceError::Magic)));
    }
}

#[test]
fn binary_version_bump_is_a_version_error_before_checksum() {
    // A future binary version must be reported as such even though the
    // patched bytes also break the header checksum: version is checked
    // first, so the user sees "version 99", not "checksum mismatch".
    let mut bytes = base_binary().to_vec();
    bytes[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&99u32.to_le_bytes());
    match decode_trace(&bytes) {
        Err(TraceError::Version { found, supported }) => {
            assert_eq!((found, supported), (99, BINARY_FORMAT_VERSION));
        }
        other => panic!("expected a version error, got {other:?}"),
    }
}

#[test]
fn truncated_chunk_is_reported_as_the_chunk_shortfall() {
    let bytes = base_binary();
    let (counts_pos, checksum_pos) = header_counts_offsets(bytes);
    let header_block_end = checksum_pos + 8;
    let total_chunks = u32::from_le_bytes(bytes[counts_pos..][..4].try_into().unwrap());
    assert!(total_chunks > 1, "the base stream must span several chunks");
    // Cutting into the final chunk's checksum loses exactly one chunk.
    match decode_trace(&bytes[..bytes.len() - 4]) {
        Err(TraceError::ChunkCount { header, actual }) => {
            assert_eq!((header, actual), (total_chunks, total_chunks - 1));
        }
        other => panic!("expected a chunk-count error, got {other:?}"),
    }
    // Cutting just past the header block loses every chunk.
    match decode_trace(&bytes[..header_block_end]) {
        Err(TraceError::ChunkCount { header, actual }) => {
            assert_eq!((header, actual), (total_chunks, 0));
        }
        other => panic!("expected a chunk-count error, got {other:?}"),
    }
}

#[test]
fn corrupted_column_data_fails_the_chunk_checksum() {
    // The final byte of the file is the last chunk's checksum; a byte a
    // little before it sits inside that chunk's column data. Both flips
    // must localize to a checksum failure on that chunk.
    let bytes = base_binary();
    let (counts_pos, _) = header_counts_offsets(bytes);
    let total_chunks = u32::from_le_bytes(bytes[counts_pos..][..4].try_into().unwrap());
    for tamper in [bytes.len() - 1, bytes.len() - 12] {
        let mut bad = bytes.to_vec();
        bad[tamper] ^= 0x01;
        match decode_trace(&bad) {
            Err(TraceError::Checksum { chunk }) => assert_eq!(chunk, total_chunks - 1),
            // A flip landing in a column-length varint can instead run
            // the reader off the end of the stream — also structured.
            Err(TraceError::ChunkCount { .. }) => {}
            other => panic!("expected a checksum error, got {other:?}"),
        }
    }
}

#[test]
fn header_chunk_count_mismatch_is_detected() {
    // Claim one more chunk than the stream holds, with the header
    // checksum re-fixed so only the count lies.
    let bytes = base_binary();
    let (counts_pos, checksum_pos) = header_counts_offsets(bytes);
    let total_chunks = u32::from_le_bytes(bytes[counts_pos..][..4].try_into().unwrap());
    let mut bad = bytes.to_vec();
    bad[counts_pos..counts_pos + 4].copy_from_slice(&(total_chunks + 1).to_le_bytes());
    let sum = fnv1a(&bad[..checksum_pos]);
    bad[checksum_pos..checksum_pos + 8].copy_from_slice(&sum.to_le_bytes());
    match decode_trace(&bad) {
        Err(TraceError::ChunkCount { header, actual }) => {
            assert_eq!((header, actual), (total_chunks + 1, total_chunks));
        }
        other => panic!("expected a chunk-count error, got {other:?}"),
    }
    // The un-fixed version of the same patch is caught by the checksum.
    let mut unfixed = bytes.to_vec();
    unfixed[counts_pos..counts_pos + 4].copy_from_slice(&(total_chunks + 1).to_le_bytes());
    assert!(matches!(
        decode_trace(&unfixed),
        Err(TraceError::Corrupt(_))
    ));
}

#[test]
fn binary_event_count_mismatch_and_trailing_bytes_are_detected() {
    let (_, trace) = recorded();
    let n = trace.events.len() as u64;
    let mut lying = trace.clone();
    lying.header.events += 3;
    match decode_trace(&encode_trace_chunked(&lying, 64)) {
        Err(TraceError::EventCount { header, actual }) => {
            assert_eq!((header, actual), (n + 3, n));
        }
        other => panic!("expected an event-count error, got {other:?}"),
    }
    let mut padded = encode_trace_chunked(&trace, 64);
    padded.push(0);
    assert!(matches!(decode_trace(&padded), Err(TraceError::Corrupt(_))));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every strict prefix of a binary trace is missing at least its
    /// final checksum byte, so every one must come back as a typed
    /// error — never a panic, never a silent partial decode.
    #[test]
    fn binary_truncation_is_always_rejected_without_panicking(pos in 0usize..1 << 16) {
        let bytes = base_binary();
        let cut = pos % bytes.len();
        let rejected = catch_unwind(move || load_trace_bytes(&bytes[..cut]).is_err())
            .expect("truncated binary decode panicked");
        prop_assert!(rejected, "binary truncation at byte {cut} decoded successfully");
    }

    /// Splicing a random run of bytes out of the file must never panic
    /// the load path. (The checksums make a successful decode of a
    /// spliced file astronomically unlikely, but the property under
    /// test is no-panic, matching the JSON splice case.)
    #[test]
    fn binary_byte_splices_never_panic(pos in 0usize..1 << 16, len in 1usize..64) {
        let bytes = base_binary();
        let pos = pos % bytes.len();
        let len = len.min(bytes.len() - pos);
        let mut mutated = bytes.to_vec();
        mutated.drain(pos..pos + len);
        let outcome = catch_unwind(move || {
            let _ = load_trace_bytes(&mutated);
        });
        prop_assert!(outcome.is_ok(), "spliced binary decode panicked");
    }

    /// Flipping any byte to any other value must never panic the load
    /// path — whether it lands in the magic, a length varint, column
    /// data, or a checksum.
    #[test]
    fn binary_byte_flips_never_panic(pos in 0usize..1 << 16, flip in 1u8..=255) {
        let bytes = base_binary();
        let pos = pos % bytes.len();
        let mut mutated = bytes.to_vec();
        mutated[pos] ^= flip;
        let outcome = catch_unwind(move || {
            let _ = load_trace_bytes(&mutated);
        });
        prop_assert!(outcome.is_ok(), "byte-flipped binary decode panicked");
    }
}
