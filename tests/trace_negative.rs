//! Negative-path coverage for the trace decode pipeline: every way a
//! trace file can be wrong must surface as the *right* typed error —
//! never a panic, and never a misleading downstream parse failure.

use spinrace::core::{AnalyzeError, ExecutedRun, Session, Tool};
use spinrace::vm::trace::{TraceError, TRACE_FORMAT_VERSION};
use spinrace::vm::Trace;
use spinrace::workloads::{Family, WorkloadSpec};

/// A small recorded run to mutate (ring family: has sync events of every
/// semaphore flavour in the stream, so the event array is non-trivial).
fn recorded() -> (spinrace::core::PreparedModule, Trace) {
    let spec = WorkloadSpec::new(Family::Ring).events_per_thread(12);
    let wl = spec.build();
    let session = Session::for_module(&wl.module).vm_config(spec.vm_config());
    let prepared = session.prepare(Tool::HelgrindLib).unwrap();
    let run = prepared.clone().execute().unwrap();
    (prepared, run.into_trace())
}

#[test]
fn garbage_and_truncated_documents_are_json_errors() {
    for text in [
        "",
        "{not json",
        "[]",
        "42",
        "\"a trace, honest\"",
        "{\"header\": 7}",
        "{}",
    ] {
        match Trace::from_json(text) {
            Err(TraceError::Json(_)) => {}
            other => panic!("{text:?}: expected a Json error, got {other:?}"),
        }
    }
    // A structurally valid document cut off mid-stream.
    let (_, trace) = recorded();
    let json = trace.to_json();
    let cut = &json[..json.len() / 2];
    assert!(matches!(Trace::from_json(cut), Err(TraceError::Json(_))));
}

#[test]
fn corrupt_header_fields_are_json_errors_not_panics() {
    let (_, trace) = recorded();
    let json = trace.to_json();
    // Header field holding the wrong type.
    let bad = json.replacen(
        &format!("\"module_name\":\"{}\"", trace.header.module_name),
        "\"module_name\":[1,2]",
        1,
    );
    assert_ne!(bad, json, "the replacement must have applied");
    assert!(matches!(Trace::from_json(&bad), Err(TraceError::Json(_))));
    // Header entirely replaced by a scalar.
    let gutted = r#"{"header":null,"summary":{},"events":[]}"#;
    assert!(matches!(Trace::from_json(gutted), Err(TraceError::Json(_))));
}

#[test]
fn version_mismatch_is_reported_before_event_decoding() {
    let (_, trace) = recorded();
    // A future version whose *events* would also fail to decode: the
    // version check must win, so the user sees "version 99" instead of a
    // confusing event parse error.
    let mut doc = trace.to_json();
    doc = doc.replacen(
        &format!("\"version\":{TRACE_FORMAT_VERSION}"),
        "\"version\":99",
        1,
    );
    doc = doc.replacen("\"events\":[", "\"events\":[{\"FutureEvent\":{}},", 1);
    match Trace::from_json(&doc) {
        Err(TraceError::Version {
            found: 99,
            supported,
        }) => {
            assert_eq!(supported, TRACE_FORMAT_VERSION);
        }
        other => panic!("expected a version error, got {other:?}"),
    }
}

#[test]
fn event_count_mismatch_is_detected_in_both_directions() {
    let (_, trace) = recorded();
    let n = trace.events.len() as u64;

    // Header claims more events than the stream holds (truncation).
    let mut over = trace.clone();
    over.header.events += 3;
    match Trace::from_json(&over.to_json()) {
        Err(TraceError::EventCount { header, actual }) => {
            assert_eq!((header, actual), (n + 3, n));
        }
        other => panic!("expected an event-count error, got {other:?}"),
    }

    // Header claims fewer (a stream that grew past its header).
    let mut under = trace.clone();
    under.header.events -= 1;
    assert!(matches!(
        Trace::from_json(&under.to_json()),
        Err(TraceError::EventCount { .. })
    ));
}

#[test]
fn fingerprint_mismatch_rejects_rebinding_with_both_prints() {
    let (prepared, trace) = recorded();
    let fp = prepared.fingerprint();
    assert_eq!(trace.header.module_fingerprint, fp);

    // The same family one seed over: same shape, different module.
    let other_spec = WorkloadSpec::new(Family::Ring)
        .events_per_thread(12)
        .seed(2);
    let other = Session::for_module(&other_spec.build().module)
        .vm_config(other_spec.vm_config())
        .prepare(Tool::HelgrindLib)
        .unwrap();
    assert_ne!(other.fingerprint(), fp);

    match ExecutedRun::from_trace(other, trace.clone()) {
        Err(AnalyzeError::TraceMismatch {
            trace_fingerprint,
            module_fingerprint,
        }) => {
            assert_eq!(trace_fingerprint, fp);
            assert_ne!(module_fingerprint, fp);
        }
        other => panic!("expected a TraceMismatch, got {other:?}"),
    }

    // The matching preparation still binds.
    assert!(ExecutedRun::from_trace(prepared, trace).is_ok());
}

#[test]
fn errors_render_actionable_messages() {
    let (_, trace) = recorded();
    let mut v = trace.clone();
    v.header.version = 2;
    let msg = Trace::from_json(&v.to_json()).unwrap_err().to_string();
    assert!(msg.contains("version 2"), "{msg}");
    let mut c = trace;
    c.header.events += 1;
    let msg = Trace::from_json(&c.to_json()).unwrap_err().to_string();
    assert!(msg.contains("truncated"), "{msg}");
}
