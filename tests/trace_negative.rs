//! Negative-path coverage for the trace decode pipeline: every way a
//! trace file can be wrong must surface as the *right* typed error —
//! never a panic, and never a misleading downstream parse failure.

use spinrace::core::{AnalyzeError, ExecutedRun, Session, Tool};
use spinrace::vm::trace::{TraceError, TRACE_FORMAT_VERSION};
use spinrace::vm::Trace;
use spinrace::workloads::{Family, WorkloadSpec};

/// A small recorded run to mutate (ring family: has sync events of every
/// semaphore flavour in the stream, so the event array is non-trivial).
fn recorded() -> (spinrace::core::PreparedModule, Trace) {
    let spec = WorkloadSpec::new(Family::Ring).events_per_thread(12);
    let wl = spec.build();
    let session = Session::for_module(&wl.module).vm_config(spec.vm_config());
    let prepared = session.prepare(Tool::HelgrindLib).unwrap();
    let run = prepared.clone().execute().unwrap();
    (prepared, run.into_trace())
}

#[test]
fn garbage_and_truncated_documents_are_json_errors() {
    for text in [
        "",
        "{not json",
        "[]",
        "42",
        "\"a trace, honest\"",
        "{\"header\": 7}",
        "{}",
    ] {
        match Trace::from_json(text) {
            Err(TraceError::Json(_)) => {}
            other => panic!("{text:?}: expected a Json error, got {other:?}"),
        }
    }
    // A structurally valid document cut off mid-stream.
    let (_, trace) = recorded();
    let json = trace.to_json();
    let cut = &json[..json.len() / 2];
    assert!(matches!(Trace::from_json(cut), Err(TraceError::Json(_))));
}

#[test]
fn corrupt_header_fields_are_json_errors_not_panics() {
    let (_, trace) = recorded();
    let json = trace.to_json();
    // Header field holding the wrong type.
    let bad = json.replacen(
        &format!("\"module_name\":\"{}\"", trace.header.module_name),
        "\"module_name\":[1,2]",
        1,
    );
    assert_ne!(bad, json, "the replacement must have applied");
    assert!(matches!(Trace::from_json(&bad), Err(TraceError::Json(_))));
    // Header entirely replaced by a scalar.
    let gutted = r#"{"header":null,"summary":{},"events":[]}"#;
    assert!(matches!(Trace::from_json(gutted), Err(TraceError::Json(_))));
}

#[test]
fn version_mismatch_is_reported_before_event_decoding() {
    let (_, trace) = recorded();
    // A future version whose *events* would also fail to decode: the
    // version check must win, so the user sees "version 99" instead of a
    // confusing event parse error.
    let mut doc = trace.to_json();
    doc = doc.replacen(
        &format!("\"version\":{TRACE_FORMAT_VERSION}"),
        "\"version\":99",
        1,
    );
    doc = doc.replacen("\"events\":[", "\"events\":[{\"FutureEvent\":{}},", 1);
    match Trace::from_json(&doc) {
        Err(TraceError::Version {
            found: 99,
            supported,
        }) => {
            assert_eq!(supported, TRACE_FORMAT_VERSION);
        }
        other => panic!("expected a version error, got {other:?}"),
    }
}

#[test]
fn event_count_mismatch_is_detected_in_both_directions() {
    let (_, trace) = recorded();
    let n = trace.events.len() as u64;

    // Header claims more events than the stream holds (truncation).
    let mut over = trace.clone();
    over.header.events += 3;
    match Trace::from_json(&over.to_json()) {
        Err(TraceError::EventCount { header, actual }) => {
            assert_eq!((header, actual), (n + 3, n));
        }
        other => panic!("expected an event-count error, got {other:?}"),
    }

    // Header claims fewer (a stream that grew past its header).
    let mut under = trace.clone();
    under.header.events -= 1;
    assert!(matches!(
        Trace::from_json(&under.to_json()),
        Err(TraceError::EventCount { .. })
    ));
}

#[test]
fn fingerprint_mismatch_rejects_rebinding_with_both_prints() {
    let (prepared, trace) = recorded();
    let fp = prepared.fingerprint();
    assert_eq!(trace.header.module_fingerprint, fp);

    // The same family one seed over: same shape, different module.
    let other_spec = WorkloadSpec::new(Family::Ring)
        .events_per_thread(12)
        .seed(2);
    let other = Session::for_module(&other_spec.build().module)
        .vm_config(other_spec.vm_config())
        .prepare(Tool::HelgrindLib)
        .unwrap();
    assert_ne!(other.fingerprint(), fp);

    match ExecutedRun::from_trace(other, trace.clone()) {
        Err(AnalyzeError::TraceMismatch {
            trace_fingerprint,
            module_fingerprint,
        }) => {
            assert_eq!(trace_fingerprint, fp);
            assert_ne!(module_fingerprint, fp);
        }
        other => panic!("expected a TraceMismatch, got {other:?}"),
    }

    // The matching preparation still binds.
    assert!(ExecutedRun::from_trace(prepared, trace).is_ok());
}

#[test]
fn errors_render_actionable_messages() {
    let (_, trace) = recorded();
    let mut v = trace.clone();
    v.header.version = 2;
    let msg = Trace::from_json(&v.to_json()).unwrap_err().to_string();
    assert!(msg.contains("version 2"), "{msg}");
    let mut c = trace;
    c.header.events += 1;
    let msg = Trace::from_json(&c.to_json()).unwrap_err().to_string();
    assert!(msg.contains("truncated"), "{msg}");
}

// ---- randomized byte mutations of the serialized artifact ----

use proptest::prelude::*;
use std::panic::catch_unwind;
use std::sync::OnceLock;

/// One serialized trace, built once — the mutation cases only need its
/// bytes, and recording a fresh run per case would dominate the suite.
fn base_json() -> &'static [u8] {
    static JSON: OnceLock<String> = OnceLock::new();
    JSON.get_or_init(|| recorded().1.to_json()).as_bytes()
}

/// Decode mutated bytes the way the `trace` CLI does: UTF-8 validation
/// first (`read_to_string` refuses invalid bytes), then the trace
/// parser. Returns `true` when either layer rejected the input.
fn decode_rejects(bytes: &[u8]) -> bool {
    match std::str::from_utf8(bytes) {
        Err(_) => true,
        Ok(s) => Trace::from_json(s).is_err(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The document is a single JSON object, so every strict prefix is
    /// malformed — and must come back as a typed error, never a panic.
    #[test]
    fn truncation_is_always_rejected_without_panicking(pos in 0usize..1 << 16) {
        let json = base_json();
        let cut = pos % json.len();
        let rejected = catch_unwind(move || decode_rejects(&json[..cut]))
            .expect("truncated trace decode panicked");
        prop_assert!(rejected, "truncation at byte {cut} decoded successfully");
    }

    /// Splicing a random run of bytes out of the document must never
    /// panic the load path. (It nearly always breaks parsing; the rare
    /// splice that leaves valid JSON — digits removed from inside a
    /// number, say — may legitimately decode, which is fine.)
    #[test]
    fn byte_splices_never_panic(pos in 0usize..1 << 16, len in 1usize..64) {
        let json = base_json();
        let pos = pos % json.len();
        let len = len.min(json.len() - pos);
        let mut bytes = json.to_vec();
        bytes.drain(pos..pos + len);
        let outcome = catch_unwind(move || {
            decode_rejects(&bytes);
        });
        prop_assert!(outcome.is_ok(), "spliced trace decode panicked");
    }

    /// Flipping any byte to any other value must never panic the load
    /// path — whether the flip lands in structure (parse error), a
    /// string (usually fine), or breaks UTF-8 (rejected before parsing).
    #[test]
    fn byte_flips_never_panic(pos in 0usize..1 << 16, flip in 1u8..=255) {
        let json = base_json();
        let pos = pos % json.len();
        let mut bytes = json.to_vec();
        bytes[pos] ^= flip;
        let outcome = catch_unwind(move || {
            decode_rejects(&bytes);
        });
        prop_assert!(outcome.is_ok(), "byte-flipped trace decode panicked");
    }
}
