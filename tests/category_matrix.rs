//! The drt suite's category × tool expectation matrix, tested per case.
//!
//! Each suite category was designed to fail specific tools for specific
//! reasons (the paper's failure taxonomy). This test pins the *entire*
//! matrix, so any detector regression shows up as the exact case and
//! tool that changed behaviour.

use spinrace::core::{Analyzer, Tool};
use spinrace::suites::harness::DRT_CAP;
use spinrace::suites::{all_cases, Category};

#[derive(Clone, Copy, PartialEq, Debug)]
enum Expect {
    /// Race-free case: tool must be silent.
    Clean,
    /// Race-free case: tool must report something (a false alarm).
    FalseAlarm,
    /// Racy case: tool must report the victim race.
    Caught,
    /// Racy case: tool must miss the victim race.
    Missed,
}

/// The designed matrix: what each tool does on each category.
///
/// The predictive `SyncPreserving` column matches DRD's everywhere:
/// the pass drops mutex edges between non-conflicting critical
/// sections, but no drt category hides a race behind such an edge (the
/// suite was designed around the witnessed-interleaving taxonomy —
/// spin windows and library knowledge), so weakening DRD's
/// happens-before changes nothing here. The scenarios where the
/// predictive tool diverges from the HB class live in the
/// reorder-only workload families (`tests/workload_oracles.rs`).
fn expectation(cat: &Category, tool: &Tool) -> Expect {
    use Category::*;
    let window = match tool {
        Tool::HelgrindLibSpin { window } | Tool::HelgrindNolibSpin { window } => *window,
        _ => 0,
    };
    match (cat, tool) {
        (LibSync, _) => Expect::Clean,

        (AdhocPlain { weight }, Tool::HelgrindLibSpin { .. })
        | (AdhocPlain { weight }, Tool::HelgrindNolibSpin { .. }) => {
            if *weight <= window {
                Expect::Clean
            } else {
                Expect::FalseAlarm
            }
        }
        (AdhocPlain { .. }, Tool::HelgrindLib)
        | (AdhocPlain { .. }, Tool::Drd)
        | (AdhocPlain { .. }, Tool::SyncPreserving) => Expect::FalseAlarm,

        (AdhocAtomic { weight }, Tool::HelgrindLibSpin { .. })
        | (AdhocAtomic { weight }, Tool::HelgrindNolibSpin { .. }) => {
            if *weight <= window {
                Expect::Clean
            } else {
                Expect::FalseAlarm
            }
        }
        (AdhocAtomic { .. }, Tool::HelgrindLib) => Expect::FalseAlarm,
        (AdhocAtomic { .. }, Tool::Drd) | (AdhocAtomic { .. }, Tool::SyncPreserving) => {
            Expect::Clean
        }

        (Obscure, _) => Expect::FalseAlarm,

        (RacyPlain, _) => Expect::Caught,

        (RacyAtomicOrdered, Tool::Drd) | (RacyAtomicOrdered, Tool::SyncPreserving) => {
            Expect::Missed
        }
        (RacyAtomicOrdered, _) => Expect::Caught,

        (RacyLatent, _) => Expect::Missed,

        (RacyFlooded, Tool::HelgrindLib)
        | (RacyFlooded, Tool::Drd)
        | (RacyFlooded, Tool::SyncPreserving) => Expect::Missed,
        (RacyFlooded, _) => Expect::Caught,
    }
}

#[test]
fn full_category_matrix_holds() {
    let cases = all_cases();
    let mut tools = Tool::paper_lineup().to_vec();
    tools.push(Tool::SyncPreserving);
    let mut checked = 0;
    for tool in tools {
        let analyzer = Analyzer::tool(tool).cap(DRT_CAP);
        for case in &cases {
            let out = analyzer
                .analyze(&case.module)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", tool.label(), case.name));
            let expect = expectation(&case.category, &tool);
            let actual = if case.racy {
                if out.has_race_on(case.race_location.unwrap()) {
                    Expect::Caught
                } else {
                    Expect::Missed
                }
            } else if out.is_clean() {
                Expect::Clean
            } else {
                Expect::FalseAlarm
            };
            assert_eq!(
                actual,
                expect,
                "case {} ({:?}) under {}: contexts={} reports={:?}",
                case.name,
                case.category,
                tool.label(),
                out.contexts,
                out.reports
                    .iter()
                    .map(|r| (&r.location, r.report.kind))
                    .collect::<Vec<_>>()
            );
            checked += 1;
        }
    }
    assert_eq!(checked, 120 * 5);
}

/// The window sweep matrix over the ad-hoc categories only: a loop of
/// weight `w` is cleaned up exactly by windows ≥ `w`.
#[test]
fn window_matrix_on_adhoc_cases() {
    let cases = all_cases();
    for window in [3u32, 6, 7, 8] {
        let analyzer = Analyzer::tool(Tool::HelgrindLibSpin { window }).cap(DRT_CAP);
        for case in cases.iter().filter(|c| {
            matches!(
                c.category,
                Category::AdhocPlain { .. } | Category::AdhocAtomic { .. }
            )
        }) {
            let weight = match case.category {
                Category::AdhocPlain { weight } | Category::AdhocAtomic { weight } => weight,
                _ => unreachable!(),
            };
            let out = analyzer.analyze(&case.module).unwrap();
            if weight <= window {
                assert!(
                    out.is_clean(),
                    "{} (w={weight}) must be clean at window {window}: {:?}",
                    case.name,
                    out.reports
                );
            } else {
                assert!(
                    !out.is_clean(),
                    "{} (w={weight}) must false-alarm at window {window}",
                    case.name
                );
            }
        }
    }
}
