//! Fault-injection hardening of the parallel replay engine: every fault
//! in the matrix {panic before/after handoff export, panic while a peer
//! waits, delay past a watchdog, dropped handoff} × schedules × worker
//! counts must come back as a structured [`EngineError`] within a
//! bounded watchdog — never a hang, never a process abort — while
//! fault-free runs (including runs with explicit engine options) stay
//! byte-identical to sequential replay.

use spinrace::core::parallel::{
    try_run_sharded_opts, try_run_sharded_with_plan_opts, Budget, BudgetResource, EngineError,
    EngineOptions, FaultKind, FaultPlan, Schedule,
};
use spinrace::core::{DetectRequest, Session, Tool};
use spinrace::detector::{
    compute_promotion_seeds, DetectorConfig, MsmMode, RaceDetector, SchedulePlan,
};
use spinrace::vm::{Event, EventSink};
use spinrace::workloads::{Family, WorkloadSpec};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// No fault must take anywhere near this long to surface; hitting it
/// means the cancellation/watchdog protocol regressed.
const BOUND: Duration = Duration::from_secs(20);

/// A raw stream whose hot shard moves mid-stream (same shape as the
/// handoff test in `spinrace-core`): phase A hammers shard 0 with a lock
/// held, phase B moves to shards 2 and 3. Chunked balanced planning over
/// it schedules real shard handoffs — the seam the faults are aimed at.
fn shifted_stream() -> Vec<Event> {
    let pc = |n| spinrace::tir::Pc::new(spinrace::tir::FuncId(0), spinrace::tir::BlockId(0), n);
    let write = |tid: u32, addr: u64, at: u32| Event::Write {
        tid,
        addr,
        value: 1,
        pc: pc(at),
        stack: 0,
        atomic: None,
    };
    let mut events = vec![
        Event::Spawn {
            parent: 0,
            child: 1,
            pc: pc(0),
        },
        Event::MutexLock {
            tid: 1,
            mutex: 0x9000,
            pc: pc(1),
        },
    ];
    for i in 0..8u64 {
        events.push(write(1, (2 << 6) | i, 5));
    }
    for i in 0..256u64 {
        events.push(write(1, (i % 64) | ((i / 64) << 9), 10));
    }
    events.push(Event::MutexUnlock {
        tid: 1,
        mutex: 0x9000,
        pc: pc(2),
    });
    for i in 0..128u64 {
        let shard = 2 + (i % 2);
        events.push(write(1, (shard << 6) | (i % 64), 20));
    }
    events
}

fn cfg() -> DetectorConfig {
    DetectorConfig::helgrind_lib(MsmMode::Short)
}

/// A chunked balanced plan over the shifted stream with at least one
/// handoff, plus the first scheduled transfer (boundary index, shard,
/// exporting and importing worker).
fn plan_with_handoff(events: &[Event]) -> (Arc<SchedulePlan>, spinrace::detector::ShardTransfer) {
    let seeds = compute_promotion_seeds(cfg(), events);
    let plan = SchedulePlan::balanced_chunked(cfg(), &seeds, events, 2, 64);
    assert!(
        plan.handoffs() > 0,
        "the shifted stream must schedule a handoff, got {:?}",
        plan.transfers()
    );
    let t = plan.transfers()[0];
    (Arc::new(plan), t)
}

fn opts_with_fault(fault: FaultPlan, handoff_ms: u64) -> EngineOptions {
    EngineOptions {
        handoff_timeout: Duration::from_millis(handoff_ms),
        fault: Some(fault),
        ..EngineOptions::default()
    }
}

#[test]
fn panic_before_handoff_export_is_a_worker_panic() {
    let events = shifted_stream();
    let (plan, t) = plan_with_handoff(&events);
    let boundary_event = plan.boundaries()[t.boundary];
    // The fault fires at the boundary event, *before* the export runs.
    let fault = FaultPlan {
        worker: t.from,
        at_event: boundary_event,
        kind: FaultKind::Panic,
    };
    let t0 = Instant::now();
    let err = try_run_sharded_with_plan_opts(cfg(), &events, plan, opts_with_fault(fault, 10_000))
        .expect_err("injected panic must fail the replay");
    assert!(t0.elapsed() < BOUND, "took {:?}", t0.elapsed());
    match err {
        EngineError::WorkerPanic { worker, payload } => {
            assert_eq!(worker, t.from);
            assert!(payload.contains("injected fault"), "{payload}");
        }
        other => panic!("expected WorkerPanic, got {other}"),
    }
}

#[test]
fn panic_after_handoff_export_is_a_worker_panic() {
    let events = shifted_stream();
    let (plan, t) = plan_with_handoff(&events);
    // One event past the boundary: the export already ran, the peer gets
    // its handoff, and the exporter dies right after.
    let fault = FaultPlan {
        worker: t.from,
        at_event: plan.boundaries()[t.boundary] + 1,
        kind: FaultKind::Panic,
    };
    let t0 = Instant::now();
    let err = try_run_sharded_with_plan_opts(cfg(), &events, plan, opts_with_fault(fault, 10_000))
        .expect_err("injected panic must fail the replay");
    assert!(t0.elapsed() < BOUND, "took {:?}", t0.elapsed());
    assert!(
        matches!(err, EngineError::WorkerPanic { worker, .. } if worker == t.from),
        "expected WorkerPanic from worker {}, got {err}",
        t.from
    );
}

#[test]
fn panic_while_peer_waits_cancels_the_wait_promptly() {
    let events = shifted_stream();
    let (plan, t) = plan_with_handoff(&events);
    let fault = FaultPlan {
        worker: t.from,
        at_event: plan.boundaries()[t.boundary],
        kind: FaultKind::Panic,
    };
    // A generous handoff timeout: the peer must NOT ride it out — the
    // panic's cancellation has to wake the wait long before 60 s.
    let t0 = Instant::now();
    let err = try_run_sharded_with_plan_opts(cfg(), &events, plan, opts_with_fault(fault, 60_000))
        .expect_err("injected panic must fail the replay");
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_secs(10),
        "peer sat out the handoff timeout instead of cancelling: {elapsed:?}"
    );
    assert!(
        matches!(err, EngineError::WorkerPanic { .. }),
        "first failure must be the panic, got {err}"
    );
}

#[test]
fn delay_past_the_handoff_timeout_is_a_handoff_timeout() {
    let events = shifted_stream();
    let (plan, t) = plan_with_handoff(&events);
    // The exporter stalls 60 s at its boundary; the importer's 250 ms
    // handoff watchdog must fire and cancel the stalled worker too.
    let fault = FaultPlan {
        worker: t.from,
        at_event: plan.boundaries()[t.boundary],
        kind: FaultKind::Delay(60_000),
    };
    let t0 = Instant::now();
    let err = try_run_sharded_with_plan_opts(cfg(), &events, plan, opts_with_fault(fault, 250))
        .expect_err("stalled handoff must fail the replay");
    assert!(t0.elapsed() < BOUND, "took {:?}", t0.elapsed());
    match err {
        EngineError::HandoffTimeout {
            worker,
            shard,
            boundary,
            waited_ms,
        } => {
            assert_eq!((worker, shard, boundary), (t.to, t.shard, t.boundary));
            assert!(waited_ms >= 250, "reported wait {waited_ms} ms");
        }
        other => panic!("expected HandoffTimeout, got {other}"),
    }
}

#[test]
fn delay_past_the_global_watchdog_errors_even_without_handoffs() {
    // Static schedules have no handoffs, so a stalled worker would
    // otherwise just finish late; the global watchdog bounds the whole
    // replay regardless of schedule.
    let events = shifted_stream();
    let opts = EngineOptions {
        schedule: Schedule::Static,
        watchdog: Some(Duration::from_millis(300)),
        fault: Some(FaultPlan {
            worker: 1,
            at_event: 50,
            kind: FaultKind::Delay(60_000),
        }),
        ..EngineOptions::default()
    };
    let t0 = Instant::now();
    let err = try_run_sharded_opts(cfg(), &events, 2, opts)
        .expect_err("watchdog must trip on the stalled worker");
    assert!(t0.elapsed() < BOUND, "took {:?}", t0.elapsed());
    assert!(
        matches!(err, EngineError::Watchdog { limit_ms: 300 }),
        "expected Watchdog, got {err}"
    );
}

#[test]
fn dropped_handoff_times_out_the_waiting_peer() {
    let events = shifted_stream();
    let (plan, t) = plan_with_handoff(&events);
    // The exporter dies silently before its boundary: no export, no
    // recorded error. The importing peer's handoff watchdog is the only
    // thing standing between that and a hang.
    let fault = FaultPlan {
        worker: t.from,
        at_event: plan.boundaries()[t.boundary].saturating_sub(1),
        kind: FaultKind::DropHandoff,
    };
    let t0 = Instant::now();
    let err = try_run_sharded_with_plan_opts(cfg(), &events, plan, opts_with_fault(fault, 300))
        .expect_err("dropped handoff must fail the replay");
    assert!(t0.elapsed() < BOUND, "took {:?}", t0.elapsed());
    assert!(
        matches!(
            err,
            EngineError::HandoffTimeout { .. } | EngineError::WorkerLost { .. }
        ),
        "expected HandoffTimeout or WorkerLost, got {err}"
    );
}

#[test]
fn dropped_worker_without_handoffs_is_reported_lost() {
    // Static schedule: nobody waits on the dead worker, so the
    // coordinator has to notice the missing fragment by itself.
    let events = shifted_stream();
    let opts = EngineOptions {
        schedule: Schedule::Static,
        fault: Some(FaultPlan {
            worker: 1,
            at_event: 50,
            kind: FaultKind::DropHandoff,
        }),
        ..EngineOptions::default()
    };
    let t0 = Instant::now();
    let err = try_run_sharded_opts(cfg(), &events, 2, opts)
        .expect_err("a silently dead worker must fail the replay");
    assert!(t0.elapsed() < BOUND, "took {:?}", t0.elapsed());
    assert!(
        matches!(err, EngineError::WorkerLost { worker: 1 }),
        "expected WorkerLost, got {err}"
    );
}

/// The CI acceptance matrix in miniature: 3 fault kinds × 2 schedules ×
/// workers {2, 4, 8}, every combination a structured `Err` within the
/// bound — zero hangs, zero aborts.
#[test]
fn full_fault_matrix_always_errors_within_the_bound() {
    let events = shifted_stream();
    for schedule in [Schedule::Static, Schedule::Balanced] {
        for workers in [2usize, 4, 8] {
            for kind in [
                FaultKind::Panic,
                FaultKind::Delay(60_000),
                FaultKind::DropHandoff,
            ] {
                let opts = EngineOptions {
                    schedule,
                    handoff_timeout: Duration::from_millis(400),
                    watchdog: Some(Duration::from_millis(800)),
                    fault: Some(FaultPlan {
                        worker: 1,
                        at_event: 100,
                        kind,
                    }),
                    ..EngineOptions::default()
                };
                let t0 = Instant::now();
                let res = try_run_sharded_opts(cfg(), &events, workers, opts);
                let elapsed = t0.elapsed();
                assert!(
                    res.is_err(),
                    "{kind:?} × {schedule} × {workers} workers completed successfully"
                );
                assert!(
                    elapsed < BOUND,
                    "{kind:?} × {schedule} × {workers} workers took {elapsed:?}"
                );
            }
        }
    }
}

#[test]
fn fault_aimed_at_nothing_changes_nothing() {
    // A fault targeting a worker index outside the pool, or an event the
    // stream never reaches, must be inert: same bytes as sequential.
    let events = shifted_stream();
    let mut seq = RaceDetector::new(cfg());
    for ev in &events {
        seq.on_event(ev);
    }
    for fault in [
        FaultPlan {
            worker: 7,
            at_event: 100,
            kind: FaultKind::Panic,
        },
        FaultPlan {
            worker: 1,
            at_event: 10_000_000,
            kind: FaultKind::Panic,
        },
    ] {
        let opts = EngineOptions {
            fault: Some(fault),
            ..EngineOptions::default()
        };
        let merged = try_run_sharded_opts(cfg(), &events, 2, opts)
            .expect("an unreachable fault must not fire");
        assert_eq!(merged.reports.reports(), seq.reports().reports());
        assert_eq!(merged.reports.contexts(), seq.racy_contexts());
    }
}

#[test]
fn fault_free_runs_with_explicit_options_stay_byte_identical() {
    let events = shifted_stream();
    let mut seq = RaceDetector::new(cfg());
    for ev in &events {
        seq.on_event(ev);
    }
    for schedule in [Schedule::Static, Schedule::Balanced] {
        for workers in [1usize, 2, 4, 8] {
            // A generous watchdog and a huge budget are *set* (exercising
            // the polling paths) but never trip.
            let opts = EngineOptions {
                schedule,
                watchdog: Some(Duration::from_secs(120)),
                budget: Budget {
                    max_events: Some(1 << 40),
                    max_shadow_bytes: Some(1 << 40),
                },
                ..EngineOptions::default()
            };
            let merged = try_run_sharded_opts(cfg(), &events, workers, opts).unwrap();
            assert_eq!(
                merged.reports.reports(),
                seq.reports().reports(),
                "{schedule} × {workers}"
            );
            assert_eq!(merged.reports.contexts(), seq.racy_contexts());
            assert_eq!(merged.promoted_locations, seq.promoted_locations());
        }
    }
}

#[test]
fn session_api_surfaces_engine_errors_and_budgets() {
    let spec = WorkloadSpec::new(Family::Zipf)
        .threads(4)
        .events_per_thread(2000)
        .seed(1);
    let wl = spec.build();
    let run = Session::for_module(&wl.module)
        .vm_config(spec.vm_config())
        .prepare(Tool::HelgrindLib)
        .unwrap()
        .execute()
        .unwrap();
    let baseline = run.run(&DetectRequest::own()).into_single();

    // Fault-free with options: identical outcome to a sequential run.
    let ok = run
        .try_run(
            &DetectRequest::tool(Tool::HelgrindLib)
                .parallel(4)
                .options(EngineOptions::default()),
        )
        .unwrap()
        .into_single();
    assert_eq!(ok.contexts, baseline.contexts);
    assert_eq!(ok.metrics, baseline.metrics);

    // Injected panic: structured error, not a panic across the API.
    let fault_opts = EngineOptions {
        fault: Some(FaultPlan {
            worker: 1,
            at_event: 100,
            kind: FaultKind::Panic,
        }),
        ..EngineOptions::default()
    };
    let err = run
        .try_run(
            &DetectRequest::tool(Tool::HelgrindLib)
                .parallel(4)
                .options(fault_opts),
        )
        .expect_err("injected panic must surface");
    assert!(matches!(err, EngineError::WorkerPanic { worker: 1, .. }));

    // Event budget: partial metrics carried in the error.
    let budget_opts = EngineOptions {
        budget: Budget {
            max_events: Some(500),
            max_shadow_bytes: None,
        },
        ..EngineOptions::default()
    };
    let err = run
        .try_run(
            &DetectRequest::tool(Tool::HelgrindLib)
                .parallel(4)
                .options(budget_opts),
        )
        .expect_err("event budget must trip");
    match err {
        EngineError::BudgetExhausted {
            resource: BudgetResource::Events,
            limit,
            used,
            partial,
        } => {
            assert_eq!(limit, 500);
            assert_eq!(used, run.trace().events.len() as u64);
            assert_eq!(partial.events_processed, 500);
        }
        other => panic!("expected an event-budget error, got {other}"),
    }

    // The infallible request form still works unchanged on the happy
    // path.
    let via_run = run.run(&DetectRequest::own().parallel(4)).into_single();
    assert_eq!(via_run.contexts, baseline.contexts);
}
