//! Differential proptest for the trace pipeline: for random small modules
//! and every tool in the paper lineup, **record → serialize → parse →
//! replay** must produce exactly the result of the live `Analyzer` run —
//! same racy contexts, same described report lists, same detector
//! metrics, promotions, and run summary. This is the end-to-end guarantee
//! behind "record once, replay everywhere": the serialized artifact
//! carries everything detection needs.
//!
//! The same guarantee is held for the **binary columnar encoding**: the
//! stream is also encoded with a deliberately tiny chunk target (so the
//! multi-chunk framing, per-chunk codec reset, and dictionary rebuild
//! all fire), decoded back to an identical trace, and replayed through
//! the chunked streaming reader — which must produce the live result
//! too. A separate case pins json → binary → json as a byte fixed
//! point.

use proptest::prelude::*;
use spinrace::core::{Analyzer, DetectRequest, ExecutedRun, Session, Tool};
use spinrace::tir::{Module, ModuleBuilder};
use spinrace::tracefmt::{decode_trace, encode_trace_chunked, ChunkedTraceReader};
use spinrace::vm::Trace;
use std::io::Cursor;

/// A small random workload: `threads` workers, each doing `iters` rounds
/// of (optionally lock-protected) shared-counter updates, with an
/// optional ad-hoc flag handoff guarding a data word and an optional
/// deliberately racy slot. Every combination is a valid program; the
/// knobs steer which detector features fire (locksets, spin promotion,
/// HB edges, report dedup).
fn build_module(threads: u32, iters: u8, lock: bool, flag: bool, racy: bool) -> Module {
    let mut mb = ModuleBuilder::new("rt-prop");
    let mu = mb.global("mu", 1);
    let shared = mb.global("shared", 1);
    let flag_g = mb.global("flag", 1);
    let data = mb.global("data", 1);
    let victim = mb.global("victim", 1);
    let w = mb.function("w", 1, |f| {
        for _ in 0..iters {
            if lock {
                f.lock(mu.at(0));
            }
            let v = f.load(shared.at(0));
            let v2 = f.add(v, 1);
            f.store(shared.at(0), v2);
            if lock {
                f.unlock(mu.at(0));
            }
            if racy {
                let r = f.load(victim.at(0));
                let r2 = f.add(r, 1);
                f.store(victim.at(0), r2);
            }
        }
        f.ret(None);
    });
    let waiter = mb.function("waiter", 1, |f| {
        let head = f.new_block();
        let done = f.new_block();
        f.jump(head);
        f.switch_to(head);
        let v = f.load(flag_g.at(0));
        f.branch(v, done, head);
        f.switch_to(done);
        let d = f.load(data.at(0));
        f.output(d);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let mut tids = Vec::new();
        if flag {
            tids.push(f.spawn(waiter, 0));
        }
        for i in 0..threads {
            tids.push(f.spawn(w, i as i64));
        }
        if flag {
            f.store(data.at(0), 7);
            f.store(flag_g.at(0), 1);
        }
        for t in tids {
            f.join(t);
        }
        f.ret(None);
    });
    mb.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn recorded_replay_matches_live_run(
        threads in 1u32..4,
        iters in 1u8..4,
        lock in proptest::bool::ANY,
        flag in proptest::bool::ANY,
        racy in proptest::bool::ANY,
        seed in proptest::option::of(0u64..1000),
    ) {
        let m = build_module(threads, iters, lock, flag, racy);
        for tool in Tool::paper_lineup() {
            // Live path: prepare + detect in one pass, no recording.
            let mut analyzer = Analyzer::tool(tool);
            if let Some(s) = seed {
                analyzer = analyzer.seed(s);
            }
            let live = analyzer.analyze(&m).unwrap();

            // Trace path: record, serialize, parse, bind to a freshly
            // prepared module, replay.
            let mut session = Session::for_module(&m);
            if let Some(s) = seed {
                session = session.seed(s);
            }
            let run = session.prepare(tool).unwrap().execute().unwrap();
            let parsed = Trace::from_json(&run.trace().to_json())
                .map_err(|e| TestCaseError(format!("parse failed: {e}")))?;
            prop_assert_eq!(&parsed, run.trace());
            let rebound = ExecutedRun::from_trace(session.prepare(tool).unwrap(), parsed)
                .map_err(|e| TestCaseError(format!("rebind failed: {e}")))?;
            let replayed = rebound.run(&DetectRequest::own()).into_single();

            // Binary path: a 9-event chunk target forces multi-chunk
            // framing on all but the tiniest streams. The decoded trace
            // must be identical, and the chunked *streaming* replay must
            // reproduce the live outcome as well.
            let bytes = encode_trace_chunked(run.trace(), 9);
            let decoded = decode_trace(&bytes)
                .map_err(|e| TestCaseError(format!("binary decode failed: {e}")))?;
            prop_assert_eq!(&decoded, run.trace());
            let reader = ChunkedTraceReader::new(Cursor::new(bytes))
                .map_err(|e| TestCaseError(format!("binary open failed: {e}")))?;
            let (streamed, stats) = session
                .prepare(tool)
                .unwrap()
                .try_run_streamed(&DetectRequest::tool(tool).streamed(), reader)
                .map_err(|e| TestCaseError(format!("streamed replay failed: {e}")))?;
            let streamed = streamed.into_single();
            prop_assert_eq!(stats.events as usize, run.trace().events.len());
            let label = tool.label();
            prop_assert_eq!(streamed.contexts, live.contexts, "streamed contexts under {}", &label);
            prop_assert_eq!(
                streamed.reports.len(),
                live.reports.len(),
                "streamed report count under {}",
                &label
            );
            for (a, b) in streamed.reports.iter().zip(&live.reports) {
                prop_assert_eq!(&a.location, &b.location, "streamed location under {}", &label);
                prop_assert_eq!(&a.report, &b.report, "streamed report under {}", &label);
            }
            prop_assert_eq!(&streamed.metrics, &live.metrics, "streamed metrics under {}", &label);
            prop_assert_eq!(&streamed.summary, &live.summary, "streamed summary under {}", &label);

            let label = tool.label();
            prop_assert_eq!(replayed.contexts, live.contexts, "contexts under {}", &label);
            prop_assert_eq!(
                replayed.reports.len(),
                live.reports.len(),
                "report count under {}",
                &label
            );
            for (a, b) in replayed.reports.iter().zip(&live.reports) {
                prop_assert_eq!(&a.location, &b.location, "location under {}", &label);
                prop_assert_eq!(&a.report, &b.report, "report under {}", &label);
            }
            prop_assert_eq!(&replayed.metrics, &live.metrics, "metrics under {}", &label);
            prop_assert_eq!(
                replayed.promoted_locations,
                live.promoted_locations,
                "promotions under {}",
                &label
            );
            prop_assert_eq!(
                replayed.spin_loops_found,
                live.spin_loops_found,
                "spin loops under {}",
                &label
            );
            prop_assert_eq!(&replayed.summary, &live.summary, "summary under {}", &label);
            prop_assert_eq!(&replayed.tool_label, &label);
        }
    }

    /// json → binary → json is a byte fixed point: converting a trace
    /// into the columnar encoding and back must reproduce the original
    /// JSON document exactly (header, summary, and events all survive
    /// the column codecs bit-for-bit).
    #[test]
    fn json_binary_json_is_a_byte_fixed_point(
        threads in 1u32..4,
        iters in 1u8..4,
        lock in proptest::bool::ANY,
        flag in proptest::bool::ANY,
        racy in proptest::bool::ANY,
        chunk in 1usize..32,
    ) {
        let m = build_module(threads, iters, lock, flag, racy);
        let run = Session::for_module(&m)
            .prepare(Tool::HelgrindLibSpin { window: 7 })
            .unwrap()
            .execute()
            .unwrap();
        let json = run.trace().to_json();
        let reparsed = Trace::from_json(&json)
            .map_err(|e| TestCaseError(format!("parse failed: {e}")))?;
        let decoded = decode_trace(&encode_trace_chunked(&reparsed, chunk))
            .map_err(|e| TestCaseError(format!("binary decode failed: {e}")))?;
        prop_assert_eq!(decoded.to_json(), json);
    }
}
