//! Shared trace-mutation helpers for the negative-path suites
//! (`trace_negative.rs`, `serve_protocol.rs`): one recorded run plus
//! cached serializations of it, and the byte-surgery utilities the
//! corruption cases are built from. Each test crate compiles this
//! module independently and uses a different subset.
#![allow(dead_code)]

use spinrace::core::{PreparedModule, Session, Tool};
use spinrace::tracefmt::{encode_trace_chunked, MAGIC};
use spinrace::vm::Trace;
use spinrace::workloads::{Family, WorkloadSpec};
use std::sync::OnceLock;

/// A small recorded run to mutate (ring family: has sync events of every
/// semaphore flavour in the stream, so the event array is non-trivial).
pub fn recorded() -> (PreparedModule, Trace) {
    let spec = WorkloadSpec::new(Family::Ring).events_per_thread(12);
    let wl = spec.build();
    let session = Session::for_module(&wl.module).vm_config(spec.vm_config());
    let prepared = session.prepare(Tool::HelgrindLib).unwrap();
    let run = prepared.clone().execute().unwrap();
    (prepared, run.into_trace())
}

/// One serialized trace, built once — the mutation cases only need its
/// bytes, and recording a fresh run per case would dominate the suite.
pub fn base_json() -> &'static [u8] {
    static JSON: OnceLock<String> = OnceLock::new();
    JSON.get_or_init(|| recorded().1.to_json()).as_bytes()
}

/// One binary-encoded trace, built once, chunked small enough that the
/// recorded ring stream spans several chunks — the mutation cases need
/// real chunk boundaries, not a single-chunk degenerate file.
pub fn base_binary() -> &'static [u8] {
    static BIN: OnceLock<Vec<u8>> = OnceLock::new();
    BIN.get_or_init(|| encode_trace_chunked(&recorded().1, 16))
}

/// Decode mutated bytes the way the `trace` CLI does: UTF-8 validation
/// first (`read_to_string` refuses invalid bytes), then the trace
/// parser. Returns `true` when either layer rejected the input.
pub fn decode_rejects(bytes: &[u8]) -> bool {
    match std::str::from_utf8(bytes) {
        Err(_) => true,
        Ok(s) => Trace::from_json(s).is_err(),
    }
}

/// Read one LEB128 varint out of a test buffer (trusted input — the
/// tests walk files they just encoded).
pub fn leb(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

/// Byte offset of the header block's `chunk_count`/`chunk_target` pair,
/// and of the header checksum right after it.
pub fn header_counts_offsets(bytes: &[u8]) -> (usize, usize) {
    let mut pos = MAGIC.len() + 4; // magic + binary version
    let header_len = leb(bytes, &mut pos);
    pos += header_len as usize;
    let summary_len = leb(bytes, &mut pos);
    pos += summary_len as usize;
    (pos, pos + 8)
}
