//! Cross-crate property tests: determinism, serde round trips, detection
//! stability, and randomized soundness checks.

use proptest::prelude::*;
use spinrace::core::{Analyzer, Tool};
use spinrace::spinfind::SpinFinder;
use spinrace::tir::{Module, ModuleBuilder};
use spinrace::vm::{run_module, RecordingSink, VmConfig};

/// A small random well-locked program: `threads` workers increment
/// `slots[own]` (disjoint) and a shared counter under a mutex.
fn locked_program(threads: u32, iters: u8) -> Module {
    let mut mb = ModuleBuilder::new("prop-locked");
    let mu = mb.global("mu", 1);
    let shared = mb.global("shared", 1);
    let slots = mb.global("slots", threads as u64);
    let w = mb.function("w", 1, |f| {
        for _ in 0..iters {
            f.lock(mu.at(0));
            let v = f.load(shared.at(0));
            let v2 = f.add(v, 1);
            f.store(shared.at(0), v2);
            f.unlock(mu.at(0));
            let s = f.load(slots.idx(f.param(0)));
            let s2 = f.add(s, 1);
            f.store(slots.idx(f.param(0)), s2);
        }
        f.ret(None);
    });
    mb.entry("main", |f| {
        let tids: Vec<_> = (0..threads).map(|i| f.spawn(w, i as i64)).collect();
        for t in tids {
            f.join(t);
        }
        let v = f.load(shared.at(0));
        f.output(v);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// A racy program with an unsynchronized shared counter.
fn racy_program(threads: u32) -> Module {
    let mut mb = ModuleBuilder::new("prop-racy");
    let victim = mb.global("victim", 1);
    let w = mb.function("w", 1, |f| {
        let v = f.load(victim.at(0));
        let v2 = f.add(v, 1);
        f.store(victim.at(0), v2);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let tids: Vec<_> = (0..threads).map(|i| f.spawn(w, i as i64)).collect();
        for t in tids {
            f.join(t);
        }
        f.ret(None);
    });
    mb.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Identical (module, seed) pairs produce identical event streams.
    #[test]
    fn vm_is_deterministic(threads in 2u32..5, iters in 1u8..4, seed in 0u64..1000) {
        let m = locked_program(threads, iters);
        let mut s1 = RecordingSink::default();
        let mut s2 = RecordingSink::default();
        run_module(&m, VmConfig::random(seed), &mut s1).unwrap();
        run_module(&m, VmConfig::random(seed), &mut s2).unwrap();
        prop_assert_eq!(s1.events, s2.events);
    }

    /// Well-locked programs never produce reports, under any tool & seed.
    #[test]
    fn no_fp_on_locked_programs(threads in 2u32..5, iters in 1u8..4, seed in 0u64..500) {
        let m = locked_program(threads, iters);
        for tool in Tool::paper_lineup() {
            let out = Analyzer::tool(tool).seed(seed).analyze(&m).unwrap();
            prop_assert!(out.is_clean(), "{} seed {} -> {:?}", tool.label(), seed, out.reports);
        }
    }

    /// Racy programs are flagged by the hybrid under every seed (a write-
    /// write race on the same location is never schedule-hidden for HB).
    #[test]
    fn racy_always_caught(threads in 2u32..6, seed in 0u64..500) {
        let m = racy_program(threads);
        let out = Analyzer::tool(Tool::HelgrindLibSpin { window: 7 })
            .seed(seed)
            .analyze(&m)
            .unwrap();
        prop_assert!(out.has_race_on("victim"));
    }

    /// Modules survive a serde round trip bit-exactly, including the spin
    /// table produced by instrumentation.
    #[test]
    fn module_serde_round_trip(threads in 2u32..4, iters in 1u8..3) {
        let mut m = locked_program(threads, iters);
        let _ = SpinFinder::default().instrument(&mut m);
        let json = serde_json::to_string(&m).unwrap();
        let back: Module = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(m, back);
    }

    /// Spin detection results are identical when re-run (pure analysis).
    #[test]
    fn spinfind_is_pure(threads in 2u32..4) {
        let m = racy_program(threads);
        let a = SpinFinder::default().analyze(&m);
        let b = SpinFinder::default().analyze(&m);
        prop_assert_eq!(a.table, b.table);
    }

    /// Widening the window never loses accepted loops on suite programs
    /// (monotonicity of the size criterion).
    #[test]
    fn window_is_monotone(idx in 0usize..13) {
        let programs = spinrace::suites::all_programs();
        let p = &programs[idx];
        let m = (p.build)(p.threads, p.size);
        let small = SpinFinder::with_window(3).analyze(&m).accepted();
        let medium = SpinFinder::with_window(7).analyze(&m).accepted();
        let large = SpinFinder::with_window(12).analyze(&m).accepted();
        prop_assert!(small <= medium && medium <= large);
    }
}
