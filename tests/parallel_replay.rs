//! Differential proptest for parallel sharded replay: for random small
//! modules, every tool in the paper lineup, every worker count, and both
//! scheduling modes (occupancy-balanced LPT and static modular
//! ownership), the parallel replay of a recorded trace must be
//! **bit-identical** to the sequential replay *and* to the live run —
//! same racy contexts, same described report lists (content and order),
//! same detector metrics, same promotion counts. This is the determinism
//! guarantee the CI `replay-determinism` job re-checks end-to-end
//! through the `trace` CLI, and the property that lets harnesses pick a
//! worker count (and the scheduler pick shard owners) from the machine
//! without perturbing a single table number.

use proptest::prelude::*;
use spinrace::core::{Analyzer, DetectRequest, Schedule, Session, Tool};
use spinrace::detector::{shard_of, NUM_SHARDS};
use spinrace::tir::{Module, ModuleBuilder};
use spinrace::workloads::{Family, WorkloadSpec};

/// A small random workload exercising every detector feature the sharded
/// engine must replicate: lock-protected counters (locksets + base
/// interns), an optional ad-hoc flag handoff (spin promotion + seeds), an
/// optional deliberately racy slot (HB reports), and an optional
/// atomic-counter rendezvous (RMW promotion / DRD atomic edges).
fn build_module(threads: u32, iters: u8, lock: bool, flag: bool, racy: bool, rmw: bool) -> Module {
    let mut mb = ModuleBuilder::new("par-prop");
    let mu = mb.global("mu", 1);
    let shared = mb.global("shared", 1);
    let flag_g = mb.global("flag", 1);
    let data = mb.global("data", 1);
    let victim = mb.global("victim", 1);
    let counter = mb.global("counter", 1);
    let w = mb.function("w", 1, |f| {
        for _ in 0..iters {
            if lock {
                f.lock(mu.at(0));
            }
            let v = f.load(shared.at(0));
            let v2 = f.add(v, 1);
            f.store(shared.at(0), v2);
            if lock {
                f.unlock(mu.at(0));
            }
            if racy {
                let r = f.load(victim.at(0));
                let r2 = f.add(r, 1);
                f.store(victim.at(0), r2);
            }
            if rmw {
                f.rmw(
                    spinrace::tir::RmwOp::Add,
                    counter.at(0),
                    1,
                    spinrace::tir::MemOrder::SeqCst,
                );
            }
        }
        f.ret(None);
    });
    let waiter = mb.function("waiter", 1, |f| {
        let head = f.new_block();
        let done = f.new_block();
        f.jump(head);
        f.switch_to(head);
        let v = f.load(flag_g.at(0));
        f.branch(v, done, head);
        f.switch_to(done);
        let d = f.load(data.at(0));
        f.output(d);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let mut tids = Vec::new();
        if flag {
            tids.push(f.spawn(waiter, 0));
        }
        for i in 0..threads {
            tids.push(f.spawn(w, i as i64));
        }
        if flag {
            f.store(data.at(0), 7);
            f.store(flag_g.at(0), 1);
        }
        for t in tids {
            f.join(t);
        }
        f.ret(None);
    });
    mb.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn parallel_replay_equals_sequential_and_live(
        threads in 1u32..4,
        iters in 1u8..4,
        lock in proptest::bool::ANY,
        flag in proptest::bool::ANY,
        racy in proptest::bool::ANY,
        rmw in proptest::bool::ANY,
        seed in proptest::option::of(0u64..1000),
    ) {
        let m = build_module(threads, iters, lock, flag, racy, rmw);
        for tool in Tool::paper_lineup() {
            let mut analyzer = Analyzer::tool(tool);
            if let Some(s) = seed {
                analyzer = analyzer.seed(s);
            }
            let live = analyzer.analyze(&m).unwrap();

            let mut session = Session::for_module(&m);
            if let Some(s) = seed {
                session = session.seed(s);
            }
            let run = session.prepare(tool).unwrap().execute().unwrap();
            let sequential = run.run(&DetectRequest::own()).into_single();
            let label = tool.label();

            // Sequential replay ≡ live (the session API's guarantee).
            prop_assert_eq!(sequential.contexts, live.contexts, "live contexts under {}", &label);
            prop_assert_eq!(&sequential.metrics, &live.metrics, "live metrics under {}", &label);

            // Parallel replay ≡ sequential replay, for every worker count
            // (1 takes the sequential fast path — the engine-forced
            // 1-worker machinery is pinned in `spinrace_core::parallel`'s
            // own tests; 3 leaves a worker owning a ragged shard subset;
            // 8 is one per shard).
            for workers in [1usize, 2, 3, 4, 8] {
                let par = run.run(&DetectRequest::own().parallel(workers)).into_single();
                prop_assert_eq!(
                    par.contexts, sequential.contexts,
                    "contexts under {} at {} workers", &label, workers
                );
                prop_assert_eq!(
                    par.reports.len(), sequential.reports.len(),
                    "report count under {} at {} workers", &label, workers
                );
                for (a, b) in par.reports.iter().zip(&sequential.reports) {
                    prop_assert_eq!(&a.location, &b.location,
                        "location under {} at {} workers", &label, workers);
                    prop_assert_eq!(&a.report, &b.report,
                        "report under {} at {} workers", &label, workers);
                }
                prop_assert_eq!(
                    &par.metrics, &sequential.metrics,
                    "metrics under {} at {} workers", &label, workers
                );
                prop_assert_eq!(
                    par.promoted_locations, sequential.promoted_locations,
                    "promotions under {} at {} workers", &label, workers
                );
                prop_assert_eq!(&par.summary, &sequential.summary);
                prop_assert_eq!(&par.tool_label, &label);
            }

            // The static schedule must land on the same bytes as the
            // balanced default (a ragged and a full-shard width suffice —
            // the schedules only differ in shard→worker placement).
            for workers in [3usize, 4] {
                let par = run
                    .run(&DetectRequest::own().parallel(workers).scheduled(Schedule::Static))
                    .into_single();
                prop_assert_eq!(
                    par.contexts, sequential.contexts,
                    "static contexts under {} at {} workers", &label, workers
                );
                prop_assert_eq!(
                    &par.metrics, &sequential.metrics,
                    "static metrics under {} at {} workers", &label, workers
                );
            }

            // The cross-tool request path too: lib and DRD share one
            // prepared module, so a lib recording can replay as DRD.
            if tool == Tool::HelgrindLib {
                let seq_drd = run.run(&DetectRequest::tool(Tool::Drd)).into_single();
                let par_drd = run.run(&DetectRequest::tool(Tool::Drd).parallel(4)).into_single();
                prop_assert_eq!(par_drd.contexts, seq_drd.contexts);
                prop_assert_eq!(&par_drd.metrics, &seq_drd.metrics);
            }
        }
    }
}

/// Replay a generated workload under one tool and check every worker
/// width × schedule against the sequential replay *and* the live run
/// (full outcome equality), returning the sequential outcome for further
/// assertions. One teed execution provides both the live detection and
/// the replayable trace.
fn workload_widths_equal_sequential(
    spec: WorkloadSpec,
    tool: Tool,
) -> (spinrace::core::AnalysisOutcome, Vec<spinrace::vm::Event>) {
    let wl = spec.build();
    let (run, live) = Session::for_module(&wl.module)
        .vm_config(spec.vm_config())
        .prepare(tool)
        .unwrap()
        .execute_detecting()
        .unwrap();
    let sequential = run.run(&DetectRequest::own()).into_single();
    assert_eq!(sequential.contexts, live.contexts, "sequential vs live");
    assert_eq!(sequential.metrics, live.metrics, "sequential vs live");
    for schedule in [Schedule::Balanced, Schedule::Static] {
        for workers in [1usize, 2, 3, 4, 8] {
            let par = run
                .run(&DetectRequest::own().parallel(workers).scheduled(schedule))
                .into_single();
            assert_eq!(
                par.contexts, sequential.contexts,
                "{workers} workers, {schedule}"
            );
            assert_eq!(par.reports.len(), sequential.reports.len());
            for (a, b) in par.reports.iter().zip(&sequential.reports) {
                assert_eq!(a.location, b.location, "{workers} workers, {schedule}");
                assert_eq!(a.report, b.report, "{workers} workers, {schedule}");
            }
            assert_eq!(
                par.metrics, sequential.metrics,
                "{workers} workers, {schedule}"
            );
            assert_eq!(
                par.promoted_locations, sequential.promoted_locations,
                "{workers} workers, {schedule}"
            );
        }
    }
    let events = run.trace().events.clone();
    (sequential, events)
}

/// Plain-*read* counts per static shadow shard — the partition the
/// parallel engine splits work along. Reads only: the zipf family's
/// skewed traffic is its shared-table read stream (each worker's private
/// accumulator writes sit on one fixed page and would mask the
/// distribution under test).
fn shard_histogram(events: &[spinrace::vm::Event]) -> [u64; NUM_SHARDS] {
    let mut hist = [0u64; NUM_SHARDS];
    for ev in events {
        if matches!(ev, spinrace::vm::Event::Read { .. }) && ev.is_plain_access() {
            if let Some(addr) = ev.data_addr() {
                hist[shard_of(addr)] += 1;
            }
        }
    }
    hist
}

/// Zipf-skewed streams at the shard-ownership seam.
///
/// The histogram assertion below documents that the skewed stream really
/// is lopsided (the hottest shard carries more than twice an even share)
/// — the imbalance the occupancy-balanced scheduler spreads across
/// workers where static modular ownership cannot. The helper holds both
/// schedules to bit-identical results at every width, so the scheduler's
/// load-balance freedom is provably invisible in the output; only the
/// wall-clock characteristics may differ between modes.
#[test]
fn zipf_skew_is_deterministic_across_widths_despite_shard_imbalance() {
    let spec = WorkloadSpec::new(Family::Zipf)
        .threads(4)
        .events_per_thread(4_000)
        .addr_space(4_096)
        .skew(3)
        .seed(11);
    let (out, events) = workload_widths_equal_sequential(spec, Tool::HelgrindLibSpin { window: 7 });
    assert_eq!(out.contexts, 0, "the zipf scaffolding is race-free");

    let hist = shard_histogram(&events);
    let total: u64 = hist.iter().sum();
    let max = *hist.iter().max().unwrap();
    assert!(total > 0);
    // With 8 shards an even split gives every shard 1/8 of the traffic;
    // skew 3 concentrates indices so hard that the hottest shard owns
    // more than 2/8. This is the imbalance static ownership cannot
    // spread and the balanced LPT plan packs around — the measured
    // motivation for the occupancy-aware scheduler.
    assert!(
        max as f64 > 2.0 * total as f64 / NUM_SHARDS as f64,
        "expected a skewed shard histogram, got {hist:?}"
    );

    // The same spec with skew 0 spreads far more evenly — the imbalance
    // above is the skew's doing, not an artifact of the address layout.
    let uniform = WorkloadSpec::new(Family::Zipf)
        .threads(4)
        .events_per_thread(4_000)
        .addr_space(4_096)
        .skew(0)
        .seed(11);
    let trace =
        spinrace::vm::record_run(&uniform.build().module, uniform.vm_config(), "u").unwrap();
    let uhist = shard_histogram(&trace.events);
    let umax = *uhist.iter().max().unwrap();
    let utotal: u64 = uhist.iter().sum();
    assert!(
        (umax as f64) < 1.5 * utotal as f64 / NUM_SHARDS as f64,
        "uniform stream should be near-even, got {uhist:?}"
    );
}

/// The stealing-mode sweep the scheduler was built for: zipf streams at
/// every skew level that concentrates traffic (2, 3, 4 — progressively
/// hotter single shards), two tools, both schedules, workers 1–8, each
/// held to sequential ≡ live with full metrics. The balanced plan packs
/// these skewed histograms differently at every width; none of it may
/// move a byte of output. Seeded variants inject real races so the
/// report merge path is exercised, not just clean streams.
#[test]
fn zipf_skew_family_is_identical_across_schedules_tools_and_widths() {
    for skew in [2u32, 3, 4] {
        for races in [0u32, 2] {
            let spec = WorkloadSpec::new(Family::Zipf)
                .threads(4)
                .events_per_thread(1_500)
                .addr_space(4_096)
                .skew(skew)
                .races(races)
                .seed(40 + skew as u64);
            for tool in [Tool::HelgrindLibSpin { window: 7 }, Tool::Drd] {
                let (out, _) = workload_widths_equal_sequential(spec, tool);
                assert_eq!(
                    out.contexts,
                    races as usize,
                    "skew {skew} races {races} under {}",
                    tool.label()
                );
            }
        }
    }
}

/// Wide-thread fan-out (≥32 threads) across the parallel engine: worker
/// counts that divide, exceed, and sit ragged against the shard count all
/// reproduce the sequential outcome, with the seeded-oracle variant
/// proving reports merge identically when 33 threads' accesses interleave.
#[test]
fn wide_thread_workloads_replay_identically_at_every_width() {
    for (threads, races) in [(32u32, 0u32), (33, 3)] {
        let spec = WorkloadSpec::new(Family::Fanout)
            .threads(threads)
            .events_per_thread(150)
            .addr_space(2_048)
            .races(races)
            .seed(threads as u64);
        for tool in [Tool::HelgrindLibSpin { window: 7 }, Tool::Drd] {
            let (out, _) = workload_widths_equal_sequential(spec, tool);
            assert_eq!(
                out.contexts,
                races as usize,
                "{threads} threads under {}",
                tool.label()
            );
        }
    }
}
