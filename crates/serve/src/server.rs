//! The analysis server: a bounded worker pool multiplexing concurrent
//! upload sessions, with a global core budget shared by every session's
//! replay engine.
//!
//! Architecture (the command/event-queue idiom): an **acceptor** thread
//! pushes accepted connections onto a command queue; `sessions` worker
//! threads pop connections and run one [`handle_session`] each to
//! completion; every worker reports [`SessionEvent`]s back on an event
//! channel the embedding CLI drains for logging. Worker threads never
//! die with a session — a failed upload produces an `E` frame and the
//! worker loops back to the queue, so a mid-upload disconnect frees its
//! slot for the next client.

use crate::outcome_json;
use crate::wire::{
    read_request, wire_error, write_frame, DetectParams, FrameKind, WireError, PROTOCOL_VERSION,
};
use spinrace_core::{AnalyzeError, Budget, DetectRequest, Schedule, Tool};
use spinrace_detector::MsmMode;
use spinrace_tracefmt::ChunkedTraceReader;
use std::io::{self, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server-side session limits and pool sizing.
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Concurrent session slots (worker threads popping the accept
    /// queue).
    pub sessions: usize,
    /// Global core budget shared by every session's replay engine. A
    /// parallel session claims up to its requested worker count from
    /// the free pool and releases it at session end; when the pool is
    /// empty a session still gets one core (bounded overcommit keeps
    /// the server live instead of deadlocking on admission).
    pub cores: usize,
    /// Server-wide event ceiling per session (`None` = unlimited). A
    /// client's requested ceiling is clamped to this.
    pub max_events: Option<u64>,
    /// Server-wide shadow-byte ceiling per session.
    pub max_shadow_bytes: Option<usize>,
    /// Server-wide watchdog per session, in milliseconds.
    pub watchdog_ms: Option<u64>,
    /// Socket read timeout per session in milliseconds (`None` = no
    /// timeout). A client that stalls mid-upload fails its session with
    /// the stable `timeout` wire code instead of pinning a slot
    /// forever.
    pub read_timeout_ms: Option<u64>,
    /// Socket write timeout per session in milliseconds (`None` = no
    /// timeout) — the response-side counterpart of `read_timeout_ms`.
    pub write_timeout_ms: Option<u64>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            sessions: 4,
            cores: spinrace_core::default_workers(),
            max_events: None,
            max_shadow_bytes: None,
            watchdog_ms: None,
            read_timeout_ms: Some(60_000),
            write_timeout_ms: Some(60_000),
        }
    }
}

/// Lifecycle notifications a running server emits, one per session
/// transition, for the embedding CLI's log line.
#[derive(Clone, Debug)]
pub enum SessionEvent {
    /// A connection was popped off the queue by a worker.
    Started {
        /// Peer address (best effort).
        peer: String,
    },
    /// A session completed and sent its `D` frame.
    Finished {
        /// Peer address.
        peer: String,
        /// Outcome documents sent.
        outcomes: usize,
        /// Events replayed.
        events: u64,
    },
    /// A session failed and sent (or tried to send) an `E` frame.
    Failed {
        /// Peer address.
        peer: String,
        /// The structured error code.
        code: String,
    },
}

/// The global core budget: a free-core counter sessions claim from and
/// release to. When the pool is empty, [`CoreBudget::claim`] still
/// grants one core (recorded as claiming zero) so admission never
/// deadlocks — a deliberate bounded overcommit.
pub struct CoreBudget {
    free: AtomicUsize,
}

impl CoreBudget {
    /// A fresh pool of `cores` free cores (at least one).
    pub fn new(cores: usize) -> CoreBudget {
        CoreBudget {
            free: AtomicUsize::new(cores.max(1)),
        }
    }

    /// Claim up to `requested` cores: returns `(granted, claimed)`
    /// where `granted ≥ 1` is what the session may use and `claimed ≤
    /// granted` is what must be released.
    pub fn claim(&self, requested: usize) -> (usize, usize) {
        let want = requested.max(1);
        let mut free = self.free.load(Ordering::Relaxed);
        loop {
            let take = want.min(free);
            if take == 0 {
                return (1, 0);
            }
            match self.free.compare_exchange_weak(
                free,
                free - take,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return (take, take),
                Err(now) => free = now,
            }
        }
    }

    /// Return `claimed` cores to the pool.
    pub fn release(&self, claimed: usize) {
        self.free.fetch_add(claimed, Ordering::Relaxed);
    }

    /// Claim up to `requested` cores as an RAII guard: the claim is
    /// released when the guard drops, so every session exit path —
    /// early error returns and panics unwinding through the session
    /// body alike — returns its cores to the pool.
    pub fn claim_guard(&self, requested: usize) -> CoreClaim<'_> {
        let (granted, claimed) = self.claim(requested);
        CoreClaim {
            budget: self,
            granted,
            claimed,
        }
    }

    /// Cores currently free (observability for tests and admission
    /// logging; racy by nature, exact once the pool is quiescent).
    pub fn free(&self) -> usize {
        self.free.load(Ordering::Relaxed)
    }
}

/// An RAII claim on a [`CoreBudget`]: see [`CoreBudget::claim_guard`].
pub struct CoreClaim<'a> {
    budget: &'a CoreBudget,
    granted: usize,
    claimed: usize,
}

impl CoreClaim<'_> {
    /// Worker threads the session may use (always at least one).
    pub fn granted(&self) -> usize {
        self.granted
    }
}

impl Drop for CoreClaim<'_> {
    fn drop(&mut self) {
        self.budget.release(self.claimed);
    }
}

/// A running server: join handles plus the shutdown switch.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    events: Receiver<SessionEvent>,
}

impl ServerHandle {
    /// The bound address (useful with a `:0` request).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The session lifecycle event stream.
    pub fn events(&self) -> &Receiver<SessionEvent> {
        &self.events
    }

    /// Stop accepting, drain in-flight sessions, and join every thread.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Bind `addr` and start the acceptor + session worker pool.
pub fn serve(addr: &str, opts: ServeOptions) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let (conn_tx, conn_rx) = channel::<TcpStream>();
    let conn_rx = Arc::new(Mutex::new(conn_rx));
    let (event_tx, event_rx) = channel::<SessionEvent>();
    let cores = Arc::new(CoreBudget::new(opts.cores));

    let mut threads = Vec::new();
    {
        let shutdown = Arc::clone(&shutdown);
        threads.push(std::thread::spawn(move || {
            for conn in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = conn {
                    // A closed queue means the pool is gone; stop.
                    if conn_tx.send(stream).is_err() {
                        break;
                    }
                }
            }
            // Dropping conn_tx closes the queue and drains the workers.
        }));
    }
    for _ in 0..opts.sessions.max(1) {
        let conn_rx = Arc::clone(&conn_rx);
        let event_tx = event_tx.clone();
        let cores = Arc::clone(&cores);
        threads.push(std::thread::spawn(move || loop {
            let conn = {
                let guard = conn_rx.lock().unwrap_or_else(|e| e.into_inner());
                guard.recv()
            };
            let Ok(stream) = conn else { return };
            let peer = stream
                .peer_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "?".into());
            let _ = event_tx.send(SessionEvent::Started {
                peer: clone_peer(&peer),
            });
            let result = run_tcp_session(stream, opts, &cores);
            let _ = event_tx.send(match result {
                Ok((outcomes, events)) => SessionEvent::Finished {
                    peer,
                    outcomes,
                    events,
                },
                Err(code) => SessionEvent::Failed { peer, code },
            });
        }));
    }

    Ok(ServerHandle {
        addr: local,
        shutdown,
        threads,
        events: event_rx,
    })
}

fn clone_peer(peer: &str) -> String {
    peer.to_string()
}

/// Run one accepted connection: split it into read/write halves and
/// hand off to the transport-agnostic session handler.
fn run_tcp_session(
    stream: TcpStream,
    opts: ServeOptions,
    cores: &CoreBudget,
) -> Result<(usize, u64), String> {
    // An idle or wedged client must not pin a session slot forever.
    let to_duration = |ms: Option<u64>| ms.filter(|&ms| ms > 0).map(Duration::from_millis);
    let _ = stream.set_read_timeout(to_duration(opts.read_timeout_ms));
    let _ = stream.set_write_timeout(to_duration(opts.write_timeout_ms));
    let input = stream.try_clone().map_err(|e| e.to_string())?;
    let mut output = BufWriter::new(stream);
    handle_session(input, &mut output, opts, cores)
}

/// Serve exactly one session over arbitrary transport: read the request
/// frame and the trace stream from `input`, write response frames to
/// `output`. Returns `(outcome count, events replayed)` on success and
/// the structured error code on failure (after the `E` frame has been
/// sent on a best-effort basis — the peer may already be gone).
///
/// This is the stdin/stdout entry point as well as the per-connection
/// body of the TCP pool.
pub fn handle_session<R: Read + Send, W: Write>(
    input: R,
    output: &mut W,
    opts: ServeOptions,
    cores: &CoreBudget,
) -> Result<(usize, u64), String> {
    let mut input = TimeoutFlagged {
        inner: input,
        timed_out: false,
    };
    let fail = |output: &mut W, err: WireError| -> Result<(usize, u64), String> {
        let payload = serde_json::to_string(&err.to_json()).unwrap_or_default();
        let _ = write_frame(output, FrameKind::Error, payload.as_bytes());
        Err(err.code)
    };

    let body = match read_request(&mut input) {
        Ok(v) => v,
        Err(msg) => {
            let err = timeout_override(input.timed_out, WireError::bad_request(msg));
            return fail(output, err);
        }
    };
    let params = match DetectParams::from_value(&body) {
        Ok(p) => p,
        Err(msg) => return fail(output, WireError::bad_request(msg)),
    };
    let mut tools: Vec<Tool> = Vec::new();
    for label in &params.tools {
        match label.parse::<Tool>() {
            Ok(t) => tools.push(t),
            Err(_) => {
                return fail(
                    output,
                    WireError::bad_request(format!("unknown tool {label:?}")),
                )
            }
        }
    }

    let claim = cores.claim_guard(params.workers);
    let result = session_body(&mut input, output, opts, &params, &tools, claim.granted());
    drop(claim);
    match result {
        Ok(done) => Ok(done),
        Err(err) => {
            let err = timeout_override(input.timed_out, err);
            fail(output, err)
        }
    }
}

/// The session input stream, remembering whether any read failed with a
/// socket timeout. The `io::ErrorKind` is erased long before a stalled
/// upload surfaces as a session error (a timeout during the trace magic
/// read even reports as `TraceError::Magic`), so the transport records
/// the fact at the source and the session maps the final error to the
/// stable `timeout` wire code.
struct TimeoutFlagged<R> {
    inner: R,
    timed_out: bool,
}

impl<R: Read> Read for TimeoutFlagged<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let result = self.inner.read(buf);
        if let Err(e) = &result {
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) {
                self.timed_out = true;
            }
        }
        result
    }
}

/// Rewrite a session error as the stable `timeout` code when the input
/// stream recorded a socket timeout: once a read has timed out the
/// session is unrecoverable, and whatever shape the failure took
/// downstream, the cause the client must see is the stall.
fn timeout_override(timed_out: bool, err: WireError) -> WireError {
    if !timed_out {
        return err;
    }
    WireError {
        code: "timeout".into(),
        message: format!("session read timed out ({})", err.message),
        partial: err.partial,
    }
}

/// The request-to-verdicts body, with cores already claimed. Every
/// failure maps to one structured [`WireError`].
fn session_body<R: Read + Send, W: Write>(
    input: &mut R,
    output: &mut W,
    opts: ServeOptions,
    params: &DetectParams,
    tools: &[Tool],
    granted_workers: usize,
) -> Result<(usize, u64), WireError> {
    let send =
        |output: &mut W, kind: FrameKind, doc: &serde_json::Value| -> Result<(), WireError> {
            let payload = serde_json::to_string(doc).map_err(|e| WireError {
                code: "internal".into(),
                message: e.0,
                partial: None,
            })?;
            write_frame(output, kind, payload.as_bytes()).map_err(|e| WireError {
                code: "io".into(),
                message: e.to_string(),
                partial: None,
            })
        };

    let hello = serde_json::json!({
        "protocol": PROTOCOL_VERSION,
        "server": "spinrace-serve",
        "workers": granted_workers as u64,
    });
    send(output, FrameKind::Hello, &hello)?;

    // The trace bytes follow the request frame directly: decode them
    // off the stream.
    let reader =
        ChunkedTraceReader::new(&mut *input).map_err(|e| wire_error(&AnalyzeError::Trace(e)))?;

    let msm = if params.long_msm {
        MsmMode::Long
    } else {
        MsmMode::Short
    };
    let Some(prepared) =
        spinrace_suites::prepared_for_replay(reader.header(), tools[0], msm, params.cap)
    else {
        return Err(WireError {
            code: "unknown-module".into(),
            message: format!(
                "cannot rebuild module {:?} from the trace header (unknown program or \
                 fingerprint drift)",
                reader.header().module_name
            ),
            partial: None,
        });
    };

    // Client limits clamp under the server-wide ceilings.
    let budget = Budget {
        max_events: min_opt(params.max_events, opts.max_events),
        max_shadow_bytes: min_opt(params.max_shadow_bytes, opts.max_shadow_bytes),
    };
    let watchdog_ms = min_opt(params.watchdog_ms, opts.watchdog_ms);

    let mut req = DetectRequest::tools(tools).budget(budget);
    if let Some(ms) = watchdog_ms {
        req = req.watchdog(Duration::from_millis(ms));
    }
    if params.schedule.as_deref() == Some("static") {
        req = req.scheduled(Schedule::Static);
    }

    if params.workers == 0 {
        // Streamed session: verdicts flow as chunks decode, before the
        // upload has finished.
        let req = req.streamed();
        let mut frame_err: Option<io::Error> = None;
        let result = prepared.try_run_streamed_observed(&req, reader, |p| {
            if frame_err.is_some() {
                return;
            }
            let verdict = serde_json::json!({
                "tool": p.tool_label,
                "chunk": p.chunk as u64,
                "events": p.events,
                "contexts": p.contexts as u64,
                "new_reports": p.new_reports.len() as u64,
            });
            let payload = serde_json::to_string(&verdict).unwrap_or_default();
            if let Err(e) = write_frame(output, FrameKind::Verdict, payload.as_bytes()) {
                frame_err = Some(e);
            }
        });
        let (out, stats) = result.map_err(|e| wire_error(&e))?;
        if let Some(e) = frame_err {
            return Err(WireError {
                code: "io".into(),
                message: e.to_string(),
                partial: None,
            });
        }
        let outcomes = out.into_vec();
        for o in &outcomes {
            send_outcome(output, o)?;
        }
        let done = serde_json::json!({
            "outcomes": outcomes.len() as u64,
            "events": stats.events,
            "chunks": stats.chunks as u64,
            "peak_resident_bytes": stats.peak_resident_bytes as u64,
        });
        send(output, FrameKind::Done, &done)?;
        Ok((outcomes.len(), stats.events))
    } else {
        // Parallel session: materialize the stream, replay on the
        // sharded engine with the granted worker count.
        let trace = reader
            .read_all()
            .map_err(|e| wire_error(&AnalyzeError::Trace(e)))?;
        let events = trace.events.len() as u64;
        let run =
            spinrace_core::ExecutedRun::from_trace(prepared, trace).map_err(|e| wire_error(&e))?;
        let req = req.parallel(granted_workers);
        let out = run
            .try_run(&req)
            .map_err(|e| wire_error(&AnalyzeError::from(e)))?;
        let outcomes = out.into_vec();
        for o in &outcomes {
            send_outcome(output, o)?;
        }
        let done = serde_json::json!({
            "outcomes": outcomes.len() as u64,
            "events": events,
        });
        send(output, FrameKind::Done, &done)?;
        Ok((outcomes.len(), events))
    }
}

/// Send one `O` frame. The payload is the `spinrace-detection-v1`
/// document rendered exactly as `trace replay --json` writes it
/// (pretty-printed plus a trailing newline), so clients can byte-
/// compare against offline replays.
fn send_outcome<W: Write>(
    output: &mut W,
    out: &spinrace_core::AnalysisOutcome,
) -> Result<(), WireError> {
    let text = serde_json::to_string_pretty(&outcome_json(out)).map_err(|e| WireError {
        code: "internal".into(),
        message: e.0,
        partial: None,
    })? + "\n";
    write_frame(output, FrameKind::Outcome, text.as_bytes()).map_err(|e| WireError {
        code: "io".into(),
        message: e.to_string(),
        partial: None,
    })
}

fn min_opt<T: Ord + Copy>(a: Option<T>, b: Option<T>) -> Option<T> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}
