//! A minimal blocking client for the serve protocol: upload one trace,
//! collect the response frames, and hand back the final outcome
//! documents byte-for-byte as the server rendered them.

use crate::wire::{read_frame, write_request, FrameKind, WireError};
use serde_json::Value;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};

/// Everything one session produced, in arrival order.
#[derive(Debug, Default)]
pub struct ClientOutcome {
    /// The server's `H` hello document.
    pub hello: Option<Value>,
    /// Count of incremental `V` verdict frames received.
    pub verdicts: usize,
    /// `(tool label, payload)` per `O` frame — the payload is the
    /// pretty-printed `spinrace-detection-v1` document plus trailing
    /// newline, byte-identical to `trace replay --json` output.
    pub outcomes: Vec<(String, String)>,
    /// The structured error, if the session failed.
    pub error: Option<WireError>,
    /// The `D` done document, if the session succeeded.
    pub done: Option<Value>,
}

impl ClientOutcome {
    /// True when the session ended with a `D` frame and no error.
    pub fn succeeded(&self) -> bool {
        self.error.is_none() && self.done.is_some()
    }
}

/// Connect to `addr`, upload the request and the encoded trace, and
/// read frames until the session's terminal `D` or `E` frame (or EOF).
pub fn run_client(addr: &str, params: &Value, trace_bytes: &[u8]) -> io::Result<ClientOutcome> {
    let mut stream = TcpStream::connect(addr)?;
    let reader = stream.try_clone()?;
    write_request(&mut stream, params)?;
    // Best-effort upload, ending in a half-close so the server's reader
    // sees clean EOF after the last chunk (its trailing-byte check
    // depends on it). A server that already rejected the session closes
    // its end mid-upload, failing these writes — the structured error
    // frame it sent first must win over the local pipe error.
    let upload = stream
        .write_all(trace_bytes)
        .and_then(|()| stream.flush())
        .and_then(|()| stream.shutdown(Shutdown::Write));
    let out = collect_frames(reader)?;
    match upload {
        Err(e) if out.error.is_none() && out.done.is_none() => Err(e),
        _ => Ok(out),
    }
}

/// Drive one already-connected session transcript from any byte stream
/// (used by the stdin transport and the tests).
pub fn collect_frames<R: Read>(mut input: R) -> io::Result<ClientOutcome> {
    let mut out = ClientOutcome::default();
    while let Some((kind, payload)) = read_frame(&mut input)? {
        let text = String::from_utf8_lossy(&payload).into_owned();
        match kind {
            FrameKind::Hello => {
                out.hello = serde_json::from_str(&text).ok();
            }
            FrameKind::Verdict => {
                out.verdicts += 1;
            }
            FrameKind::Outcome => {
                let tool = serde_json::from_str::<Value>(&text)
                    .ok()
                    .and_then(|v| v["tool"].as_str().map(str::to_string))
                    .unwrap_or_default();
                out.outcomes.push((tool, text));
            }
            FrameKind::Error => {
                let doc = serde_json::from_str::<Value>(&text)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.0))?;
                out.error = Some(WireError::from_json(&doc));
                break;
            }
            FrameKind::Done => {
                out.done = serde_json::from_str(&text).ok();
                break;
            }
        }
    }
    Ok(out)
}
