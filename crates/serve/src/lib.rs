//! # spinrace-serve — detection as a service
//!
//! A long-lived analysis server that accepts framed binary trace
//! uploads (the `spinrace-tracefmt` chunk encoding) over TCP or stdin,
//! multiplexes concurrent sessions across a bounded worker pool, and
//! streams verdicts back incrementally as chunks decode — `O(chunk)`
//! resident memory per client.
//!
//! ## Protocol
//!
//! A session is one upload. The client sends a request frame — the
//! magic `SPRQ`, a `u32` little-endian length, and a JSON body naming
//! the detectors and limits (see [`DetectParams`]) — followed
//! immediately by the binary trace stream, then half-closes its write
//! side. The server responds with tagged frames, each a one-byte tag
//! plus `u32` little-endian length plus payload:
//!
//! | tag | frame | payload |
//! |-----|-------|---------|
//! | `H` | hello | `{"protocol":1,"server":...,"workers":N}` |
//! | `V` | verdict | incremental per-chunk progress (streamed sessions) |
//! | `O` | outcome | a `spinrace-detection-v1` document, byte-identical to `trace replay --json` |
//! | `E` | error | `{"code","message"[,"partial"]}` — structured [`EngineError`]/[`TraceError`] mapping |
//! | `D` | done | session summary |
//!
//! Every session ends with exactly one `D` or `E` frame. Budgets in the
//! request are clamped under the server-wide ceilings in
//! [`ServeOptions`]; a session that exceeds its event budget gets an
//! `E` frame with `code = "budget-exhausted"` carrying partial metrics.
//! A client that stalls past the server's read timeout gets
//! `code = "timeout"`; a request that asks the parallel engine to run
//! the sequential-only predictive tool gets `code = "unsupported"`.
//!
//! The server's request type *is* the engine API: each session is
//! compiled into a [`spinrace_core::DetectRequest`] and executed
//! through [`spinrace_core::ExecutedRun::try_run`] (parallel sessions)
//! or [`spinrace_core::PreparedModule::try_run_streamed_observed`]
//! (streamed sessions, the `workers = 0` default).
//!
//! [`EngineError`]: spinrace_core::EngineError
//! [`TraceError`]: spinrace_vm::TraceError

mod client;
mod server;
mod wire;

pub use client::{collect_frames, run_client, ClientOutcome};
pub use server::{
    handle_session, serve, CoreBudget, CoreClaim, ServeOptions, ServerHandle, SessionEvent,
};
pub use wire::{
    engine_error_code, read_frame, read_request, trace_error_code, wire_error, write_frame,
    write_request, DetectParams, FrameKind, WireError, MAX_FRAME_LEN, PROTOCOL_VERSION,
    REQUEST_MAGIC,
};

use spinrace_core::AnalysisOutcome;

/// Serve one session over stdin/stdout (the `trace serve --stdin`
/// transport): same framing as TCP, one session, then exit.
pub fn serve_stdin(opts: ServeOptions) -> Result<(usize, u64), String> {
    let cores = CoreBudget::new(opts.cores);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut output = std::io::BufWriter::new(stdout.lock());
    handle_session(stdin, &mut output, opts, &cores)
}

/// The stable detection-outcome schema shared by the `trace` CLI
/// (`record --json` / `replay --json`) and the server's `O` frames: if
/// two runs report identical results, their JSON is byte-identical.
pub fn outcome_json(out: &AnalysisOutcome) -> serde_json::Value {
    let reports: Vec<serde_json::Value> = out
        .reports
        .iter()
        .map(|r| {
            serde_json::json!({
                "location": r.location.as_str(),
                "report": r.report,
            })
        })
        .collect();
    serde_json::json!({
        "schema": "spinrace-detection-v1",
        "module": out.module_name.as_str(),
        "tool": out.tool_label.as_str(),
        "contexts": out.contexts as u64,
        "promoted_locations": out.promoted_locations as u64,
        "spin_loops_found": out.spin_loops_found as u64,
        "reports": serde_json::Value::Seq(reports),
        "metrics": out.metrics,
        "summary": out.summary,
    })
}
