//! The wire protocol: framed request/response messages around a raw
//! binary trace upload.
//!
//! A session is one connection. The client sends one **request frame**
//! (magic `SPRQ`, a little-endian `u32` length, and a JSON body), then
//! the raw `spinrace-tracefmt` byte stream (magic `SPINRTRC`, chunked),
//! then half-closes its write side — the trace decoder's own
//! end-of-stream validation doubles as the upload terminator. The
//! server answers with a sequence of **response frames**, each a one-
//! byte kind tag, a little-endian `u32` payload length, and the
//! payload:
//!
//! | kind | payload |
//! |------|---------|
//! | `H`  | hello JSON: `{"protocol":1,"server":…,"workers":N}` |
//! | `V`  | incremental verdict JSON (streamed sessions, one per decoded chunk per tool) |
//! | `O`  | final detection outcome: the `spinrace-detection-v1` document, byte-identical to `trace replay --json` |
//! | `E`  | error JSON: `{"code":…,"message":…}` plus `partial` metrics on budget trips |
//! | `D`  | done JSON: `{"outcomes":N,"events":…}` |
//!
//! A session ends with exactly one `D` or one `E` frame.

use spinrace_core::{AnalyzeError, EngineError};
use spinrace_vm::TraceError;
use std::io::{self, Read, Write};

/// Magic prefix of a request frame.
pub const REQUEST_MAGIC: [u8; 4] = *b"SPRQ";

/// Protocol revision spoken by this crate.
pub const PROTOCOL_VERSION: u64 = 1;

/// Largest accepted frame payload. Request bodies are tiny JSON; the
/// cap keeps a corrupt length from driving an unbounded allocation.
pub const MAX_FRAME_LEN: u32 = 1 << 26;

/// Response frame kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// Session accepted; protocol/server info.
    Hello,
    /// Incremental verdict (streamed sessions).
    Verdict,
    /// Final per-tool detection outcome document.
    Outcome,
    /// Structured error; terminates the session.
    Error,
    /// Successful completion; terminates the session.
    Done,
}

impl FrameKind {
    /// The wire tag byte.
    pub fn tag(self) -> u8 {
        match self {
            FrameKind::Hello => b'H',
            FrameKind::Verdict => b'V',
            FrameKind::Outcome => b'O',
            FrameKind::Error => b'E',
            FrameKind::Done => b'D',
        }
    }

    /// Parse a wire tag byte.
    pub fn from_tag(tag: u8) -> Option<FrameKind> {
        Some(match tag {
            b'H' => FrameKind::Hello,
            b'V' => FrameKind::Verdict,
            b'O' => FrameKind::Outcome,
            b'E' => FrameKind::Error,
            b'D' => FrameKind::Done,
            _ => return None,
        })
    }
}

/// Write one response frame.
pub fn write_frame(w: &mut dyn Write, kind: FrameKind, payload: &[u8]) -> io::Result<()> {
    w.write_all(&[kind.tag()])?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one response frame: `(kind, payload)`, or `None` on a clean
/// end-of-stream before any byte of a frame.
pub fn read_frame(r: &mut dyn Read) -> io::Result<Option<(FrameKind, Vec<u8>)>> {
    let mut tag = [0u8; 1];
    match r.read(&mut tag) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(e),
    }
    let kind = FrameKind::from_tag(tag[0])
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "unknown frame tag"))?;
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME_LEN",
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some((kind, payload)))
}

/// Write the client's request frame (magic + length + JSON body).
pub fn write_request(w: &mut dyn Write, body: &serde_json::Value) -> io::Result<()> {
    let text =
        serde_json::to_string(body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.0))?;
    w.write_all(&REQUEST_MAGIC)?;
    w.write_all(&(text.len() as u32).to_le_bytes())?;
    w.write_all(text.as_bytes())?;
    w.flush()
}

/// Read and parse the request frame off the head of a session stream.
pub fn read_request(r: &mut dyn Read) -> Result<serde_json::Value, String> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)
        .map_err(|e| format!("cannot read request magic: {e}"))?;
    if magic != REQUEST_MAGIC {
        return Err("bad request magic (expected SPRQ)".into());
    }
    let mut len = [0u8; 4];
    r.read_exact(&mut len)
        .map_err(|e| format!("cannot read request length: {e}"))?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME_LEN {
        return Err("request body exceeds MAX_FRAME_LEN".into());
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)
        .map_err(|e| format!("cannot read request body: {e}"))?;
    let text = std::str::from_utf8(&body).map_err(|_| "request body is not UTF-8".to_string())?;
    serde_json::from_str::<serde_json::Value>(text)
        .map_err(|e| format!("bad request JSON: {}", e.0))
}

/// The parsed request body: which detectors to run, how, and under
/// which per-session limits. Parsed leniently — unknown fields are
/// ignored, absent fields default.
#[derive(Clone, Debug)]
pub struct DetectParams {
    /// Tool labels to fan detection out over (short forms accepted).
    pub tools: Vec<String>,
    /// Worker threads for the replay engine. `0` (the default) streams
    /// the upload chunk-by-chunk through a sequential pass with
    /// incremental `V` frames; `N ≥ 1` materializes the stream and
    /// replays on the parallel engine.
    pub workers: usize,
    /// `"static"` or `"balanced"` (the default).
    pub schedule: Option<String>,
    /// Client-requested event ceiling (`None` = server default).
    pub max_events: Option<u64>,
    /// Client-requested shadow-byte ceiling (`None` = server default).
    pub max_shadow_bytes: Option<usize>,
    /// Client-requested watchdog in milliseconds (`None` = server
    /// default).
    pub watchdog_ms: Option<u64>,
    /// Run detectors in long-MSM mode.
    pub long_msm: bool,
    /// Racy-context cap (default 1000, matching the session default).
    pub cap: usize,
}

impl Default for DetectParams {
    fn default() -> DetectParams {
        DetectParams {
            tools: Vec::new(),
            workers: 0,
            schedule: None,
            max_events: None,
            max_shadow_bytes: None,
            watchdog_ms: None,
            long_msm: false,
            cap: 1000,
        }
    }
}

impl DetectParams {
    /// Parse a request body. Errors name the offending field.
    pub fn from_value(v: &serde_json::Value) -> Result<DetectParams, String> {
        let mut p = DetectParams::default();
        match v["tools"].as_array() {
            Some(tools) => {
                for t in tools {
                    match t.as_str() {
                        Some(s) => p.tools.push(s.to_string()),
                        None => return Err("tools entries must be strings".into()),
                    }
                }
            }
            None if v["tools"].is_null() => {}
            None => return Err("tools must be an array of strings".into()),
        }
        if p.tools.is_empty() {
            return Err("tools must name at least one detector".into());
        }
        if !v["workers"].is_null() {
            p.workers = v["workers"]
                .as_u64()
                .ok_or("workers must be a non-negative integer")? as usize;
        }
        if let Some(s) = v["schedule"].as_str() {
            if s != "static" && s != "balanced" {
                return Err(format!("schedule must be static or balanced, got {s:?}"));
            }
            p.schedule = Some(s.to_string());
        }
        if !v["max_events"].is_null() {
            p.max_events = Some(
                v["max_events"]
                    .as_u64()
                    .ok_or("max_events must be a non-negative integer")?,
            );
        }
        if !v["max_shadow_bytes"].is_null() {
            p.max_shadow_bytes = Some(
                v["max_shadow_bytes"]
                    .as_u64()
                    .ok_or("max_shadow_bytes must be a non-negative integer")?
                    as usize,
            );
        }
        if !v["watchdog_ms"].is_null() {
            p.watchdog_ms = Some(
                v["watchdog_ms"]
                    .as_u64()
                    .ok_or("watchdog_ms must be a non-negative integer")?,
            );
        }
        if !v["long_msm"].is_null() {
            p.long_msm = v["long_msm"]
                .as_bool()
                .ok_or("long_msm must be a boolean")?;
        }
        if !v["cap"].is_null() {
            p.cap = v["cap"]
                .as_u64()
                .ok_or("cap must be a non-negative integer")? as usize;
        }
        Ok(p)
    }
}

/// A structured protocol error: the payload of an `E` frame.
#[derive(Clone, Debug)]
pub struct WireError {
    /// Stable machine-readable code (see [`trace_error_code`] and
    /// [`engine_error_code`]).
    pub code: String,
    /// Human-readable description.
    pub message: String,
    /// Partial metrics, present on budget trips.
    pub partial: Option<(u64, u64, u64)>,
}

impl WireError {
    /// A `bad-request` error.
    pub fn bad_request(message: impl Into<String>) -> WireError {
        WireError {
            code: "bad-request".into(),
            message: message.into(),
            partial: None,
        }
    }

    /// Render the `E` frame payload.
    pub fn to_json(&self) -> serde_json::Value {
        let mut doc = serde_json::json!({
            "code": self.code.as_str(),
            "message": self.message.as_str(),
        });
        if let Some((events, contexts, shadow)) = self.partial {
            if let serde_json::Value::Map(entries) = &mut doc {
                entries.push((
                    serde_json::Value::Str("partial".into()),
                    serde_json::json!({
                        "events_processed": events,
                        "contexts": contexts,
                        "shadow_bytes": shadow,
                    }),
                ));
            }
        }
        doc
    }

    /// Parse an `E` frame payload.
    pub fn from_json(v: &serde_json::Value) -> WireError {
        let partial = if v["partial"].is_null() {
            None
        } else {
            Some((
                v["partial"]["events_processed"].as_u64().unwrap_or(0),
                v["partial"]["contexts"].as_u64().unwrap_or(0),
                v["partial"]["shadow_bytes"].as_u64().unwrap_or(0),
            ))
        };
        WireError {
            code: v["code"].as_str().unwrap_or("internal").to_string(),
            message: v["message"].as_str().unwrap_or("").to_string(),
            partial,
        }
    }
}

/// The stable error code for a trace decode failure.
pub fn trace_error_code(e: &TraceError) -> &'static str {
    match e {
        TraceError::Magic => "magic",
        TraceError::Version { .. } => "version",
        TraceError::Checksum { .. } => "checksum",
        TraceError::ChunkCount { .. } => "chunk-count",
        TraceError::EventCount { .. } => "event-count",
        TraceError::Corrupt(_) => "corrupt",
        TraceError::Json(_) => "json",
        TraceError::Io(_) => "io",
    }
}

/// The stable error code for an engine failure.
pub fn engine_error_code(e: &EngineError) -> &'static str {
    match e {
        EngineError::WorkerPanic { .. } => "worker-panic",
        EngineError::HandoffTimeout { .. } => "handoff-timeout",
        EngineError::WorkerLost { .. } => "worker-lost",
        EngineError::Watchdog { .. } => "watchdog",
        EngineError::BudgetExhausted { .. } => "budget-exhausted",
        EngineError::Unsupported { .. } => "unsupported",
        EngineError::Trace(t) => trace_error_code(t),
    }
}

/// Map an analysis failure to its wire error, carrying partial metrics
/// on budget trips.
pub fn wire_error(e: &AnalyzeError) -> WireError {
    let code = match e {
        AnalyzeError::Trace(t) => trace_error_code(t),
        AnalyzeError::TraceMismatch { .. } => "mismatch",
        AnalyzeError::Engine(eng) => engine_error_code(eng),
        AnalyzeError::Lower(_) | AnalyzeError::Vm(_) => "internal",
    };
    let partial = match e {
        AnalyzeError::Engine(EngineError::BudgetExhausted { partial, .. }) => Some((
            partial.events_processed,
            partial.contexts as u64,
            partial.shadow_bytes as u64,
        )),
        _ => None,
    };
    WireError {
        code: code.to_string(),
        message: e.to_string(),
        partial,
    }
}
