//! `spinrace-tracefmt` — the binary columnar trace encoding.
//!
//! The JSON encoding in `spinrace-vm` is self-describing and diffable,
//! but at ~100+ bytes per event it dominates disk and parse time for
//! million-event streams. This crate adds a compact binary format with
//! the same information content, built for the record-once /
//! replay-everywhere pipeline:
//!
//! ```text
//! +-----------------------------------------------------------------+
//! | magic "SPINRTRC" | binary version (u32 LE)                      |
//! | header JSON  (varint len + bytes)   <- TraceHeader, verbatim    |
//! | summary JSON (varint len + bytes)   <- RunSummary, verbatim     |
//! | chunk count (u32 LE) | chunk target (u32 LE) | FNV-1a (u64 LE)  |
//! +-----------------------------------------------------------------+
//! | chunk 0: event count (u32 LE) | column count (varint)           |
//! |          column 0 .. 14: varint length + block bytes            |
//! |          FNV-1a checksum over the framed chunk (u64 LE)         |
//! +-----------------------------------------------------------------+
//! | chunk 1 ... chunk N-1   (same framing, fresh codec state each)  |
//! +-----------------------------------------------------------------+
//! ```
//!
//! Design choices, and why:
//!
//! * **Columnar (struct-of-arrays)**: like fields compress together.
//!   Thread ids, addresses and barrier generations are near-monotone
//!   streams → zigzag delta + LEB128 varint makes most entries one
//!   byte. Program counters and call-chain hashes repeat heavily → a
//!   per-chunk dictionary plus varint indices.
//! * **Fixed-target-size chunks** (default 64k events): every chunk
//!   carries its own column lengths and an FNV-1a checksum and resets
//!   all codec state, so chunks decode independently. That enables the
//!   streaming reader (decode one chunk ahead of the detector, O(chunk)
//!   peak memory) and localizes corruption detection to a single chunk.
//! * **Header/summary embedded as JSON**: tiny compared to the stream,
//!   and reuses the already-versioned serde encoding — `trace inspect`
//!   on a binary file shows exactly what the JSON form would.
//!
//! [`encode_trace`] / [`decode_trace`] convert to and from the in-memory
//! [`Trace`]; [`reader::ChunkedTraceReader`] streams chunks from any
//! [`std::io::Read`]; [`sniff_format`] tells the two on-disk encodings
//! apart by their first bytes so CLI commands accept either.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunk;
pub mod reader;
pub mod varint;

pub use reader::{chunk_mem, ChunkedTraceReader, StreamStats};

use spinrace_vm::{Trace, TraceError};
use std::io::Write as _;
use std::path::Path;

/// First eight bytes of every binary trace file.
pub const MAGIC: [u8; 8] = *b"SPINRTRC";

/// Version of the binary container (framing + column codecs). Bumped
/// independently of the logical trace version embedded in the header.
pub const BINARY_FORMAT_VERSION: u32 = 1;

/// Default target events per chunk. 64k events keeps a decoded chunk in
/// the few-megabyte range — small enough for O(chunk) streaming, large
/// enough that per-chunk dictionaries and framing amortize to noise.
pub const DEFAULT_CHUNK_EVENTS: usize = 65_536;

/// FNV-1a 64-bit, the per-block checksum. Not cryptographic — it guards
/// against truncation and bit rot, not adversaries.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The two on-disk trace encodings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFormat {
    /// This crate's chunked columnar encoding.
    Binary,
    /// The self-describing JSON encoding of `spinrace-vm`.
    Json,
}

impl TraceFormat {
    /// Canonical file extension for the format.
    pub fn extension(self) -> &'static str {
        match self {
            TraceFormat::Binary => "sptrace",
            TraceFormat::Json => "json",
        }
    }
}

impl std::fmt::Display for TraceFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFormat::Binary => write!(f, "binary"),
            TraceFormat::Json => write!(f, "json"),
        }
    }
}

/// Identify a trace encoding from its first bytes: the binary magic, or
/// a JSON document (first non-whitespace byte `{`). Anything else is
/// [`TraceError::Magic`].
pub fn sniff_format(bytes: &[u8]) -> Result<TraceFormat, TraceError> {
    if bytes.starts_with(&MAGIC) {
        return Ok(TraceFormat::Binary);
    }
    match bytes.iter().find(|b| !b.is_ascii_whitespace()) {
        Some(b'{') => Ok(TraceFormat::Json),
        _ => Err(TraceError::Magic),
    }
}

/// Encode `trace` with the default chunk target.
pub fn encode_trace(trace: &Trace) -> Vec<u8> {
    encode_trace_chunked(trace, DEFAULT_CHUNK_EVENTS)
}

/// Encode `trace` with an explicit target of `chunk_events` events per
/// chunk (clamped to at least one).
pub fn encode_trace_chunked(trace: &Trace, chunk_events: usize) -> Vec<u8> {
    let chunk_events = chunk_events.max(1);
    let header_json = serde_json::to_string(&trace.header).expect("header serialization");
    let summary_json = serde_json::to_string(&trace.summary).expect("summary serialization");
    let chunk_count = trace.events.len().div_ceil(chunk_events) as u32;

    let mut out = Vec::with_capacity(header_json.len() + summary_json.len() + 64);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&BINARY_FORMAT_VERSION.to_le_bytes());
    varint::put_uvarint(&mut out, header_json.len() as u64);
    out.extend_from_slice(header_json.as_bytes());
    varint::put_uvarint(&mut out, summary_json.len() as u64);
    out.extend_from_slice(summary_json.as_bytes());
    out.extend_from_slice(&chunk_count.to_le_bytes());
    out.extend_from_slice(&(chunk_events.min(u32::MAX as usize) as u32).to_le_bytes());
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());

    for chunk in trace.events.chunks(chunk_events) {
        chunk::encode_chunk(chunk, &mut out);
    }
    out
}

/// Decode a complete binary trace from memory.
pub fn decode_trace(bytes: &[u8]) -> Result<Trace, TraceError> {
    ChunkedTraceReader::new(bytes)?.read_all()
}

/// Parse a trace from raw file bytes in either encoding, dispatching on
/// [`sniff_format`].
pub fn load_trace_bytes(bytes: &[u8]) -> Result<Trace, TraceError> {
    match sniff_format(bytes)? {
        TraceFormat::Binary => decode_trace(bytes),
        TraceFormat::Json => {
            let text = std::str::from_utf8(bytes)
                .map_err(|_| TraceError::Json("trace file is not UTF-8".into()))?;
            Trace::from_json(text)
        }
    }
}

/// Read and parse a trace file in either encoding.
pub fn load_trace_file(path: &Path) -> Result<Trace, TraceError> {
    let bytes =
        std::fs::read(path).map_err(|e| TraceError::Io(format!("{}: {e}", path.display())))?;
    load_trace_bytes(&bytes)
}

/// Write `trace` to `path` in the requested encoding.
pub fn write_trace_file(path: &Path, trace: &Trace, format: TraceFormat) -> Result<(), TraceError> {
    let bytes = match format {
        TraceFormat::Binary => encode_trace(trace),
        TraceFormat::Json => trace.to_json().into_bytes(),
    };
    let mut f = std::fs::File::create(path)
        .map_err(|e| TraceError::Io(format!("{}: {e}", path.display())))?;
    f.write_all(&bytes)
        .map_err(|e| TraceError::Io(format!("{}: {e}", path.display())))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinrace_tir::{Module, ModuleBuilder};
    use spinrace_vm::{record_run, RecordingSink, VmConfig};

    fn handoff() -> Module {
        let mut mb = ModuleBuilder::new("tracefmt-test");
        let flag = mb.global("flag", 1);
        let data = mb.global("data", 1);
        let waiter = mb.function("waiter", 1, |f| {
            let head = f.new_block();
            let done = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let v = f.load(flag.at(0));
            f.branch(v, done, head);
            f.switch_to(done);
            let d = f.load(data.at(0));
            f.output(d);
            f.ret(None);
        });
        mb.entry("main", |f| {
            let t = f.spawn(waiter, 0);
            f.store(data.at(0), 42);
            f.store(flag.at(0), 1);
            f.join(t);
            f.ret(None);
        });
        mb.finish().unwrap()
    }

    #[test]
    fn binary_round_trip_is_lossless() {
        let m = handoff();
        let trace = record_run(&m, VmConfig::random(11), "rt").unwrap();
        let bytes = encode_trace(&trace);
        let decoded = decode_trace(&bytes).unwrap();
        assert_eq!(decoded, trace);
    }

    #[test]
    fn tiny_chunks_round_trip_and_reset_state() {
        let m = handoff();
        let trace = record_run(&m, VmConfig::round_robin(), "chunks").unwrap();
        // Chunk size 3 forces many boundaries; delta/dictionary state
        // must reset at each or decoded values drift.
        let bytes = encode_trace_chunked(&trace, 3);
        let decoded = decode_trace(&bytes).unwrap();
        assert_eq!(decoded, trace);
        let reader = ChunkedTraceReader::new(&bytes[..]).unwrap();
        assert_eq!(
            reader.chunk_count() as usize,
            trace.events.len().div_ceil(3)
        );
    }

    #[test]
    fn streaming_replay_matches_in_memory_replay() {
        let m = handoff();
        let trace = record_run(&m, VmConfig::random(3), "stream").unwrap();
        let bytes = encode_trace_chunked(&trace, 4);
        let mut sink = RecordingSink::default();
        let stats = ChunkedTraceReader::new(&bytes[..])
            .unwrap()
            .replay_into(&mut sink)
            .unwrap();
        assert_eq!(sink.events, trace.events);
        assert_eq!(stats.events, trace.events.len() as u64);
        assert!(stats.chunks >= 1);
        assert!(stats.peak_resident_bytes > 0);
    }

    #[test]
    fn sniffing_distinguishes_the_encodings() {
        let m = handoff();
        let trace = record_run(&m, VmConfig::round_robin(), "").unwrap();
        assert_eq!(
            sniff_format(&encode_trace(&trace)).unwrap(),
            TraceFormat::Binary
        );
        assert_eq!(
            sniff_format(trace.to_json().as_bytes()).unwrap(),
            TraceFormat::Json
        );
        assert_eq!(
            sniff_format(b"  \n {\"header\":{}}").unwrap(),
            TraceFormat::Json
        );
        assert!(matches!(sniff_format(b"ELF....."), Err(TraceError::Magic)));
        assert!(matches!(sniff_format(b""), Err(TraceError::Magic)));
    }

    #[test]
    fn corruption_is_detected_and_localized() {
        let m = handoff();
        let trace = record_run(&m, VmConfig::round_robin(), "corrupt").unwrap();
        let good = encode_trace_chunked(&trace, 4);

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(matches!(load_trace_bytes(&bad), Err(TraceError::Magic)));

        // Unsupported binary version.
        let mut bad = good.clone();
        bad[8] = 0xee;
        assert!(matches!(
            decode_trace(&bad),
            Err(TraceError::Version { found: 0xee, .. })
        ));

        // Flip a byte in the last chunk: the checksum catches it — or,
        // if the flip lands in a column-length varint, the reader runs
        // off the end of the stream first and reports truncation. Either
        // way, a structured error.
        let mut bad = good.clone();
        let n = bad.len();
        bad[n - 12] ^= 0x55;
        assert!(matches!(
            decode_trace(&bad),
            Err(TraceError::Checksum { .. })
                | Err(TraceError::Corrupt(_))
                | Err(TraceError::ChunkCount { .. })
        ));

        // Truncate mid-stream: chunk count shortfall.
        let truncated = &good[..good.len() - 20];
        assert!(matches!(
            decode_trace(truncated),
            Err(TraceError::ChunkCount { .. })
        ));
    }
}
