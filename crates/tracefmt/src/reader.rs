//! Chunked streaming reader: decode one chunk ahead of the consumer.
//!
//! [`ChunkedTraceReader`] wraps any [`io::Read`] source, parses and
//! validates the header block eagerly (magic, binary version, embedded
//! trace header, checksum), then hands out decoded chunks one at a time.
//! [`ChunkedTraceReader::replay_into`] drives a detector directly from
//! the stream with a decode-ahead thread: while the detector consumes
//! chunk *k*, chunk *k+1* is being read and decoded, so replay starts
//! before the file has been fully read and peak memory stays bounded by
//! a couple of chunks — O(chunk), not O(trace).

use crate::chunk::{decode_chunk_columns, NUM_COLUMNS};
use crate::{fnv1a, BINARY_FORMAT_VERSION, MAGIC};
use spinrace_vm::{
    Event, EventSink, RunSummary, Trace, TraceError, TraceHeader, TRACE_FORMAT_VERSION,
};
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;

/// Largest accepted embedded-JSON block (header or summary). Real
/// headers are a few hundred bytes; the cap keeps a corrupt length from
/// driving an unbounded read.
const MAX_JSON_BLOCK: u64 = 1 << 20;
/// Largest accepted per-chunk event count.
const MAX_CHUNK_EVENTS: u32 = 1 << 24;
/// Largest accepted single column block.
const MAX_COLUMN_BYTES: u64 = 1 << 31;

/// Statistics of one streamed replay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Events delivered to the sink.
    pub events: u64,
    /// Chunks decoded.
    pub chunks: u32,
    /// High-water mark of decoded-but-not-yet-consumed event memory
    /// (bytes), across the decode-ahead pipeline. With chunked streaming
    /// this is O(chunk); a whole-trace decode would make it O(trace).
    pub peak_resident_bytes: usize,
}

/// Approximate heap footprint of a decoded chunk — what the streaming
/// pipeline holds resident per in-flight chunk. Exposed so external
/// decode-ahead loops (e.g. multi-detector streamed detection) account
/// resident memory the same way [`ChunkedTraceReader::replay_into`]
/// does.
pub fn chunk_mem(events: &[Event]) -> usize {
    let mut bytes = std::mem::size_of_val(events);
    for ev in events {
        if let Event::SpinExit { reads, .. } = ev {
            bytes += reads.len() * std::mem::size_of::<(u64, spinrace_tir::Pc)>();
        }
    }
    bytes
}

/// Streaming decoder for the binary trace format over any byte source.
pub struct ChunkedTraceReader<R: io::Read> {
    src: R,
    header: TraceHeader,
    summary: RunSummary,
    chunk_count: u32,
    chunk_target: u32,
    chunks_read: u32,
    events_read: u64,
    /// Set once the stream has been fully drained and finalized.
    done: bool,
}

/// Read one LEB128 varint from a byte stream, mirroring the slice-based
/// decoder's bounds checks. `raw` accumulates the consumed bytes for
/// checksumming.
fn stream_uvarint<R: io::Read>(src: &mut R, raw: &mut Vec<u8>) -> Result<u64, TraceError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let mut b = [0u8; 1];
        src.read_exact(&mut b).map_err(map_eof_truncated)?;
        raw.push(b[0]);
        if shift == 63 && b[0] > 1 {
            return Err(TraceError::Corrupt("overlong varint".into()));
        }
        v |= u64::from(b[0] & 0x7f) << shift;
        if b[0] & 0x80 == 0 {
            // Mirror the slice decoder's canonicality check: a zero
            // final byte after a continuation is a longer-than-needed
            // encoding the writer never emits.
            if b[0] == 0 && shift > 0 {
                return Err(TraceError::Corrupt("non-canonical varint".into()));
            }
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(TraceError::Corrupt("overlong varint".into()));
        }
    }
}

fn map_eof_truncated(e: io::Error) -> TraceError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        TraceError::Corrupt("unexpected end of stream".into())
    } else {
        TraceError::Io(e.to_string())
    }
}

/// Read exactly `len` bytes into a fresh buffer without trusting `len`
/// for preallocation: a corrupt length never reserves more memory than
/// the stream actually delivers.
fn read_block<R: io::Read>(src: &mut R, len: u64) -> Result<Vec<u8>, TraceError> {
    let mut buf = Vec::new();
    let mut limited = <&mut R as io::Read>::take(&mut *src, len);
    let copied = io::copy(&mut limited, &mut buf).map_err(|e| TraceError::Io(e.to_string()))?;
    if copied != len {
        return Err(TraceError::Corrupt("unexpected end of stream".into()));
    }
    Ok(buf)
}

impl<R: io::Read> ChunkedTraceReader<R> {
    /// Open a binary trace stream: parse and validate the header block.
    ///
    /// Validation order is magic → binary version → embedded header
    /// (trace version) → checksum, so the caller always gets the most
    /// specific error the damaged prefix allows.
    pub fn new(mut src: R) -> Result<Self, TraceError> {
        let mut raw: Vec<u8> = Vec::with_capacity(256);

        let mut magic = [0u8; 8];
        src.read_exact(&mut magic).map_err(|_| TraceError::Magic)?;
        if magic != MAGIC {
            return Err(TraceError::Magic);
        }
        raw.extend_from_slice(&magic);

        let mut ver = [0u8; 4];
        src.read_exact(&mut ver).map_err(map_eof_truncated)?;
        raw.extend_from_slice(&ver);
        let found = u32::from_le_bytes(ver);
        if found != BINARY_FORMAT_VERSION {
            return Err(TraceError::Version {
                found,
                supported: BINARY_FORMAT_VERSION,
            });
        }

        let header_len = stream_uvarint(&mut src, &mut raw)?;
        if header_len > MAX_JSON_BLOCK {
            return Err(TraceError::Corrupt(
                "implausible header block length".into(),
            ));
        }
        let header_json = read_block(&mut src, header_len)?;
        raw.extend_from_slice(&header_json);

        let summary_len = stream_uvarint(&mut src, &mut raw)?;
        if summary_len > MAX_JSON_BLOCK {
            return Err(TraceError::Corrupt(
                "implausible summary block length".into(),
            ));
        }
        let summary_json = read_block(&mut src, summary_len)?;
        raw.extend_from_slice(&summary_json);

        let mut counts = [0u8; 8];
        src.read_exact(&mut counts).map_err(map_eof_truncated)?;
        raw.extend_from_slice(&counts);
        let chunk_count = u32::from_le_bytes(counts[..4].try_into().unwrap());
        let chunk_target = u32::from_le_bytes(counts[4..].try_into().unwrap());

        let mut sum = [0u8; 8];
        src.read_exact(&mut sum).map_err(map_eof_truncated)?;
        if u64::from_le_bytes(sum) != fnv1a(&raw) {
            return Err(TraceError::Corrupt("header block checksum mismatch".into()));
        }

        let header_text = std::str::from_utf8(&header_json)
            .map_err(|_| TraceError::Corrupt("header block is not UTF-8".into()))?;
        let header: TraceHeader =
            serde_json::from_str(header_text).map_err(|e| TraceError::Json(e.0))?;
        if header.version != TRACE_FORMAT_VERSION {
            return Err(TraceError::Version {
                found: header.version,
                supported: TRACE_FORMAT_VERSION,
            });
        }
        let summary_text = std::str::from_utf8(&summary_json)
            .map_err(|_| TraceError::Corrupt("summary block is not UTF-8".into()))?;
        let summary: RunSummary =
            serde_json::from_str(summary_text).map_err(|e| TraceError::Json(e.0))?;

        Ok(ChunkedTraceReader {
            src,
            header,
            summary,
            chunk_count,
            chunk_target,
            chunks_read: 0,
            events_read: 0,
            done: false,
        })
    }

    /// The embedded trace header (validated at open).
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// The embedded run summary.
    pub fn summary(&self) -> &RunSummary {
        &self.summary
    }

    /// Chunk count the header block claims.
    pub fn chunk_count(&self) -> u32 {
        self.chunk_count
    }

    /// Target events per chunk used at encode time.
    pub fn chunk_target(&self) -> u32 {
        self.chunk_target
    }

    fn truncated(&self) -> TraceError {
        TraceError::ChunkCount {
            header: self.chunk_count,
            actual: self.chunks_read,
        }
    }

    /// Decode the next chunk, or `Ok(None)` once the stream is complete
    /// and validated (event total, no trailing bytes).
    pub fn next_chunk(&mut self) -> Result<Option<Vec<Event>>, TraceError> {
        if self.done {
            return Ok(None);
        }
        if self.chunks_read == self.chunk_count {
            // Finalize: the event total must match the header, and the
            // stream must end exactly here.
            if self.events_read != self.header.events {
                return Err(TraceError::EventCount {
                    header: self.header.events,
                    actual: self.events_read,
                });
            }
            let mut b = [0u8; 1];
            match self.src.read(&mut b) {
                Ok(0) => {}
                Ok(_) => {
                    return Err(TraceError::Corrupt(
                        "trailing bytes after final chunk".into(),
                    ))
                }
                Err(e) => return Err(TraceError::Io(e.to_string())),
            }
            self.done = true;
            return Ok(None);
        }

        // A chunk interrupted by EOF — anywhere inside it — is stream
        // truncation, reported as the chunk-count shortfall.
        self.read_chunk().map(Some).map_err(|e| {
            if matches!(&e, TraceError::Corrupt(m) if m == "unexpected end of stream") {
                self.truncated()
            } else {
                e
            }
        })
    }

    fn read_chunk(&mut self) -> Result<Vec<Event>, TraceError> {
        let mut raw: Vec<u8> = Vec::with_capacity(4096);

        let mut nb = [0u8; 4];
        self.src.read_exact(&mut nb).map_err(map_eof_truncated)?;
        raw.extend_from_slice(&nb);
        let n = u32::from_le_bytes(nb);
        if n > MAX_CHUNK_EVENTS {
            return Err(TraceError::Corrupt(format!(
                "implausible chunk event count {n}"
            )));
        }

        let ncols = stream_uvarint(&mut self.src, &mut raw)?;
        if ncols != NUM_COLUMNS as u64 {
            return Err(TraceError::Corrupt(format!(
                "chunk declares {ncols} columns, format has {}",
                NUM_COLUMNS
            )));
        }

        // Column blocks: (offset, len) into `raw`, resolved to slices
        // after the checksum passes.
        let mut spans: [(usize, usize); NUM_COLUMNS] = [(0, 0); NUM_COLUMNS];
        for span in &mut spans {
            let len = stream_uvarint(&mut self.src, &mut raw)?;
            if len > MAX_COLUMN_BYTES {
                return Err(TraceError::Corrupt("implausible column length".into()));
            }
            let block = read_block(&mut self.src, len)?;
            *span = (raw.len(), block.len());
            raw.extend_from_slice(&block);
        }

        let mut sum = [0u8; 8];
        self.src.read_exact(&mut sum).map_err(map_eof_truncated)?;
        if u64::from_le_bytes(sum) != fnv1a(&raw) {
            return Err(TraceError::Checksum {
                chunk: self.chunks_read,
            });
        }

        let cols: [&[u8]; NUM_COLUMNS] =
            std::array::from_fn(|i| &raw[spans[i].0..spans[i].0 + spans[i].1]);
        let mut events = Vec::new();
        decode_chunk_columns(n as usize, &cols, &mut events)?;

        self.chunks_read += 1;
        self.events_read += events.len() as u64;
        Ok(events)
    }

    /// Decode the entire stream into an in-memory [`Trace`].
    ///
    /// This is the non-streaming path (used by format conversion and the
    /// parallel replay engine, which shards over a full event slice);
    /// for bounded-memory sequential replay use [`Self::replay_into`].
    pub fn read_all(mut self) -> Result<Trace, TraceError> {
        let mut events: Vec<Event> = Vec::new();
        while let Some(chunk) = self.next_chunk()? {
            events.extend(chunk);
        }
        Ok(Trace {
            header: self.header,
            summary: self.summary,
            events,
        })
    }

    /// Replay the stream into `sink` with one chunk of decode-ahead.
    ///
    /// A scoped worker thread reads and decodes chunks; the caller's
    /// thread feeds the sink. The bounded channel (capacity 1) means at
    /// most two decoded chunks are resident at once — one being
    /// consumed, one decoded ahead — so peak memory is O(chunk)
    /// regardless of trace length. The returned [`StreamStats`] report
    /// the observed high-water mark.
    pub fn replay_into(mut self, sink: &mut dyn EventSink) -> Result<StreamStats, TraceError>
    where
        R: Send,
    {
        let resident = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = sync_channel::<Result<Vec<Event>, TraceError>>(1);

        let stats = std::thread::scope(|scope| {
            let decoder_resident = Arc::clone(&resident);
            let decoder_peak = Arc::clone(&peak);
            let reader = &mut self;
            scope.spawn(move || loop {
                match reader.next_chunk() {
                    Ok(Some(chunk)) => {
                        let now = decoder_resident.fetch_add(chunk_mem(&chunk), Ordering::Relaxed)
                            + chunk_mem(&chunk);
                        decoder_peak.fetch_max(now, Ordering::Relaxed);
                        // A closed receiver means the consumer bailed on
                        // an earlier error; just stop decoding.
                        if tx.send(Ok(chunk)).is_err() {
                            return;
                        }
                    }
                    Ok(None) => return,
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        return;
                    }
                }
            });

            let mut stats = StreamStats::default();
            for msg in rx {
                let chunk = msg?;
                for ev in &chunk {
                    sink.on_event(ev);
                }
                stats.events += chunk.len() as u64;
                stats.chunks += 1;
                resident.fetch_sub(chunk_mem(&chunk), Ordering::Relaxed);
            }
            Ok(stats)
        })?;

        let mut stats = stats;
        stats.peak_resident_bytes = peak.load(Ordering::Relaxed);
        Ok(stats)
    }
}
