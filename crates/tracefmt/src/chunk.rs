//! One chunk: a fixed-target-size run of events, encoded columnar.
//!
//! Events are transposed into struct-of-arrays columns — one column per
//! logical [`Event`] field — and each column is compressed independently
//! with the codec that fits its distribution:
//!
//! * **near-monotone streams** (thread ids, data/sync addresses, barrier
//!   generations) take zigzag **delta + varint**: consecutive events
//!   mostly touch nearby values, so deltas are tiny;
//! * **heavily repeated values** (program counters, call-chain hashes)
//!   go through a **per-chunk dictionary** plus a varint index column —
//!   a hot loop re-executes the same handful of pcs, so indices are
//!   almost always one byte;
//! * **event kinds** are one raw byte each, with the `Option`-ness of
//!   the `atomic`/`spin` fields packed into spare high bits so plain
//!   accesses (the overwhelming majority) spend nothing on them.
//!
//! All per-column codec state resets at chunk boundaries, making every
//! chunk independently decodable — the property the streaming reader and
//! per-chunk corruption detection are built on.

use crate::varint::{get_uvarint, put_uvarint, unzigzag, zigzag};
use fxhash::FxHashMap;
use spinrace_tir::{BlockId, FuncId, MemOrder, Pc, SpinLoopId};
use spinrace_vm::{Event, TraceError};

/// Number of columns a chunk carries. Written into every chunk so a
/// reader can detect framing drift structurally (and future versions can
/// add columns behind a version bump).
pub const NUM_COLUMNS: usize = 15;

// Column order inside a chunk.
const COL_KIND: usize = 0;
const COL_TID: usize = 1;
const COL_AUX_TID: usize = 2;
const COL_OBJ: usize = 3;
const COL_OBJ2: usize = 4;
const COL_VALUE: usize = 5;
const COL_VALUE2: usize = 6;
const COL_PC_DICT: usize = 7;
const COL_PC_IDX: usize = 8;
const COL_STACK_DICT: usize = 9;
const COL_STACK_IDX: usize = 10;
const COL_ORDER: usize = 11;
const COL_SPIN: usize = 12;
const COL_GEN: usize = 13;
const COL_SPIN_READS: usize = 14;

// Event tags (bits 0..=4 of the kind byte).
const TAG_SPAWN: u8 = 0;
const TAG_JOIN: u8 = 1;
const TAG_THREAD_END: u8 = 2;
const TAG_READ: u8 = 3;
const TAG_WRITE: u8 = 4;
const TAG_UPDATE: u8 = 5;
const TAG_FENCE: u8 = 6;
const TAG_MUTEX_LOCK: u8 = 7;
const TAG_MUTEX_UNLOCK: u8 = 8;
const TAG_COND_SIGNAL: u8 = 9;
const TAG_COND_BROADCAST: u8 = 10;
const TAG_COND_WAIT_RETURN: u8 = 11;
const TAG_BARRIER_ENTER: u8 = 12;
const TAG_BARRIER_LEAVE: u8 = 13;
const TAG_SEM_POST: u8 = 14;
const TAG_SEM_ACQUIRED: u8 = 15;
const TAG_SPIN_ENTER: u8 = 16;
const TAG_SPIN_EXIT: u8 = 17;
const TAG_OUTPUT: u8 = 18;
const TAG_MAX: u8 = TAG_OUTPUT;

/// Kind-byte flag: a `Read`/`Write` whose `atomic` field is `Some` (the
/// ordering itself sits in the order column).
const FLAG_ATOMIC: u8 = 0x20;
/// Kind-byte flag: a `Read` whose `spin` field is `Some` (the loop id
/// sits in the spin column).
const FLAG_SPIN: u8 = 0x40;
const TAG_MASK: u8 = 0x1f;

fn order_to_u8(o: MemOrder) -> u8 {
    match o {
        MemOrder::Relaxed => 0,
        MemOrder::Acquire => 1,
        MemOrder::Release => 2,
        MemOrder::AcqRel => 3,
        MemOrder::SeqCst => 4,
    }
}

fn order_from_u8(b: u8) -> Result<MemOrder, TraceError> {
    Ok(match b {
        0 => MemOrder::Relaxed,
        1 => MemOrder::Acquire,
        2 => MemOrder::Release,
        3 => MemOrder::AcqRel,
        4 => MemOrder::SeqCst,
        _ => return Err(TraceError::Corrupt(format!("invalid memory order {b}"))),
    })
}

/// A delta-coded varint column under construction.
#[derive(Default)]
struct DeltaCol {
    last: i64,
    buf: Vec<u8>,
}

impl DeltaCol {
    #[inline]
    fn push(&mut self, v: i64) {
        put_uvarint(&mut self.buf, zigzag(v.wrapping_sub(self.last)));
        self.last = v;
    }
}

/// A plain zigzag-varint column (no delta) for value-like fields whose
/// stream has no locality to exploit.
#[derive(Default)]
struct VarCol {
    buf: Vec<u8>,
}

impl VarCol {
    #[inline]
    fn push_i64(&mut self, v: i64) {
        put_uvarint(&mut self.buf, zigzag(v));
    }
    #[inline]
    fn push_u64(&mut self, v: u64) {
        put_uvarint(&mut self.buf, v);
    }
}

/// Per-chunk dictionary of values with heavy repetition. The dictionary
/// block stores each distinct value once (delta-coded between entries);
/// the index column references entries by varint position.
struct Dict<T> {
    map: FxHashMap<T, u32>,
    entries: Vec<T>,
}

impl<T: std::hash::Hash + Eq + Copy> Dict<T> {
    fn new() -> Self {
        Dict {
            map: FxHashMap::default(),
            entries: Vec::new(),
        }
    }

    #[inline]
    fn intern(&mut self, v: T) -> u32 {
        if let Some(&i) = self.map.get(&v) {
            return i;
        }
        let i = self.entries.len() as u32;
        self.map.insert(v, i);
        self.entries.push(v);
        i
    }
}

/// Encode `events` as one chunk, appending its framing (event count,
/// column count, per-column block lengths, payload, checksum) to `out`.
pub fn encode_chunk(events: &[Event], out: &mut Vec<u8>) {
    let mut kinds: Vec<u8> = Vec::with_capacity(events.len());
    let mut tid = DeltaCol::default();
    let mut aux_tid = DeltaCol::default();
    let mut obj = DeltaCol::default();
    let mut obj2 = DeltaCol::default();
    let mut value = VarCol::default();
    let mut value2 = VarCol::default();
    let mut pc_dict: Dict<Pc> = Dict::new();
    let mut pc_idx = VarCol::default();
    let mut stack_dict: Dict<u64> = Dict::new();
    let mut stack_idx = VarCol::default();
    let mut order_col: Vec<u8> = Vec::new();
    let mut spin_col = VarCol::default();
    let mut gen_col = DeltaCol::default();
    let mut spin_reads = VarCol::default();
    let mut spin_read_addr = DeltaCol::default();

    for ev in events {
        match ev {
            Event::Spawn { parent, child, pc } => {
                kinds.push(TAG_SPAWN);
                tid.push(i64::from(*parent));
                aux_tid.push(i64::from(*child));
                pc_idx.push_u64(u64::from(pc_dict.intern(*pc)));
            }
            Event::Join { parent, child, pc } => {
                kinds.push(TAG_JOIN);
                tid.push(i64::from(*parent));
                aux_tid.push(i64::from(*child));
                pc_idx.push_u64(u64::from(pc_dict.intern(*pc)));
            }
            Event::ThreadEnd { tid: t } => {
                kinds.push(TAG_THREAD_END);
                tid.push(i64::from(*t));
            }
            Event::Read {
                tid: t,
                addr,
                value: v,
                pc,
                stack,
                atomic,
                spin,
            } => {
                let mut kind = TAG_READ;
                if atomic.is_some() {
                    kind |= FLAG_ATOMIC;
                }
                if spin.is_some() {
                    kind |= FLAG_SPIN;
                }
                kinds.push(kind);
                tid.push(i64::from(*t));
                obj.push(*addr as i64);
                value.push_i64(*v);
                pc_idx.push_u64(u64::from(pc_dict.intern(*pc)));
                stack_idx.push_u64(u64::from(stack_dict.intern(*stack)));
                if let Some(o) = atomic {
                    order_col.push(order_to_u8(*o));
                }
                if let Some(s) = spin {
                    spin_col.push_u64(u64::from(s.0));
                }
            }
            Event::Write {
                tid: t,
                addr,
                value: v,
                pc,
                stack,
                atomic,
            } => {
                let mut kind = TAG_WRITE;
                if atomic.is_some() {
                    kind |= FLAG_ATOMIC;
                }
                kinds.push(kind);
                tid.push(i64::from(*t));
                obj.push(*addr as i64);
                value.push_i64(*v);
                pc_idx.push_u64(u64::from(pc_dict.intern(*pc)));
                stack_idx.push_u64(u64::from(stack_dict.intern(*stack)));
                if let Some(o) = atomic {
                    order_col.push(order_to_u8(*o));
                }
            }
            Event::Update {
                tid: t,
                addr,
                old,
                new,
                pc,
                stack,
                order,
            } => {
                kinds.push(TAG_UPDATE);
                tid.push(i64::from(*t));
                obj.push(*addr as i64);
                value.push_i64(*old);
                value2.push_i64(*new);
                pc_idx.push_u64(u64::from(pc_dict.intern(*pc)));
                stack_idx.push_u64(u64::from(stack_dict.intern(*stack)));
                order_col.push(order_to_u8(*order));
            }
            Event::Fence { tid: t, order, pc } => {
                kinds.push(TAG_FENCE);
                tid.push(i64::from(*t));
                pc_idx.push_u64(u64::from(pc_dict.intern(*pc)));
                order_col.push(order_to_u8(*order));
            }
            Event::MutexLock { tid: t, mutex, pc } => {
                kinds.push(TAG_MUTEX_LOCK);
                tid.push(i64::from(*t));
                obj.push(*mutex as i64);
                pc_idx.push_u64(u64::from(pc_dict.intern(*pc)));
            }
            Event::MutexUnlock { tid: t, mutex, pc } => {
                kinds.push(TAG_MUTEX_UNLOCK);
                tid.push(i64::from(*t));
                obj.push(*mutex as i64);
                pc_idx.push_u64(u64::from(pc_dict.intern(*pc)));
            }
            Event::CondSignal { tid: t, cv, pc } => {
                kinds.push(TAG_COND_SIGNAL);
                tid.push(i64::from(*t));
                obj.push(*cv as i64);
                pc_idx.push_u64(u64::from(pc_dict.intern(*pc)));
            }
            Event::CondBroadcast { tid: t, cv, pc } => {
                kinds.push(TAG_COND_BROADCAST);
                tid.push(i64::from(*t));
                obj.push(*cv as i64);
                pc_idx.push_u64(u64::from(pc_dict.intern(*pc)));
            }
            Event::CondWaitReturn {
                tid: t,
                cv,
                mutex,
                pc,
            } => {
                kinds.push(TAG_COND_WAIT_RETURN);
                tid.push(i64::from(*t));
                obj.push(*cv as i64);
                obj2.push(*mutex as i64);
                pc_idx.push_u64(u64::from(pc_dict.intern(*pc)));
            }
            Event::BarrierEnter {
                tid: t,
                barrier,
                gen,
                pc,
            } => {
                kinds.push(TAG_BARRIER_ENTER);
                tid.push(i64::from(*t));
                obj.push(*barrier as i64);
                gen_col.push(*gen as i64);
                pc_idx.push_u64(u64::from(pc_dict.intern(*pc)));
            }
            Event::BarrierLeave {
                tid: t,
                barrier,
                gen,
                pc,
            } => {
                kinds.push(TAG_BARRIER_LEAVE);
                tid.push(i64::from(*t));
                obj.push(*barrier as i64);
                gen_col.push(*gen as i64);
                pc_idx.push_u64(u64::from(pc_dict.intern(*pc)));
            }
            Event::SemPost { tid: t, sem, pc } => {
                kinds.push(TAG_SEM_POST);
                tid.push(i64::from(*t));
                obj.push(*sem as i64);
                pc_idx.push_u64(u64::from(pc_dict.intern(*pc)));
            }
            Event::SemAcquired { tid: t, sem, pc } => {
                kinds.push(TAG_SEM_ACQUIRED);
                tid.push(i64::from(*t));
                obj.push(*sem as i64);
                pc_idx.push_u64(u64::from(pc_dict.intern(*pc)));
            }
            Event::SpinEnter { tid: t, spin } => {
                kinds.push(TAG_SPIN_ENTER);
                tid.push(i64::from(*t));
                spin_col.push_u64(u64::from(spin.0));
            }
            Event::SpinExit {
                tid: t,
                spin,
                reads,
            } => {
                kinds.push(TAG_SPIN_EXIT);
                tid.push(i64::from(*t));
                spin_col.push_u64(u64::from(spin.0));
                spin_reads.push_u64(reads.len() as u64);
                for (addr, pc) in reads {
                    spin_read_addr.push(*addr as i64);
                    put_uvarint(&mut spin_reads.buf, u64::from(pc_dict.intern(*pc)));
                }
            }
            Event::Output { tid: t, value: v } => {
                kinds.push(TAG_OUTPUT);
                tid.push(i64::from(*t));
                value.push_i64(*v);
            }
        }
    }

    // Serialize the dictionaries (delta-coded between entries).
    let mut pc_dict_buf = Vec::new();
    put_uvarint(&mut pc_dict_buf, pc_dict.entries.len() as u64);
    let (mut lf, mut lb, mut li) = (0i64, 0i64, 0i64);
    for pc in &pc_dict.entries {
        let (f, b, i) = (
            i64::from(pc.func.0),
            i64::from(pc.block.0),
            i64::from(pc.idx),
        );
        put_uvarint(&mut pc_dict_buf, zigzag(f - lf));
        put_uvarint(&mut pc_dict_buf, zigzag(b - lb));
        put_uvarint(&mut pc_dict_buf, zigzag(i - li));
        (lf, lb, li) = (f, b, i);
    }
    let mut stack_dict_buf = Vec::new();
    put_uvarint(&mut stack_dict_buf, stack_dict.entries.len() as u64);
    let mut last = 0i64;
    for &s in &stack_dict.entries {
        let v = s as i64;
        put_uvarint(&mut stack_dict_buf, zigzag(v.wrapping_sub(last)));
        last = v;
    }

    // The spin-read address sub-column rides at the front of the
    // spin-reads block (its own length first), keeping the column count
    // fixed.
    let mut spin_reads_buf = Vec::new();
    put_uvarint(&mut spin_reads_buf, spin_read_addr.buf.len() as u64);
    spin_reads_buf.extend_from_slice(&spin_read_addr.buf);
    spin_reads_buf.extend_from_slice(&spin_reads.buf);

    let cols: [&[u8]; NUM_COLUMNS] = [
        &kinds,
        &tid.buf,
        &aux_tid.buf,
        &obj.buf,
        &obj2.buf,
        &value.buf,
        &value2.buf,
        &pc_dict_buf,
        &pc_idx.buf,
        &stack_dict_buf,
        &stack_idx.buf,
        &order_col,
        &spin_col.buf,
        &gen_col.buf,
        &spin_reads_buf,
    ];

    // Frame: event count, column count, then each column prefixed by its
    // block length; checksum over everything framed.
    let start = out.len();
    out.extend_from_slice(&(events.len() as u32).to_le_bytes());
    put_uvarint(out, NUM_COLUMNS as u64);
    for col in cols {
        put_uvarint(out, col.len() as u64);
        out.extend_from_slice(col);
    }
    let sum = crate::fnv1a(&out[start..]);
    out.extend_from_slice(&sum.to_le_bytes());
}

/// A read cursor over one column's byte block.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
    last: i64,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cur {
            buf,
            pos: 0,
            last: 0,
        }
    }

    #[inline]
    fn uvarint(&mut self) -> Result<u64, TraceError> {
        get_uvarint(self.buf, &mut self.pos)
    }

    #[inline]
    fn ivarint(&mut self) -> Result<i64, TraceError> {
        Ok(unzigzag(self.uvarint()?))
    }

    /// Next value of a zigzag-delta column.
    #[inline]
    fn delta(&mut self) -> Result<i64, TraceError> {
        let d = self.ivarint()?;
        self.last = self.last.wrapping_add(d);
        Ok(self.last)
    }

    #[inline]
    fn byte(&mut self) -> Result<u8, TraceError> {
        let Some(&b) = self.buf.get(self.pos) else {
            return Err(TraceError::Corrupt("column exhausted".into()));
        };
        self.pos += 1;
        Ok(b)
    }

    fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn tid_u32(v: i64) -> Result<u32, TraceError> {
    u32::try_from(v).map_err(|_| TraceError::Corrupt(format!("thread id {v} out of range")))
}

/// Decode one chunk's column blocks (everything between the column-count
/// varint and the checksum) into `out`. `n` is the framed event count.
pub fn decode_chunk_columns(
    n: usize,
    cols: &[&[u8]; NUM_COLUMNS],
    out: &mut Vec<Event>,
) -> Result<(), TraceError> {
    // The kind column is one raw byte per event: its length is the one
    // structural invariant checkable before decoding anything.
    if cols[COL_KIND].len() != n {
        return Err(TraceError::Corrupt(format!(
            "kind column holds {} bytes for {n} events",
            cols[COL_KIND].len()
        )));
    }

    // Dictionaries first: both index columns resolve against them.
    let mut pcd = Cur::new(cols[COL_PC_DICT]);
    let pc_count = pcd.uvarint()?;
    if pc_count > n as u64 * 2 + 16 {
        return Err(TraceError::Corrupt(
            "pc dictionary larger than chunk".into(),
        ));
    }
    let mut pc_entries: Vec<Pc> = Vec::with_capacity(pc_count as usize);
    let (mut lf, mut lb, mut li) = (0i64, 0i64, 0i64);
    for _ in 0..pc_count {
        lf = lf.wrapping_add(pcd.ivarint()?);
        lb = lb.wrapping_add(pcd.ivarint()?);
        li = li.wrapping_add(pcd.ivarint()?);
        let (f, b, i) = (
            u32::try_from(lf).map_err(|_| TraceError::Corrupt("pc func out of range".into()))?,
            u32::try_from(lb).map_err(|_| TraceError::Corrupt("pc block out of range".into()))?,
            u32::try_from(li).map_err(|_| TraceError::Corrupt("pc idx out of range".into()))?,
        );
        pc_entries.push(Pc::new(FuncId(f), BlockId(b), i));
    }
    if !pcd.finished() {
        return Err(TraceError::Corrupt(
            "trailing bytes in pc dictionary".into(),
        ));
    }

    let mut std_ = Cur::new(cols[COL_STACK_DICT]);
    let stack_count = std_.uvarint()?;
    if stack_count > n as u64 + 16 {
        return Err(TraceError::Corrupt(
            "stack dictionary larger than chunk".into(),
        ));
    }
    let mut stack_entries: Vec<u64> = Vec::with_capacity(stack_count as usize);
    let mut last = 0i64;
    for _ in 0..stack_count {
        last = last.wrapping_add(std_.ivarint()?);
        stack_entries.push(last as u64);
    }
    if !std_.finished() {
        return Err(TraceError::Corrupt(
            "trailing bytes in stack dictionary".into(),
        ));
    }

    // The spin-reads block carries its address sub-column inline.
    let mut sr = Cur::new(cols[COL_SPIN_READS]);
    let sr_addr_len = sr.uvarint()? as usize;
    let rest = &cols[COL_SPIN_READS][sr.pos..];
    if sr_addr_len > rest.len() {
        return Err(TraceError::Corrupt(
            "spin-read address block overruns its column".into(),
        ));
    }
    let mut sr_addr = Cur::new(&rest[..sr_addr_len]);
    let mut sr_meta = Cur::new(&rest[sr_addr_len..]);

    let mut tid = Cur::new(cols[COL_TID]);
    let mut aux_tid = Cur::new(cols[COL_AUX_TID]);
    let mut obj = Cur::new(cols[COL_OBJ]);
    let mut obj2 = Cur::new(cols[COL_OBJ2]);
    let mut value = Cur::new(cols[COL_VALUE]);
    let mut value2 = Cur::new(cols[COL_VALUE2]);
    let mut pc_idx = Cur::new(cols[COL_PC_IDX]);
    let mut stack_idx = Cur::new(cols[COL_STACK_IDX]);
    let mut order_col = Cur::new(cols[COL_ORDER]);
    let mut spin_col = Cur::new(cols[COL_SPIN]);
    let mut gen_col = Cur::new(cols[COL_GEN]);

    let next_pc = |c: &mut Cur| -> Result<Pc, TraceError> {
        let i = c.uvarint()? as usize;
        pc_entries
            .get(i)
            .copied()
            .ok_or_else(|| TraceError::Corrupt(format!("pc dictionary index {i} out of range")))
    };
    let next_stack = |c: &mut Cur| -> Result<u64, TraceError> {
        let i = c.uvarint()? as usize;
        stack_entries
            .get(i)
            .copied()
            .ok_or_else(|| TraceError::Corrupt(format!("stack dictionary index {i} out of range")))
    };

    out.reserve(n);
    for (pos, &kind) in cols[COL_KIND].iter().enumerate() {
        let tag = kind & TAG_MASK;
        let atomic_flag = kind & FLAG_ATOMIC != 0;
        let spin_flag = kind & FLAG_SPIN != 0;
        if tag > TAG_MAX {
            return Err(TraceError::Corrupt(format!(
                "unknown event tag {tag} at chunk offset {pos}"
            )));
        }
        // Flags are only meaningful on data accesses; anywhere else they
        // mean the byte was damaged in a way the checksum missed.
        if (atomic_flag && !matches!(tag, TAG_READ | TAG_WRITE)) || (spin_flag && tag != TAG_READ) {
            return Err(TraceError::Corrupt(format!(
                "flag bits on event tag {tag} at chunk offset {pos}"
            )));
        }
        let t = tid_u32(tid.delta()?)?;
        let ev = match tag {
            TAG_SPAWN => Event::Spawn {
                parent: t,
                child: tid_u32(aux_tid.delta()?)?,
                pc: next_pc(&mut pc_idx)?,
            },
            TAG_JOIN => Event::Join {
                parent: t,
                child: tid_u32(aux_tid.delta()?)?,
                pc: next_pc(&mut pc_idx)?,
            },
            TAG_THREAD_END => Event::ThreadEnd { tid: t },
            TAG_READ => Event::Read {
                tid: t,
                addr: obj.delta()? as u64,
                value: value.ivarint()?,
                pc: next_pc(&mut pc_idx)?,
                stack: next_stack(&mut stack_idx)?,
                atomic: if atomic_flag {
                    Some(order_from_u8(order_col.byte()?)?)
                } else {
                    None
                },
                spin: if spin_flag {
                    Some(SpinLoopId(u32::try_from(spin_col.uvarint()?).map_err(
                        |_| TraceError::Corrupt("spin id out of range".into()),
                    )?))
                } else {
                    None
                },
            },
            TAG_WRITE => Event::Write {
                tid: t,
                addr: obj.delta()? as u64,
                value: value.ivarint()?,
                pc: next_pc(&mut pc_idx)?,
                stack: next_stack(&mut stack_idx)?,
                atomic: if atomic_flag {
                    Some(order_from_u8(order_col.byte()?)?)
                } else {
                    None
                },
            },
            TAG_UPDATE => Event::Update {
                tid: t,
                addr: obj.delta()? as u64,
                old: value.ivarint()?,
                new: value2.ivarint()?,
                pc: next_pc(&mut pc_idx)?,
                stack: next_stack(&mut stack_idx)?,
                order: order_from_u8(order_col.byte()?)?,
            },
            TAG_FENCE => Event::Fence {
                tid: t,
                order: order_from_u8(order_col.byte()?)?,
                pc: next_pc(&mut pc_idx)?,
            },
            TAG_MUTEX_LOCK => Event::MutexLock {
                tid: t,
                mutex: obj.delta()? as u64,
                pc: next_pc(&mut pc_idx)?,
            },
            TAG_MUTEX_UNLOCK => Event::MutexUnlock {
                tid: t,
                mutex: obj.delta()? as u64,
                pc: next_pc(&mut pc_idx)?,
            },
            TAG_COND_SIGNAL => Event::CondSignal {
                tid: t,
                cv: obj.delta()? as u64,
                pc: next_pc(&mut pc_idx)?,
            },
            TAG_COND_BROADCAST => Event::CondBroadcast {
                tid: t,
                cv: obj.delta()? as u64,
                pc: next_pc(&mut pc_idx)?,
            },
            TAG_COND_WAIT_RETURN => Event::CondWaitReturn {
                tid: t,
                cv: obj.delta()? as u64,
                mutex: obj2.delta()? as u64,
                pc: next_pc(&mut pc_idx)?,
            },
            TAG_BARRIER_ENTER => Event::BarrierEnter {
                tid: t,
                barrier: obj.delta()? as u64,
                gen: gen_col.delta()? as u64,
                pc: next_pc(&mut pc_idx)?,
            },
            TAG_BARRIER_LEAVE => Event::BarrierLeave {
                tid: t,
                barrier: obj.delta()? as u64,
                gen: gen_col.delta()? as u64,
                pc: next_pc(&mut pc_idx)?,
            },
            TAG_SEM_POST => Event::SemPost {
                tid: t,
                sem: obj.delta()? as u64,
                pc: next_pc(&mut pc_idx)?,
            },
            TAG_SEM_ACQUIRED => Event::SemAcquired {
                tid: t,
                sem: obj.delta()? as u64,
                pc: next_pc(&mut pc_idx)?,
            },
            TAG_SPIN_ENTER => Event::SpinEnter {
                tid: t,
                spin: SpinLoopId(
                    u32::try_from(spin_col.uvarint()?)
                        .map_err(|_| TraceError::Corrupt("spin id out of range".into()))?,
                ),
            },
            TAG_SPIN_EXIT => {
                let spin = SpinLoopId(
                    u32::try_from(spin_col.uvarint()?)
                        .map_err(|_| TraceError::Corrupt("spin id out of range".into()))?,
                );
                let count = sr_meta.uvarint()?;
                if count > 1 << 20 {
                    return Err(TraceError::Corrupt("implausible spin-read count".into()));
                }
                let mut reads = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let addr = sr_addr.delta()? as u64;
                    let pc = next_pc(&mut sr_meta)?;
                    reads.push((addr, pc));
                }
                Event::SpinExit {
                    tid: t,
                    spin,
                    reads,
                }
            }
            TAG_OUTPUT => Event::Output {
                tid: t,
                value: value.ivarint()?,
            },
            _ => unreachable!("tag validated above"),
        };
        out.push(ev);
    }

    // Every cursor must land exactly on its column's end: leftover bytes
    // mean the columns and the kind stream disagree about the chunk's
    // shape — corruption the checksum may have missed only if the file
    // was rewritten wholesale.
    let cursors = [
        (&tid, "tid"),
        (&aux_tid, "aux-tid"),
        (&obj, "object"),
        (&obj2, "second object"),
        (&value, "value"),
        (&value2, "second value"),
        (&pc_idx, "pc index"),
        (&stack_idx, "stack index"),
        (&order_col, "order"),
        (&spin_col, "spin"),
        (&gen_col, "generation"),
        (&sr_addr, "spin-read address"),
        (&sr_meta, "spin-read"),
    ];
    for (cur, name) in cursors {
        if !cur.finished() {
            return Err(TraceError::Corrupt(format!(
                "trailing bytes in {name} column"
            )));
        }
    }
    Ok(())
}
