//! LEB128 varints and zigzag mapping — the per-column primitive codec.
//!
//! Every numeric column of the binary trace format is a sequence of
//! unsigned LEB128 varints; signed quantities (deltas, values) map
//! through zigzag first so small magnitudes of either sign stay short.
//! Decoding is fully bounds-checked: an overlong varint (more than 10
//! bytes), a truncated one, or a non-canonical one (a trailing zero
//! continuation byte — a value with a shorter valid encoding) is a
//! structured [`TraceError::Corrupt`], never a panic or a silent wrap.
//! Rejecting non-canonical forms keeps the encoding bijective: every
//! value has exactly one accepted byte sequence, so checksummed chunks
//! can never disagree about re-encoded bytes.

use spinrace_vm::TraceError;

/// Append `v` as an unsigned LEB128 varint.
#[inline]
pub fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Decode an unsigned LEB128 varint from `buf` at `*pos`, advancing
/// `*pos` past it.
#[inline]
pub fn get_uvarint(buf: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    // Fast path: with delta coding most column values are a single
    // byte, so peel that case off before the general loop.
    if let Some(&b) = buf.get(*pos) {
        if b < 0x80 {
            *pos += 1;
            return Ok(u64::from(b));
        }
    }
    get_uvarint_multi(buf, pos)
}

/// The general multi-byte (or truncated/overlong) case of
/// [`get_uvarint`].
fn get_uvarint_multi(buf: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let Some(&b) = buf.get(*pos) else {
            return Err(TraceError::Corrupt("truncated varint".into()));
        };
        *pos += 1;
        if shift == 63 && b > 1 {
            return Err(TraceError::Corrupt("overlong varint".into()));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            // A zero final byte after a continuation encodes nothing: the
            // same value has a shorter encoding, which the writer always
            // produces. Only `0x00` at shift 0 (the value zero) is valid.
            if b == 0 && shift > 0 {
                return Err(TraceError::Corrupt("non-canonical varint".into()));
            }
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(TraceError::Corrupt("overlong varint".into()));
        }
    }
}

/// Map a signed value onto unsigned so small magnitudes of either sign
/// produce short varints.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_round_trips_edge_values() {
        let mut buf = Vec::new();
        let values = [0, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            put_uvarint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_uvarint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes stay small: the whole point.
        assert!(zigzag(-1) < 128 && zigzag(1) < 128);
    }

    #[test]
    fn truncated_and_overlong_varints_are_errors() {
        // Continuation bit set but no next byte.
        let mut pos = 0;
        assert!(get_uvarint(&[0x80], &mut pos).is_err());
        // Eleven continuation bytes exceed a u64.
        let overlong = [0xff; 11];
        let mut pos = 0;
        assert!(get_uvarint(&overlong, &mut pos).is_err());
    }

    /// Every power-of-two threshold where the encoded length changes —
    /// the exact boundaries where an off-by-one in the shift arithmetic
    /// would corrupt values — round-trips, one byte longer every 7 bits.
    #[test]
    fn power_of_two_thresholds_round_trip_at_expected_lengths() {
        for k in 0..64u32 {
            for v in [1u64 << k, (1u64 << k) - 1, (1u64 << k) + 1] {
                let mut buf = Vec::new();
                put_uvarint(&mut buf, v);
                let expected_len = (64 - v.leading_zeros()).div_ceil(7).max(1) as usize;
                assert_eq!(buf.len(), expected_len, "encoded length of {v}");
                let mut pos = 0;
                assert_eq!(get_uvarint(&buf, &mut pos).unwrap(), v);
                assert_eq!(pos, buf.len(), "consumed bytes for {v}");
            }
        }
        // The widest value takes the full 10 bytes, final byte 0x01.
        let mut buf = Vec::new();
        put_uvarint(&mut buf, u64::MAX);
        assert_eq!(buf.len(), 10);
        assert_eq!(buf[9], 0x01);
    }

    /// All valid 10-byte (maximum-length) encodings decode: nine
    /// continuation bytes and a final byte of exactly 1 (the 64th bit).
    /// The tenth byte carries one usable bit, so 2..=0x7f overflows and
    /// 0x00 is non-canonical.
    #[test]
    fn ten_byte_encodings_cover_exactly_the_top_bit() {
        for low in [0x80u8, 0xff] {
            let mut enc = [low; 10];
            enc[9] = 0x01;
            let mut pos = 0;
            let got = get_uvarint(&enc, &mut pos).unwrap();
            let mut want = 1u64 << 63;
            for (i, &b) in enc[..9].iter().enumerate() {
                want |= u64::from(b & 0x7f) << (7 * i);
            }
            assert_eq!(got, want);
            assert_eq!(pos, 10);
            // Anything above 1 in the final byte spills past bit 63.
            for bad in [0x02u8, 0x40, 0x7f] {
                enc[9] = bad;
                let mut pos = 0;
                assert!(matches!(
                    get_uvarint(&enc, &mut pos),
                    Err(TraceError::Corrupt(_))
                ));
            }
        }
    }

    /// Overlong (non-canonical) encodings — a shorter valid encoding
    /// padded with zero continuation bytes — are structured corruption,
    /// not silent aliases of the short form.
    #[test]
    fn non_canonical_encodings_are_rejected() {
        // `0` padded to two bytes, `1` padded to two bytes, and a
        // max-length zero.
        for enc in [
            &[0x80, 0x00][..],
            &[0x81, 0x00][..],
            &[0xff, 0x00][..],
            &[0x80, 0x80, 0x00][..],
            &[0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x00][..],
        ] {
            let mut pos = 0;
            assert!(
                matches!(get_uvarint(enc, &mut pos), Err(TraceError::Corrupt(_))),
                "accepted non-canonical {enc:?}"
            );
        }
        // The genuine zero (one byte) still decodes.
        let mut pos = 0;
        assert_eq!(get_uvarint(&[0x00], &mut pos).unwrap(), 0);
        assert_eq!(pos, 1);
    }

    proptest::proptest! {
        /// Encode→decode is the identity for arbitrary values, and the
        /// decoder consumes exactly the bytes the encoder wrote.
        #[test]
        fn uvarint_round_trips(v in 0u64..=u64::MAX) {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            proptest::prop_assert!(buf.len() <= 10);
            let mut pos = 0;
            proptest::prop_assert_eq!(get_uvarint(&buf, &mut pos).unwrap(), v);
            proptest::prop_assert_eq!(pos, buf.len());
        }

        /// Decoding any byte soup either fails structurally or yields a
        /// value whose canonical re-encoding is exactly the bytes
        /// consumed — the bijectivity the canonicality check buys.
        #[test]
        fn decoded_values_reencode_to_the_consumed_bytes(
            bytes in proptest::collection::vec(0u8..=0xff, 0..16)
        ) {
            let mut pos = 0;
            if let Ok(v) = get_uvarint(&bytes, &mut pos) {
                let mut again = Vec::new();
                put_uvarint(&mut again, v);
                proptest::prop_assert_eq!(&again[..], &bytes[..pos]);
            }
        }

        /// Zigzag stays a bijection over the full signed range.
        #[test]
        fn zigzag_round_trips(v in i64::MIN..=i64::MAX) {
            proptest::prop_assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
