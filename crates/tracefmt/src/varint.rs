//! LEB128 varints and zigzag mapping — the per-column primitive codec.
//!
//! Every numeric column of the binary trace format is a sequence of
//! unsigned LEB128 varints; signed quantities (deltas, values) map
//! through zigzag first so small magnitudes of either sign stay short.
//! Decoding is fully bounds-checked: an overlong varint (more than 10
//! bytes) or a truncated one is a structured [`TraceError::Corrupt`],
//! never a panic or a silent wrap.

use spinrace_vm::TraceError;

/// Append `v` as an unsigned LEB128 varint.
#[inline]
pub fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Decode an unsigned LEB128 varint from `buf` at `*pos`, advancing
/// `*pos` past it.
#[inline]
pub fn get_uvarint(buf: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    // Fast path: with delta coding most column values are a single
    // byte, so peel that case off before the general loop.
    if let Some(&b) = buf.get(*pos) {
        if b < 0x80 {
            *pos += 1;
            return Ok(u64::from(b));
        }
    }
    get_uvarint_multi(buf, pos)
}

/// The general multi-byte (or truncated/overlong) case of
/// [`get_uvarint`].
fn get_uvarint_multi(buf: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let Some(&b) = buf.get(*pos) else {
            return Err(TraceError::Corrupt("truncated varint".into()));
        };
        *pos += 1;
        if shift == 63 && b > 1 {
            return Err(TraceError::Corrupt("overlong varint".into()));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(TraceError::Corrupt("overlong varint".into()));
        }
    }
}

/// Map a signed value onto unsigned so small magnitudes of either sign
/// produce short varints.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_round_trips_edge_values() {
        let mut buf = Vec::new();
        let values = [0, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            put_uvarint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_uvarint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes stay small: the whole point.
        assert!(zigzag(-1) < 128 && zigzag(1) < 128);
    }

    #[test]
    fn truncated_and_overlong_varints_are_errors() {
        // Continuation bit set but no next byte.
        let mut pos = 0;
        assert!(get_uvarint(&[0x80], &mut pos).is_err());
        // Eleven continuation bytes exceed a u64.
        let overlong = [0xff; 11];
        let mut pos = 0;
        assert!(get_uvarint(&overlong, &mut pos).is_err());
    }
}
