//! Semantic equivalence of lowered programs, and detectability of the
//! spin library by the instrumentation phase — the foundation of the
//! paper's `nolib` ("universal detector") experiments.

use spinrace_spinfind::SpinFinder;
use spinrace_synclib::lower::spinlib_ids;
use spinrace_synclib::lower_to_spinlib;
use spinrace_tir::{Module, ModuleBuilder};
use spinrace_vm::{run_module, NullSink, VmConfig};

fn outputs(m: &Module, cfg: VmConfig) -> Vec<i64> {
    let mut sink = NullSink;
    run_module(m, cfg, &mut sink)
        .expect("run ok")
        .outputs
        .iter()
        .map(|(_, v)| *v)
        .collect()
}

/// Run lib and lowered versions under many seeds; outputs must agree with
/// the deterministic expectation.
fn check_equivalence(m: &Module, expected: &[i64], seeds: u64) {
    let low = lower_to_spinlib(m).expect("lowering ok");
    for seed in 0..seeds {
        assert_eq!(
            outputs(m, VmConfig::random(seed)),
            expected,
            "lib mode, seed {seed}"
        );
        assert_eq!(
            outputs(&low, VmConfig::random(seed)),
            expected,
            "nolib mode, seed {seed}"
        );
    }
    assert_eq!(outputs(m, VmConfig::round_robin()), expected);
    assert_eq!(outputs(&low, VmConfig::round_robin()), expected);
}

fn mutex_counter_module() -> Module {
    let mut mb = ModuleBuilder::new("mutex_counter");
    let mu = mb.global("mu", 1);
    let counter = mb.global("counter", 1);
    let worker = mb.function("worker", 1, |f| {
        let check = f.new_block();
        let body = f.new_block();
        let done = f.new_block();
        let i = f.const_(0);
        f.jump(check);
        f.switch_to(check);
        let c = f.lt(i, 8);
        f.branch(c, body, done);
        f.switch_to(body);
        f.lock(mu.at(0));
        let v = f.load(counter.at(0));
        let v2 = f.add(v, 1);
        f.store(counter.at(0), v2);
        f.unlock(mu.at(0));
        let i2 = f.add(i, 1);
        f.mov(i, i2);
        f.jump(check);
        f.switch_to(done);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t1 = f.spawn(worker, 0);
        let t2 = f.spawn(worker, 1);
        f.join(t1);
        f.join(t2);
        let v = f.load(counter.at(0));
        f.output(v);
        f.ret(None);
    });
    mb.finish().unwrap()
}

#[test]
fn lowered_mutex_preserves_mutual_exclusion() {
    check_equivalence(&mutex_counter_module(), &[16], 12);
}

#[test]
fn lowered_condvar_handshake() {
    let mut mb = ModuleBuilder::new("cv_handshake");
    let mu = mb.global("mu", 1);
    let cv = mb.global("cv", 1);
    let ready = mb.global("ready", 1);
    let data = mb.global("data", 1);
    let consumer = mb.function("consumer", 1, |f| {
        let check = f.new_block();
        let sleep = f.new_block();
        let done = f.new_block();
        f.lock(mu.at(0));
        f.jump(check);
        f.switch_to(check);
        let r = f.load(ready.at(0));
        f.branch(r, done, sleep);
        f.switch_to(sleep);
        f.wait(cv.at(0), mu.at(0));
        f.jump(check);
        f.switch_to(done);
        let d = f.load(data.at(0));
        f.unlock(mu.at(0));
        f.output(d);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t = f.spawn(consumer, 0);
        f.store(data.at(0), 77);
        f.lock(mu.at(0));
        f.store(ready.at(0), 1);
        f.signal(cv.at(0));
        f.unlock(mu.at(0));
        f.join(t);
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    check_equivalence(&m, &[77], 12);
}

#[test]
fn lowered_barrier_synchronizes_rounds() {
    // 3 threads, 2 rounds: each writes its slot before the barrier, reads
    // all slots after; sums are deterministic iff the barrier works.
    let mut mb = ModuleBuilder::new("barrier_rounds");
    let bar = mb.global("bar", 3);
    let slots = mb.global("slots", 3);
    let results = mb.global("results", 6);
    let worker = mb.function("worker", 1, |f| {
        let id = f.param(0);
        for round in 0..2 {
            let base = f.const_(round * 100);
            let v = f.add(base, id);
            f.store(slots.idx(id), v);
            f.barrier_wait(bar.at(0));
            let mut total = f.const_(0);
            for i in 0..3 {
                let s = f.load(slots.at(i));
                total = f.add(total, s);
            }
            let slot = f.const_(round * 3);
            let ridx = f.add(slot, id);
            f.store(results.idx(ridx), total);
            // Second barrier separates the read phase from the next
            // round's writes.
            f.barrier_wait(bar.at(0));
        }
        f.ret(None);
    });
    mb.entry("main", |f| {
        f.barrier_init(bar.at(0), 3);
        let t1 = f.spawn(worker, 0);
        let t2 = f.spawn(worker, 1);
        let t3 = f.spawn(worker, 2);
        f.join(t1);
        f.join(t2);
        f.join(t3);
        for i in 0..6 {
            let v = f.load(results.at(i));
            f.output(v);
        }
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    // Round 0: 0+1+2 = 3; round 1: 100+101+102 = 303.
    check_equivalence(&m, &[3, 3, 3, 303, 303, 303], 8);
}

#[test]
fn lowered_semaphore_acts_as_lock() {
    let mut mb = ModuleBuilder::new("sem_lock");
    let sem = mb.global("sem", 1);
    let counter = mb.global("counter", 1);
    let worker = mb.function("worker", 1, |f| {
        let check = f.new_block();
        let body = f.new_block();
        let done = f.new_block();
        let i = f.const_(0);
        f.jump(check);
        f.switch_to(check);
        let c = f.lt(i, 6);
        f.branch(c, body, done);
        f.switch_to(body);
        f.sem_wait(sem.at(0));
        let v = f.load(counter.at(0));
        let v2 = f.add(v, 1);
        f.store(counter.at(0), v2);
        f.sem_post(sem.at(0));
        let i2 = f.add(i, 1);
        f.mov(i, i2);
        f.jump(check);
        f.switch_to(done);
        f.ret(None);
    });
    mb.entry("main", |f| {
        f.sem_init(sem.at(0), 1);
        let t1 = f.spawn(worker, 0);
        let t2 = f.spawn(worker, 1);
        f.join(t1);
        f.join(t2);
        let v = f.load(counter.at(0));
        f.output(v);
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    check_equivalence(&m, &[12], 12);
}

#[test]
fn spinfind_rediscovers_library_primitives() {
    // Instrument the lowered module: the spin library's waiting loops must
    // all be detected with the default window — this is the paper's claim
    // that primitives are identifiable from their spin loops.
    let m = mutex_counter_module();
    let mut low = lower_to_spinlib(&m).unwrap();
    let analysis = SpinFinder::default().instrument(&mut low);
    let lib = spinlib_ids(&m);
    let spin = low.spin.as_ref().unwrap();
    // mutex_lock's TTAS read loop:
    assert!(
        spin.loops.iter().any(|l| l.func == lib.mutex_lock),
        "TTAS inner read spin detected; verdicts: {:#?}",
        analysis.verdicts
    );
}

#[test]
fn spinfind_finds_all_four_primitive_wait_loops() {
    let mut mb = ModuleBuilder::new("all_prims");
    let mu = mb.global("mu", 1);
    let cv = mb.global("cv", 1);
    let bar = mb.global("bar", 3);
    let sem = mb.global("sem", 1);
    let worker = mb.function("worker", 1, |f| {
        f.lock(mu.at(0));
        f.wait(cv.at(0), mu.at(0));
        f.unlock(mu.at(0));
        f.barrier_wait(bar.at(0));
        f.sem_wait(sem.at(0));
        f.ret(None);
    });
    mb.entry("main", |f| {
        f.barrier_init(bar.at(0), 2);
        f.sem_init(sem.at(0), 0);
        let t = f.spawn(worker, 0);
        f.lock(mu.at(0));
        f.signal(cv.at(0));
        f.unlock(mu.at(0));
        f.barrier_wait(bar.at(0));
        f.sem_post(sem.at(0));
        f.join(t);
        f.ret(None);
    });
    let m = mb.finish().unwrap();
    let mut low = lower_to_spinlib(&m).unwrap();
    let _ = SpinFinder::default().instrument(&mut low);
    let lib = spinlib_ids(&m);
    let spin = low.spin.as_ref().unwrap();
    for (name, func) in [
        ("mutex_lock", lib.mutex_lock),
        ("cond_wait", lib.cond_wait),
        ("barrier_wait", lib.barrier_wait),
        ("sem_wait", lib.sem_wait),
    ] {
        assert!(
            spin.loops.iter().any(|l| l.func == func),
            "{name} wait loop not detected"
        );
    }
}

#[test]
fn lowered_runs_track_spin_instances() {
    let m = mutex_counter_module();
    let mut low = lower_to_spinlib(&m).unwrap();
    let _ = SpinFinder::default().instrument(&mut low);
    let mut sink = NullSink;
    let summary = run_module(&low, VmConfig::random(5), &mut sink).expect("run");
    assert_eq!(summary.spin_enters, summary.spin_exits);
}
