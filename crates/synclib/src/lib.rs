//! # SpinRace synclib — synchronization from spinning read loops
//!
//! The paper's "universal race detector" rests on one observation:
//! *synchronization operations are ultimately implemented by spinning read
//! loops*. This crate makes that concrete. It provides:
//!
//! * [`primitives`] — mutex, condition variable, barrier and semaphore
//!   implemented **in TIR** from plain loads/stores, CAS/RMW and pure
//!   spinning read loops (test-and-test-and-set locks, sequence-number
//!   condvars, generation barriers);
//! * [`lower::lower_to_spinlib`] — the lowering pass that replaces every
//!   library synchronization instruction in a module with calls into those
//!   implementations. A lowered module contains **no** library operations,
//!   so a detector run on it has no library knowledge to exploit — the
//!   paper's `nolib` configuration;
//! * [`patterns`] — builder combinators for the ad-hoc spin patterns the
//!   test suites use (flag waits, padded multi-block spin conditions).
//!
//! Object layout conventions (word-granular):
//!
//! | object    | words | contents                        |
//! |-----------|-------|---------------------------------|
//! | mutex     | 1     | `0` free / `1` held             |
//! | condvar   | 1     | sequence number                 |
//! | barrier   | 3     | `[parties, count, generation]`  |
//! | semaphore | 1     | count                           |
//!
//! Library mode only uses object *addresses* as identities, so declaring
//! every barrier as 3 words keeps programs portable across both modes.

pub mod lower;
pub mod patterns;
pub mod primitives;

pub use lower::{lower_to_spinlib, lower_to_spinlib_obscure, lower_to_spinlib_styled, LowerError};
pub use primitives::{LibStyle, SpinLib};
