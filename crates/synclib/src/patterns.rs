//! Builder combinators for ad-hoc synchronization patterns.
//!
//! The test suites use these to plant the paper's patterns in workload
//! programs: plain flag waits, padded multi-block spin conditions (for the
//! window sweep of Table 2), and flag publication.

use spinrace_tir::{AddrExpr, FunctionBuilder, Operand};

/// Emit `while (mem[addr] == 0) {}` — the canonical 1-block spinning read
/// loop. Leaves the builder positioned after the loop.
pub fn spin_until_nonzero(f: &mut FunctionBuilder, addr: AddrExpr) {
    let head = f.new_block();
    let done = f.new_block();
    f.jump(head);
    f.switch_to(head);
    let v = f.load(addr);
    f.branch(v, done, head);
    f.switch_to(done);
}

/// Emit `while (mem[addr] < val) {}` — monotone-counter wait, the shape
/// used when one flag word is reused across rounds (value = round).
pub fn spin_until_ge(f: &mut FunctionBuilder, addr: AddrExpr, val: impl Into<Operand>) {
    let head = f.new_block();
    let done = f.new_block();
    let target = val.into();
    f.jump(head);
    f.switch_to(head);
    let v = f.load(addr);
    let hit = f.ge(v, target);
    f.branch(hit, done, head);
    f.switch_to(done);
}

/// Emit `while (mem[addr] != val) {}`.
pub fn spin_until_eq(f: &mut FunctionBuilder, addr: AddrExpr, val: impl Into<Operand>) {
    let head = f.new_block();
    let done = f.new_block();
    let target = val.into();
    f.jump(head);
    f.switch_to(head);
    let v = f.load(addr);
    let hit = f.eq(v, target);
    f.branch(hit, done, head);
    f.switch_to(done);
}

/// Emit a spinning read loop padded to exactly `blocks` basic blocks
/// (1 ≤ blocks): the condition block plus `blocks - 1` chained pure body
/// blocks. Used to probe the detection window (paper Table 2).
pub fn spin_until_nonzero_sized(f: &mut FunctionBuilder, addr: AddrExpr, blocks: u32) {
    assert!(blocks >= 1, "a loop needs at least one block");
    let head = f.new_block();
    let done = f.new_block();
    f.jump(head);
    f.switch_to(head);
    let v = f.load(addr);
    if blocks == 1 {
        f.branch(v, done, head);
    } else {
        let mut pads = Vec::with_capacity((blocks - 1) as usize);
        for _ in 0..blocks - 1 {
            pads.push(f.new_block());
        }
        f.branch(v, done, pads[0]);
        for (i, &p) in pads.iter().enumerate() {
            f.switch_to(p);
            f.nop();
            let next = if i + 1 < pads.len() {
                pads[i + 1]
            } else {
                head
            };
            f.jump(next);
        }
    }
    f.switch_to(done);
}

/// Publish: `mem[data] = value; mem[flag] = 1` — the counterpart-write
/// side of a flag handoff.
pub fn publish_with_flag(
    f: &mut FunctionBuilder,
    data: AddrExpr,
    value: impl Into<Operand>,
    flag: AddrExpr,
) {
    f.store(data, value);
    f.store(flag, 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinrace_tir::ModuleBuilder;

    fn count_loop_blocks(blocks: u32) -> u32 {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global("g", 1);
        mb.entry("main", |f| {
            spin_until_nonzero_sized(f, g.at(0), blocks);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        // count via spinfind-free structural check: blocks minus entry+done
        (m.function(m.entry).blocks.len() - 2) as u32
    }

    #[test]
    fn sized_spin_produces_requested_block_count() {
        assert_eq!(count_loop_blocks(1), 1);
        assert_eq!(count_loop_blocks(3), 3);
        assert_eq!(count_loop_blocks(7), 7);
    }

    #[test]
    fn spin_until_eq_compares() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global("g", 1);
        mb.entry("main", |f| {
            spin_until_eq(f, g.at(0), 4);
            f.ret(None);
        });
        assert!(mb.finish().is_ok());
    }
}
