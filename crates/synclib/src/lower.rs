//! The `nolib` lowering pass: replace library synchronization operations
//! with calls into the spin library.
//!
//! After lowering, a module contains only plain/atomic memory operations,
//! calls, and spawn/join — a detector sees the program the way a binary
//! tool without header knowledge would. Running `spinrace-spinfind` on the
//! lowered module then re-discovers the synchronization from the spin
//! loops alone, which is the paper's *universal race detector*.

use crate::primitives::{LibStyle, SpinLib};
use spinrace_tir::{validate, AddrExpr, BinOp, Instr, Module, Operand, Reg, ValidationError};
use std::fmt;

/// Lowering failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LowerError {
    /// A barrier object is statically too small (needs 3 words).
    BarrierTooSmall { global: String, words: u64 },
    /// The lowered module failed validation (internal error).
    Invalid(ValidationError),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::BarrierTooSmall { global, words } => write!(
                f,
                "barrier global `{global}` has {words} words; spin barriers need 3 \
                 ([parties, count, generation])"
            ),
            LowerError::Invalid(e) => write!(f, "lowered module invalid: {e}"),
        }
    }
}

impl std::error::Error for LowerError {}

/// Lower `m` with the textbook (fully detectable) library.
pub fn lower_to_spinlib(m: &Module) -> Result<Module, LowerError> {
    lower_to_spinlib_styled(m, LibStyle::Textbook)
}

/// Lower `m` with the obscure library — realistic internals whose
/// condition-variable paths do not match the spin patterns (models real
/// pthread internals; used for the PARSEC `nolib` experiments).
pub fn lower_to_spinlib_obscure(m: &Module) -> Result<Module, LowerError> {
    lower_to_spinlib_styled(m, LibStyle::Obscure)
}

/// Lower `m` to its spin-library form. The input is unchanged; the output
/// has every library sync instruction replaced by a call and the spin
/// library functions appended. Any previous spin table is dropped (the
/// caller re-runs the instrumentation phase on the result).
pub fn lower_to_spinlib_styled(m: &Module, style: LibStyle) -> Result<Module, LowerError> {
    let lib = SpinLib::at_offset(m.functions.len());

    // Static sanity: barriers need 3 words.
    for func in &m.functions {
        for block in &func.blocks {
            for instr in &block.instrs {
                if let Instr::BarrierInit { addr, .. } | Instr::BarrierWait { addr } = instr {
                    if let AddrExpr::Global { global, disp } = addr {
                        let g = &m.globals[global.0 as usize];
                        if g.words.saturating_sub(*disp as u64) < 3 {
                            return Err(LowerError::BarrierTooSmall {
                                global: g.name.clone(),
                                words: g.words,
                            });
                        }
                    }
                }
            }
        }
    }

    let mut out = m.clone();
    out.name = format!("{}.nolib", m.name);
    out.spin = None;
    for func in &mut out.functions {
        let mut next_reg = func.num_regs;
        for block in &mut func.blocks {
            let mut instrs = Vec::with_capacity(block.instrs.len());
            for instr in block.instrs.drain(..) {
                lower_instr(instr, &lib, &mut instrs, &mut next_reg);
            }
            block.instrs = instrs;
        }
        func.num_regs = next_reg;
    }
    out.functions.extend(lib.build_functions(style));

    validate(&out).map_err(LowerError::Invalid)?;
    Ok(out)
}

/// Ids of the spin library functions inside a lowered module (for
/// diagnostics and tests).
pub fn spinlib_ids(original: &Module) -> SpinLib {
    SpinLib::at_offset(original.functions.len())
}

fn lower_instr(instr: Instr, lib: &SpinLib, out: &mut Vec<Instr>, next_reg: &mut u16) {
    match instr {
        Instr::MutexLock { addr } => {
            let p = materialize(addr, out, next_reg);
            out.push(call(lib.mutex_lock, vec![p]));
        }
        Instr::MutexUnlock { addr } => {
            let p = materialize(addr, out, next_reg);
            out.push(call(lib.mutex_unlock, vec![p]));
        }
        Instr::CondSignal { cv } => {
            let c = materialize(cv, out, next_reg);
            out.push(call(lib.cond_signal, vec![c]));
        }
        Instr::CondBroadcast { cv } => {
            let c = materialize(cv, out, next_reg);
            out.push(call(lib.cond_broadcast, vec![c]));
        }
        Instr::CondWait { cv, mutex } => {
            let c = materialize(cv, out, next_reg);
            let mu = materialize(mutex, out, next_reg);
            out.push(call(lib.cond_wait, vec![c, mu]));
        }
        Instr::BarrierInit { addr, count } => {
            let b = materialize(addr, out, next_reg);
            out.push(call(lib.barrier_init, vec![b, count]));
        }
        Instr::BarrierWait { addr } => {
            let b = materialize(addr, out, next_reg);
            out.push(call(lib.barrier_wait, vec![b]));
        }
        Instr::SemInit { addr, value } => {
            let s = materialize(addr, out, next_reg);
            out.push(call(lib.sem_init, vec![s, value]));
        }
        Instr::SemWait { addr } => {
            let s = materialize(addr, out, next_reg);
            out.push(call(lib.sem_wait, vec![s]));
        }
        Instr::SemPost { addr } => {
            let s = materialize(addr, out, next_reg);
            out.push(call(lib.sem_post, vec![s]));
        }
        other => out.push(other),
    }
}

fn call(func: spinrace_tir::FuncId, args: Vec<Operand>) -> Instr {
    Instr::Call {
        dst: None,
        func,
        args,
    }
}

/// Turn an address expression into a value operand, appending the
/// necessary computation.
fn materialize(addr: AddrExpr, out: &mut Vec<Instr>, next_reg: &mut u16) -> Operand {
    let mut fresh = || {
        let r = Reg(*next_reg);
        *next_reg += 1;
        r
    };
    match addr {
        AddrExpr::Global { global, disp } => {
            let dst = fresh();
            out.push(Instr::AddrOf { dst, global, disp });
            Operand::Reg(dst)
        }
        AddrExpr::GlobalIndexed {
            global,
            index,
            scale,
            disp,
        } => {
            let base = fresh();
            out.push(Instr::AddrOf {
                dst: base,
                global,
                disp,
            });
            let scaled = fresh();
            out.push(Instr::Bin {
                op: BinOp::Mul,
                dst: scaled,
                a: Operand::Reg(index),
                b: Operand::Imm(scale),
            });
            let sum = fresh();
            out.push(Instr::Bin {
                op: BinOp::Add,
                dst: sum,
                a: Operand::Reg(base),
                b: Operand::Reg(scaled),
            });
            Operand::Reg(sum)
        }
        AddrExpr::Based { base, disp } => {
            if disp == 0 {
                Operand::Reg(base)
            } else {
                let sum = fresh();
                out.push(Instr::Bin {
                    op: BinOp::Add,
                    dst: sum,
                    a: Operand::Reg(base),
                    b: Operand::Imm(disp),
                });
                Operand::Reg(sum)
            }
        }
        AddrExpr::BasedIndexed {
            base,
            index,
            scale,
            disp,
        } => {
            let scaled = fresh();
            out.push(Instr::Bin {
                op: BinOp::Mul,
                dst: scaled,
                a: Operand::Reg(index),
                b: Operand::Imm(scale),
            });
            let sum = fresh();
            out.push(Instr::Bin {
                op: BinOp::Add,
                dst: sum,
                a: Operand::Reg(base),
                b: Operand::Reg(scaled),
            });
            if disp == 0 {
                Operand::Reg(sum)
            } else {
                let fin = fresh();
                out.push(Instr::Bin {
                    op: BinOp::Add,
                    dst: fin,
                    a: Operand::Reg(sum),
                    b: Operand::Imm(disp),
                });
                Operand::Reg(fin)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinrace_tir::ModuleBuilder;

    #[test]
    fn lowered_module_has_no_lib_sync() {
        let mut mb = ModuleBuilder::new("t");
        let mu = mb.global("mu", 1);
        let cv = mb.global("cv", 1);
        let bar = mb.global("bar", 3);
        let sem = mb.global("sem", 1);
        mb.entry("main", |f| {
            f.barrier_init(bar.at(0), 1);
            f.sem_init(sem.at(0), 1);
            f.lock(mu.at(0));
            f.signal(cv.at(0));
            f.unlock(mu.at(0));
            f.barrier_wait(bar.at(0));
            f.sem_wait(sem.at(0));
            f.sem_post(sem.at(0));
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let low = lower_to_spinlib(&m).unwrap();
        for func in &low.functions {
            for block in &func.blocks {
                for i in &block.instrs {
                    assert!(!i.is_lib_sync(), "leftover lib sync {i:?} in {}", func.name);
                }
            }
        }
        assert_eq!(low.functions.len(), m.functions.len() + 10);
    }

    #[test]
    fn small_barrier_global_is_rejected() {
        let mut mb = ModuleBuilder::new("t");
        let bar = mb.global("bar", 1);
        mb.entry("main", |f| {
            f.barrier_init(bar.at(0), 1);
            f.barrier_wait(bar.at(0));
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        assert!(matches!(
            lower_to_spinlib(&m),
            Err(LowerError::BarrierTooSmall { .. })
        ));
    }

    #[test]
    fn non_sync_instructions_survive_untouched() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global("g", 1);
        mb.entry("main", |f| {
            let v = f.const_(1);
            f.store(g.at(0), v);
            f.output(v);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let low = lower_to_spinlib(&m).unwrap();
        assert_eq!(
            low.functions[0].blocks[0].instrs,
            m.functions[0].blocks[0].instrs
        );
    }
}
