//! The spin-based synchronization primitives, built as TIR functions.
//!
//! Every blocking primitive bottoms out in a **pure spinning read loop**
//! (a self-loop whose condition is a memory load), with the state change
//! performed by CAS/RMW *outside* that loop — the exact shape the paper's
//! instrumentation phase detects. See the crate docs for object layouts.

use spinrace_tir::{AddrExpr, FuncId, Function, FunctionBuilder, MemOrder, Operand, Reg, RmwOp};

/// The function ids of the spin library inside a lowered module.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpinLib {
    /// `spin_mutex_lock(p)` — TTAS acquire.
    pub mutex_lock: FuncId,
    /// `spin_mutex_unlock(p)` — plain store release.
    pub mutex_unlock: FuncId,
    /// `spin_cond_signal(c)` — sequence bump.
    pub cond_signal: FuncId,
    /// `spin_cond_broadcast(c)` — sequence bump (wakes all by value change).
    pub cond_broadcast: FuncId,
    /// `spin_cond_wait(c, m)` — release, spin on sequence, re-acquire.
    pub cond_wait: FuncId,
    /// `spin_barrier_init(b, n)`.
    pub barrier_init: FuncId,
    /// `spin_barrier_wait(b)` — generation barrier.
    pub barrier_wait: FuncId,
    /// `spin_sem_init(s, v)`.
    pub sem_init: FuncId,
    /// `spin_sem_wait(s)` — spin until positive, CAS decrement.
    pub sem_wait: FuncId,
    /// `spin_sem_post(s)` — RMW increment.
    pub sem_post: FuncId,
}

/// Flavour of the generated library.
///
/// `Textbook` primitives all bottom out in clean, detectable spinning read
/// loops. `Obscure` models *real* library internals the paper describes as
/// undetectable ("function pointers for condition evaluation and obscure
/// implementation ... do not match the spin patterns"): its condition
/// variable evaluates the wait condition through a deep pure-call chain
/// (inflating the loop past any realistic window) and signals with a
/// non-atomic read-increment-write, so the sequence word never gets
/// promoted — execution semantics are unchanged, but the detector cannot
/// recover the happens-before edges, which is exactly why the paper's
/// `nolib` column regresses on condition-variable-heavy PARSEC programs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LibStyle {
    /// Every wait loop matches the spin idiom (fully detectable).
    #[default]
    Textbook,
    /// Condition-variable internals dodge the spin patterns.
    Obscure,
}

impl SpinLib {
    /// Ids when the library is appended after `existing` functions.
    /// (`Obscure` appends two extra helper functions after the ten
    /// primitives.)
    pub fn at_offset(existing: usize) -> SpinLib {
        let f = |i: usize| FuncId((existing + i) as u32);
        SpinLib {
            mutex_lock: f(0),
            mutex_unlock: f(1),
            cond_signal: f(2),
            cond_broadcast: f(3),
            cond_wait: f(4),
            barrier_init: f(5),
            barrier_wait: f(6),
            sem_init: f(7),
            sem_wait: f(8),
            sem_post: f(9),
        }
    }

    /// Build the library functions, in id order.
    pub fn build_functions(&self, style: LibStyle) -> Vec<Function> {
        match style {
            LibStyle::Textbook => vec![
                build_mutex_lock(),
                build_mutex_unlock(),
                build_cond_signal("spin_cond_signal"),
                build_cond_signal("spin_cond_broadcast"),
                build_cond_wait(self),
                build_barrier_init(),
                build_barrier_wait(),
                build_sem_init(),
                build_sem_wait(),
                build_sem_post(),
            ],
            LibStyle::Obscure => {
                // Helper ids follow the ten primitives.
                let check_outer = FuncId(self.sem_post.0 + 1);
                let check_inner = FuncId(self.sem_post.0 + 2);
                vec![
                    build_mutex_lock(),
                    build_mutex_unlock(),
                    build_obscure_signal("spin_cond_signal"),
                    build_obscure_signal("spin_cond_broadcast"),
                    build_obscure_cond_wait(self, check_outer),
                    build_barrier_init(),
                    build_barrier_wait(),
                    build_sem_init(),
                    build_sem_wait(),
                    build_sem_post(),
                    build_obscure_check_outer(check_inner),
                    build_obscure_check_inner(),
                ]
            }
        }
    }

    /// Number of functions the chosen style appends.
    pub fn function_count(style: LibStyle) -> usize {
        match style {
            LibStyle::Textbook => 10,
            LibStyle::Obscure => 12,
        }
    }
}

fn based(p: Reg, disp: i64) -> AddrExpr {
    AddrExpr::Based { base: p, disp }
}

fn finish(fb: FunctionBuilder) -> Function {
    let (f, strings) = fb.finish_standalone().expect("synclib function");
    assert!(
        strings.is_empty(),
        "synclib functions use no assert strings"
    );
    f
}

/// Test-and-test-and-set lock:
/// ```text
///   test: v = load [p]           ; pure spinning read loop (self-loop)
///         branch v ? test : try
///   try:  old = cas [p] 0 -> 1
///         branch old ? test : done
/// ```
fn build_mutex_lock() -> Function {
    let mut f = FunctionBuilder::standalone("spin_mutex_lock", 1);
    let p = f.param(0);
    let test = f.new_block();
    let try_b = f.new_block();
    let done = f.new_block();
    f.jump(test);
    f.switch_to(test);
    let v = f.load(based(p, 0));
    f.branch(v, test, try_b);
    f.switch_to(try_b);
    let old = f.cas(based(p, 0), 0, 1, MemOrder::AcqRel);
    f.branch(old, test, done);
    f.switch_to(done);
    f.ret(None);
    finish(f)
}

/// Unlock: plain store of 0, as x86 compilers emit (`mov [p], 0`).
fn build_mutex_unlock() -> Function {
    let mut f = FunctionBuilder::standalone("spin_mutex_unlock", 1);
    let p = f.param(0);
    f.store(based(p, 0), 0);
    f.ret(None);
    finish(f)
}

/// Signal and broadcast both bump the sequence word; waiters spin on the
/// value changing, so one bump releases every current waiter.
fn build_cond_signal(name: &str) -> Function {
    let mut f = FunctionBuilder::standalone(name, 1);
    let c = f.param(0);
    f.rmw(RmwOp::Add, based(c, 0), 1, MemOrder::SeqCst);
    f.ret(None);
    finish(f)
}

/// Sequence-number wait: capture seq under the mutex, release, spin until
/// the sequence changes, re-acquire.
fn build_cond_wait(lib: &SpinLib) -> Function {
    let mut f = FunctionBuilder::standalone("spin_cond_wait", 2);
    let c = f.param(0);
    let m = f.param(1);
    let spin = f.new_block();
    let reacq = f.new_block();
    let seq = f.load(based(c, 0));
    f.call_void(lib.mutex_unlock, &[Operand::Reg(m)]);
    f.jump(spin);
    f.switch_to(spin);
    let v = f.load(based(c, 0));
    let same = f.eq(v, seq);
    f.branch(same, spin, reacq);
    f.switch_to(reacq);
    f.call_void(lib.mutex_lock, &[Operand::Reg(m)]);
    f.ret(None);
    finish(f)
}

/// `[b] = parties, [b+1] = 0, [b+2] = 0`.
fn build_barrier_init() -> Function {
    let mut f = FunctionBuilder::standalone("spin_barrier_init", 2);
    let b = f.param(0);
    let n = f.param(1);
    f.store(based(b, 0), n);
    f.store(based(b, 1), 0);
    f.store(based(b, 2), 0);
    f.ret(None);
    finish(f)
}

/// Generation barrier:
/// ```text
///   gen   = load [b+2]
///   old   = rmw.add [b+1], 1
///   last? = (old + 1 == load [b])
///   last:  store [b+1] <- 0 ; rmw.add [b+2], 1
///   rest:  spin while load [b+2] == gen       ; pure spinning read loop
/// ```
/// The count reset precedes the generation bump, so next-round arrivals
/// (which can only exist after the bump) never race the reset.
fn build_barrier_wait() -> Function {
    let mut f = FunctionBuilder::standalone("spin_barrier_wait", 1);
    let b = f.param(0);
    let last_b = f.new_block();
    let spin = f.new_block();
    let done = f.new_block();
    let gen = f.load(based(b, 2));
    let old = f.rmw(RmwOp::Add, based(b, 1), 1, MemOrder::SeqCst);
    let parties = f.load(based(b, 0));
    let arrived = f.add(old, 1);
    let is_last = f.eq(arrived, parties);
    f.branch(is_last, last_b, spin);
    f.switch_to(last_b);
    f.store(based(b, 1), 0);
    f.rmw(RmwOp::Add, based(b, 2), 1, MemOrder::SeqCst);
    f.jump(done);
    f.switch_to(spin);
    let g2 = f.load(based(b, 2));
    let same = f.eq(g2, gen);
    f.branch(same, spin, done);
    f.switch_to(done);
    f.ret(None);
    finish(f)
}

fn build_sem_init() -> Function {
    let mut f = FunctionBuilder::standalone("spin_sem_init", 2);
    let s = f.param(0);
    let v = f.param(1);
    f.store(based(s, 0), v);
    f.ret(None);
    finish(f)
}

/// Spin until the count is positive, then CAS-decrement (retry on races).
fn build_sem_wait() -> Function {
    let mut f = FunctionBuilder::standalone("spin_sem_wait", 1);
    let s = f.param(0);
    let spin = f.new_block();
    let try_b = f.new_block();
    let done = f.new_block();
    f.jump(spin);
    f.switch_to(spin);
    let v = f.load(based(s, 0));
    let empty = f.bin(spinrace_tir::BinOp::Le, v, 0);
    f.branch(empty, spin, try_b);
    f.switch_to(try_b);
    let vm1 = f.sub(v, 1);
    let old = f.cas(based(s, 0), v, vm1, MemOrder::AcqRel);
    let ok = f.eq(old, v);
    f.branch(ok, done, spin);
    f.switch_to(done);
    f.ret(None);
    finish(f)
}

fn build_sem_post() -> Function {
    let mut f = FunctionBuilder::standalone("spin_sem_post", 1);
    let s = f.param(0);
    f.rmw(RmwOp::Add, based(s, 0), 1, MemOrder::SeqCst);
    f.ret(None);
    finish(f)
}

// ---- the obscure (realistic, undetectable) condvar internals ----

/// Non-atomic sequence bump: `load; add; store`. Correct when signalling
/// under the usual mutex convention, but — crucially — not an atomic RMW,
/// so the detector never promotes the sequence word.
fn build_obscure_signal(name: &str) -> Function {
    let mut f = FunctionBuilder::standalone(name, 1);
    let c = f.param(0);
    let v = f.load(based(c, 0));
    let v2 = f.add(v, 1);
    f.store(based(c, 0), v2);
    f.ret(None);
    finish(f)
}

/// Wait whose condition evaluation goes through a two-level pure call
/// chain. The chain's blocks inflate the loop weight far past the paper's
/// 7-block window, so the loop is never classified as a spinning read
/// loop (the "obscure implementation" failure mode).
fn build_obscure_cond_wait(lib: &SpinLib, check_outer: FuncId) -> Function {
    let mut f = FunctionBuilder::standalone("spin_cond_wait", 2);
    let c = f.param(0);
    let m = f.param(1);
    let spin = f.new_block();
    let reacq = f.new_block();
    let seq = f.load(based(c, 0));
    f.call_void(lib.mutex_unlock, &[Operand::Reg(m)]);
    f.jump(spin);
    f.switch_to(spin);
    let v = f.call(check_outer, &[Operand::Reg(c)]);
    let same = f.eq(v, seq);
    f.branch(same, spin, reacq);
    f.switch_to(reacq);
    f.call_void(lib.mutex_lock, &[Operand::Reg(m)]);
    f.ret(None);
    finish(f)
}

/// Outer condition evaluator: pads blocks, delegates to the inner reader.
fn build_obscure_check_outer(check_inner: FuncId) -> Function {
    let mut f = FunctionBuilder::standalone("cv_check_outer", 1);
    let c = f.param(0);
    let mut prev = f.current();
    for _ in 0..4 {
        let nb = f.new_block();
        f.switch_to(prev);
        f.nop();
        f.jump(nb);
        prev = nb;
        f.switch_to(nb);
    }
    let v = f.call(check_inner, &[Operand::Reg(c)]);
    f.ret(Some(Operand::Reg(v)));
    finish(f)
}

/// Inner condition evaluator: more padding plus the actual load.
fn build_obscure_check_inner() -> Function {
    let mut f = FunctionBuilder::standalone("cv_check_inner", 1);
    let c = f.param(0);
    let mut prev = f.current();
    for _ in 0..4 {
        let nb = f.new_block();
        f.switch_to(prev);
        f.nop();
        f.jump(nb);
        prev = nb;
        f.switch_to(nb);
    }
    let v = f.load(based(c, 0));
    f.ret(Some(Operand::Reg(v)));
    finish(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_has_ten_functions_in_id_order() {
        let lib = SpinLib::at_offset(3);
        assert_eq!(lib.mutex_lock, FuncId(3));
        assert_eq!(lib.sem_post, FuncId(12));
        let funcs = lib.build_functions(LibStyle::Textbook);
        assert_eq!(funcs.len(), 10);
        assert_eq!(funcs[0].name, "spin_mutex_lock");
        assert_eq!(funcs[9].name, "spin_sem_post");
    }

    #[test]
    fn obscure_library_adds_helper_functions() {
        let lib = SpinLib::at_offset(0);
        let funcs = lib.build_functions(LibStyle::Obscure);
        assert_eq!(funcs.len(), 12);
        assert_eq!(funcs[10].name, "cv_check_outer");
        assert_eq!(funcs[11].name, "cv_check_inner");
        // The obscure signal has no RMW.
        let has_rmw = funcs[2]
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(i, spinrace_tir::Instr::Rmw { .. }));
        assert!(!has_rmw, "obscure signal must be a plain load/add/store");
    }

    #[test]
    fn lock_has_ttas_shape() {
        let f = build_mutex_lock();
        // 4 blocks: entry, test, try, done
        assert_eq!(f.blocks.len(), 4);
        // exactly one CAS
        let cas_count: usize = f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i, spinrace_tir::Instr::Cas { .. }))
            .count();
        assert_eq!(cas_count, 1);
    }

    #[test]
    fn cond_wait_calls_unlock_then_lock() {
        let lib = SpinLib::at_offset(0);
        let f = build_cond_wait(&lib);
        let calls: Vec<FuncId> = f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter_map(|i| i.callee())
            .collect();
        assert_eq!(calls, vec![lib.mutex_unlock, lib.mutex_lock]);
    }
}
