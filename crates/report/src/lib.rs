//! # SpinRace report — regenerating the paper's tables and figures
//!
//! One function per experiment artifact:
//!
//! | id | paper artifact | function |
//! |----|----------------|----------|
//! | T1 | `data-race-test` results (4 tools)            | [`experiments::t1_drt`] |
//! | T2 | spin-window sweep (3/6/7/8)                   | [`experiments::t2_window_sweep`] |
//! | T3 | PARSEC synchronization characteristics        | [`experiments::t3_characteristics`] |
//! | T4 | PARSEC racy contexts, programs without ad-hoc | [`experiments::t4_no_adhoc`] |
//! | T5 | PARSEC racy contexts, programs with ad-hoc    | [`experiments::t5_with_adhoc`] |
//! | T6 | universal-detector summary (all programs)     | [`experiments::t6_universal`] |
//! | F1 | detector memory consumption                   | [`experiments::f1_memory`] |
//! | F2 | runtime overhead                              | [`experiments::f2_runtime`] |
//! | W1 | generated workloads vs ground-truth oracles (beyond the paper) | [`experiments::w1_workloads`] |
//!
//! Every function returns an [`Experiment`]: a rendered ASCII table plus a
//! serde-serializable data payload (for `EXPERIMENTS.md` tooling).

pub mod ascii;
pub mod experiments;

pub use ascii::AsciiTable;
pub use experiments::{
    f1_memory, f2_runtime, t1_drt, t2_window_sweep, t3_characteristics, t4_no_adhoc, t5_with_adhoc,
    t6_universal, w1_workloads, Experiment,
};
