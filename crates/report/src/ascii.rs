//! Minimal ASCII table rendering.

/// A simple column-aligned table.
#[derive(Clone, Debug, Default)]
pub struct AsciiTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl AsciiTable {
    /// Table with the given headers.
    pub fn new(headers: &[&str]) -> AsciiTable {
        AsciiTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with a header underline; first column left-aligned, the
    /// rest right-aligned.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    line.push_str(&format!("{:<width$}", c, width = widths[i]));
                } else {
                    line.push_str(&format!("{:>width$}", c, width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = AsciiTable::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "100".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        // right alignment of the value column
        assert!(lines[2].ends_with("  1") || lines[2].ends_with(" 1"));
        assert!(lines[3].ends_with("100"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_is_checked() {
        let mut t = AsciiTable::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
