//! The per-experiment renderers. Each regenerates one table or figure of
//! the paper from a live run of the pipeline and pairs the measured
//! numbers with the paper's reported ones.

use crate::ascii::AsciiTable;
use serde_json::json;
use spinrace_core::{Analyzer, Tool};
use spinrace_spinfind::sync_inventory;
use spinrace_suites::{all_programs, run_drt, run_parsec, run_workloads, ParsecProgram};
use std::time::Instant;

/// A rendered experiment: ASCII output plus machine-readable payload.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// Experiment id (`T1`…`F2`).
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// Rendered ASCII table(s).
    pub rendered: String,
    /// JSON payload for tooling.
    pub json: serde_json::Value,
}

/// Seeds used for the PARSEC averages (the paper averaged 5 runs).
pub const PARSEC_SEEDS: [u64; 5] = [1, 2, 3, 4, 5];

/// T1 — the `data-race-test` table (paper: 120 cases, four tools).
pub fn t1_drt() -> Experiment {
    let tools = Tool::paper_lineup();
    let table = run_drt(&tools);
    // Paper row values for side-by-side comparison.
    let paper = [
        ("Helgrind+ lib", (32, 8)),
        ("Helgrind+ lib+spin(7)", (8, 7)),
        ("Helgrind+ nolib+spin(7)", (9, 7)),
        ("DRD", (13, 20)),
    ];
    let mut t = AsciiTable::new(&[
        "Tool",
        "FalseAlarms",
        "Missed",
        "Failed",
        "Correct",
        "paper FA",
        "paper missed",
    ]);
    let mut rows_json = Vec::new();
    for r in &table.rows {
        let (pfa, pm) = paper
            .iter()
            .find(|(n, _)| *n == r.tool)
            .map(|(_, v)| *v)
            .unwrap_or((0, 0));
        t.row(vec![
            r.tool.clone(),
            r.false_alarms.to_string(),
            r.missed_races.to_string(),
            r.failed.to_string(),
            r.correct.to_string(),
            pfa.to_string(),
            pm.to_string(),
        ]);
        rows_json.push(json!({
            "tool": r.tool,
            "false_alarms": r.false_alarms,
            "missed": r.missed_races,
            "failed": r.failed,
            "correct": r.correct,
            "paper_false_alarms": pfa,
            "paper_missed": pm,
        }));
    }
    Experiment {
        id: "T1",
        title: "data-race-test suite (120 cases), standard tool lineup".into(),
        rendered: t.render(),
        json: json!({ "rows": rows_json }),
    }
}

/// T2 — the spin-window sweep (paper: spin(3)/(6)/(7)/(8)).
///
/// Trace-centric since the session redesign: per case, each window's
/// instrumented module is prepared, but the VM executes only once per
/// *distinct* prepared module and every window's detector replays the
/// recorded trace (windows that accept the same loops — e.g. 7 and 8 on
/// most cases — share one execution). The JSON's `vm_runs` field reports
/// how many executions the sweep actually needed out of `tools × cases`.
pub fn t2_window_sweep() -> Experiment {
    let windows = [3u32, 6, 7, 8];
    let paper_fa = [24, 23, 8, 8];
    let tools: Vec<Tool> = windows
        .iter()
        .map(|&w| Tool::HelgrindLibSpin { window: w })
        .collect();
    let table = run_drt(&tools);
    let mut t = AsciiTable::new(&[
        "Tool",
        "FalseAlarms",
        "Missed",
        "Failed",
        "Correct",
        "paper FA",
    ]);
    let mut rows_json = Vec::new();
    for (i, r) in table.rows.iter().enumerate() {
        t.row(vec![
            r.tool.clone(),
            r.false_alarms.to_string(),
            r.missed_races.to_string(),
            r.failed.to_string(),
            r.correct.to_string(),
            paper_fa[i].to_string(),
        ]);
        rows_json.push(json!({
            "tool": r.tool,
            "false_alarms": r.false_alarms,
            "missed": r.missed_races,
            "paper_false_alarms": paper_fa[i],
        }));
    }
    Experiment {
        id: "T2",
        title: "spin-loop detection window sweep".into(),
        rendered: t.render(),
        json: json!({
            "rows": rows_json,
            "vm_runs": table.vm_runs as u64,
            "cells": table.outcomes.len() as u64,
        }),
    }
}

/// T3 — the PARSEC synchronization-characteristics table.
pub fn t3_characteristics() -> Experiment {
    let programs = all_programs();
    let mut t = AsciiTable::new(&[
        "Program",
        "Model",
        "LOC (paper)",
        "CVs",
        "Locks",
        "Barriers",
        "Ad-hoc",
        "spins found",
    ]);
    let mut rows_json = Vec::new();
    for p in &programs {
        let module = (p.build)(p.threads, p.size);
        let inv = sync_inventory(&module, 7);
        let mark = |b: bool| if b { "x" } else { "-" }.to_string();
        t.row(vec![
            p.name.to_string(),
            p.model.to_string(),
            p.paper_loc.to_string(),
            mark(p.uses_cvs),
            mark(p.uses_locks),
            mark(p.uses_barriers),
            mark(p.has_adhoc),
            inv.adhoc_spins.to_string(),
        ]);
        rows_json.push(json!({
            "program": p.name,
            "model": p.model,
            "cvs": p.uses_cvs,
            "locks": p.uses_locks,
            "barriers": p.uses_barriers,
            "adhoc": p.has_adhoc,
            "detected_spins": inv.adhoc_spins,
            "lib_lock_sites": inv.locks,
            "lib_cv_sites": inv.condvars,
            "lib_barrier_sites": inv.barriers,
            "atomic_sites": inv.atomics,
        }));
    }
    Experiment {
        id: "T3",
        title: "PARSEC program synchronization characteristics".into(),
        rendered: t.render(),
        json: json!({ "rows": rows_json }),
    }
}

fn parsec_table(programs: &[ParsecProgram], id: &'static str, title: &str) -> Experiment {
    let tools = Tool::paper_lineup();
    let table = run_parsec(programs, &tools, &PARSEC_SEEDS);
    let mut t = AsciiTable::new(&[
        "Program",
        "H+ lib",
        "H+ lib+spin",
        "H+ nolib+spin",
        "DRD",
        "paper (lib/spin/nolib/drd)",
    ]);
    let mut rows_json = Vec::new();
    for (i, p) in programs.iter().enumerate() {
        let cells = &table.cells[i];
        t.row(vec![
            p.name.to_string(),
            format!("{:.1}", cells[0].mean_contexts),
            format!("{:.1}", cells[1].mean_contexts),
            format!("{:.1}", cells[2].mean_contexts),
            format!("{:.1}", cells[3].mean_contexts),
            format!(
                "{}/{}/{}/{}",
                p.paper.lib, p.paper.lib_spin, p.paper.nolib_spin, p.paper.drd
            ),
        ]);
        rows_json.push(json!({
            "program": p.name,
            "lib": cells[0].mean_contexts,
            "lib_spin": cells[1].mean_contexts,
            "nolib_spin": cells[2].mean_contexts,
            "drd": cells[3].mean_contexts,
            "paper": {
                "lib": p.paper.lib,
                "lib_spin": p.paper.lib_spin,
                "nolib_spin": p.paper.nolib_spin,
                "drd": p.paper.drd,
            },
        }));
    }
    Experiment {
        id,
        title: title.into(),
        rendered: t.render(),
        json: json!({ "rows": rows_json, "seeds": PARSEC_SEEDS }),
    }
}

/// T4 — racy contexts, programs *without* ad-hoc synchronization (plus
/// freqmine, grouped as in the paper's first PARSEC table).
pub fn t4_no_adhoc() -> Experiment {
    let programs: Vec<ParsecProgram> = all_programs().into_iter().take(5).collect();
    parsec_table(
        &programs,
        "T4",
        "PARSEC racy contexts — programs without ad-hoc synchronization (+freqmine)",
    )
}

/// T5 — racy contexts, programs *with* ad-hoc synchronization.
pub fn t5_with_adhoc() -> Experiment {
    let programs: Vec<ParsecProgram> = all_programs().into_iter().skip(5).collect();
    parsec_table(
        &programs,
        "T5",
        "PARSEC racy contexts — programs with ad-hoc synchronization",
    )
}

/// T6 — the combined "universal race detector" table (all 13 programs).
pub fn t6_universal() -> Experiment {
    let programs = all_programs();
    parsec_table(
        &programs,
        "T6",
        "PARSEC racy contexts — universal detector summary (all programs)",
    )
}

/// W1 — the generated-workloads oracle table (beyond the paper): every
/// `spinrace-workloads` family (race-free and seeded variants) under the
/// full lineup, classified against *computed* ground truth instead of
/// recorded numbers. `missed` counts injected races a tool failed to
/// report (soundness); `unexpected` counts reports matching no injected
/// race (completeness — on race-free workloads every report lands here).
pub fn w1_workloads() -> Experiment {
    // The paper lineup plus the predictive tool: on the reorder-only
    // families the HB columns must show 0 while `SyncPreserving` owes
    // exactly the injected set.
    let mut tools = Tool::paper_lineup().to_vec();
    tools.push(Tool::SyncPreserving);
    let table = run_workloads(&tools);
    let mut t = AsciiTable::new(&[
        "Workload",
        "Oracle",
        "Tool",
        "Contexts",
        "Expected",
        "Missed",
        "Unexpected",
        "Verdict",
    ]);
    let mut rows_json = Vec::new();
    for r in &table.rows {
        t.row(vec![
            r.spec.clone(),
            r.oracle.clone(),
            r.tool.clone(),
            r.contexts.to_string(),
            r.expected.to_string(),
            r.missed.to_string(),
            r.unexpected.to_string(),
            if r.pass() { "pass" } else { "FAIL" }.to_string(),
        ]);
        rows_json.push(json!({
            "spec": r.spec,
            "family": r.family,
            "oracle": r.oracle,
            "tool": r.tool,
            "contexts": r.contexts,
            "expected": r.expected,
            "missed": r.missed,
            "unexpected": r.unexpected,
            "pass": r.pass(),
        }));
    }
    Experiment {
        id: "W1",
        title: "generated workloads vs ground-truth oracles (soundness/completeness)".into(),
        rendered: t.render(),
        json: json!({
            "rows": rows_json,
            "vm_runs": table.vm_runs,
            "all_pass": table.all_pass(),
        }),
    }
}

/// F1 — detector memory consumption per configuration (the paper's
/// memory-overhead figure). One round-robin run per cell.
pub fn f1_memory() -> Experiment {
    let programs = all_programs();
    let tools = Tool::paper_lineup();
    let mut t = AsciiTable::new(&[
        "Program",
        "lib (bytes)",
        "lib+spin (bytes)",
        "nolib+spin (bytes)",
        "drd (bytes)",
        "spin-state share",
    ]);
    let mut rows_json = Vec::new();
    for p in &programs {
        let module = (p.build)(p.threads, p.size);
        let mut totals = Vec::new();
        let mut spin_share = 0.0;
        for &tool in &tools {
            let mut a = Analyzer::tool(tool).long_msm();
            if p.obscure_nolib {
                a = a.obscure_nolib();
            }
            match a.analyze(&module) {
                Ok(out) => {
                    let m = out.metrics;
                    if matches!(tool, Tool::HelgrindLibSpin { .. }) && m.total() > 0 {
                        spin_share = m.spin_sync_bytes as f64 / m.total() as f64;
                    }
                    totals.push(m.total());
                }
                Err(_) => totals.push(0),
            }
        }
        t.row(vec![
            p.name.to_string(),
            totals[0].to_string(),
            totals[1].to_string(),
            totals[2].to_string(),
            totals[3].to_string(),
            format!("{:.1}%", spin_share * 100.0),
        ]);
        rows_json.push(json!({
            "program": p.name,
            "lib_bytes": totals[0],
            "lib_spin_bytes": totals[1],
            "nolib_spin_bytes": totals[2],
            "drd_bytes": totals[3],
            "spin_state_share": spin_share,
        }));
    }
    Experiment {
        id: "F1",
        title: "detector memory consumption (paper: minor overhead for the spin feature)".into(),
        rendered: t.render(),
        json: json!({ "rows": rows_json }),
    }
}

/// F2 — runtime overhead per configuration vs. an uninstrumented run
/// (the paper's runtime-overhead figure). Wall-clock, one run per cell.
pub fn f2_runtime() -> Experiment {
    let programs = all_programs();
    let tools = Tool::paper_lineup();
    let mut t = AsciiTable::new(&[
        "Program",
        "native (ms)",
        "lib (x)",
        "lib+spin (x)",
        "nolib+spin (x)",
        "drd (x)",
    ]);
    let mut rows_json = Vec::new();
    for p in &programs {
        let module = (p.build)(p.threads, p.size);
        // Native: VM without a detector.
        let t0 = Instant::now();
        let _ = spinrace_vm::run_module(
            &module,
            spinrace_vm::VmConfig::round_robin(),
            &mut spinrace_vm::NullSink,
        );
        let native = t0.elapsed().as_secs_f64().max(1e-6);
        let mut factors = Vec::new();
        for &tool in &tools {
            let mut a = Analyzer::tool(tool).long_msm();
            if p.obscure_nolib {
                a = a.obscure_nolib();
            }
            let t1 = Instant::now();
            let _ = a.analyze(&module);
            factors.push(t1.elapsed().as_secs_f64() / native);
        }
        t.row(vec![
            p.name.to_string(),
            format!("{:.2}", native * 1e3),
            format!("{:.1}", factors[0]),
            format!("{:.1}", factors[1]),
            format!("{:.1}", factors[2]),
            format!("{:.1}", factors[3]),
        ]);
        rows_json.push(json!({
            "program": p.name,
            "native_ms": native * 1e3,
            "lib_factor": factors[0],
            "lib_spin_factor": factors[1],
            "nolib_spin_factor": factors[2],
            "drd_factor": factors[3],
        }));
    }
    Experiment {
        id: "F2",
        title: "runtime overhead vs uninstrumented execution (paper: slight overhead)".into(),
        rendered: t.render(),
        json: json!({ "rows": rows_json }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t3_has_thirteen_rows_and_detects_spins() {
        let e = t3_characteristics();
        assert_eq!(e.id, "T3");
        let rows = e.json["rows"].as_array().unwrap();
        assert_eq!(rows.len(), 13);
        // Programs flagged ad-hoc must have detected spin loops; the
        // first four must have none.
        for r in rows.iter().take(4) {
            assert_eq!(r["detected_spins"].as_u64().unwrap(), 0, "{r}");
        }
        for r in rows.iter().skip(4) {
            assert!(r["detected_spins"].as_u64().unwrap() > 0, "{r}");
        }
    }

    #[test]
    fn t2_renders_with_paper_column() {
        let e = t2_window_sweep();
        assert!(e.rendered.contains("paper FA"));
        assert!(e.rendered.contains("lib+spin(3)"));
        let rows = e.json["rows"].as_array().unwrap();
        assert_eq!(rows.len(), 4);
    }

    /// The trace-centric rewrite must not move a single number: T1 and T2
    /// are pinned to the values the live-run pipeline produced before the
    /// session redesign (lib 32/8, lib+spin 8/7, nolib 8/7, DRD 13/21;
    /// window sweep FA 24/23/8/8, missed 7 throughout) — and T2 must
    /// actually reuse recorded traces across windows.
    #[test]
    fn t1_t2_numbers_match_seed_tables_and_t2_reuses_traces() {
        let t1 = t1_drt();
        let expect1 = [
            ("Helgrind+ lib", 32u64, 8u64),
            ("Helgrind+ lib+spin(7)", 8, 7),
            ("Helgrind+ nolib+spin(7)", 8, 7),
            ("DRD", 13, 21),
        ];
        let rows = t1.json["rows"].as_array().unwrap();
        assert_eq!(rows.len(), expect1.len());
        for (row, (tool, fa, missed)) in rows.iter().zip(expect1) {
            assert_eq!(row["tool"].as_str().unwrap(), tool);
            assert_eq!(row["false_alarms"].as_u64().unwrap(), fa, "{tool} FA");
            assert_eq!(row["missed"].as_u64().unwrap(), missed, "{tool} missed");
        }

        let t2 = t2_window_sweep();
        let rows = t2.json["rows"].as_array().unwrap();
        let expect_fa = [24u64, 23, 8, 8];
        assert_eq!(rows.len(), expect_fa.len());
        for (row, fa) in rows.iter().zip(expect_fa) {
            assert_eq!(row["false_alarms"].as_u64().unwrap(), fa, "{row}");
            assert_eq!(row["missed"].as_u64().unwrap(), 7, "{row}");
        }
        let vm_runs = t2.json["vm_runs"].as_u64().unwrap();
        let cells = t2.json["cells"].as_u64().unwrap();
        assert!(
            vm_runs < cells,
            "window sweep must share recorded traces ({vm_runs} runs for {cells} cells)"
        );
    }
}
