//! # SpinRace spinfind — detecting spinning read loops
//!
//! This crate implements the **instrumentation phase** of *Jannesari &
//! Tichy (IPDPS 2010)*. Quoting the paper's criteria, a loop is a
//! *spinning read loop* when:
//!
//! 1. it is a **small** loop — at most `window` basic blocks (the paper
//!    sweeps 3, 6, 7, 8 and settles on 7);
//! 2. the **loop condition involves at least one load** from memory;
//! 3. the **value of the loop condition is not changed inside the loop**;
//! 4. the body otherwise "does nothing" (the paper's `/* do_nothing() */`).
//!
//! The paper notes that real spin conditions frequently evaluate through
//! "templates and complex function calls", which is why small windows
//! (3 or 6) miss them. We model this with the *interprocedural extension*:
//! a condition may call a **pure** function; the callee's basic blocks
//! count toward the loop's effective size (`weight`), and the callee's
//! loads become condition loads.
//!
//! [`SpinFinder::instrument`] attaches a [`spinrace_tir::SpinTable`] to the
//! module; the VM uses it to emit spin events, and the detector derives
//! happens-before edges from them (the runtime phase).

pub mod criteria;
pub mod inventory;
pub mod summary;

pub use criteria::{Decision, LoopVerdict, RejectReason, SpinAnalysis, SpinCriteria, SpinFinder};
pub use inventory::{sync_inventory, SyncInventory};
pub use summary::{summarize_functions, FnSummary};
