//! The spin-loop classifier: applies the paper's criteria to every natural
//! loop and produces the instrumentation side table.

use crate::summary::{summarize_functions, FnSummary};
use spinrace_cfg::{
    backward_slice, find_candidate_loops, Cfg, Dominators, NaturalLoop, SliceInput,
};
use spinrace_tir::{AddrExpr, FuncId, Instr, Module, Pc, SpinLoopId, SpinLoopInfo, SpinTable};
use std::collections::BTreeSet;

/// Tunable knobs of the detection (paper defaults in parentheses).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpinCriteria {
    /// Maximum effective loop size in basic blocks, pure-callee blocks
    /// included (7). The paper's Table 2 sweeps {3, 6, 7, 8}.
    pub window: u32,
    /// Follow condition evaluation into pure callees (true). Disabling
    /// this models a purely intraprocedural binary analysis.
    pub interprocedural: bool,
    /// Tolerate stores inside the loop that provably cannot alias the
    /// condition loads (false — the strict "do-nothing body" reading).
    pub allow_unrelated_stores: bool,
}

impl Default for SpinCriteria {
    fn default() -> Self {
        SpinCriteria {
            window: 7,
            interprocedural: true,
            allow_unrelated_stores: false,
        }
    }
}

impl SpinCriteria {
    /// Criteria with a specific window, other knobs default.
    pub fn with_window(window: u32) -> Self {
        SpinCriteria {
            window,
            ..Default::default()
        }
    }
}

/// Why a loop was not classified as a spinning read loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// Effective size exceeds the window.
    TooLarge { weight: u32, window: u32 },
    /// No load feeds any exit condition (e.g. a plain counter loop).
    NoLoadInCondition,
    /// The loop itself changes its condition (CAS/RMW in the slice).
    ConditionChangedByLoop,
    /// A store inside the loop may alias a condition load.
    StoreMayAliasCondition { store: Pc },
    /// The body performs work (store/sync/IO/...) — not a waiting loop.
    SideEffectingBody { at: Pc },
    /// The condition calls a function with side effects; a binary
    /// analyzer cannot treat such a call as condition evaluation. (This is
    /// the mechanism behind the paper's "function pointers for condition
    /// evaluation and obscure implementation" false-positive residue.)
    ImpureConditionCall { callee: FuncId },
    /// The loop has no exit edge and thus cannot be a synchronization.
    NoExit,
}

/// The classification of one natural loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Spinning read loop; the given loads are its condition loads.
    Accepted { cond_loads: Vec<Pc> },
    /// Not a spinning read loop.
    Rejected { reason: RejectReason },
}

/// One analyzed loop (accepted or not) — the analysis' explainable output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopVerdict {
    /// Function containing the loop.
    pub func: FuncId,
    /// The underlying natural loop.
    pub header: spinrace_tir::BlockId,
    /// Member blocks.
    pub blocks: BTreeSet<spinrace_tir::BlockId>,
    /// Own basic-block count.
    pub size: u32,
    /// Effective size including pure condition callees.
    pub weight: u32,
    /// Accept/reject with detail.
    pub decision: Decision,
}

/// Full result of analyzing a module.
#[derive(Clone, Debug)]
pub struct SpinAnalysis {
    /// Verdict for every natural loop in the module.
    pub verdicts: Vec<LoopVerdict>,
    /// The side table for accepted loops (what gets attached to the module).
    pub table: SpinTable,
}

impl SpinAnalysis {
    /// Number of accepted spinning read loops.
    pub fn accepted(&self) -> usize {
        self.table.loops.len()
    }
    /// Verdicts that were rejected, with reasons.
    pub fn rejected(&self) -> impl Iterator<Item = &LoopVerdict> {
        self.verdicts
            .iter()
            .filter(|v| matches!(v.decision, Decision::Rejected { .. }))
    }
}

/// The spin-loop detector (instrumentation phase).
#[derive(Clone, Debug, Default)]
pub struct SpinFinder {
    /// Detection knobs.
    pub criteria: SpinCriteria,
}

impl SpinFinder {
    /// Detector with the given criteria.
    pub fn new(criteria: SpinCriteria) -> Self {
        SpinFinder { criteria }
    }

    /// Detector with a specific basic-block window.
    pub fn with_window(window: u32) -> Self {
        SpinFinder::new(SpinCriteria::with_window(window))
    }

    /// Analyze every natural loop of every function.
    pub fn analyze(&self, m: &Module) -> SpinAnalysis {
        let summaries = summarize_functions(m);
        let mut verdicts = Vec::new();
        let mut table = SpinTable {
            window: self.criteria.window,
            ..Default::default()
        };
        for (fi, func) in m.functions.iter().enumerate() {
            let fid = FuncId(fi as u32);
            let cfg = Cfg::build(func);
            let dom = Dominators::compute(&cfg);
            // Per header, the accepted candidate with the most blocks wins
            // (candidates are pre-sorted by (header, size) ascending, so a
            // later accepted candidate with the same header supersedes an
            // earlier one). The runtime needs a unique loop per header.
            let mut accepted_here: Vec<(spinrace_tir::BlockId, SpinLoopInfo)> = Vec::new();
            for l in find_candidate_loops(func, &cfg, &dom) {
                let verdict = self.classify(m, fid, func, &cfg, &l, &summaries);
                if let Decision::Accepted { cond_loads } = &verdict.decision {
                    let info = SpinLoopInfo {
                        id: SpinLoopId(0), // assigned below
                        func: fid,
                        header: l.header,
                        blocks: l.blocks.iter().copied().collect(),
                        cond_loads: cond_loads.clone(),
                        weight: verdict.weight,
                    };
                    match accepted_here.iter_mut().find(|(h, _)| *h == l.header) {
                        Some(slot) => slot.1 = info,
                        None => accepted_here.push((l.header, info)),
                    }
                }
                verdicts.push(verdict);
            }
            for (_, mut info) in accepted_here {
                let id = SpinLoopId(table.loops.len() as u32);
                info.id = id;
                for pc in &info.cond_loads {
                    // Innermost owner wins for shared loads (e.g. the same
                    // pure callee used by two spin loops); runtime
                    // attribution uses the active instance anyway.
                    table.tagged_loads.entry(*pc).or_insert(id);
                }
                table.loops.push(info);
            }
        }
        SpinAnalysis { verdicts, table }
    }

    /// Analyze and attach the resulting [`SpinTable`] to the module.
    /// Returns the analysis (verdicts included) for inspection.
    pub fn instrument(&self, m: &mut Module) -> SpinAnalysis {
        let analysis = self.analyze(m);
        m.spin = Some(analysis.table.clone());
        analysis
    }

    fn classify(
        &self,
        m: &Module,
        fid: FuncId,
        func: &spinrace_tir::Function,
        cfg: &Cfg,
        l: &NaturalLoop,
        summaries: &[FnSummary],
    ) -> LoopVerdict {
        let size = l.size();
        let mut verdict = LoopVerdict {
            func: fid,
            header: l.header,
            blocks: l.blocks.clone(),
            size,
            weight: size,
            decision: Decision::Rejected {
                reason: RejectReason::NoExit,
            },
        };

        let exiting = l.exiting_blocks();
        if exiting.is_empty() {
            return verdict;
        }

        // Slice every exit condition.
        let mut cond_loads: Vec<Pc> = Vec::new();
        let mut cond_instrs: BTreeSet<Pc> = BTreeSet::new();
        let mut cond_callees: BTreeSet<FuncId> = BTreeSet::new();
        let mut call_sites: BTreeSet<Pc> = BTreeSet::new();
        for b in exiting {
            let s = backward_slice(&SliceInput {
                func,
                func_id: fid,
                cfg,
                loop_blocks: &l.blocks,
                from_block: b,
            });
            if s.disqualified {
                verdict.decision = Decision::Rejected {
                    reason: RejectReason::ConditionChangedByLoop,
                };
                return verdict;
            }
            cond_loads.extend_from_slice(&s.loads);
            cond_instrs.extend(s.instrs.iter().copied());
            for (pc, callee) in &s.calls {
                call_sites.insert(*pc);
                cond_callees.insert(*callee);
            }
        }

        // Interprocedural extension: pure callees contribute weight+loads.
        let mut weight = size;
        for callee in &cond_callees {
            let sum = &summaries[callee.0 as usize];
            if !self.criteria.interprocedural || !sum.pure {
                verdict.decision = Decision::Rejected {
                    reason: RejectReason::ImpureConditionCall { callee: *callee },
                };
                return verdict;
            }
            weight += sum.blocks;
            cond_loads.extend_from_slice(&sum.loads);
        }
        verdict.weight = weight;

        // Criterion 2: the condition must involve a load.
        cond_loads.sort_unstable();
        cond_loads.dedup();
        if cond_loads.is_empty() {
            verdict.decision = Decision::Rejected {
                reason: RejectReason::NoLoadInCondition,
            };
            return verdict;
        }

        // Criterion 1: small loop.
        if weight > self.criteria.window {
            verdict.decision = Decision::Rejected {
                reason: RejectReason::TooLarge {
                    weight,
                    window: self.criteria.window,
                },
            };
            return verdict;
        }

        // Criteria 3 & 4: do-nothing body; no write to the condition.
        for &b in &l.blocks {
            let blk = func.block(b);
            for (i, instr) in blk.instrs.iter().enumerate() {
                let pc = Pc::new(fid, b, i as u32);
                match instr {
                    // Reads and waiting are fine.
                    Instr::Load { .. } | Instr::Yield | Instr::Nop | Instr::Fence { .. } => {}
                    i if i.is_pure() => {}
                    // Calls: only pure condition-slice calls are allowed.
                    Instr::Call { func: callee, .. } => {
                        let allowed = call_sites.contains(&pc)
                            && summaries[callee.0 as usize].pure
                            && self.criteria.interprocedural;
                        if !allowed {
                            verdict.decision = Decision::Rejected {
                                reason: RejectReason::SideEffectingBody { at: pc },
                            };
                            return verdict;
                        }
                    }
                    Instr::Store { addr, .. } => {
                        if !self.criteria.allow_unrelated_stores {
                            verdict.decision = Decision::Rejected {
                                reason: RejectReason::SideEffectingBody { at: pc },
                            };
                            return verdict;
                        }
                        // Tolerated only if it cannot alias any condition load.
                        let aliases = cond_loads.iter().any(|lp| {
                            let li = m.instr_at(*lp).expect("load pc");
                            may_alias(addr, li.load_addr().expect("load"))
                        });
                        if aliases {
                            verdict.decision = Decision::Rejected {
                                reason: RejectReason::StoreMayAliasCondition { store: pc },
                            };
                            return verdict;
                        }
                    }
                    _ => {
                        verdict.decision = Decision::Rejected {
                            reason: RejectReason::SideEffectingBody { at: pc },
                        };
                        return verdict;
                    }
                }
            }
        }

        verdict.decision = Decision::Accepted { cond_loads };
        verdict
    }
}

/// Conservative static may-alias test on address expressions.
///
/// Distinct globals never alias; identical static `(global, disp)` pairs
/// alias; a static and an indexed access to the same global may alias;
/// anything involving a pointer register may alias everything.
pub fn may_alias(a: &AddrExpr, b: &AddrExpr) -> bool {
    use AddrExpr::*;
    match (a, b) {
        (
            Global {
                global: g1,
                disp: d1,
            },
            Global {
                global: g2,
                disp: d2,
            },
        ) => g1 == g2 && d1 == d2,
        (Global { global: g1, .. }, GlobalIndexed { global: g2, .. })
        | (GlobalIndexed { global: g1, .. }, Global { global: g2, .. })
        | (GlobalIndexed { global: g1, .. }, GlobalIndexed { global: g2, .. }) => g1 == g2,
        // Pointer-based addresses may point anywhere.
        _ => true,
    }
}

/// Convenience: instrument a module with the default window (7).
pub fn instrument_default(m: &mut Module) -> SpinAnalysis {
    SpinFinder::default().instrument(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinrace_tir::{MemOrder, ModuleBuilder, Operand};

    /// Canonical 2-block flag spin: while(!flag){}.
    fn flag_spin() -> Module {
        let mut mb = ModuleBuilder::new("flag");
        let flag = mb.global("flag", 1);
        mb.entry("main", |f| {
            let head = f.new_block();
            let done = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let v = f.load(flag.at(0));
            f.branch(v, done, head);
            f.switch_to(done);
            f.ret(None);
        });
        mb.finish().unwrap()
    }

    #[test]
    fn flag_spin_is_accepted_and_tagged() {
        let mut m = flag_spin();
        let a = SpinFinder::default().instrument(&mut m);
        assert_eq!(a.accepted(), 1);
        let spin = m.spin.as_ref().unwrap();
        assert_eq!(spin.loops[0].cond_loads.len(), 1);
        assert_eq!(spin.tagged_loads.len(), 1);
        assert_eq!(spin.loops[0].weight, 1);
        spinrace_tir::validate(&m).expect("tagged module still valid");
    }

    #[test]
    fn counter_loop_is_rejected_no_load() {
        let mut mb = ModuleBuilder::new("cnt");
        mb.entry("main", |f| {
            let head = f.new_block();
            let body = f.new_block();
            let done = f.new_block();
            let i = f.const_(0);
            f.jump(head);
            f.switch_to(head);
            let c = f.lt(i, 100);
            f.branch(c, body, done);
            f.switch_to(body);
            let i2 = f.add(i, 1);
            f.mov(i, i2);
            f.jump(head);
            f.switch_to(done);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let a = SpinFinder::default().analyze(&m);
        assert_eq!(a.accepted(), 0);
        assert!(matches!(
            a.verdicts[0].decision,
            Decision::Rejected {
                reason: RejectReason::NoLoadInCondition
            }
        ));
    }

    #[test]
    fn worker_loop_with_store_is_rejected() {
        // while(!done) { data++ } — the body works, not a waiting loop.
        let mut mb = ModuleBuilder::new("w");
        let done_g = mb.global("done", 1);
        let data = mb.global("data", 1);
        mb.entry("main", |f| {
            let head = f.new_block();
            let body = f.new_block();
            let out = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let v = f.load(done_g.at(0));
            f.branch(v, out, body);
            f.switch_to(body);
            let d = f.load(data.at(0));
            let d2 = f.add(d, 1);
            f.store(data.at(0), d2);
            f.jump(head);
            f.switch_to(out);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let a = SpinFinder::default().analyze(&m);
        assert_eq!(a.accepted(), 0);
        assert!(matches!(
            a.verdicts[0].decision,
            Decision::Rejected {
                reason: RejectReason::SideEffectingBody { .. }
            }
        ));
    }

    #[test]
    fn unrelated_store_tolerated_when_allowed() {
        // Same loop, but with the lenient knob and a store to a different
        // global than the condition.
        let mut mb = ModuleBuilder::new("w");
        let done_g = mb.global("done", 1);
        let stats = mb.global("stats", 1);
        mb.entry("main", |f| {
            let head = f.new_block();
            let body = f.new_block();
            let out = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let v = f.load(done_g.at(0));
            f.branch(v, out, body);
            f.switch_to(body);
            f.store(stats.at(0), 1);
            f.jump(head);
            f.switch_to(out);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let strict = SpinFinder::default().analyze(&m);
        assert_eq!(strict.accepted(), 0);
        let lenient = SpinFinder::new(SpinCriteria {
            allow_unrelated_stores: true,
            ..Default::default()
        })
        .analyze(&m);
        assert_eq!(lenient.accepted(), 1);
    }

    #[test]
    fn store_to_condition_rejected_even_when_lenient() {
        // while(!flag) { flag = 0 } — loop writes its own condition.
        let mut mb = ModuleBuilder::new("w");
        let flag = mb.global("flag", 1);
        mb.entry("main", |f| {
            let head = f.new_block();
            let body = f.new_block();
            let out = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let v = f.load(flag.at(0));
            f.branch(v, out, body);
            f.switch_to(body);
            f.store(flag.at(0), 0);
            f.jump(head);
            f.switch_to(out);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let lenient = SpinFinder::new(SpinCriteria {
            allow_unrelated_stores: true,
            ..Default::default()
        })
        .analyze(&m);
        assert_eq!(lenient.accepted(), 0);
        assert!(matches!(
            lenient.verdicts[0].decision,
            Decision::Rejected {
                reason: RejectReason::StoreMayAliasCondition { .. }
            }
        ));
    }

    #[test]
    fn tas_cas_loop_is_rejected() {
        let mut mb = ModuleBuilder::new("tas");
        let lock = mb.global("lock", 1);
        mb.entry("main", |f| {
            let head = f.new_block();
            let done = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let old = f.cas(lock.at(0), 0, 1, MemOrder::AcqRel);
            f.branch(old, head, done);
            f.switch_to(done);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let a = SpinFinder::default().analyze(&m);
        assert_eq!(a.accepted(), 0);
        assert!(matches!(
            a.verdicts[0].decision,
            Decision::Rejected {
                reason: RejectReason::ConditionChangedByLoop
            }
        ));
    }

    /// Build a spin whose condition is evaluated by a chain of pure calls
    /// totalling `extra` callee blocks.
    fn spin_with_callee_blocks(extra: u32) -> Module {
        let mut mb = ModuleBuilder::new("deep");
        let flag = mb.global("flag", 1);
        // A pure condition function with `extra` blocks (chain of jumps).
        let check = mb.function("check", 0, |f| {
            let v = f.load(flag.at(0));
            let mut prev = f.current();
            for _ in 1..extra {
                let nb = f.new_block();
                f.switch_to(prev);
                f.jump(nb);
                prev = nb;
                f.switch_to(nb);
            }
            f.switch_to(prev);
            f.ret(Some(Operand::Reg(v)));
        });
        mb.entry("main", |f| {
            let head = f.new_block();
            let done = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let v = f.call(check, &[]);
            f.branch(v, done, head);
            f.switch_to(done);
            f.ret(None);
        });
        mb.finish().unwrap()
    }

    #[test]
    fn window_sweep_reproduces_paper_shape() {
        // Loop body = 1 block; condition callee = 5 blocks → weight 6.
        let m = spin_with_callee_blocks(5);
        assert_eq!(SpinFinder::with_window(3).analyze(&m).accepted(), 0);
        assert_eq!(SpinFinder::with_window(6).analyze(&m).accepted(), 1);
        assert_eq!(SpinFinder::with_window(7).analyze(&m).accepted(), 1);
        assert_eq!(SpinFinder::with_window(8).analyze(&m).accepted(), 1);
        // weight 7 loop: found by spin(7) but not spin(6)
        let m7 = spin_with_callee_blocks(6);
        assert_eq!(SpinFinder::with_window(6).analyze(&m7).accepted(), 0);
        assert_eq!(SpinFinder::with_window(7).analyze(&m7).accepted(), 1);
    }

    #[test]
    fn callee_loads_become_condition_loads() {
        let m = spin_with_callee_blocks(2);
        let a = SpinFinder::default().analyze(&m);
        assert_eq!(a.accepted(), 1);
        let info = &a.table.loops[0];
        assert_eq!(info.cond_loads.len(), 1);
        // The load lives in the callee, not in main.
        assert_ne!(info.cond_loads[0].func, m.entry);
        assert!(a.table.tagged_loads.contains_key(&info.cond_loads[0]));
    }

    #[test]
    fn impure_condition_call_is_rejected() {
        let mut mb = ModuleBuilder::new("imp");
        let flag = mb.global("flag", 1);
        let check = mb.function("check_and_log", 0, |f| {
            let v = f.load(flag.at(0));
            f.output(v); // side effect
            f.ret(Some(Operand::Reg(v)));
        });
        mb.entry("main", |f| {
            let head = f.new_block();
            let done = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let v = f.call(check, &[]);
            f.branch(v, done, head);
            f.switch_to(done);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let a = SpinFinder::default().analyze(&m);
        assert_eq!(a.accepted(), 0);
        assert!(matches!(
            a.verdicts[0].decision,
            Decision::Rejected {
                reason: RejectReason::ImpureConditionCall { .. }
            }
        ));
    }

    #[test]
    fn barrier_style_counter_spin_is_accepted() {
        // The paper's own Barrier() example:
        // while (counter != NUMBER_THREADS) {}
        let mut mb = ModuleBuilder::new("bar");
        let counter = mb.global("counter", 1);
        mb.entry("main", |f| {
            let head = f.new_block();
            let done = f.new_block();
            let n = f.const_(4);
            f.jump(head);
            f.switch_to(head);
            let v = f.load(counter.at(0));
            let c = f.ne(v, n);
            f.branch(c, head, done);
            f.switch_to(done);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let a = SpinFinder::default().analyze(&m);
        assert_eq!(a.accepted(), 1);
    }

    #[test]
    fn yield_and_fence_allowed_in_body() {
        let mut mb = ModuleBuilder::new("y");
        let flag = mb.global("flag", 1);
        mb.entry("main", |f| {
            let head = f.new_block();
            let body = f.new_block();
            let done = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let v = f.load(flag.at(0));
            f.branch(v, done, body);
            f.switch_to(body);
            f.yield_();
            f.fence(MemOrder::SeqCst);
            f.jump(head);
            f.switch_to(done);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        assert_eq!(SpinFinder::default().analyze(&m).accepted(), 1);
    }

    #[test]
    fn two_spin_loops_get_distinct_ids() {
        let mut mb = ModuleBuilder::new("two");
        let f1g = mb.global("f1", 1);
        let f2g = mb.global("f2", 1);
        mb.entry("main", |f| {
            let h1 = f.new_block();
            let mid = f.new_block();
            let h2 = f.new_block();
            let done = f.new_block();
            f.jump(h1);
            f.switch_to(h1);
            let v1 = f.load(f1g.at(0));
            f.branch(v1, mid, h1);
            f.switch_to(mid);
            f.jump(h2);
            f.switch_to(h2);
            let v2 = f.load(f2g.at(0));
            f.branch(v2, done, h2);
            f.switch_to(done);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let a = SpinFinder::default().analyze(&m);
        assert_eq!(a.accepted(), 2);
        assert_ne!(a.table.loops[0].id, a.table.loops[1].id);
        assert_eq!(a.table.tagged_loads.len(), 2);
    }
}
