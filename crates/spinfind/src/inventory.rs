//! Static synchronization inventory of a module — regenerates the paper's
//! PARSEC characteristics table (which primitives each program uses, plus
//! whether ad-hoc synchronization is present).

use crate::criteria::{SpinCriteria, SpinFinder};
use spinrace_tir::{Instr, Module};

/// Counts of synchronization constructs used by a module.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncInventory {
    /// `MutexLock` sites.
    pub locks: usize,
    /// `CondWait`/`CondSignal`/`CondBroadcast` sites.
    pub condvars: usize,
    /// `BarrierWait` sites.
    pub barriers: usize,
    /// `SemWait`/`SemPost` sites.
    pub semaphores: usize,
    /// Atomic instructions (atomic load/store, CAS, RMW).
    pub atomics: usize,
    /// Detected spinning read loops (ad-hoc synchronization).
    pub adhoc_spins: usize,
    /// Natural loops that were *rejected* by the spin criteria but contain
    /// a condition load — candidate obscure synchronization.
    pub rejected_candidates: usize,
}

impl SyncInventory {
    /// True when the program uses any ad-hoc (spin-based) synchronization.
    pub fn has_adhoc(&self) -> bool {
        self.adhoc_spins > 0
    }
}

/// Compute the inventory of `m` using the given spin window.
pub fn sync_inventory(m: &Module, window: u32) -> SyncInventory {
    let mut inv = SyncInventory::default();
    for func in &m.functions {
        for block in &func.blocks {
            for instr in &block.instrs {
                match instr {
                    Instr::MutexLock { .. } => inv.locks += 1,
                    Instr::CondWait { .. }
                    | Instr::CondSignal { .. }
                    | Instr::CondBroadcast { .. } => inv.condvars += 1,
                    Instr::BarrierWait { .. } => inv.barriers += 1,
                    Instr::SemWait { .. } | Instr::SemPost { .. } => inv.semaphores += 1,
                    Instr::Cas { .. } | Instr::Rmw { .. } => inv.atomics += 1,
                    Instr::Load { atomic, .. } | Instr::Store { atomic, .. }
                        if atomic.is_atomic() =>
                    {
                        inv.atomics += 1
                    }
                    _ => {}
                }
            }
        }
    }
    let analysis = SpinFinder::new(SpinCriteria::with_window(window)).analyze(m);
    inv.adhoc_spins = analysis.accepted();
    inv.rejected_candidates = analysis
        .rejected()
        .filter(|v| {
            matches!(
                v.decision,
                crate::criteria::Decision::Rejected {
                    reason: crate::criteria::RejectReason::TooLarge { .. }
                        | crate::criteria::RejectReason::ImpureConditionCall { .. }
                        | crate::criteria::RejectReason::SideEffectingBody { .. }
                }
            )
        })
        .count();
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinrace_tir::ModuleBuilder;

    #[test]
    fn inventory_counts_primitives() {
        let mut mb = ModuleBuilder::new("inv");
        let mu = mb.global("mu", 1);
        let cv = mb.global("cv", 1);
        let bar = mb.global("bar", 1);
        let flag = mb.global("flag", 1);
        mb.entry("main", |f| {
            f.barrier_init(bar.at(0), 2);
            f.lock(mu.at(0));
            f.signal(cv.at(0));
            f.unlock(mu.at(0));
            f.barrier_wait(bar.at(0));
            // an ad-hoc spin
            let head = f.new_block();
            let done = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let v = f.load(flag.at(0));
            f.branch(v, done, head);
            f.switch_to(done);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let inv = sync_inventory(&m, 7);
        assert_eq!(inv.locks, 1);
        assert_eq!(inv.condvars, 1);
        assert_eq!(inv.barriers, 1);
        assert_eq!(inv.adhoc_spins, 1);
        assert!(inv.has_adhoc());
    }

    #[test]
    fn plain_program_has_empty_inventory() {
        let mut mb = ModuleBuilder::new("plain");
        let g = mb.global("g", 1);
        mb.entry("main", |f| {
            f.store(g.at(0), 1);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let inv = sync_inventory(&m, 7);
        assert_eq!(inv, SyncInventory::default());
    }
}
