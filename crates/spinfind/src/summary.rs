//! Per-function summaries for the interprocedural condition extension.

use spinrace_tir::{FuncId, Instr, Module, Pc};

/// Summary of one function as seen by the spin-loop analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FnSummary {
    /// True when the function (transitively) performs no side effects:
    /// no stores, atomics-with-write, sync ops, thread ops, allocation,
    /// output or traps. Pure functions may *load* freely — that is exactly
    /// what condition-evaluation helpers do.
    pub pure: bool,
    /// Total basic blocks, including those of transitively called
    /// functions — the contribution to a spin loop's effective weight.
    pub blocks: u32,
    /// All loads in the function and its transitive callees.
    pub loads: Vec<Pc>,
}

/// Compute summaries for every function in the module.
///
/// Requires an acyclic call graph (guaranteed by `spinrace_tir::validate`);
/// summaries are computed bottom-up with memoization.
pub fn summarize_functions(m: &Module) -> Vec<FnSummary> {
    let n = m.functions.len();
    let mut memo: Vec<Option<FnSummary>> = vec![None; n];
    for f in 0..n {
        summarize(m, FuncId(f as u32), &mut memo);
    }
    memo.into_iter().map(|s| s.expect("computed")).collect()
}

fn summarize(m: &Module, f: FuncId, memo: &mut Vec<Option<FnSummary>>) -> FnSummary {
    if let Some(s) = &memo[f.0 as usize] {
        return s.clone();
    }
    let func = m.function(f);
    let mut pure = true;
    let mut blocks = func.blocks.len() as u32;
    let mut loads: Vec<Pc> = Vec::new();
    for (b, block) in func.iter_blocks() {
        for (i, instr) in block.instrs.iter().enumerate() {
            match instr {
                Instr::Load { .. } => loads.push(Pc::new(f, b, i as u32)),
                Instr::Call { func: callee, .. } => {
                    let sub = summarize(m, *callee, memo);
                    pure &= sub.pure;
                    blocks += sub.blocks;
                    loads.extend_from_slice(&sub.loads);
                }
                Instr::Fence { .. } | Instr::Yield | Instr::Nop => {}
                i if i.is_pure() => {}
                _ => pure = false,
            }
        }
    }
    loads.sort_unstable();
    loads.dedup();
    let s = FnSummary {
        pure,
        blocks,
        loads,
    };
    memo[f.0 as usize] = Some(s.clone());
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinrace_tir::{ModuleBuilder, Operand};

    #[test]
    fn pure_reader_is_pure() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global("g", 1);
        let reader = mb.function("reader", 0, |f| {
            let v = f.load(g.at(0));
            f.ret(Some(Operand::Reg(v)));
        });
        mb.entry("main", |f| {
            let v = f.call(reader, &[]);
            f.output(v);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let s = summarize_functions(&m);
        assert!(s[reader.0 as usize].pure);
        assert_eq!(s[reader.0 as usize].loads.len(), 1);
        assert!(!s[m.entry.0 as usize].pure, "main outputs");
    }

    #[test]
    fn writer_is_impure_and_poisons_callers() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global("g", 1);
        let writer = mb.function("writer", 0, |f| {
            f.store(g.at(0), 1);
            f.ret(None);
        });
        let wrapper = mb.function("wrapper", 0, |f| {
            f.call_void(writer, &[]);
            f.ret(None);
        });
        mb.entry("main", |f| {
            f.call_void(wrapper, &[]);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let s = summarize_functions(&m);
        assert!(!s[writer.0 as usize].pure);
        assert!(!s[wrapper.0 as usize].pure);
    }

    #[test]
    fn block_weight_accumulates_through_calls() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global("g", 1);
        // leaf has 3 blocks
        let leaf = mb.function("leaf", 0, |f| {
            let b1 = f.new_block();
            let b2 = f.new_block();
            let v = f.load(g.at(0));
            f.branch(v, b1, b2);
            f.switch_to(b1);
            f.ret(Some(Operand::Imm(1)));
            f.switch_to(b2);
            f.ret(Some(Operand::Imm(0)));
        });
        // mid has 1 own block + leaf's 3
        let mid = mb.function("mid", 0, |f| {
            let v = f.call(leaf, &[]);
            f.ret(Some(Operand::Reg(v)));
        });
        mb.entry("main", |f| {
            let v = f.call(mid, &[]);
            f.output(v);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let s = summarize_functions(&m);
        assert_eq!(s[leaf.0 as usize].blocks, 3);
        assert_eq!(s[mid.0 as usize].blocks, 4);
        assert!(s[mid.0 as usize].pure);
        assert_eq!(s[mid.0 as usize].loads.len(), 1);
    }

    #[test]
    fn sync_ops_are_impure() {
        let mut mb = ModuleBuilder::new("t");
        let mu = mb.global("mu", 1);
        let f1 = mb.function("locker", 0, |f| {
            f.lock(mu.at(0));
            f.unlock(mu.at(0));
            f.ret(None);
        });
        mb.entry("main", |f| {
            f.call_void(f1, &[]);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let s = summarize_functions(&m);
        assert!(!s[f1.0 as usize].pure);
    }
}
