//! # SpinRace bench — benchmark harness
//!
//! Two entry points:
//!
//! * `cargo run -p spinrace-bench --bin tables -- [t1|t2|t3|t4|t5|t6|f1|f2|all]`
//!   regenerates the paper's tables and figures from live pipeline runs
//!   and prints them (plus JSON under `target/experiments/`).
//! * `cargo bench -p spinrace-bench` runs the Criterion benches:
//!   `runtime_overhead` (figure F2's wall-clock series), `vm_throughput`,
//!   `instrumentation` (spin-finder cost) and `detector_stages`
//!   (per-event detector cost by configuration).
//!
//! Shared helpers for the benches live here.

use spinrace_core::{Analyzer, Tool};
use spinrace_suites::all_programs;
use spinrace_tir::Module;

/// Benchmark workloads: a small, representative PARSEC subset (one
/// no-ad-hoc program, one plain-flag program, one atomics program).
pub fn bench_programs() -> Vec<(&'static str, Module)> {
    all_programs()
        .into_iter()
        .filter(|p| matches!(p.name, "blackscholes" | "vips" | "dedup"))
        .map(|p| (p.name, (p.build)(p.threads, p.size)))
        .collect()
}

/// The tool lineup used by the benches.
pub fn bench_tools() -> Vec<(&'static str, Tool)> {
    vec![
        ("lib", Tool::HelgrindLib),
        ("lib+spin", Tool::HelgrindLibSpin { window: 7 }),
        ("nolib+spin", Tool::HelgrindNolibSpin { window: 7 }),
        ("drd", Tool::Drd),
    ]
}

/// One full pipeline run (panics on pipeline errors — benches only).
pub fn run_once(tool: Tool, module: &Module) {
    Analyzer::tool(tool)
        .long_msm()
        .analyze(module)
        .expect("bench run");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_programs_build() {
        let ps = bench_programs();
        assert_eq!(ps.len(), 3);
    }

    #[test]
    fn run_once_completes() {
        let (_, m) = &bench_programs()[0];
        run_once(Tool::HelgrindLibSpin { window: 7 }, m);
    }
}
