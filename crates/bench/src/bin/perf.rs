//! `perf` — detector throughput and shadow-memory benchmark.
//!
//! Records each bench program once per tool through the session pipeline
//! (`Session::prepare → execute`, yielding a [`Trace`]) and replays the
//! stream through every tool's detector configuration, measuring:
//!
//! * **events/sec** of the production [`RaceDetector`] (epoch fast paths,
//!   paged shadow memory) over the raw event slice;
//! * **replay events/sec** of the same detector fed through the
//!   [`Trace::replay`] artifact path — pure detector throughput as the
//!   session API's detect fan-out exercises it, isolated from VM
//!   interpretation entirely;
//! * **events/sec** of the retained [`ReferenceDetector`] (slow full-VC
//!   baseline) — the speedup column is recomputed, never quoted;
//! * **parallel replay events/sec** of the sharded engine
//!   (`spinrace_core::parallel::run_sharded`) at [`PARALLEL_WORKERS`]
//!   workers, plus a worker-count scaling curve on the longest stream —
//!   the wall-clock payoff of partitioning detection along the shadow
//!   shard seam (only meaningful on multi-core machines; the JSON records
//!   the core count alongside);
//! * **shadow bytes** retained by each after a full replay (pages and
//!   cells never shrink, so the final figure is the peak);
//! * **long-stream workload rows** (`spinrace-workloads`): generated
//!   multi-million-event streams — zipf-skewed, wide-thread, ring — where
//!   per-replay pool constants vanish and events/sec measures steady-state
//!   cache behaviour. Each row's workload carries a ground-truth oracle,
//!   which the measured detection is asserted against (a perf run that
//!   miscounts contexts on known-truth input aborts). The scaling curve
//!   runs on the longest of these streams instead of the old 151k-event
//!   scaled-vips stream, whose size let the worker-pool spawn constant
//!   colour the curve. Since schema v5 each row also records its
//!   **per-shard occupancy histogram** (the skew the scheduler packs
//!   around) and a **scheduled-vs-static pair** of parallel series: the
//!   occupancy-balanced LPT schedule against static modular ownership,
//!   on the same stream at the same width. Since schema v6 each row
//!   also carries **trace-format figures**: bytes/event of the JSON and
//!   binary encodings, columnar encode/decode throughput, and the peak
//!   resident chunk bytes of streamed replay — the quick smoke gates the
//!   binary size to ≤ 1/8 of JSON, the decode floor, and the streaming
//!   peak to a four-chunk budget (the O(chunk) memory claim);
//! * **predictive long-stream series** (since schema v8): each workload
//!   row also records `sync_preserving` replay events/sec — the
//!   single-pass sync-preserving predictive detector over its own
//!   unmodified-module recording of the same spec, judged against the
//!   same ground truth — with its own conservative floor (the
//!   per-lock per-address release-clock maps make the pass
//!   fundamentally heavier than the epoch-fast-path HB detector);
//! * **serve throughput and tail latency** (since schema v7): whole
//!   analysis sessions — framed trace upload, streamed verdicts, done —
//!   against an in-process `spinrace-serve` instance under
//!   [`SERVE_CLIENTS`] concurrent clients, reporting traces/sec and
//!   p50/p99 end-to-end session latency.
//!
//! Results land in `BENCH_detector.json` at the repo root — the perf
//! trajectory the CI `perf-smoke` step guards.
//!
//! ```text
//! cargo run --release -p spinrace-bench --bin perf            # full run
//! cargo run --release -p spinrace-bench --bin perf -- --quick # CI smoke
//! cargo run --release -p spinrace-bench --bin perf -- serve --quick
//!                              # serve latency gates only (CI serve-smoke)
//! ```
//!
//! `--quick` measures a reduced matrix with shorter timing windows and
//! **fails** (exit 1) if any configuration drops more than 5× below
//! [`FLOOR_EVENTS_PER_SEC`]. The floor is deliberately far under current
//! numbers: it catches algorithmic regressions (an accidental clone or
//! hash-table slip on the hot path), not CI-machine noise.

use spinrace_bench::bench_tools;
use spinrace_core::{parallel, DetectRequest, Schedule, Session, Tool};
use spinrace_detector::{
    shard_occupancy, AnyDetector, DetectorConfig, MsmMode, RaceDetector, ReferenceDetector,
    NUM_SHARDS,
};
use spinrace_tracefmt::{decode_trace, encode_trace, ChunkedTraceReader, DEFAULT_CHUNK_EVENTS};
use spinrace_vm::{Event, EventSink, Trace};
use spinrace_workloads::{Family, WorkloadSpec};
use std::io::Cursor;
use std::time::{Duration, Instant};

/// Checked-in floor for the production detector, in events/sec. The CI
/// smoke fails when measured throughput is more than 5× below this. Set
/// from a ~13 M ev/s release-mode measurement; /5 leaves room for slow
/// shared runners while still catching order-of-magnitude regressions.
const FLOOR_EVENTS_PER_SEC: f64 = 10_000_000.0;

/// Worker count of the per-row parallel series. Parallelism must never be
/// a pessimization: on machines with ≥ 2 cores the quick smoke holds this
/// series to the same floor as the sequential replay series.
const PARALLEL_WORKERS: usize = 4;

/// Worker counts of the scaling curve measured on the longest stream.
const SCALING_WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Floor for the long-stream workload sequential-replay series, in
/// events/sec. Long streams run slower per event than the 10k-event
/// bench rows (the shadow working set outgrows cache — which is what the
/// rows exist to measure), so they get their own floor: set from a
/// ~16 M ev/s single-core release measurement on the 1M-event zipf
/// stream; /5 in the quick gate leaves room for slow shared runners.
const WORKLOAD_FLOOR_EVENTS_PER_SEC: f64 = 10_000_000.0;

/// Floor for the predictive (`sync_preserving`) long-stream replay
/// series, in events/sec. The sync-preserving pass has no epoch fast
/// path — every release updates per-lock per-address clock maps — so it
/// runs under the HB detector by design; release measurements on the
/// ≥1M-event long streams land between ~7 M (quick-mode windows) and
/// ~40 M ev/s, pinned conservatively at 2 M so only an algorithmic
/// collapse (an accidental clone or map rebuild per event) trips it;
/// /5 in the quick gate.
const PREDICT_FLOOR_EVENTS_PER_SEC: f64 = 2_000_000.0;

/// Floor for binary trace *decode* throughput (columnar chunks →
/// `Vec<Event>`), in events/sec — the replay-startup cost the chunked
/// format exists to keep negligible next to detection. Set from the
/// ≥30 M ev/s target the format was designed against; /5 in the quick
/// gate leaves room for slow shared runners.
const DECODE_FLOOR_EVENTS_PER_SEC: f64 = 30_000_000.0;

/// Concurrent clients of the `serve` latency bench: one per core the
/// ≥4-core gate assumes, uploading back-to-back against an in-process
/// `spinrace-serve` instance with the same number of session slots.
const SERVE_CLIENTS: usize = 4;

/// Floor for serve throughput, in whole trace uploads (request → framed
/// verdicts → done) per second across [`SERVE_CLIENTS`] concurrent
/// clients. Release-mode measurements sit well into the hundreds for
/// the ~100k-event bench stream; the floor only catches a server that
/// has stopped overlapping sessions or started copying uploads
/// wholesale.
const SERVE_FLOOR_TRACES_PER_SEC: f64 = 20.0;

/// Ceiling for the p99 end-to-end session latency of the serve bench,
/// in milliseconds. Generous on purpose: it flags a session slot being
/// starved (admission no longer overlaps uploads), not runner jitter.
const SERVE_P99_CEILING_MS: f64 = 1_000.0;

/// Maximum binary trace size as a fraction of the JSON encoding of the
/// same stream: the quick smoke fails if the columnar format compresses
/// any long stream to *more* than `1/8` of its JSON bytes. (Measured
/// ratios sit near 1/14; 1/8 catches a column codec silently degrading
/// to something JSON-shaped without flaking on stream-shape variance.)
const COMPRESSION_GATE_DENOM: usize = 8;

/// One (program, tool) measurement.
struct Row {
    program: &'static str,
    tool: String,
    events: usize,
    events_per_sec: f64,
    replay_events_per_sec: f64,
    parallel_replay_events_per_sec: f64,
    ref_events_per_sec: f64,
    shadow_bytes: usize,
    ref_shadow_bytes: usize,
    contexts: usize,
}

/// One long-stream workload measurement (lib+spin, long MSM).
struct WorkloadRow {
    /// Spec-encoded name (`wl-zipf-t8-…`).
    spec: String,
    family: String,
    oracle: String,
    events: usize,
    replay_events_per_sec: f64,
    /// Parallel series under the default occupancy-balanced schedule.
    parallel_replay_events_per_sec: f64,
    /// The same width under static modular ownership — the pair the
    /// balanced-vs-static gates compare.
    parallel_static_events_per_sec: f64,
    /// Plain accesses per shadow shard: the skew the scheduler packs
    /// around, recorded so imbalance is observable without re-deriving
    /// it from the stream.
    shard_occupancy: [u64; NUM_SHARDS],
    shadow_bytes: usize,
    contexts: usize,
    /// `sync_preserving` replay throughput over the same spec's
    /// unmodified-module recording (the v8 addition). The predictive
    /// pass is sequential-only, so this is the whole story — there is
    /// no parallel column for it.
    predict_events_per_sec: f64,
    /// Contexts the predictive pass reported on that recording, judged
    /// against the workload's ground truth before being recorded.
    predict_contexts: usize,
    /// On-disk codec measurements for the same stream in both trace
    /// encodings (the v6 additions).
    codec: CodecRow,
}

/// Trace-format measurements for one long stream: size of both
/// encodings, columnar encode/decode throughput, and the peak resident
/// bytes of chunk-at-a-time streaming replay — the O(chunk) number the
/// chunked reader exists to deliver.
struct CodecRow {
    json_bytes: usize,
    binary_bytes: usize,
    encode_events_per_sec: f64,
    decode_events_per_sec: f64,
    streaming_chunks: u32,
    streaming_peak_resident_bytes: usize,
}

/// Measure both trace encodings of an already-recorded stream: bytes on
/// the wire, encode/decode throughput of the columnar format, and a
/// streamed replay into a fresh detector to read the decode-ahead
/// pipeline's peak resident chunk memory.
fn measure_codec(trace: &Trace, cfg: DetectorConfig, min_secs: f64) -> CodecRow {
    let n = trace.events.len();
    let json_bytes = trace.to_json().len();
    let binary = encode_trace(trace);
    let encode_events_per_sec = timed_events_per_sec(n, min_secs, || {
        let bytes = encode_trace(trace);
        std::hint::black_box(&bytes);
    });
    let decode_events_per_sec = timed_events_per_sec(n, min_secs, || {
        let decoded = decode_trace(&binary).expect("decode recorded trace");
        std::hint::black_box(&decoded);
    });
    let mut det = RaceDetector::new(cfg);
    let reader = ChunkedTraceReader::new(Cursor::new(&binary[..])).expect("open recorded trace");
    let stats = reader.replay_into(&mut det).expect("stream recorded trace");
    assert_eq!(stats.events, n as u64, "streamed replay saw every event");
    CodecRow {
        json_bytes,
        binary_bytes: binary.len(),
        encode_events_per_sec,
        decode_events_per_sec,
        streaming_chunks: stats.chunks,
        streaming_peak_resident_bytes: stats.peak_resident_bytes,
    }
}

/// The generated long streams: ≥1M events each, sized so steady-state
/// cache behaviour — not pool constants — dominates. Quick mode keeps
/// two: the skewed zipf stream (also the scaling-curve stream — the
/// worst case for static shard ownership) and the even-distribution
/// fanout stream, whose parallel/sequential ratio carries the
/// favorable-stream speedup gate.
fn long_stream_specs(quick: bool) -> Vec<WorkloadSpec> {
    let zipf = WorkloadSpec::new(Family::Zipf)
        .threads(8)
        .addr_space(4096)
        .skew(3)
        .seed(1);
    let fanout = WorkloadSpec::new(Family::Fanout)
        .threads(32)
        .addr_space(8192)
        .seed(2);
    if quick {
        vec![
            zipf.with_total_events(1_050_000),
            fanout.with_total_events(1_050_000),
        ]
    } else {
        vec![
            zipf.with_total_events(2_100_000),
            fanout.with_total_events(1_500_000),
            WorkloadSpec::new(Family::Ring)
                .threads(8)
                .addr_space(256)
                .seed(3)
                .with_total_events(1_050_000),
        ]
    }
}

/// Record and measure the long-stream workloads. Returns the rows plus
/// the recorded **zipf** trace (the scaling-curve stream — selected by
/// family, never by length, because the no-pessimization gate's relaxed
/// bound is justified by that stream's deliberate skew) and its detector
/// configuration. Every row's detection is held to the workload's own
/// ground truth through the shared `judge_outcome` adapter — a
/// throughput number measured on a miscounting detector would be
/// worthless.
fn measure_workloads(quick: bool, min_secs: f64) -> (Vec<WorkloadRow>, Trace, DetectorConfig) {
    let tool = Tool::HelgrindLibSpin { window: 7 };
    let cfg = detector_config(tool);
    let mut rows = Vec::new();
    let mut scaling_trace: Option<Trace> = None;
    for spec in long_stream_specs(quick) {
        let wl = spec.build();
        let run = Session::for_module(&wl.module)
            .vm_config(spec.vm_config())
            .prepare(tool)
            .expect("prepare workload")
            .execute()
            .expect("vm run");
        let trace = run.trace();
        let replay_eps = measure_trace(trace, min_secs, || RaceDetector::new(cfg));
        let par_eps = measure_parallel(&trace.events, cfg, PARALLEL_WORKERS, min_secs);
        let par_static_eps = measure_parallel_scheduled(
            &trace.events,
            cfg,
            PARALLEL_WORKERS,
            Schedule::Static,
            min_secs,
        );
        let occupancy = shard_occupancy(&trace.events);
        // One more replay with locations resolved, judged against the
        // workload's ground truth (exact victim/thread-pair matching —
        // valid for race-free and any future seeded spec alike).
        let out = run.run(&DetectRequest::config(cfg)).into_single();
        let verdict = spinrace_suites::judge_outcome(&wl.oracle, &out);
        assert!(
            verdict.pass(),
            "workload {} violated its oracle under {}: {verdict}",
            spec.name(),
            tool.label(),
        );
        let occ_max = occupancy.iter().copied().max().unwrap_or(0);
        let occ_total: u64 = occupancy.iter().sum();
        let codec = measure_codec(trace, cfg, min_secs);
        // The predictive pass measures over its own recording: the
        // sync-preserving tool analyzes the *unmodified* module (no
        // spin instrumentation), so the lib+spin trace above is not its
        // stream. One more deterministic execution, same spec, judged
        // against the same ground truth.
        let sp_tool = Tool::SyncPreserving;
        let sp_cfg = detector_config(sp_tool);
        let sp_run = Session::for_module(&wl.module)
            .vm_config(spec.vm_config())
            .prepare(sp_tool)
            .expect("prepare predictive workload")
            .execute()
            .expect("vm run");
        let predict_eps = measure_trace(sp_run.trace(), min_secs, || AnyDetector::new(sp_cfg));
        let sp_out = sp_run.run(&DetectRequest::config(sp_cfg)).into_single();
        let sp_verdict = spinrace_suites::judge_outcome(&wl.oracle, &sp_out);
        assert!(
            sp_verdict.pass(),
            "workload {} violated its oracle under {}: {sp_verdict}",
            spec.name(),
            sp_tool.label(),
        );
        println!(
            "{:>14} {:<24} {:>8} events  (trace replay {:>6.2} M, parallel×{PARALLEL_WORKERS} balanced {:>6.2} M / static {:>6.2} M ev/s, hottest shard {:.2}x even)  shadow {} B [{}]",
            wl.spec.family.name(),
            spec.name(),
            trace.events.len(),
            replay_eps / 1e6,
            par_eps / 1e6,
            par_static_eps / 1e6,
            occ_max as f64 * NUM_SHARDS as f64 / occ_total.max(1) as f64,
            out.metrics.shadow_bytes,
            wl.oracle.describe(),
        );
        println!(
            "{:>14} {:<24} trace {:.2} B/ev binary vs {:.2} B/ev json ({:.1}x smaller); encode {:>6.2} M, decode {:>6.2} M ev/s; streamed {} chunk(s), peak {} KiB resident",
            "",
            "",
            codec.binary_bytes as f64 / trace.events.len().max(1) as f64,
            codec.json_bytes as f64 / trace.events.len().max(1) as f64,
            codec.json_bytes as f64 / codec.binary_bytes.max(1) as f64,
            codec.encode_events_per_sec / 1e6,
            codec.decode_events_per_sec / 1e6,
            codec.streaming_chunks,
            codec.streaming_peak_resident_bytes / 1024,
        );
        println!(
            "{:>14} {:<24} sync_preserving {:>6.2} M ev/s over {} events (sequential-only; {} context(s)) [{}]",
            "",
            "",
            predict_eps / 1e6,
            sp_run.trace().events.len(),
            sp_out.contexts,
            wl.oracle.describe(),
        );
        rows.push(WorkloadRow {
            spec: spec.name(),
            family: wl.spec.family.name().to_string(),
            oracle: wl.oracle.describe(),
            events: trace.events.len(),
            replay_events_per_sec: replay_eps,
            parallel_replay_events_per_sec: par_eps,
            parallel_static_events_per_sec: par_static_eps,
            shard_occupancy: occupancy,
            shadow_bytes: out.metrics.shadow_bytes,
            contexts: out.contexts,
            predict_events_per_sec: predict_eps,
            predict_contexts: sp_out.contexts,
            codec,
        });
        if spec.family == Family::Zipf {
            scaling_trace = Some(run.into_trace());
        }
    }
    (
        rows,
        scaling_trace.expect("the long-stream specs always include a zipf stream"),
        cfg,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    if args.first().map(String::as_str) == Some("serve") {
        serve_only(quick);
    }
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(default_out_path);
    // Timing window per measurement. Quick mode trades precision for CI
    // latency; the 5× floor margin absorbs the extra noise.
    let min_secs = if quick { 0.12 } else { 0.6 };
    // Scale the kernels up so per-replay constants (detector construction)
    // amortize away and events/sec measures the steady-state hot path.
    let programs = perf_programs(16);
    let programs: Vec<_> = if quick {
        programs.into_iter().filter(|(n, _)| *n == "vips").collect()
    } else {
        programs
    };

    let mut rows: Vec<Row> = Vec::new();
    for (name, module) in &programs {
        for (_, tool) in bench_tools() {
            let trace = record_trace(tool, module);
            let events = &trace.events;
            let cfg = detector_config(tool);

            let eps = measure(events, min_secs, || RaceDetector::new(cfg));
            let ref_eps = measure(events, min_secs, || ReferenceDetector::new(cfg));
            // Detector-only throughput through the Trace artifact itself
            // (`Trace::replay`) — the series the session API's fan-out
            // paths actually exercise.
            let replay_eps = measure_trace(&trace, min_secs, || RaceDetector::new(cfg));
            // The sharded engine end to end: promotion-seed pre-pass,
            // event routing, worker pool, and fragment merge, each
            // iteration — the real cost of `detect_parallel`.
            let par_eps = measure_parallel(events, cfg, PARALLEL_WORKERS, min_secs);

            // One more replay of each to read retained state, and hold the
            // sharded engine to the sequential result while we're at it.
            let mut det = RaceDetector::new(cfg);
            replay(events, &mut det);
            let mut rdet = ReferenceDetector::new(cfg);
            replay(events, &mut rdet);
            assert_eq!(
                det.racy_contexts(),
                rdet.racy_contexts(),
                "fast and reference detectors disagree on {name}/{}",
                tool.label()
            );
            let merged = parallel::run_sharded(cfg, events, PARALLEL_WORKERS);
            assert_eq!(
                merged.reports.reports(),
                det.reports().reports(),
                "parallel replay diverged on {name}/{}",
                tool.label()
            );
            assert_eq!(merged.metrics, det.metrics());

            println!(
                "{name:>14} {:<24} {:>8} events  {:>7.2} M ev/s  (trace replay {:>6.2} M, parallel×{PARALLEL_WORKERS} {:>6.2} M, ref {:>6.2} M ev/s, {:>4.1}x)  shadow {} B (ref {} B)",
                tool.label(),
                events.len(),
                eps / 1e6,
                replay_eps / 1e6,
                par_eps / 1e6,
                ref_eps / 1e6,
                eps / ref_eps,
                det.metrics().shadow_bytes,
                rdet.shadow_bytes(),
            );
            rows.push(Row {
                program: name,
                tool: tool.label(),
                events: events.len(),
                events_per_sec: eps,
                replay_events_per_sec: replay_eps,
                parallel_replay_events_per_sec: par_eps,
                ref_events_per_sec: ref_eps,
                shadow_bytes: det.metrics().shadow_bytes,
                ref_shadow_bytes: rdet.shadow_bytes(),
                contexts: det.racy_contexts(),
            });
        }
    }

    // Long-stream workload rows (≥1M events each; the zipf stream is
    // also the scaling-curve stream).
    let (workload_rows, long_trace, long_cfg) = measure_workloads(quick, min_secs);

    // Scaling curve on the longest generated stream, where the pool
    // constant amortizes.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let scaling = scaling_curve(&long_trace, long_cfg, min_secs);
    println!(
        "parallel scaling on {} cores ({} events): {}",
        cores,
        scaling.events,
        SCALING_WORKERS
            .iter()
            .zip(&scaling.events_per_sec)
            .map(|(w, eps)| format!("{w}w {:.2} M", eps / 1e6))
            .collect::<Vec<_>>()
            .join(", "),
    );

    let min_eps = rows
        .iter()
        .map(|r| r.events_per_sec)
        .fold(f64::INFINITY, f64::min);
    let replay_min_eps = rows
        .iter()
        .map(|r| r.replay_events_per_sec)
        .fold(f64::INFINITY, f64::min);
    let parallel_min_eps = rows
        .iter()
        .map(|r| r.parallel_replay_events_per_sec)
        .fold(f64::INFINITY, f64::min);
    let workload_min_eps = workload_rows
        .iter()
        .map(|r| r.replay_events_per_sec)
        .fold(f64::INFINITY, f64::min);
    let predict_min_eps = workload_rows
        .iter()
        .map(|r| r.predict_events_per_sec)
        .fold(f64::INFINITY, f64::min);
    let geomean_speedup = (rows
        .iter()
        .map(|r| (r.events_per_sec / r.ref_events_per_sec).ln())
        .sum::<f64>()
        / rows.len() as f64)
        .exp();
    println!(
        "min {:.2} M ev/s (trace replay min {:.2} M, parallel×{PARALLEL_WORKERS} min {:.2} M, \
         long-stream min {:.2} M, sync_preserving min {:.2} M), geomean speedup over reference \
         {geomean_speedup:.2}x",
        min_eps / 1e6,
        replay_min_eps / 1e6,
        parallel_min_eps / 1e6,
        workload_min_eps / 1e6,
        predict_min_eps / 1e6,
    );

    let serve_row = measure_serve(quick);
    print_serve_row(&serve_row);

    write_json(
        &out_path,
        quick,
        &rows,
        &workload_rows,
        Summary {
            min_eps,
            replay_min_eps,
            parallel_min_eps,
            workload_min_eps,
            predict_min_eps,
            geomean_speedup,
        },
        cores,
        &scaling,
        &serve_row,
    );
    println!("wrote {out_path}");

    if quick && min_eps < FLOOR_EVENTS_PER_SEC / 5.0 {
        eprintln!(
            "PERF REGRESSION: min {min_eps:.0} ev/s is more than 5x below the checked-in floor \
             of {FLOOR_EVENTS_PER_SEC:.0} ev/s"
        );
        std::process::exit(1);
    }
    // The Trace-artifact path must stay as fast as the raw-slice path: it
    // is the same detector fed by the same borrowed events, so a gap here
    // means an accidental copy crept into `Trace::replay`.
    if quick && replay_min_eps < FLOOR_EVENTS_PER_SEC / 5.0 {
        eprintln!(
            "PERF REGRESSION: trace-replay min {replay_min_eps:.0} ev/s is more than 5x below \
             the checked-in floor of {FLOOR_EVENTS_PER_SEC:.0} ev/s"
        );
        std::process::exit(1);
    }
    // The long streams are where steady-state (cache-bound) throughput
    // lives; they get their own non-regressing floor so a hot-path slip
    // that only shows at scale can't hide behind the tiny bench rows.
    if quick && workload_min_eps < WORKLOAD_FLOOR_EVENTS_PER_SEC / 5.0 {
        eprintln!(
            "PERF REGRESSION: long-stream workload replay min {workload_min_eps:.0} ev/s is \
             more than 5x below the checked-in floor of {WORKLOAD_FLOOR_EVENTS_PER_SEC:.0} ev/s"
        );
        std::process::exit(1);
    }
    // The predictive pass has its own (much lower) floor: it is
    // sequential-only and clock-map heavy by design, so holding it to
    // the HB floor would punish the algorithm for existing, while no
    // floor at all would let a per-event map rebuild land silently.
    if quick && predict_min_eps < PREDICT_FLOOR_EVENTS_PER_SEC / 5.0 {
        eprintln!(
            "PERF REGRESSION: sync_preserving long-stream replay min {predict_min_eps:.0} ev/s \
             is more than 5x below the checked-in floor of {PREDICT_FLOOR_EVENTS_PER_SEC:.0} ev/s"
        );
        std::process::exit(1);
    }
    // Trace-format gates, on every long stream quick mode measures.
    // Compression is deterministic (same stream → same bytes), so its
    // gate takes no noise margin; the decode floor gets the same /5 the
    // other throughput floors use. The streaming-peak bound is the
    // O(chunk) claim made executable: the decode-ahead pipeline holds at
    // most the chunk being detected plus the chunk being decoded plus
    // one in the channel, so peak resident chunk memory must stay under
    // four chunks' worth regardless of stream length.
    for row in &workload_rows {
        let c = &row.codec;
        if quick && c.binary_bytes * COMPRESSION_GATE_DENOM > c.json_bytes {
            eprintln!(
                "PERF REGRESSION: binary trace of {} is {} bytes, more than 1/{} of its \
                 {}-byte JSON encoding ({:.1}x smaller; required ≥ {}x)",
                row.spec,
                c.binary_bytes,
                COMPRESSION_GATE_DENOM,
                c.json_bytes,
                c.json_bytes as f64 / c.binary_bytes.max(1) as f64,
                COMPRESSION_GATE_DENOM,
            );
            std::process::exit(1);
        }
        if quick && c.decode_events_per_sec < DECODE_FLOOR_EVENTS_PER_SEC / 5.0 {
            eprintln!(
                "PERF REGRESSION: binary trace decode of {} at {:.0} ev/s is more than 5x \
                 below the checked-in floor of {DECODE_FLOOR_EVENTS_PER_SEC:.0} ev/s",
                row.spec, c.decode_events_per_sec,
            );
            std::process::exit(1);
        }
        let chunk_budget = 4 * DEFAULT_CHUNK_EVENTS * std::mem::size_of::<Event>();
        if quick && c.streaming_peak_resident_bytes > chunk_budget {
            eprintln!(
                "PERF REGRESSION: streaming replay of {} held {} bytes of decoded chunks at \
                 peak, above the four-chunk budget of {} bytes — the reader is no longer \
                 O(chunk)",
                row.spec, c.streaming_peak_resident_bytes, chunk_budget,
            );
            std::process::exit(1);
        }
    }
    // Parallel replay must pay for itself — judged on the long scaling
    // stream, where the scoped-pool spawn constant and the W× sync-event
    // replication amortize (the quick rows' ~10k-event streams are
    // dominated by exactly those constants, so gating on them would flake
    // on healthy code), and against the *same stream's measured
    // sequential replay*, not a static constant, so a genuine slowdown
    // can't hide under the absolute floor. The scaling stream is the
    // *skew-3 zipf workload* — deliberately the least favourable address
    // distribution for shard partitioning (the hottest of 8 shards
    // carries over a quarter of all plain reads). The occupancy-balanced
    // LPT schedule packs that imbalance across workers, but even LPT
    // cannot split the single hottest shard, so ≥4 cores demand a true
    // no-pessimization bound here (≥ 1.0× — a silently rotted engine
    // shows well under that, the single-core curve bottoms at ~0.65×);
    // the balanced-vs-static gate below is where the scheduler's win on
    // this stream is held. With 2-3 cores the pool is oversubscribed, so
    // only an order-of-halving is flagged. Vacuous on a single core,
    // where 4 workers time-slice one CPU.
    let par4 = scaling.events_per_sec[SCALING_WORKERS
        .iter()
        .position(|&w| w == PARALLEL_WORKERS)
        .expect("scaling curve covers the per-row worker count")];
    let speedup = par4 / scaling.sequential_events_per_sec;
    let required = if cores >= PARALLEL_WORKERS { 1.0 } else { 0.4 };
    if quick && cores >= 2 && speedup < required {
        eprintln!(
            "PERF REGRESSION: parallel replay ({PARALLEL_WORKERS} workers on {cores} cores) at \
             {par4:.0} ev/s is only {speedup:.2}x the same stream's sequential replay \
             ({:.0} ev/s over {} events); required ≥ {required}x",
            scaling.sequential_events_per_sec, scaling.events,
        );
        std::process::exit(1);
    }
    // The favorable-stream speedup gate: the even-distribution fanout
    // long stream has no shard imbalance to hide behind, so with 4+ real
    // cores its per-row 4-worker parallel replay must beat its own
    // sequential replay by the margin the old vips-stream gate demanded
    // (≥ 1.25× — well under the ~2× an even ≥1M-event stream achieves on
    // dedicated cores, far above the ~1.05× a silently rotted engine
    // shows). Together with the zipf no-pessimization bound above, CI
    // checks both ends of the distribution spectrum.
    if quick && cores >= PARALLEL_WORKERS {
        let fanout = workload_rows
            .iter()
            .find(|r| r.family == "fanout")
            .expect("quick mode measures the fanout long stream");
        let ratio = fanout.parallel_replay_events_per_sec / fanout.replay_events_per_sec;
        if ratio < 1.25 {
            eprintln!(
                "PERF REGRESSION: parallel replay of the even fanout long stream \
                 ({PARALLEL_WORKERS} workers on {cores} cores) at {:.0} ev/s is only \
                 {ratio:.2}x its sequential replay ({:.0} ev/s over {} events); required ≥ 1.25x",
                fanout.parallel_replay_events_per_sec, fanout.replay_events_per_sec, fanout.events,
            );
            std::process::exit(1);
        }
    }
    // The balanced-vs-static pair, both ends of the distribution
    // spectrum (quick mode measures zipf + fanout): on the *skewed* zipf
    // row LPT packing must beat static modular ownership — that gap is
    // the whole point of the occupancy-aware scheduler — and on the
    // *even* rows, where there is no imbalance to exploit, the balanced
    // pre-pass must not cost more than a sliver (≥ 0.8× static covers
    // timing noise; a real pessimization shows far below). Both gates
    // need ≥ 4 real cores: on fewer, workers time-slice and the
    // schedules are indistinguishable.
    if quick && cores >= PARALLEL_WORKERS {
        for row in &workload_rows {
            let ratio = row.parallel_replay_events_per_sec / row.parallel_static_events_per_sec;
            let (required, what) = if row.family == "zipf" {
                (1.0, "must beat static on the skewed stream")
            } else {
                (0.8, "must not pessimize the even stream")
            };
            if ratio < required {
                eprintln!(
                    "PERF REGRESSION: balanced schedule on {} ({PARALLEL_WORKERS} workers on \
                     {cores} cores) at {:.0} ev/s is {ratio:.2}x its static-schedule replay \
                     ({:.0} ev/s over {} events); {what} (required ≥ {required}x)",
                    row.spec,
                    row.parallel_replay_events_per_sec,
                    row.parallel_static_events_per_sec,
                    row.events,
                );
                std::process::exit(1);
            }
        }
    }
    if quick && cores < 2 {
        println!(
            "note: single-core machine — the parallel speedup check is vacuous and was skipped"
        );
    }
}

/// The worker-count scaling curve on the longest generated stream, in
/// events/sec per entry of [`SCALING_WORKERS`], plus the same stream's
/// sequential `Trace::replay` throughput — the baseline the
/// no-pessimization gate compares against.
struct Scaling {
    program: String,
    tool: String,
    events: usize,
    events_per_sec: Vec<f64>,
    sequential_events_per_sec: f64,
}

/// Measure the curve on an already-recorded long stream (the ≥1M-event
/// zipf workload — skewed on purpose, so the curve shows what static
/// shard ownership does under the least favourable address distribution).
fn scaling_curve(trace: &Trace, cfg: DetectorConfig, min_secs: f64) -> Scaling {
    let sequential_events_per_sec = measure_trace(trace, min_secs, || RaceDetector::new(cfg));
    let events_per_sec = SCALING_WORKERS
        .iter()
        .map(|&w| measure_parallel(&trace.events, cfg, w, min_secs))
        .collect();
    Scaling {
        program: trace.header.module_name.clone(),
        tool: trace.header.tool_label.clone(),
        events: trace.events.len(),
        events_per_sec,
        sequential_events_per_sec,
    }
}

/// `BENCH_detector.json` at the repo root, resolved relative to this
/// crate so the binary works from any working directory.
fn default_out_path() -> String {
    format!("{}/../../BENCH_detector.json", env!("CARGO_MANIFEST_DIR"))
}

/// The Criterion bench programs, scaled `scale`× for longer event streams.
fn perf_programs(scale: u32) -> Vec<(&'static str, spinrace_tir::Module)> {
    spinrace_suites::all_programs()
        .into_iter()
        .filter(|p| matches!(p.name, "blackscholes" | "vips" | "dedup"))
        .map(|p| (p.name, (p.build)(p.threads, p.size * scale)))
        .collect()
}

/// The detector configuration a tool runs (long MSM — integration mode,
/// as in the PARSEC experiments and the Criterion benches).
fn detector_config(tool: Tool) -> DetectorConfig {
    tool.detector_config(MsmMode::Long, 1000)
}

/// Record the event stream a tool's detector would see, through the
/// session pipeline: prepare (nolib lowering, spin instrumentation), then
/// one deterministic round-robin execution captured as a [`Trace`].
fn record_trace(tool: Tool, module: &spinrace_tir::Module) -> Trace {
    Session::for_module(module)
        .prepare(tool)
        .expect("prepare")
        .execute()
        .expect("vm run")
        .into_trace()
}

fn replay(events: &[Event], sink: &mut impl EventSink) {
    for e in events {
        sink.on_event(e);
    }
}

/// The shared timing loop: run `iter` once as warm-up (page in code and
/// allocator state), then repeat until `min_secs` elapsed; returns
/// events/sec over `events` events per iteration.
fn timed_events_per_sec(events: usize, min_secs: f64, mut iter: impl FnMut()) -> f64 {
    iter();
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        iter();
        iters += 1;
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= min_secs {
            return events as f64 * iters as f64 / elapsed;
        }
    }
}

/// Replay `events` into fresh `mk()` sinks until `min_secs` elapsed;
/// returns events/sec.
fn measure<S: EventSink>(events: &[Event], min_secs: f64, mut mk: impl FnMut() -> S) -> f64 {
    timed_events_per_sec(events.len(), min_secs, || {
        let mut d = mk();
        replay(events, &mut d);
    })
}

/// Events/sec of the sharded parallel engine end to end (seed pre-pass,
/// plan, routing, worker pool, merge) at `workers` workers under the
/// default balanced schedule.
fn measure_parallel(events: &[Event], cfg: DetectorConfig, workers: usize, min_secs: f64) -> f64 {
    measure_parallel_scheduled(events, cfg, workers, Schedule::Balanced, min_secs)
}

/// [`measure_parallel`] under an explicit scheduling mode.
fn measure_parallel_scheduled(
    events: &[Event],
    cfg: DetectorConfig,
    workers: usize,
    schedule: Schedule,
    min_secs: f64,
) -> f64 {
    timed_events_per_sec(events.len(), min_secs, || {
        let merged = parallel::run_sharded_scheduled(cfg, events, workers, schedule);
        std::hint::black_box(&merged);
    })
}

/// Same as [`measure`], but through [`Trace::replay`] — the artifact path
/// the session API's detect fan-out uses.
fn measure_trace<S: EventSink>(trace: &Trace, min_secs: f64, mut mk: impl FnMut() -> S) -> f64 {
    timed_events_per_sec(trace.events.len(), min_secs, || {
        let mut d = mk();
        trace.replay(&mut d);
    })
}

/// The summary block of the JSON document.
struct Summary {
    min_eps: f64,
    replay_min_eps: f64,
    parallel_min_eps: f64,
    workload_min_eps: f64,
    predict_min_eps: f64,
    geomean_speedup: f64,
}

/// The serve latency bench: throughput and tail latency of whole
/// analysis sessions (framed upload → streamed verdicts → done) against
/// an in-process server under [`SERVE_CLIENTS`] concurrent clients.
struct ServeRow {
    clients: usize,
    uploads: usize,
    events_per_upload: usize,
    traces_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Stand up a `spinrace-serve` instance on a loopback port, hammer it
/// with [`SERVE_CLIENTS`] clients uploading the same pre-encoded stream
/// back-to-back for a fixed window, and report traces/sec plus p50/p99
/// end-to-end session latency.
fn measure_serve(quick: bool) -> ServeRow {
    let spec = WorkloadSpec::new(Family::Ring)
        .threads(4)
        .addr_space(256)
        .seed(5)
        .with_total_events(if quick { 20_000 } else { 100_000 });
    let wl = spec.build();
    let tool: Tool = "lib+spin".parse().expect("bench tool label");
    let trace = Session::for_module(&wl.module)
        .vm_config(spec.vm_config())
        .prepare(tool)
        .expect("prepare serve workload")
        .execute()
        .expect("vm run")
        .into_trace();
    let events_per_upload = trace.events.len();
    let bytes = encode_trace(&trace);
    let params = serde_json::Value::Map(vec![(
        serde_json::Value::Str("tools".into()),
        serde_json::Value::Seq(vec![serde_json::Value::Str(tool.label())]),
    )]);

    let handle = spinrace_serve::serve(
        "127.0.0.1:0",
        spinrace_serve::ServeOptions {
            sessions: SERVE_CLIENTS,
            cores: parallel::default_workers(),
            ..Default::default()
        },
    )
    .expect("bind serve bench server");
    let addr = handle.addr().to_string();
    let window = Duration::from_secs_f64(if quick { 1.0 } else { 3.0 });

    let start = Instant::now();
    let deadline = start + window;
    let latencies: Vec<f64> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..SERVE_CLIENTS)
            .map(|_| {
                s.spawn(|| {
                    let mut lats = Vec::new();
                    while Instant::now() < deadline {
                        let t0 = Instant::now();
                        let out = spinrace_serve::run_client(&addr, &params, &bytes)
                            .expect("serve bench client io");
                        assert!(
                            out.succeeded(),
                            "serve bench session failed: {:?}",
                            out.error
                        );
                        lats.push(t0.elapsed().as_secs_f64() * 1e3);
                    }
                    lats
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("serve bench client"))
            .collect()
    });
    let elapsed = start.elapsed().as_secs_f64();
    handle.shutdown();

    let mut sorted = latencies.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |p: f64| sorted[((sorted.len() as f64 * p) as usize).min(sorted.len() - 1)];
    ServeRow {
        clients: SERVE_CLIENTS,
        uploads: latencies.len(),
        events_per_upload,
        traces_per_sec: latencies.len() as f64 / elapsed,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
    }
}

/// `perf serve [--quick]`: only the serve latency bench, with its gates
/// — the CI `serve-smoke` entry point. Nothing is written; the full
/// `perf` run records the same row into `BENCH_detector.json`.
fn serve_only(quick: bool) -> ! {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let row = measure_serve(quick);
    print_serve_row(&row);
    if quick && cores >= SERVE_CLIENTS {
        if row.traces_per_sec < SERVE_FLOOR_TRACES_PER_SEC {
            eprintln!(
                "PERF REGRESSION: serve sustained only {:.1} trace(s)/sec across \
                 {SERVE_CLIENTS} clients on {cores} cores; required ≥ \
                 {SERVE_FLOOR_TRACES_PER_SEC:.0}",
                row.traces_per_sec,
            );
            std::process::exit(1);
        }
        if row.p99_ms > SERVE_P99_CEILING_MS {
            eprintln!(
                "PERF REGRESSION: serve p99 session latency of {:.1} ms across \
                 {SERVE_CLIENTS} clients on {cores} cores is above the \
                 {SERVE_P99_CEILING_MS:.0} ms ceiling",
                row.p99_ms,
            );
            std::process::exit(1);
        }
    } else if quick {
        println!(
            "note: {cores} core(s) < {SERVE_CLIENTS} clients — the serve latency gates are \
             vacuous and were skipped"
        );
    }
    std::process::exit(0);
}

fn print_serve_row(row: &ServeRow) {
    println!(
        "serve: {} upload(s) of {} events across {} concurrent client(s) — {:.1} traces/sec, \
         p50 {:.1} ms, p99 {:.1} ms",
        row.uploads, row.events_per_upload, row.clients, row.traces_per_sec, row.p50_ms, row.p99_ms,
    );
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    quick: bool,
    rows: &[Row],
    workload_rows: &[WorkloadRow],
    summary: Summary,
    cores: usize,
    scaling: &Scaling,
    serve: &ServeRow,
) {
    let results: Vec<serde_json::Value> = rows
        .iter()
        .map(|r| {
            serde_json::json!({
                "program": r.program,
                "tool": r.tool.as_str(),
                "events": r.events as u64,
                "events_per_sec": r.events_per_sec,
                "replay_events_per_sec": r.replay_events_per_sec,
                "parallel_replay_events_per_sec": r.parallel_replay_events_per_sec,
                "ref_events_per_sec": r.ref_events_per_sec,
                "speedup_vs_reference": r.events_per_sec / r.ref_events_per_sec,
                "shadow_bytes": r.shadow_bytes as u64,
                "ref_shadow_bytes": r.ref_shadow_bytes as u64,
                "contexts": r.contexts as u64,
            })
        })
        .collect();
    let curve: Vec<serde_json::Value> = SCALING_WORKERS
        .iter()
        .zip(&scaling.events_per_sec)
        .map(|(&w, &eps)| {
            serde_json::json!({
                "workers": w as u64,
                "events_per_sec": eps,
                "speedup_vs_1_worker": eps / scaling.events_per_sec[0],
                "speedup_vs_sequential": eps / scaling.sequential_events_per_sec,
            })
        })
        .collect();
    let workloads: Vec<serde_json::Value> = workload_rows
        .iter()
        .map(|r| {
            serde_json::json!({
                "spec": r.spec.as_str(),
                "family": r.family.as_str(),
                "oracle": r.oracle.as_str(),
                "events": r.events as u64,
                "replay_events_per_sec": r.replay_events_per_sec,
                "parallel_replay_events_per_sec": r.parallel_replay_events_per_sec,
                "parallel_static_events_per_sec": r.parallel_static_events_per_sec,
                "balanced_over_static": r.parallel_replay_events_per_sec
                    / r.parallel_static_events_per_sec,
                "shard_occupancy": r.shard_occupancy.to_vec(),
                "shadow_bytes": r.shadow_bytes as u64,
                "contexts": r.contexts as u64,
                "predict_events_per_sec": r.predict_events_per_sec,
                "predict_contexts": r.predict_contexts as u64,
                "trace_json_bytes": r.codec.json_bytes as u64,
                "trace_binary_bytes": r.codec.binary_bytes as u64,
                "trace_bytes_per_event": {
                    "json": r.codec.json_bytes as f64 / r.events.max(1) as f64,
                    "binary": r.codec.binary_bytes as f64 / r.events.max(1) as f64,
                },
                "trace_compression_ratio": r.codec.json_bytes as f64
                    / r.codec.binary_bytes.max(1) as f64,
                "trace_encode_events_per_sec": r.codec.encode_events_per_sec,
                "trace_decode_events_per_sec": r.codec.decode_events_per_sec,
                "streaming_chunks": r.codec.streaming_chunks as u64,
                "streaming_peak_resident_bytes": r.codec.streaming_peak_resident_bytes as u64,
            })
        })
        .collect();
    let doc = serde_json::json!({
        "schema": "spinrace-perf-v8",
        "quick": quick,
        "cores": cores as u64,
        "floor_events_per_sec": FLOOR_EVENTS_PER_SEC,
        "workload_floor_events_per_sec": WORKLOAD_FLOOR_EVENTS_PER_SEC,
        "predict_floor_events_per_sec": PREDICT_FLOOR_EVENTS_PER_SEC,
        "decode_floor_events_per_sec": DECODE_FLOOR_EVENTS_PER_SEC,
        "compression_gate_denom": COMPRESSION_GATE_DENOM as u64,
        "parallel_workers": PARALLEL_WORKERS as u64,
        "results": serde_json::Value::Seq(results),
        "workloads": serde_json::Value::Seq(workloads),
        "serve": {
            "clients": serve.clients as u64,
            "uploads": serve.uploads as u64,
            "events_per_upload": serve.events_per_upload as u64,
            "traces_per_sec": serve.traces_per_sec,
            "p50_ms": serve.p50_ms,
            "p99_ms": serve.p99_ms,
            "floor_traces_per_sec": SERVE_FLOOR_TRACES_PER_SEC,
            "p99_ceiling_ms": SERVE_P99_CEILING_MS,
        },
        "parallel_scaling": {
            "program": scaling.program.as_str(),
            "tool": scaling.tool.as_str(),
            "events": scaling.events as u64,
            "sequential_events_per_sec": scaling.sequential_events_per_sec,
            "curve": serde_json::Value::Seq(curve),
        },
        "summary": {
            "min_events_per_sec": summary.min_eps,
            "replay_min_events_per_sec": summary.replay_min_eps,
            "parallel_replay_min_events_per_sec": summary.parallel_min_eps,
            "workload_replay_min_events_per_sec": summary.workload_min_eps,
            "predict_replay_min_events_per_sec": summary.predict_min_eps,
            "geomean_speedup_vs_reference": summary.geomean_speedup,
        },
    });
    let text = serde_json::to_string_pretty(&doc).expect("render json");
    std::fs::write(path, text + "\n").expect("write BENCH_detector.json");
}
