//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p spinrace-bench --bin tables --release -- all
//! cargo run -p spinrace-bench --bin tables --release -- t1 t2
//! ```
//!
//! Prints each experiment and writes its JSON payload to
//! `target/experiments/<id>.json`.

use spinrace_report::{
    f1_memory, f2_runtime, t1_drt, t2_window_sweep, t3_characteristics, t4_no_adhoc, t5_with_adhoc,
    t6_universal, w1_workloads, Experiment,
};
use std::fs;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<String> = if args.is_empty() || args.iter().any(|a| a == "all") {
        ["t1", "t2", "t3", "t4", "t5", "t6", "w1", "f1", "f2"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        args.iter().map(|a| a.to_lowercase()).collect()
    };

    let out_dir = Path::new("target/experiments");
    let _ = fs::create_dir_all(out_dir);

    for id in wanted {
        let exp: Experiment = match id.as_str() {
            "t1" => t1_drt(),
            "t2" => t2_window_sweep(),
            "t3" => t3_characteristics(),
            "t4" => t4_no_adhoc(),
            "t5" => t5_with_adhoc(),
            "t6" => t6_universal(),
            "w1" => w1_workloads(),
            "f1" => f1_memory(),
            "f2" => f2_runtime(),
            other => {
                eprintln!("unknown experiment `{other}` (use t1..t6, w1, f1, f2, all)");
                std::process::exit(2);
            }
        };
        println!("== {} — {} ==", exp.id, exp.title);
        println!("{}", exp.rendered);
        let path = out_dir.join(format!("{}.json", exp.id.to_lowercase()));
        match fs::write(&path, serde_json::to_string_pretty(&exp.json).unwrap()) {
            Ok(()) => println!("[json written to {}]\n", path.display()),
            Err(e) => eprintln!("[could not write {}: {e}]\n", path.display()),
        }
    }
}
