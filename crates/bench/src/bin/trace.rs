//! `trace` — record, replay, and inspect serialized event traces.
//!
//! The trace artifact decouples execution from detection: record a
//! workload once, then replay the stream under any detector configuration
//! (identical results to a live run, without re-interpreting the
//! program).
//!
//! ```text
//! trace record --program <name> [--tool <TOOL>] [--seed N] [--obscure]
//!              [--scale N] [--out FILE] [--format json|binary] [--json FILE]
//! trace gen --family <ring|spinflag|barrier|zipf|fanout|straddle|publish> [--threads N]
//!           [--events TOTAL] [--addr-space N] [--skew K] [--races N]
//!           [--seed N] [--tool <TOOL>] [--out FILE] [--format json|binary]
//!           [--json FILE]
//! trace replay FILE [--tool <TOOL>] [--long-msm] [--cap N]
//!              [--workers N] [--schedule static|balanced] [--json FILE]
//!              [--fault panic:W:N|delay:W:N:MS|drop:W:N] [--watchdog MS]
//!              [--handoff-timeout MS] [--max-events N] [--max-shadow-bytes N]
//! trace convert IN OUT [--format json|binary] [--chunk-events N]
//! trace inspect FILE [--events N]
//! trace stats FILE
//! trace serve [--addr HOST:PORT] [--sessions N] [--cores N] [--max-events N]
//!             [--max-shadow-bytes N] [--watchdog MS] [--read-timeout MS]
//!             [--write-timeout MS] [--stdin]
//! trace client FILE --addr HOST:PORT [--tool <TOOL>] [--workers N]
//!              [--schedule static|balanced] [--long-msm] [--cap N]
//!              [--max-events N] [--max-shadow-bytes N] [--watchdog MS]
//!              [--json FILE]
//! ```
//!
//! Exit codes: `0` success, `1` runtime failure (I/O, engine error,
//! oracle violation), `2` usage or malformed input (bad flags, bad
//! fault spec, undecodable trace file).
//!
//! **Trace formats.** Every file-taking command auto-detects the on-disk
//! encoding by its first bytes: the binary columnar format of
//! `spinrace-tracefmt` (magic `SPINRTRC`) or the JSON debug format.
//! `record` and `gen` write binary by default — `--format json`, or an
//! `--out` path ending in `.json`, selects JSON. `convert` rewrites a
//! trace in the other encoding (or an explicit `--format`). A
//! **sequential** `replay` of a binary trace streams it chunk-by-chunk
//! through the detector (decode one chunk ahead; peak memory O(chunk),
//! detection starts before the file is fully read); parallel replay and
//! JSON input decode the full stream first. The detection outcome is
//! identical in all cases.
//!
//! `replay --fault` injects a deterministic fault into one pool worker
//! (see `spinrace_core::parallel::FaultPlan`); `--watchdog` bounds the
//! whole replay, `--max-events`/`--max-shadow-bytes` set resource
//! budgets (`0` disables each). Any of these turns an engine failure
//! into a one-line structured error and exit code 1 — never a hang or
//! an abort.
//!
//! `gen` records a trace of a *generated* workload
//! (`spinrace-workloads`): a parameterized program with computable
//! ground truth, sized by `--events` (a total-stream target, so
//! `--events 1000000` yields a genuinely long stream for the
//! replay-determinism jobs). The module name encodes the full spec, so
//! `replay` can rebuild generated modules from the trace header alone —
//! and `gen` exits non-zero if the live detection violates the
//! workload's own oracle.
//!
//! `<TOOL>` accepts the table labels (`Helgrind+ lib+spin(7)`) and the
//! short forms `lib`, `lib+spin[(W)]`, `nolib+spin[(W)]`, `drd`,
//! `sync-preserving`. The predictive `sync-preserving` tool is a single
//! sequential pass: `replay` runs it streamed/sequential, and
//! `--workers 2` or more is refused with a structured engine error.
//! `record` tees a trace recorder with the tool's own detector, so the
//! recording run also prints its racy contexts; `replay` re-prepares the
//! named program, checks the module fingerprint, and replays the parsed
//! stream into a fresh detector — on `--workers N` threads through the
//! parallel sharded engine, whose output is bit-identical to sequential
//! replay (and to the live run) for every worker count and either
//! `--schedule` (occupancy-balanced LPT shard packing by default;
//! `static` forces modular ownership).
//!
//! `--json FILE` writes the detection outcome (contexts, promoted
//! locations, described reports, detector metrics, run summary) in a
//! stable schema shared by `record` (live detection) and `replay`: the CI
//! `replay-determinism` job byte-compares these files across worker
//! counts and against the live run.
//!
//! `serve` runs the `spinrace-serve` analysis server (TCP, or one
//! session over stdin/stdout with `--stdin`); `client` uploads a trace
//! file to a running server and prints the streamed verdicts — its
//! `--json` output is byte-identical to `replay --json` of the same
//! file, which the CI `serve-smoke` job checks.

use spinrace_core::{
    AnalysisOutcome, Budget, DetectRequest, EngineOptions, FaultPlan, Schedule, Session, Tool,
};
use spinrace_detector::MsmMode;
use spinrace_detector::{shard_occupancy, NUM_SHARDS};
use spinrace_serve::outcome_json;
use spinrace_suites::{all_programs, prepared_for_replay, rebuild_run, MAX_SCALE};
use spinrace_tracefmt::{ChunkedTraceReader, TraceFormat};
use spinrace_vm::{Event, Trace, TraceHeader};
use spinrace_workloads::{Family, WorkloadSpec};
use std::collections::BTreeMap;
use std::io::BufReader;
use std::process::exit;
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("record") => record(&args[1..]),
        Some("gen") => gen(&args[1..]),
        Some("replay") => replay(&args[1..]),
        Some("convert") => convert(&args[1..]),
        Some("inspect") => inspect(&args[1..]),
        Some("stats") => stats(&args[1..]),
        Some("serve") => serve_cmd(&args[1..]),
        Some("client") => client_cmd(&args[1..]),
        _ => {
            eprintln!(
                "usage: trace <record|gen|replay|convert|inspect|stats|serve|client> ...  \
                 (see --help in source)"
            );
            2
        }
    };
    exit(code);
}

/// `--flag value` lookup.
fn opt(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// `--flag N` numeric lookup with a friendly parse error (no panics on
/// typos), falling back to `default` when the flag is absent.
fn num_opt<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    match opt(args, flag) {
        None => default,
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("error: {flag} expects a number, got {s:?}");
            exit(2);
        }),
    }
}

fn has(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn parse_tool(s: &str) -> Tool {
    match s.parse::<Tool>() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            exit(2);
        }
    }
}

/// Identify a trace file's on-disk encoding from its first bytes,
/// exiting with code 2 (malformed input) on an unreadable file or one in
/// neither encoding — one diagnostic line, no panic.
fn sniff_path(path: &str) -> TraceFormat {
    use std::io::Read as _;
    let mut head = [0u8; 16];
    let n = std::fs::File::open(path)
        .and_then(|mut f| f.read(&mut head))
        .unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            exit(2);
        });
    match spinrace_tracefmt::sniff_format(&head[..n]) {
        Ok(fmt) => fmt,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            exit(2);
        }
    }
}

/// Load a full trace in either encoding, exiting with code 2 on an
/// unreadable or undecodable file.
fn load(path: &str) -> Trace {
    match spinrace_tracefmt::load_trace_file(std::path::Path::new(path)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            exit(2);
        }
    }
}

/// Open a binary trace as a streaming chunk reader (header validated),
/// exiting with code 2 on failure.
fn open_stream(path: &str) -> ChunkedTraceReader<BufReader<std::fs::File>> {
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        exit(2);
    });
    match ChunkedTraceReader::new(BufReader::new(file)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            exit(2);
        }
    }
}

/// The trace encoding `record`/`gen` should write: an explicit
/// `--format`, else inferred from an `--out` path ending in `.json`,
/// else binary.
fn out_format(args: &[String]) -> TraceFormat {
    match opt(args, "--format").as_deref() {
        Some("binary") => TraceFormat::Binary,
        Some("json") => TraceFormat::Json,
        Some(other) => {
            eprintln!("error: --format expects json or binary, got {other:?}");
            exit(2);
        }
        None => match opt(args, "--out") {
            Some(p) if p.ends_with(".json") => TraceFormat::Json,
            _ => TraceFormat::Binary,
        },
    }
}

/// Write `trace` to `path` in `format`, reporting the file size. Returns
/// the exit-code contribution (`1` on I/O failure).
#[must_use]
fn write_trace(path: &str, trace: &Trace, format: TraceFormat) -> i32 {
    if let Err(e) = spinrace_tracefmt::write_trace_file(std::path::Path::new(path), trace, format) {
        eprintln!("error: {e}");
        return 1;
    }
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    println!(
        "wrote {path} ({format}, {bytes} bytes, {:.2} bytes/event)",
        bytes as f64 / (trace.events.len() as f64).max(1.0)
    );
    0
}

/// Write the outcome JSON when `--json FILE` was given. Returns the
/// exit code contribution: `0` on success (or no `--json`), `1` when
/// rendering or writing failed.
#[must_use]
fn maybe_write_json(args: &[String], out: &AnalysisOutcome) -> i32 {
    if let Some(path) = opt(args, "--json") {
        let text = match serde_json::to_string_pretty(&outcome_json(out)) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot render outcome json: {e}");
                return 1;
            }
        };
        if let Err(e) = std::fs::write(&path, text + "\n") {
            eprintln!("error: cannot write {path}: {e}");
            return 1;
        }
        println!("wrote {path}");
    }
    0
}

fn record(args: &[String]) -> i32 {
    let Some(name) = opt(args, "--program") else {
        eprintln!("usage: trace record --program <name> [--tool T] [--seed N] [--obscure] [--scale N] [--out FILE] [--json FILE]");
        return 2;
    };
    let tool = parse_tool(&opt(args, "--tool").unwrap_or_else(|| "lib+spin".into()));
    let scale: u32 = num_opt(args, "--scale", 1);
    if !(1..=MAX_SCALE).contains(&scale) {
        eprintln!("error: --scale must be in 1..={MAX_SCALE} (replay probes that range when rebinding the module)");
        return 2;
    }
    let programs = all_programs();
    let Some(prog) = programs.iter().find(|p| p.name == name) else {
        eprintln!(
            "error: unknown program {name:?}; available: {}",
            programs
                .iter()
                .map(|p| p.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        return 1;
    };
    let module = (prog.build)(prog.threads, prog.size * scale);
    let mut session = Session::for_module(&module);
    if opt(args, "--seed").is_some() {
        session = session.seed(num_opt(args, "--seed", 0));
    }
    if has(args, "--obscure") || prog.obscure_nolib {
        session = session.obscure_nolib();
    }
    let prepared = match session.prepare(tool) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: prepare failed: {e}");
            return 1;
        }
    };
    // One execution, two consumers: the trace recorder and the tool's own
    // detector, teed on the same stream.
    let (run, outcome) = match prepared.execute_detecting() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: execution failed: {e}");
            return 1;
        }
    };
    let format = out_format(args);
    let out_path =
        opt(args, "--out").unwrap_or_else(|| format!("{name}.trace.{}", format.extension()));
    let trace = run.trace();
    println!(
        "recorded {name} under {}: {} events, {} steps, fingerprint {:#018x}",
        trace.header.tool_label,
        trace.events.len(),
        trace.summary.steps,
        trace.header.module_fingerprint,
    );
    println!(
        "live detection on the recording run: {} racy context(s), {} promoted location(s)",
        outcome.contexts, outcome.promoted_locations
    );
    let write_code = write_trace(&out_path, trace, format);
    if write_code != 0 {
        return write_code;
    }
    maybe_write_json(args, &outcome)
}

/// `gen`: record a generated workload with computable ground truth.
fn gen(args: &[String]) -> i32 {
    let Some(family_s) = opt(args, "--family") else {
        eprintln!(
            "usage: trace gen --family <ring|spinflag|barrier|zipf|fanout|straddle|publish> \
             [--threads N] [--events TOTAL] [--addr-space N] [--skew K] [--races N] [--seed N] \
             [--tool T] [--out FILE] [--json FILE]"
        );
        return 2;
    };
    let family: Family = match family_s.parse() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let mut spec = WorkloadSpec::new(family)
        .threads(num_opt(
            args,
            "--threads",
            WorkloadSpec::new(family).threads,
        ))
        .addr_space(num_opt(
            args,
            "--addr-space",
            WorkloadSpec::new(family).addr_space,
        ))
        .skew(num_opt(args, "--skew", WorkloadSpec::new(family).skew))
        .races(num_opt(args, "--races", 0))
        .seed(num_opt(args, "--seed", 1));
    // `--events` is a total-stream target, split across the workers the
    // family actually spawns.
    let total: u64 = num_opt(args, "--events", spec.total_events_hint());
    spec = spec.with_total_events(total);
    let tool = parse_tool(&opt(args, "--tool").unwrap_or_else(|| "lib+spin".into()));

    let wl = spec.build();
    let session = Session::for_module(&wl.module).vm_config(spec.vm_config());
    let prepared = match session.prepare(tool) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: prepare failed: {e}");
            return 1;
        }
    };
    let (run, outcome) = match prepared.execute_detecting() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: execution failed: {e}");
            return 1;
        }
    };
    let format = out_format(args);
    let out_path = opt(args, "--out")
        .unwrap_or_else(|| format!("{}.trace.{}", spec.name(), format.extension()));
    let trace = run.trace();
    println!(
        "generated {} under {}: {} events, {} steps, fingerprint {:#018x}",
        spec.name(),
        trace.header.tool_label,
        trace.events.len(),
        trace.summary.steps,
        trace.header.module_fingerprint,
    );
    println!("oracle: {}", wl.oracle.describe());
    let write_code = write_trace(&out_path, trace, format);
    if write_code != 0 {
        return write_code;
    }
    let json_code = maybe_write_json(args, &outcome);
    if json_code != 0 {
        return json_code;
    }

    // The workload knows its ground truth — hold the recording run's own
    // detection to it.
    let verdict = spinrace_suites::judge_outcome(&wl.oracle, &outcome);
    if verdict.pass() {
        println!(
            "live detection matches the oracle ({} racy context(s))",
            outcome.contexts
        );
        0
    } else {
        eprintln!(
            "ORACLE VIOLATION: live detection under {} disagrees with ground truth: {verdict}",
            outcome.tool_label
        );
        1
    }
}

fn replay(args: &[String]) -> i32 {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!(
            "usage: trace replay FILE [--tool T] [--long-msm] [--cap N] [--workers N] \
             [--schedule static|balanced] [--json FILE] [--fault panic:W:N|delay:W:N:MS|drop:W:N] \
             [--watchdog MS] [--handoff-timeout MS] [--max-events N] [--max-shadow-bytes N]"
        );
        return 2;
    };
    let format = sniff_path(path);
    let msm = if has(args, "--long-msm") {
        MsmMode::Long
    } else {
        MsmMode::Short
    };
    let cap: usize = num_opt(args, "--cap", 1000);
    // `--workers 0` (the default) replays sequentially; any other count
    // goes through the parallel sharded engine — same results either way.
    let workers: usize = num_opt(args, "--workers", 0);
    let schedule: Schedule = match opt(args, "--schedule") {
        None => Schedule::default(),
        Some(s) => match s.parse() {
            Ok(sch) => sch,
            Err(e) => {
                eprintln!("error: {e}");
                return 2;
            }
        },
    };
    let fault: Option<FaultPlan> = match opt(args, "--fault") {
        None => None,
        Some(s) => match s.parse() {
            Ok(f) => Some(f),
            Err(e) => {
                eprintln!("error: {e}");
                return 2;
            }
        },
    };
    // `0` disables each limit (and is each one's default).
    let watchdog_ms: u64 = num_opt(args, "--watchdog", 0);
    let handoff_ms: u64 = num_opt(args, "--handoff-timeout", 10_000);
    let max_events: u64 = num_opt(args, "--max-events", 0);
    let max_shadow: u64 = num_opt(args, "--max-shadow-bytes", 0);
    if fault.is_some() && workers < 2 {
        eprintln!("error: --fault injects into a pool worker; pass --workers 2 or more");
        return 2;
    }
    if (watchdog_ms > 0 || max_events > 0 || max_shadow > 0) && workers == 0 {
        eprintln!(
            "error: --watchdog/--max-events/--max-shadow-bytes take the engine path; \
             pass --workers (1 for a budgeted sequential replay)"
        );
        return 2;
    }
    let opts = EngineOptions {
        schedule,
        handoff_timeout: Duration::from_millis(handoff_ms),
        watchdog: (watchdog_ms > 0).then(|| Duration::from_millis(watchdog_ms)),
        budget: Budget {
            max_events: (max_events > 0).then_some(max_events),
            max_shadow_bytes: (max_shadow > 0).then_some(max_shadow as usize),
        },
        fault,
    };

    // Sequential replay of a binary trace streams it chunk-by-chunk —
    // O(chunk) peak memory, detection overlapped with decoding, same
    // outcome. The parallel engine shards over a full event slice, and
    // JSON has no chunk framing, so both take the full-decode path.
    if format == TraceFormat::Binary && workers == 0 {
        return replay_streamed(args, path, msm, cap);
    }
    let trace = load(path);
    let tool = match opt(args, "--tool") {
        Some(s) => parse_tool(&s),
        None if trace.header.tool_label.is_empty() => {
            eprintln!("error: trace has no recorded tool label; pass --tool");
            return 2;
        }
        None => parse_tool(&trace.header.tool_label),
    };

    // Rebuild a prepared module the trace matches, so reports resolve to
    // source locations and the fingerprint check rejects stale traces.
    // Try the *requested* tool's preparation first: when its fingerprint
    // matches the header the replay is equivalent to a live run of that
    // tool (e.g. lib and drd share the unmodified module). Otherwise fall
    // back to the recording tool's preparation and say plainly that the
    // results describe the recorded stream, not a live run of `tool`.
    match rebuild_run(&trace, tool, msm, cap) {
        Some(run) => {
            let t0 = Instant::now();
            let req = if workers > 0 {
                DetectRequest::tool(tool).parallel(workers).options(opts)
            } else {
                DetectRequest::tool(tool).sequential()
            };
            let out = match run.try_run(&req) {
                Ok(o) => o.into_single(),
                Err(e) => {
                    eprintln!("error: {e}");
                    return 1;
                }
            };
            let secs = t0.elapsed().as_secs_f64();
            let mode = if workers > 0 {
                format!("{workers} worker(s), {schedule}")
            } else {
                "sequential".to_string()
            };
            println!(
                "replayed {} events under {} [{mode}]: {} racy context(s), {} promoted \
                 location(s) ({:.2} M ev/s, detector only)",
                trace.events.len(),
                out.tool_label,
                out.contexts,
                out.promoted_locations,
                trace.events.len() as f64 / secs.max(1e-9) / 1e6,
            );
            for r in out.reports.iter().take(10) {
                println!(
                    "  {:?} race on {} (t{} vs t{})",
                    r.report.kind, r.location, r.report.prior.tid, r.report.current.tid
                );
            }
            if out.reports.len() > 10 {
                println!("  … {} more", out.reports.len() - 10);
            }
            maybe_write_json(args, &out)
        }
        None => {
            eprintln!(
                "note: could not rebuild module {:?} (unknown program or fingerprint drift); \
                 replaying without source locations",
                trace.header.module_name
            );
            if opt(args, "--json").is_some() {
                eprintln!("error: --json needs a rebuildable module (source locations)");
                return 1;
            }
            let cfg = tool.detector_config(msm, cap);
            let t0 = Instant::now();
            let (contexts, promoted, reports) = if workers > 0 {
                let merged = match spinrace_core::parallel::try_run_sharded_opts(
                    cfg,
                    &trace.events,
                    workers,
                    opts,
                ) {
                    Ok(m) => m,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return 1;
                    }
                };
                (
                    merged.reports.contexts(),
                    merged.promoted_locations,
                    merged.reports.reports().to_vec(),
                )
            } else {
                let mut det = spinrace_detector::AnyDetector::new(cfg);
                trace.replay(&mut det);
                (
                    det.racy_contexts(),
                    det.promoted_locations(),
                    det.reports().reports().to_vec(),
                )
            };
            let secs = t0.elapsed().as_secs_f64();
            println!(
                "replayed {} events under {}: {} racy context(s), {} promoted location(s) \
                 ({:.2} M ev/s, detector only)",
                trace.events.len(),
                tool.label(),
                contexts,
                promoted,
                trace.events.len() as f64 / secs.max(1e-9) / 1e6,
            );
            for r in reports.iter().take(10) {
                println!(
                    "  {:?} race at {:#x} (t{} vs t{})",
                    r.kind, r.addr, r.prior.tid, r.current.tid
                );
            }
            0
        }
    }
}

/// Streaming sequential replay of a binary trace: the chunk reader
/// decodes one chunk ahead of the detector, so the stream is never
/// materialized. Outcome (and `--json` bytes) identical to the
/// full-decode path.
fn replay_streamed(args: &[String], path: &str, msm: MsmMode, cap: usize) -> i32 {
    let reader = open_stream(path);
    let header = reader.header().clone();
    let tool = match opt(args, "--tool") {
        Some(s) => parse_tool(&s),
        None if header.tool_label.is_empty() => {
            eprintln!("error: trace has no recorded tool label; pass --tool");
            return 2;
        }
        None => parse_tool(&header.tool_label),
    };
    match prepared_for_replay(&header, tool, msm, cap) {
        Some(prepared) => {
            let t0 = Instant::now();
            let req = DetectRequest::tool(tool).streamed();
            let (out, stats) = match prepared.try_run_streamed(&req, reader) {
                Ok((o, stats)) => (o.into_single(), stats),
                Err(spinrace_core::AnalyzeError::Trace(e)) => {
                    eprintln!("error: {path}: {e}");
                    return 2;
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    return 1;
                }
            };
            let secs = t0.elapsed().as_secs_f64();
            println!(
                "replayed {} events under {} [sequential, streamed {} chunk(s), peak {} KiB \
                 resident]: {} racy context(s), {} promoted location(s) ({:.2} M ev/s, \
                 decode+detector)",
                stats.events,
                out.tool_label,
                stats.chunks,
                stats.peak_resident_bytes / 1024,
                out.contexts,
                out.promoted_locations,
                stats.events as f64 / secs.max(1e-9) / 1e6,
            );
            for r in out.reports.iter().take(10) {
                println!(
                    "  {:?} race on {} (t{} vs t{})",
                    r.report.kind, r.location, r.report.prior.tid, r.report.current.tid
                );
            }
            if out.reports.len() > 10 {
                println!("  … {} more", out.reports.len() - 10);
            }
            maybe_write_json(args, &out)
        }
        None => {
            eprintln!(
                "note: could not rebuild module {:?} (unknown program or fingerprint drift); \
                 replaying without source locations",
                header.module_name
            );
            if opt(args, "--json").is_some() {
                eprintln!("error: --json needs a rebuildable module (source locations)");
                return 1;
            }
            let cfg = tool.detector_config(msm, cap);
            let mut det = spinrace_detector::AnyDetector::new(cfg);
            let t0 = Instant::now();
            let stats = match reader.replay_into(&mut det) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return 2;
                }
            };
            let secs = t0.elapsed().as_secs_f64();
            println!(
                "replayed {} events under {} [streamed {} chunk(s), peak {} KiB resident]: {} \
                 racy context(s), {} promoted location(s) ({:.2} M ev/s, decode+detector)",
                stats.events,
                tool.label(),
                stats.chunks,
                stats.peak_resident_bytes / 1024,
                det.racy_contexts(),
                det.promoted_locations(),
                stats.events as f64 / secs.max(1e-9) / 1e6,
            );
            for r in det.reports().reports().iter().take(10) {
                println!(
                    "  {:?} race at {:#x} (t{} vs t{})",
                    r.kind, r.addr, r.prior.tid, r.current.tid
                );
            }
            0
        }
    }
}

/// `convert`: rewrite a trace in the other on-disk encoding (or an
/// explicit `--format`), reporting both sizes and the ratio.
fn convert(args: &[String]) -> i32 {
    let positional = args.iter().filter(|a| !a.starts_with("--"));
    // `--format binary` / `--chunk-events N` values also appear as
    // non-flag args, so track flag values to skip them.
    let flag_values: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|(i, _)| *i > 0 && ["--format", "--chunk-events"].contains(&args[i - 1].as_str()))
        .map(|(_, a)| a)
        .collect();
    let mut positional = positional.filter(|a| !flag_values.contains(a));
    let (Some(input), Some(output)) = (positional.next(), positional.next()) else {
        eprintln!("usage: trace convert IN OUT [--format json|binary] [--chunk-events N]");
        return 2;
    };
    let in_format = sniff_path(input);
    let trace = load(input);
    let out_fmt = match opt(args, "--format").as_deref() {
        Some("binary") => TraceFormat::Binary,
        Some("json") => TraceFormat::Json,
        Some(other) => {
            eprintln!("error: --format expects json or binary, got {other:?}");
            return 2;
        }
        // Default: the other direction — json→binary, binary→json.
        None => match in_format {
            TraceFormat::Json => TraceFormat::Binary,
            TraceFormat::Binary => TraceFormat::Json,
        },
    };
    let chunk_events: usize = num_opt(
        args,
        "--chunk-events",
        spinrace_tracefmt::DEFAULT_CHUNK_EVENTS,
    );
    if chunk_events == 0 {
        eprintln!("error: --chunk-events must be at least 1");
        return 2;
    }
    let bytes = match out_fmt {
        TraceFormat::Binary => spinrace_tracefmt::encode_trace_chunked(&trace, chunk_events),
        TraceFormat::Json => trace.to_json().into_bytes(),
    };
    if let Err(e) = std::fs::write(output, &bytes) {
        eprintln!("error: cannot write {output}: {e}");
        return 1;
    }
    let in_bytes = std::fs::metadata(input).map(|m| m.len()).unwrap_or(0);
    println!(
        "converted {input} ({in_format}, {in_bytes} bytes) -> {output} ({out_fmt}, {} bytes, \
         {:.2} bytes/event, {:.1}x {})",
        bytes.len(),
        bytes.len() as f64 / (trace.events.len() as f64).max(1.0),
        if bytes.len() as u64 <= in_bytes {
            in_bytes as f64 / (bytes.len() as f64).max(1.0)
        } else {
            bytes.len() as f64 / (in_bytes as f64).max(1.0)
        },
        if bytes.len() as u64 <= in_bytes {
            "smaller"
        } else {
            "larger"
        },
    );
    0
}

fn print_header(h: &TraceHeader, summary: &spinrace_vm::RunSummary) {
    println!("version:     {}", h.version);
    println!("module:      {}", h.module_name);
    println!("fingerprint: {:#018x}", h.module_fingerprint);
    println!(
        "tool:        {}",
        if h.tool_label.is_empty() {
            "-"
        } else {
            &h.tool_label
        }
    );
    println!("scheduler:   {:?}", h.vm.sched);
    println!("events:      {}", h.events);
    println!(
        "summary:     {} steps, {} threads, {} spin enter(s), {} spin exit(s), {} memory words",
        summary.steps,
        summary.threads_created,
        summary.spin_enters,
        summary.spin_exits,
        summary.memory_words,
    );
}

fn inspect(args: &[String]) -> i32 {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: trace inspect FILE [--events N]");
        return 2;
    };
    let n: usize = num_opt(args, "--events", 10);
    let file_bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    match sniff_path(path) {
        TraceFormat::Binary => {
            // Streamed: the header block and the first chunk(s) are all
            // that is read — inspecting a multi-gigabyte trace is cheap.
            let mut reader = open_stream(path);
            println!(
                "format:      binary ({} chunk(s) of ≤{} events, {file_bytes} bytes)",
                reader.chunk_count(),
                reader.chunk_target()
            );
            print_header(reader.header(), reader.summary());
            let total = reader.header().events as usize;
            println!("first {} event(s):", n.min(total));
            let mut shown = 0usize;
            while shown < n {
                match reader.next_chunk() {
                    Ok(Some(chunk)) => {
                        for ev in chunk.iter().take(n - shown) {
                            println!("  {ev:?}");
                        }
                        shown += chunk.len().min(n - shown);
                    }
                    Ok(None) => break,
                    Err(e) => {
                        eprintln!("error: {path}: {e}");
                        return 2;
                    }
                }
            }
        }
        TraceFormat::Json => {
            let trace = load(path);
            println!("format:      json ({file_bytes} bytes)");
            print_header(&trace.header, &trace.summary);
            println!("first {} event(s):", n.min(trace.events.len()));
            for ev in trace.events.iter().take(n) {
                println!("  {ev:?}");
            }
        }
    }
    0
}

/// Streaming accumulator for `stats`: everything the report needs, fed
/// chunk-by-chunk so a binary trace is never materialized.
#[derive(Default)]
struct StatsAcc {
    kinds: BTreeMap<&'static str, u64>,
    per_thread: BTreeMap<u32, u64>,
    plain: u64,
    total: u64,
    addrs: std::collections::BTreeSet<u64>,
    occ: [u64; NUM_SHARDS],
}

impl StatsAcc {
    fn add_chunk(&mut self, events: &[Event]) {
        for ev in events {
            *self.kinds.entry(kind_of(ev)).or_default() += 1;
            *self.per_thread.entry(ev.tid()).or_default() += 1;
            if ev.is_plain_access() {
                self.plain += 1;
            }
            if let Some(addr) = ev.data_addr() {
                self.addrs.insert(addr);
            }
        }
        self.total += events.len() as u64;
        // Shard occupancy is a per-event histogram — additive across
        // chunks.
        let occ = shard_occupancy(events);
        for (acc, c) in self.occ.iter_mut().zip(occ) {
            *acc += c;
        }
    }

    fn print(&self, file_bytes: u64) {
        println!(
            "{} events, {} distinct data addresses",
            self.total,
            self.addrs.len()
        );
        println!(
            "file size: {file_bytes} bytes ({:.2} bytes/event)",
            file_bytes as f64 / (self.total as f64).max(1.0)
        );
        println!(
            "plain (race-checked) accesses: {} ({:.1}%)",
            self.plain,
            100.0 * self.plain as f64 / self.total.max(1) as f64
        );
        println!("by kind:");
        for (k, c) in &self.kinds {
            println!("  {k:<16} {c:>10}");
        }
        println!("by thread:");
        for (t, c) in &self.per_thread {
            println!("  t{t:<15} {c:>10}");
        }
        // Per-shard occupancy: how the parallel engine's shadow-shard
        // partition sees this stream. `max/mean` > 1 quantifies skew —
        // the imbalance the balanced schedule packs around and static
        // ownership cannot.
        let occ_total: u64 = self.occ.iter().sum();
        let occ_max = self.occ.iter().copied().max().unwrap_or(0);
        println!("shard occupancy (plain accesses per shadow shard):");
        for (s, c) in self.occ.iter().enumerate() {
            println!("  shard {s:<9} {c:>10}");
        }
        println!(
            "  skew: hottest shard carries {:.2}x an even 1/{} share",
            occ_max as f64 * NUM_SHARDS as f64 / occ_total.max(1) as f64,
            NUM_SHARDS
        );
    }
}

fn stats(args: &[String]) -> i32 {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: trace stats FILE");
        return 2;
    };
    let file_bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    let mut acc = StatsAcc::default();
    match sniff_path(path) {
        TraceFormat::Binary => {
            let mut reader = open_stream(path);
            loop {
                match reader.next_chunk() {
                    Ok(Some(chunk)) => acc.add_chunk(&chunk),
                    Ok(None) => break,
                    Err(e) => {
                        eprintln!("error: {path}: {e}");
                        return 2;
                    }
                }
            }
        }
        TraceFormat::Json => acc.add_chunk(&load(path).events),
    }
    acc.print(file_bytes);
    0
}

/// `serve`: run the analysis server. TCP by default (`--addr`, default
/// `127.0.0.1:0`; the bound address is printed first so scripts can
/// parse it), or exactly one session over stdin/stdout with `--stdin`.
fn serve_cmd(args: &[String]) -> i32 {
    let zero_is_none = |n: u64| (n > 0).then_some(n);
    let opts = spinrace_serve::ServeOptions {
        sessions: num_opt(args, "--sessions", 4),
        cores: num_opt(args, "--cores", spinrace_core::default_workers()),
        max_events: zero_is_none(num_opt(args, "--max-events", 0)),
        max_shadow_bytes: zero_is_none(num_opt(args, "--max-shadow-bytes", 0)).map(|n| n as usize),
        watchdog_ms: zero_is_none(num_opt(args, "--watchdog", 0)),
        // `0` disables either socket timeout.
        read_timeout_ms: zero_is_none(num_opt(args, "--read-timeout", 60_000)),
        write_timeout_ms: zero_is_none(num_opt(args, "--write-timeout", 60_000)),
    };
    if has(args, "--stdin") {
        return match spinrace_serve::serve_stdin(opts) {
            Ok((outcomes, events)) => {
                eprintln!("session done: {outcomes} outcome(s), {events} event(s)");
                0
            }
            Err(code) => {
                eprintln!("error: session failed ({code})");
                1
            }
        };
    }
    let addr = opt(args, "--addr").unwrap_or_else(|| "127.0.0.1:0".into());
    let handle = match spinrace_serve::serve(&addr, opts) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            return 1;
        }
    };
    println!("listening on {}", handle.addr());
    for event in handle.events() {
        match event {
            spinrace_serve::SessionEvent::Started { peer } => println!("session {peer}: started"),
            spinrace_serve::SessionEvent::Finished {
                peer,
                outcomes,
                events,
            } => println!("session {peer}: done ({outcomes} outcome(s), {events} event(s))"),
            spinrace_serve::SessionEvent::Failed { peer, code } => {
                println!("session {peer}: failed ({code})")
            }
        }
    }
    0
}

/// `client`: upload a trace file to a running server and print the
/// streamed verdicts. `--json FILE` writes the server's outcome
/// document — byte-identical to `replay --json` of the same file.
fn client_cmd(args: &[String]) -> i32 {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!(
            "usage: trace client FILE --addr HOST:PORT [--tool T] [--workers N] \
             [--schedule static|balanced] [--long-msm] [--cap N] [--max-events N] \
             [--max-shadow-bytes N] [--watchdog MS] [--json FILE]"
        );
        return 2;
    };
    let Some(addr) = opt(args, "--addr") else {
        eprintln!("error: --addr HOST:PORT is required");
        return 2;
    };
    // The wire format is the binary chunk encoding; a JSON trace is
    // transparently re-encoded for upload.
    let (bytes, header_tool) = match sniff_path(path) {
        TraceFormat::Binary => {
            let label = open_stream(path).header().tool_label.clone();
            match std::fs::read(path) {
                Ok(b) => (b, label),
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return 2;
                }
            }
        }
        TraceFormat::Json => {
            let trace = load(path);
            let label = trace.header.tool_label.clone();
            (
                spinrace_tracefmt::encode_trace_chunked(
                    &trace,
                    spinrace_tracefmt::DEFAULT_CHUNK_EVENTS,
                ),
                label,
            )
        }
    };
    let tool = match opt(args, "--tool") {
        Some(s) => parse_tool(&s),
        None if header_tool.is_empty() => {
            eprintln!("error: trace has no recorded tool label; pass --tool");
            return 2;
        }
        None => parse_tool(&header_tool),
    };
    let mut entries: Vec<(serde_json::Value, serde_json::Value)> = vec![
        (
            serde_json::Value::Str("tools".into()),
            serde_json::Value::Seq(vec![serde_json::Value::Str(tool.label())]),
        ),
        (
            serde_json::Value::Str("workers".into()),
            serde_json::Value::U64(num_opt(args, "--workers", 0)),
        ),
        (
            serde_json::Value::Str("cap".into()),
            serde_json::Value::U64(num_opt(args, "--cap", 1000)),
        ),
        (
            serde_json::Value::Str("long_msm".into()),
            serde_json::Value::Bool(has(args, "--long-msm")),
        ),
    ];
    if let Some(s) = opt(args, "--schedule") {
        entries.push((
            serde_json::Value::Str("schedule".into()),
            serde_json::Value::Str(s),
        ));
    }
    for (flag, field) in [
        ("--max-events", "max_events"),
        ("--max-shadow-bytes", "max_shadow_bytes"),
        ("--watchdog", "watchdog_ms"),
    ] {
        let n: u64 = num_opt(args, flag, 0);
        if n > 0 {
            entries.push((
                serde_json::Value::Str(field.into()),
                serde_json::Value::U64(n),
            ));
        }
    }
    let params = serde_json::Value::Map(entries);
    let outcome = match spinrace_serve::run_client(&addr, &params, &bytes) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {addr}: {e}");
            return 1;
        }
    };
    if let Some(err) = &outcome.error {
        eprintln!(
            "error: server rejected session: {} ({})",
            err.message, err.code
        );
        if let Some((events, contexts, shadow)) = err.partial {
            eprintln!(
                "partial metrics: {events} event(s) processed, {contexts} racy context(s), \
                 {shadow} shadow byte(s)"
            );
        }
        return 1;
    }
    for (tool_label, payload) in &outcome.outcomes {
        let doc: serde_json::Value = match serde_json::from_str(payload) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: undecodable outcome frame: {}", e.0);
                return 1;
            }
        };
        println!(
            "server replayed under {}: {} racy context(s), {} promoted location(s) \
             ({} verdict frame(s) streamed)",
            tool_label,
            doc["contexts"].as_u64().unwrap_or(0),
            doc["promoted_locations"].as_u64().unwrap_or(0),
            outcome.verdicts,
        );
    }
    if outcome.done.is_none() {
        eprintln!("error: connection closed before the session's done frame");
        return 1;
    }
    if let Some(json_path) = opt(args, "--json") {
        let Some((_, payload)) = outcome.outcomes.first() else {
            eprintln!("error: no outcome frame to write");
            return 1;
        };
        if let Err(e) = std::fs::write(&json_path, payload) {
            eprintln!("error: cannot write {json_path}: {e}");
            return 1;
        }
        println!("wrote {json_path}");
    }
    0
}

fn kind_of(ev: &Event) -> &'static str {
    match ev {
        Event::Spawn { .. } => "Spawn",
        Event::Join { .. } => "Join",
        Event::ThreadEnd { .. } => "ThreadEnd",
        Event::Read { .. } => "Read",
        Event::Write { .. } => "Write",
        Event::Update { .. } => "Update",
        Event::Fence { .. } => "Fence",
        Event::MutexLock { .. } => "MutexLock",
        Event::MutexUnlock { .. } => "MutexUnlock",
        Event::CondSignal { .. } => "CondSignal",
        Event::CondBroadcast { .. } => "CondBroadcast",
        Event::CondWaitReturn { .. } => "CondWaitReturn",
        Event::BarrierEnter { .. } => "BarrierEnter",
        Event::BarrierLeave { .. } => "BarrierLeave",
        Event::SemPost { .. } => "SemPost",
        Event::SemAcquired { .. } => "SemAcquired",
        Event::SpinEnter { .. } => "SpinEnter",
        Event::SpinExit { .. } => "SpinExit",
        Event::Output { .. } => "Output",
    }
}
