//! Per-event cost of the detector configurations on a recorded event
//! stream (isolates detector overhead from interpretation), plus targeted
//! microbenches that pin the two shadow-representation regimes separately:
//!
//! * `detector_paths/epoch-fastpath` — race-free single-owner traffic:
//!   every access takes the O(1) exclusive/same-epoch exits (no clone, no
//!   allocation). A regression here means the fast path grew work.
//! * `detector_paths/promoted-readers` — many mutually concurrent readers
//!   on shared words: every read maintains the promoted `Shared` read
//!   vector (the full-vector regime). A regression here means the
//!   promoted path (retain/push, vector scans) got slower.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spinrace_detector::{DetectorConfig, MsmMode, RaceDetector};
use spinrace_suites::all_programs;
use spinrace_tir::{BlockId, FuncId, Pc};
use spinrace_vm::{run_module, Event, EventSink, RecordingSink, VmConfig};

fn recorded_stream() -> Vec<Event> {
    let p = all_programs()
        .into_iter()
        .find(|p| p.name == "vips")
        .expect("vips");
    let module = (p.build)(p.threads, p.size);
    let mut sink = RecordingSink::default();
    run_module(&module, VmConfig::round_robin(), &mut sink).expect("run");
    sink.events
}

fn pc(n: u32) -> Pc {
    Pc::new(FuncId(0), BlockId(0), n)
}

/// Race-free single-owner traffic: two spawned workers each read/write
/// their own disjoint words. Exercises the exclusive-read overwrite and
/// the write fast path exclusively (zero reports, zero promotions).
fn epoch_fastpath_stream(events: usize) -> Vec<Event> {
    let mut evs = vec![
        Event::Spawn {
            parent: 0,
            child: 1,
            pc: pc(0),
        },
        Event::Spawn {
            parent: 0,
            child: 2,
            pc: pc(0),
        },
    ];
    let mut i = 0u64;
    while evs.len() < events {
        let tid = 1 + (i % 2) as u32;
        let addr = 0x1000 + 0x800 * tid as u64 + (i / 2) % 32;
        if i.is_multiple_of(3) {
            evs.push(Event::Write {
                tid,
                addr,
                value: 1,
                pc: pc(1),
                stack: 0,
                atomic: None,
            });
        } else {
            evs.push(Event::Read {
                tid,
                addr,
                value: 0,
                pc: pc(2),
                stack: 0,
                atomic: None,
                spin: None,
            });
        }
        i += 1;
    }
    evs
}

/// Mutually concurrent readers over a small shared set: after one ordered
/// initialization write, four workers only read. Every read runs the
/// promoted `Shared` read-vector maintenance; no races are reported
/// (write-before-spawn is ordered), so report costs stay out of the loop.
fn promoted_readers_stream(events: usize) -> Vec<Event> {
    let mut evs = Vec::new();
    for addr in 0..8u64 {
        evs.push(Event::Write {
            tid: 0,
            addr: 0x1000 + addr,
            value: 1,
            pc: pc(0),
            stack: 0,
            atomic: None,
        });
    }
    for child in 1..=4u32 {
        evs.push(Event::Spawn {
            parent: 0,
            child,
            pc: pc(0),
        });
    }
    let mut i = 0u64;
    while evs.len() < events {
        let tid = 1 + (i % 4) as u32;
        let addr = 0x1000 + (i / 4) % 8;
        evs.push(Event::Read {
            tid,
            addr,
            value: 1,
            pc: pc(3),
            stack: 0,
            atomic: None,
            spin: None,
        });
        i += 1;
    }
    evs
}

fn replay_contexts(cfg: DetectorConfig, evs: &[Event]) -> usize {
    let mut det = RaceDetector::new(cfg);
    for e in evs {
        det.on_event(e);
    }
    det.racy_contexts()
}

fn detector_stages(c: &mut Criterion) {
    let events = recorded_stream();
    let configs = [
        ("lib", DetectorConfig::helgrind_lib(MsmMode::Long)),
        ("lib+spin", DetectorConfig::helgrind_lib_spin(MsmMode::Long)),
        ("drd", DetectorConfig::drd()),
    ];
    let mut group = c.benchmark_group("detector_stages");
    group.throughput(Throughput::Elements(events.len() as u64));
    for (name, cfg) in configs {
        group.bench_with_input(BenchmarkId::from_parameter(name), &events, |b, evs| {
            b.iter(|| replay_contexts(cfg, evs))
        });
    }
    group.finish();
}

fn detector_paths(c: &mut Criterion) {
    let cfg = DetectorConfig::helgrind_lib(MsmMode::Long);
    let streams = [
        ("epoch-fastpath", epoch_fastpath_stream(40_000)),
        ("promoted-readers", promoted_readers_stream(40_000)),
    ];
    let mut group = c.benchmark_group("detector_paths");
    for (name, evs) in &streams {
        // Both streams are race-free by construction; assert it so the
        // bench can't silently start measuring report paths.
        assert_eq!(replay_contexts(cfg, evs), 0, "{name} must stay race-free");
        group.throughput(Throughput::Elements(evs.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(*name), evs, |b, evs| {
            b.iter(|| replay_contexts(cfg, evs))
        });
    }
    group.finish();
}

criterion_group!(benches, detector_stages, detector_paths);
criterion_main!(benches);
