//! Per-event cost of the detector configurations on a recorded event
//! stream (isolates detector overhead from interpretation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spinrace_detector::{DetectorConfig, MsmMode, RaceDetector};
use spinrace_suites::all_programs;
use spinrace_vm::{run_module, Event, EventSink, RecordingSink, VmConfig};

fn recorded_stream() -> Vec<Event> {
    let p = all_programs()
        .into_iter()
        .find(|p| p.name == "vips")
        .expect("vips");
    let module = (p.build)(p.threads, p.size);
    let mut sink = RecordingSink::default();
    run_module(&module, VmConfig::round_robin(), &mut sink).expect("run");
    sink.events
}

fn detector_stages(c: &mut Criterion) {
    let events = recorded_stream();
    let configs = [
        ("lib", DetectorConfig::helgrind_lib(MsmMode::Long)),
        ("lib+spin", DetectorConfig::helgrind_lib_spin(MsmMode::Long)),
        ("drd", DetectorConfig::drd()),
    ];
    let mut group = c.benchmark_group("detector_stages");
    group.throughput(Throughput::Elements(events.len() as u64));
    for (name, cfg) in configs {
        group.bench_with_input(BenchmarkId::from_parameter(name), &events, |b, evs| {
            b.iter(|| {
                let mut det = RaceDetector::new(cfg);
                for e in evs {
                    det.on_event(e);
                }
                det.racy_contexts()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, detector_stages);
criterion_main!(benches);
