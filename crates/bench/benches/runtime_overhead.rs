//! Figure F2's wall-clock series as a Criterion bench: full pipeline per
//! (program, tool), against the uninstrumented VM baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spinrace_bench::{bench_programs, bench_tools, run_once};
use spinrace_vm::{run_module, NullSink, VmConfig};

fn runtime_overhead(c: &mut Criterion) {
    let programs = bench_programs();
    let mut group = c.benchmark_group("runtime_overhead");
    group.sample_size(10);
    for (name, module) in &programs {
        group.bench_with_input(BenchmarkId::new("native", name), module, |b, m| {
            b.iter(|| run_module(m, VmConfig::round_robin(), &mut NullSink).expect("run"))
        });
        for (tool_name, tool) in bench_tools() {
            group.bench_with_input(BenchmarkId::new(tool_name, name), module, |b, m| {
                b.iter(|| run_once(tool, m))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, runtime_overhead);
criterion_main!(benches);
