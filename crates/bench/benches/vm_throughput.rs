//! Raw interpreter throughput: instructions per second on compute-bound,
//! lock-bound and spin-bound kernels (no detector attached).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spinrace_tir::{Module, ModuleBuilder};
use spinrace_vm::{run_module, NullSink, VmConfig};

/// Straight-line arithmetic kernel (~`n` instructions).
fn compute_kernel(n: i64) -> Module {
    let mut mb = ModuleBuilder::new("compute");
    mb.entry("main", |f| {
        let mut acc = f.const_(1);
        for i in 0..n {
            acc = f.add(acc, i % 7);
            acc = f.mul(acc, 3);
        }
        f.output(acc);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Two threads contending on one mutex.
fn lock_kernel(iters: i64) -> Module {
    let mut mb = ModuleBuilder::new("locks");
    let mu = mb.global("mu", 1);
    let counter = mb.global("counter", 1);
    let worker = mb.function("worker", 1, |f| {
        for _ in 0..iters {
            f.lock(mu.at(0));
            let v = f.load(counter.at(0));
            let v2 = f.add(v, 1);
            f.store(counter.at(0), v2);
            f.unlock(mu.at(0));
        }
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t1 = f.spawn(worker, 0);
        let t2 = f.spawn(worker, 1);
        f.join(t1);
        f.join(t2);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Chained flag handoffs (spin-loop heavy).
fn spin_kernel(chain: i64) -> Module {
    let mut mb = ModuleBuilder::new("spins");
    let flags = mb.global("flags", chain as u64 + 1);
    let relay = mb.function("relay", 1, |f| {
        let id = f.param(0);
        let head = f.new_block();
        let done = f.new_block();
        f.jump(head);
        f.switch_to(head);
        let v = f.load(flags.idx(id));
        f.branch(v, done, head);
        f.switch_to(done);
        let next = f.add(id, 1);
        f.store(flags.idx(next), 1);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let tids: Vec<_> = (0..chain).map(|i| f.spawn(relay, i)).collect();
        f.store(flags.at(0), 1);
        for t in tids {
            f.join(t);
        }
        f.ret(None);
    });
    mb.finish().unwrap()
}

fn vm_throughput(c: &mut Criterion) {
    let kernels = [
        ("compute", compute_kernel(2000)),
        ("locks", lock_kernel(100)),
        ("spins", spin_kernel(8)),
    ];
    let mut group = c.benchmark_group("vm_throughput");
    group.sample_size(20);
    for (name, module) in &kernels {
        // Estimate steps once for throughput units.
        let steps = run_module(module, VmConfig::round_robin(), &mut NullSink)
            .expect("run")
            .steps;
        group.throughput(Throughput::Elements(steps));
        group.bench_with_input(BenchmarkId::from_parameter(name), module, |b, m| {
            b.iter(|| run_module(m, VmConfig::round_robin(), &mut NullSink).expect("run"))
        });
    }
    group.finish();
}

criterion_group!(benches, vm_throughput);
criterion_main!(benches);
