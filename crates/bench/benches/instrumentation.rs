//! Cost of the static instrumentation phase: CFG + dominators + loop
//! detection + spin classification, by window size and module size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spinrace_spinfind::SpinFinder;
use spinrace_suites::all_programs;
use spinrace_synclib::lower_to_spinlib;
use spinrace_tir::Module;

fn modules() -> Vec<(&'static str, Module)> {
    all_programs()
        .into_iter()
        .filter(|p| matches!(p.name, "vips" | "bodytrack" | "x264"))
        .map(|p| (p.name, (p.build)(p.threads, p.size)))
        .collect()
}

fn instrumentation(c: &mut Criterion) {
    let mut group = c.benchmark_group("instrumentation");
    for (name, module) in modules() {
        for window in [3u32, 7] {
            group.bench_with_input(
                BenchmarkId::new(format!("analyze_w{window}"), name),
                &module,
                |b, m| {
                    let finder = SpinFinder::with_window(window);
                    b.iter(|| finder.analyze(m).accepted())
                },
            );
        }
        // Lowering + re-analysis: the nolib preparation path.
        group.bench_with_input(BenchmarkId::new("lower_nolib", name), &module, |b, m| {
            b.iter(|| {
                let low = lower_to_spinlib(m).expect("lower");
                SpinFinder::default().analyze(&low).accepted()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, instrumentation);
criterion_main!(benches);
