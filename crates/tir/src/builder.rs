//! Ergonomic construction of TIR modules.
//!
//! [`ModuleBuilder`] owns globals/functions/strings; [`FunctionBuilder`] is
//! a little assembler with one *current block* that instructions are
//! appended to. Forward references to blocks and functions are supported
//! (declare with [`ModuleBuilder::declare_function`] /
//! [`FunctionBuilder::new_block`], fill in later); [`ModuleBuilder::finish`]
//! validates the result.

use crate::ids::{BlockId, FuncId, GlobalId, Reg, StrId};
use crate::instr::{AddrExpr, Atomicity, BinOp, Instr, MemOrder, Operand, RmwOp, Terminator, UnOp};
use crate::module::{BasicBlock, Function, GlobalDecl, Module};
use crate::validate::{validate, ValidationError};
use std::collections::HashMap;

/// Handle to a declared global; produces [`AddrExpr`]s addressing it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GlobalRef {
    /// The underlying id.
    pub id: GlobalId,
}

impl GlobalRef {
    /// `&global + disp` (static address).
    pub fn at(self, disp: i64) -> AddrExpr {
        AddrExpr::Global {
            global: self.id,
            disp,
        }
    }
    /// `&global + index` (word-indexed array access).
    pub fn idx(self, index: Reg) -> AddrExpr {
        AddrExpr::GlobalIndexed {
            global: self.id,
            index,
            scale: 1,
            disp: 0,
        }
    }
    /// `&global + index * scale + disp`.
    pub fn idx_scaled(self, index: Reg, scale: i64, disp: i64) -> AddrExpr {
        AddrExpr::GlobalIndexed {
            global: self.id,
            index,
            scale,
            disp,
        }
    }
}

#[derive(Default)]
struct BlockInProgress {
    instrs: Vec<Instr>,
    term: Option<Terminator>,
}

/// Builds one [`Function`]; obtained through
/// [`ModuleBuilder::function`] / [`ModuleBuilder::define_function`].
pub struct FunctionBuilder {
    name: String,
    params: u16,
    next_reg: u16,
    blocks: Vec<BlockInProgress>,
    cur: usize,
    /// Strings interned locally; remapped into the module table on define.
    strings: Vec<String>,
}

impl FunctionBuilder {
    /// Build a function outside a [`ModuleBuilder`] — used by lowering
    /// passes that synthesize functions into an existing module. The
    /// caller is responsible for string-table remapping if `assert_` is
    /// used (see [`FunctionBuilder::finish_standalone`]).
    pub fn standalone(name: &str, params: u16) -> Self {
        Self::new(name, params)
    }

    /// Finalize a standalone function, returning it together with any
    /// locally interned diagnostic strings (indices are function-local and
    /// must be remapped by the caller).
    pub fn finish_standalone(self) -> Result<(Function, Vec<String>), String> {
        self.finish()
    }

    fn new(name: &str, params: u16) -> Self {
        FunctionBuilder {
            name: name.to_string(),
            params,
            next_reg: params,
            blocks: vec![BlockInProgress::default()],
            cur: 0,
            strings: Vec::new(),
        }
    }

    /// The `i`-th parameter register.
    pub fn param(&self, i: u16) -> Reg {
        assert!(i < self.params, "{}: param {} out of range", self.name, i);
        Reg(i)
    }

    /// Allocate a fresh register.
    pub fn reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg = self
            .next_reg
            .checked_add(1)
            .expect("register space exhausted");
        r
    }

    /// Create a new (empty, unterminated) block and return its id.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(BlockInProgress::default());
        BlockId((self.blocks.len() - 1) as u32)
    }

    /// Make `b` the current block; subsequent instructions append to it.
    pub fn switch_to(&mut self, b: BlockId) {
        assert!(
            (b.0 as usize) < self.blocks.len(),
            "{}: switch_to unknown block {b:?}",
            self.name
        );
        self.cur = b.0 as usize;
    }

    /// The current block id.
    pub fn current(&self) -> BlockId {
        BlockId(self.cur as u32)
    }

    fn push(&mut self, i: Instr) {
        let name = &self.name;
        let cur = self.cur;
        let blk = &mut self.blocks[cur];
        assert!(
            blk.term.is_none(),
            "{name}: appending to terminated block b{cur}"
        );
        blk.instrs.push(i);
    }

    fn terminate(&mut self, t: Terminator) {
        let name = &self.name;
        let cur = self.cur;
        let blk = &mut self.blocks[cur];
        assert!(blk.term.is_none(), "{name}: block b{cur} terminated twice");
        blk.term = Some(t);
    }

    // ---- value computation ----

    /// `dst = value` into a fresh register.
    pub fn const_(&mut self, value: i64) -> Reg {
        let dst = self.reg();
        self.push(Instr::Const { dst, value });
        dst
    }

    /// Copy `src` into `dst`.
    pub fn mov(&mut self, dst: Reg, src: Reg) {
        self.push(Instr::Mov { dst, src });
    }

    /// Generic binary operation into a fresh register.
    pub fn bin(&mut self, op: BinOp, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.push(Instr::Bin {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// Binary operation writing an existing register.
    pub fn bin_into(&mut self, dst: Reg, op: BinOp, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.push(Instr::Bin {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        });
    }

    /// `a + b`.
    pub fn add(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Add, a, b)
    }
    /// `a - b`.
    pub fn sub(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Sub, a, b)
    }
    /// `a * b`.
    pub fn mul(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Mul, a, b)
    }
    /// `a == b` (0/1).
    pub fn eq(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Eq, a, b)
    }
    /// `a != b` (0/1).
    pub fn ne(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Ne, a, b)
    }
    /// `a < b` (0/1).
    pub fn lt(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Lt, a, b)
    }
    /// `a >= b` (0/1).
    pub fn ge(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Ge, a, b)
    }
    /// Logical not.
    pub fn not(&mut self, a: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.push(Instr::Un {
            op: UnOp::Not,
            dst,
            a: a.into(),
        });
        dst
    }

    /// Materialize `&global + disp` into a register.
    pub fn addr_of(&mut self, global: GlobalRef, disp: i64) -> Reg {
        let dst = self.reg();
        self.push(Instr::AddrOf {
            dst,
            global: global.id,
            disp,
        });
        dst
    }

    // ---- memory ----

    /// Plain load.
    pub fn load(&mut self, addr: AddrExpr) -> Reg {
        let dst = self.reg();
        self.push(Instr::Load {
            dst,
            addr,
            atomic: Atomicity::Plain,
        });
        dst
    }

    /// Plain load into an existing register.
    pub fn load_into(&mut self, dst: Reg, addr: AddrExpr) {
        self.push(Instr::Load {
            dst,
            addr,
            atomic: Atomicity::Plain,
        });
    }

    /// Atomic load with the given ordering.
    pub fn load_atomic(&mut self, addr: AddrExpr, order: MemOrder) -> Reg {
        let dst = self.reg();
        self.push(Instr::Load {
            dst,
            addr,
            atomic: Atomicity::Atomic(order),
        });
        dst
    }

    /// Plain store.
    pub fn store(&mut self, addr: AddrExpr, src: impl Into<Operand>) {
        self.push(Instr::Store {
            src: src.into(),
            addr,
            atomic: Atomicity::Plain,
        });
    }

    /// Atomic store with the given ordering.
    pub fn store_atomic(&mut self, addr: AddrExpr, src: impl Into<Operand>, order: MemOrder) {
        self.push(Instr::Store {
            src: src.into(),
            addr,
            atomic: Atomicity::Atomic(order),
        });
    }

    /// Compare-and-swap; returns the register receiving the old value.
    pub fn cas(
        &mut self,
        addr: AddrExpr,
        expected: impl Into<Operand>,
        new: impl Into<Operand>,
        order: MemOrder,
    ) -> Reg {
        let dst = self.reg();
        self.push(Instr::Cas {
            dst,
            addr,
            expected: expected.into(),
            new: new.into(),
            order,
        });
        dst
    }

    /// Atomic read-modify-write; returns the register receiving the old value.
    pub fn rmw(
        &mut self,
        op: RmwOp,
        addr: AddrExpr,
        src: impl Into<Operand>,
        order: MemOrder,
    ) -> Reg {
        let dst = self.reg();
        self.push(Instr::Rmw {
            op,
            dst,
            addr,
            src: src.into(),
            order,
        });
        dst
    }

    /// Memory fence.
    pub fn fence(&mut self, order: MemOrder) {
        self.push(Instr::Fence { order });
    }

    /// Heap allocation; returns the register holding the base address.
    pub fn alloc(&mut self, words: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.push(Instr::Alloc {
            dst,
            words: words.into(),
        });
        dst
    }

    // ---- library synchronization ----

    /// `pthread_mutex_lock`-style blocking acquire.
    pub fn lock(&mut self, addr: AddrExpr) {
        self.push(Instr::MutexLock { addr });
    }
    /// Mutex release.
    pub fn unlock(&mut self, addr: AddrExpr) {
        self.push(Instr::MutexUnlock { addr });
    }
    /// Signal one condition-variable waiter.
    pub fn signal(&mut self, cv: AddrExpr) {
        self.push(Instr::CondSignal { cv });
    }
    /// Wake all condition-variable waiters.
    pub fn broadcast(&mut self, cv: AddrExpr) {
        self.push(Instr::CondBroadcast { cv });
    }
    /// Condition wait (releases `mutex`, sleeps, re-acquires).
    pub fn wait(&mut self, cv: AddrExpr, mutex: AddrExpr) {
        self.push(Instr::CondWait { cv, mutex });
    }
    /// Initialize a barrier for `count` parties.
    pub fn barrier_init(&mut self, addr: AddrExpr, count: impl Into<Operand>) {
        self.push(Instr::BarrierInit {
            addr,
            count: count.into(),
        });
    }
    /// Barrier wait.
    pub fn barrier_wait(&mut self, addr: AddrExpr) {
        self.push(Instr::BarrierWait { addr });
    }
    /// Initialize a counting semaphore.
    pub fn sem_init(&mut self, addr: AddrExpr, value: impl Into<Operand>) {
        self.push(Instr::SemInit {
            addr,
            value: value.into(),
        });
    }
    /// Semaphore P.
    pub fn sem_wait(&mut self, addr: AddrExpr) {
        self.push(Instr::SemWait { addr });
    }
    /// Semaphore V.
    pub fn sem_post(&mut self, addr: AddrExpr) {
        self.push(Instr::SemPost { addr });
    }

    // ---- threads & calls ----

    /// Spawn `func(arg)`; returns the register holding the new thread id.
    pub fn spawn(&mut self, func: FuncId, arg: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.push(Instr::Spawn {
            dst,
            func,
            arg: arg.into(),
        });
        dst
    }

    /// Join the thread whose id is in `tid`.
    pub fn join(&mut self, tid: impl Into<Operand>) {
        self.push(Instr::Join { tid: tid.into() });
    }

    /// Call with a result.
    pub fn call(&mut self, func: FuncId, args: &[Operand]) -> Reg {
        let dst = self.reg();
        self.push(Instr::Call {
            dst: Some(dst),
            func,
            args: args.to_vec(),
        });
        dst
    }

    /// Call discarding any result.
    pub fn call_void(&mut self, func: FuncId, args: &[Operand]) {
        self.push(Instr::Call {
            dst: None,
            func,
            args: args.to_vec(),
        });
    }

    // ---- misc ----

    /// Scheduling hint.
    pub fn yield_(&mut self) {
        self.push(Instr::Yield);
    }
    /// No-op (handy for padding blocks in CFG tests).
    pub fn nop(&mut self) {
        self.push(Instr::Nop);
    }
    /// Append `src` to the program's output log.
    pub fn output(&mut self, src: impl Into<Operand>) {
        self.push(Instr::Output { src: src.into() });
    }
    /// Trap if `cond == 0`, reporting `msg`.
    pub fn assert_(&mut self, cond: impl Into<Operand>, msg: &str) {
        let sid = StrId(self.strings.len() as u32);
        self.strings.push(msg.to_string());
        self.push(Instr::Assert {
            cond: cond.into(),
            msg: sid,
        });
    }

    // ---- terminators ----

    /// End the current block with an unconditional jump.
    pub fn jump(&mut self, to: BlockId) {
        self.terminate(Terminator::Jump(to));
    }

    /// End the current block with a two-way branch on `cond != 0`.
    pub fn branch(&mut self, cond: impl Into<Operand>, if_true: BlockId, if_false: BlockId) {
        self.terminate(Terminator::Branch {
            cond: cond.into(),
            if_true,
            if_false,
        });
    }

    /// End the current block with a return.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.terminate(Terminator::Ret(value));
    }

    /// End the current block terminating the whole program.
    pub fn exit(&mut self) {
        self.terminate(Terminator::Exit);
    }

    fn finish(self) -> Result<(Function, Vec<String>), String> {
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for (i, b) in self.blocks.into_iter().enumerate() {
            let term = b
                .term
                .ok_or_else(|| format!("function `{}`: block b{} not terminated", self.name, i))?;
            blocks.push(BasicBlock {
                instrs: b.instrs,
                term,
            });
        }
        Ok((
            Function {
                name: self.name,
                params: self.params,
                num_regs: self.next_reg,
                blocks,
            },
            self.strings,
        ))
    }
}

/// Builds a [`Module`].
pub struct ModuleBuilder {
    name: String,
    functions: Vec<Option<Function>>,
    fn_params: Vec<u16>,
    fn_names: HashMap<String, FuncId>,
    globals: Vec<GlobalDecl>,
    strings: Vec<String>,
    entry: Option<FuncId>,
}

impl ModuleBuilder {
    /// Start a new module.
    pub fn new(name: impl Into<String>) -> Self {
        ModuleBuilder {
            name: name.into(),
            functions: Vec::new(),
            fn_params: Vec::new(),
            fn_names: HashMap::new(),
            globals: Vec::new(),
            strings: Vec::new(),
            entry: None,
        }
    }

    /// Declare a zero-initialized global of `words` cells.
    pub fn global(&mut self, name: &str, words: u64) -> GlobalRef {
        self.global_init(name, words, vec![])
    }

    /// Declare a global with an explicit initializer (zero-extended).
    pub fn global_init(&mut self, name: &str, words: u64, init: Vec<i64>) -> GlobalRef {
        assert!(
            init.len() as u64 <= words,
            "global `{name}`: initializer longer than declared size"
        );
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(GlobalDecl {
            name: name.to_string(),
            words,
            init,
        });
        GlobalRef { id }
    }

    /// Forward-declare a function so it can be spawned/called before its
    /// body is defined.
    pub fn declare_function(&mut self, name: &str, params: u16) -> FuncId {
        assert!(
            !self.fn_names.contains_key(name),
            "function `{name}` declared twice"
        );
        let id = FuncId(self.functions.len() as u32);
        self.functions.push(None);
        self.fn_params.push(params);
        self.fn_names.insert(name.to_string(), id);
        id
    }

    /// Provide the body for a previously declared function.
    pub fn define_function(&mut self, id: FuncId, build: impl FnOnce(&mut FunctionBuilder)) {
        let idx = id.0 as usize;
        assert!(
            self.functions[idx].is_none(),
            "function {id:?} defined twice"
        );
        let name = self
            .fn_names
            .iter()
            .find(|(_, v)| **v == id)
            .map(|(k, _)| k.clone())
            .expect("defining undeclared function");
        let mut fb = FunctionBuilder::new(&name, self.fn_params[idx]);
        build(&mut fb);
        let (mut func, local_strings) = fb.finish().unwrap_or_else(|e| panic!("{e}"));
        // Remap locally interned strings into the module table.
        let base = self.strings.len() as u32;
        self.strings.extend(local_strings);
        for block in &mut func.blocks {
            for instr in &mut block.instrs {
                if let Instr::Assert { msg, .. } = instr {
                    *msg = StrId(msg.0 + base);
                }
            }
        }
        self.functions[idx] = Some(func);
    }

    /// Declare and define a function in one step.
    pub fn function(
        &mut self,
        name: &str,
        params: u16,
        build: impl FnOnce(&mut FunctionBuilder),
    ) -> FuncId {
        let id = self.declare_function(name, params);
        self.define_function(id, build);
        id
    }

    /// Declare and define the entry function (the main thread's body).
    pub fn entry(&mut self, name: &str, build: impl FnOnce(&mut FunctionBuilder)) -> FuncId {
        let id = self.function(name, 0, build);
        self.set_entry(id);
        id
    }

    /// Mark an existing function as the entry point.
    pub fn set_entry(&mut self, id: FuncId) {
        assert!(self.entry.is_none(), "entry set twice");
        self.entry = Some(id);
    }

    /// Intern a diagnostic string.
    pub fn intern(&mut self, s: &str) -> StrId {
        let id = StrId(self.strings.len() as u32);
        self.strings.push(s.to_string());
        id
    }

    /// Finalize, validate, and return the module.
    pub fn finish(self) -> Result<Module, ValidationError> {
        let m = self.finish_unchecked();
        validate(&m)?;
        Ok(m)
    }

    /// Finalize without validation (for negative tests).
    pub fn finish_unchecked(self) -> Module {
        let functions: Vec<Function> = self
            .functions
            .into_iter()
            .enumerate()
            .map(|(i, f)| f.unwrap_or_else(|| panic!("function f{i} declared but never defined")))
            .collect();
        Module {
            name: self.name,
            entry: self.entry.expect("no entry function set"),
            functions,
            globals: self.globals,
            strings: self.strings,
            spin: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_straightline_main() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global("g", 1);
        mb.entry("main", |f| {
            let v = f.const_(41);
            let w = f.add(v, 1);
            f.store(g.at(0), w);
            f.output(w);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        assert_eq!(m.functions.len(), 1);
        assert_eq!(m.function(m.entry).blocks.len(), 1);
        assert_eq!(m.function(m.entry).num_regs, 2);
    }

    #[test]
    fn forward_declared_spawn_target() {
        let mut mb = ModuleBuilder::new("t");
        let worker = mb.declare_function("worker", 1);
        mb.entry("main", |f| {
            let t = f.spawn(worker, 7);
            f.join(t);
            f.ret(None);
        });
        mb.define_function(worker, |f| {
            f.output(f.param(0));
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        assert_eq!(m.functions.len(), 2);
    }

    #[test]
    fn loop_with_blocks() {
        let mut mb = ModuleBuilder::new("t");
        let flag = mb.global("flag", 1);
        mb.entry("main", |f| {
            let head = f.new_block();
            let exit = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let v = f.load(flag.at(0));
            f.branch(v, exit, head);
            f.switch_to(exit);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        assert_eq!(m.function(m.entry).blocks.len(), 3);
    }

    #[test]
    #[should_panic(expected = "terminated twice")]
    fn double_terminate_panics() {
        let mut mb = ModuleBuilder::new("t");
        mb.entry("main", |f| {
            f.ret(None);
            f.ret(None);
        });
    }

    #[test]
    #[should_panic(expected = "not terminated")]
    fn unterminated_block_is_rejected() {
        let mut mb = ModuleBuilder::new("t");
        mb.entry("main", |f| {
            f.nop();
            // no terminator
            let _ = f;
        });
    }

    #[test]
    fn assert_strings_are_remapped() {
        let mut mb = ModuleBuilder::new("t");
        let _ = mb.intern("pre-existing");
        mb.entry("main", |f| {
            let c = f.const_(1);
            f.assert_(c, "must hold");
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let Instr::Assert { msg, .. } = &m.function(m.entry).blocks[0].instrs[1] else {
            panic!("expected assert");
        };
        assert_eq!(m.string(*msg), "must hold");
    }
}
