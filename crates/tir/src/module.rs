//! Module-level containers: functions, blocks, globals, and the spin-loop
//! side table produced by the instrumentation phase.

use crate::ids::{BlockId, FuncId, GlobalId, Pc, SpinLoopId, StrId};
use crate::instr::{Instr, Terminator};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A global variable: a contiguous array of `words` 64-bit cells.
///
/// The VM lays globals out back-to-back starting at address
/// [`Module::GLOBAL_BASE`]; [`Module::global_base`] gives each global's
/// first address.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalDecl {
    /// Human-readable name (diagnostics only).
    pub name: String,
    /// Number of 64-bit words occupied.
    pub words: u64,
    /// Optional initializer (shorter initializers are zero-extended).
    pub init: Vec<i64>,
}

/// A straight-line instruction sequence ending in one terminator.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// Instructions in execution order.
    pub instrs: Vec<Instr>,
    /// The unique terminator.
    pub term: Terminator,
}

impl BasicBlock {
    /// Number of instructions, terminator excluded.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }
    /// True when the block holds no instructions (just a terminator).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

/// A function: parameters arrive in registers `r0..r{params}`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    /// Human-readable name.
    pub name: String,
    /// Number of parameters (bound to the first registers on entry).
    pub params: u16,
    /// Total virtual registers used (computed by the builder/validator).
    pub num_regs: u16,
    /// Basic blocks; `BlockId(0)` is the entry block.
    pub blocks: Vec<BasicBlock>,
}

impl Function {
    /// The entry block id (always block 0).
    pub const ENTRY: BlockId = BlockId(0);

    /// Access a block by id.
    pub fn block(&self, b: BlockId) -> &BasicBlock {
        &self.blocks[b.0 as usize]
    }

    /// Iterate `(BlockId, &BasicBlock)` pairs in index order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Total instruction count including terminators.
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len() + 1).sum()
    }
}

/// Metadata for one detected spinning read loop.
///
/// Produced by the instrumentation phase (`spinrace-spinfind`) according to
/// the paper's criteria: a small natural loop whose exit condition is fed
/// by at least one memory load and is not modified inside the loop.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpinLoopInfo {
    /// Dense id of the loop within the module.
    pub id: SpinLoopId,
    /// Function containing the loop.
    pub func: FuncId,
    /// Loop header block (target of the back edge).
    pub header: BlockId,
    /// All blocks belonging to the natural loop, sorted.
    pub blocks: Vec<BlockId>,
    /// Static locations of the loads feeding the exit conditions
    /// (the "condition variables" the detector must treat specially).
    /// May include loads in pure callees invoked by the condition.
    pub cond_loads: Vec<Pc>,
    /// Effective size in basic blocks, including blocks of pure callees
    /// used by the condition — the quantity compared against the paper's
    /// 3–7 basic-block window.
    pub weight: u32,
}

/// Side table attached to a module by the instrumentation phase.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpinTable {
    /// All detected spinning read loops.
    pub loops: Vec<SpinLoopInfo>,
    /// Map from the `Pc` of a tagged load to its owning loop.
    pub tagged_loads: HashMap<Pc, SpinLoopId>,
    /// The basic-block window used for detection (paper: 3–8, default 7).
    pub window: u32,
}

impl SpinTable {
    /// Look up the spin loop a given load instruction belongs to.
    pub fn loop_of_load(&self, pc: Pc) -> Option<SpinLoopId> {
        self.tagged_loads.get(&pc).copied()
    }
    /// Number of detected loops.
    pub fn len(&self) -> usize {
        self.loops.len()
    }
    /// True when no loops were detected.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }
}

/// A complete program.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Module {
    /// Program name (diagnostics).
    pub name: String,
    /// All functions; `entry` is started as the main thread.
    pub functions: Vec<Function>,
    /// The main function.
    pub entry: FuncId,
    /// Global variables.
    pub globals: Vec<GlobalDecl>,
    /// Diagnostic strings referenced by `Assert`.
    pub strings: Vec<String>,
    /// Spin-loop instrumentation results, if the module has been through
    /// the instrumentation phase.
    pub spin: Option<SpinTable>,
}

impl Module {
    /// First address used for globals (addresses below are never valid, so
    /// stray null-ish pointers fault loudly).
    pub const GLOBAL_BASE: u64 = 0x1000;

    /// Access a function by id.
    pub fn function(&self, f: FuncId) -> &Function {
        &self.functions[f.0 as usize]
    }

    /// Look up a function by name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Base address of a global in the VM's flat address space.
    pub fn global_base(&self, g: GlobalId) -> u64 {
        let mut base = Self::GLOBAL_BASE;
        for decl in &self.globals[..g.0 as usize] {
            base += decl.words;
        }
        base
    }

    /// Total words of global memory.
    pub fn globals_words(&self) -> u64 {
        self.globals.iter().map(|g| g.words).sum()
    }

    /// First address past all globals (heap starts here).
    pub fn heap_base(&self) -> u64 {
        Self::GLOBAL_BASE + self.globals_words()
    }

    /// Find the global (and word offset within it) containing `addr`.
    pub fn global_at(&self, addr: u64) -> Option<(GlobalId, u64)> {
        if addr < Self::GLOBAL_BASE {
            return None;
        }
        let mut base = Self::GLOBAL_BASE;
        for (i, decl) in self.globals.iter().enumerate() {
            if addr < base + decl.words {
                return Some((GlobalId(i as u32), addr - base));
            }
            base += decl.words;
        }
        None
    }

    /// Human-readable description of an address (for reports).
    pub fn describe_addr(&self, addr: u64) -> String {
        match self.global_at(addr) {
            Some((g, off)) => {
                let name = &self.globals[g.0 as usize].name;
                if off == 0 && self.globals[g.0 as usize].words == 1 {
                    name.clone()
                } else {
                    format!("{name}[{off}]")
                }
            }
            None if addr >= self.heap_base() => format!("heap+{:#x}", addr - self.heap_base()),
            None => format!("{addr:#x}"),
        }
    }

    /// Fetch the instruction at `pc`, or `None` if `pc` names a terminator.
    pub fn instr_at(&self, pc: Pc) -> Option<&Instr> {
        self.function(pc.func)
            .block(pc.block)
            .instrs
            .get(pc.idx as usize)
    }

    /// Resolve a diagnostic string.
    pub fn string(&self, s: StrId) -> &str {
        self.strings
            .get(s.0 as usize)
            .map(|s| s.as_str())
            .unwrap_or("<bad-string>")
    }

    /// Total static instruction count (terminators included).
    pub fn instr_count(&self) -> usize {
        self.functions.iter().map(|f| f.instr_count()).sum()
    }

    /// Stable structural fingerprint of the module, including any spin
    /// instrumentation (spin-loop headers and tagged condition loads are
    /// part of the rendered text). Two prepared modules with the same
    /// fingerprint execute identically under the same VM configuration,
    /// which is what lets recorded traces be shared across tools whose
    /// preparation phases produced the same program.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the canonical textual rendering. The spin table's
        // detection window is deliberately *not* folded in: the VM never
        // consults it (only the accepted loops and tagged loads, which the
        // rendering includes), so identical loop sets found at different
        // windows are the same program — and may share one trace.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in self.to_string().as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Terminator;

    fn tiny_module() -> Module {
        Module {
            name: "t".into(),
            functions: vec![Function {
                name: "main".into(),
                params: 0,
                num_regs: 0,
                blocks: vec![BasicBlock {
                    instrs: vec![],
                    term: Terminator::Ret(None),
                }],
            }],
            entry: FuncId(0),
            globals: vec![
                GlobalDecl {
                    name: "a".into(),
                    words: 2,
                    init: vec![],
                },
                GlobalDecl {
                    name: "b".into(),
                    words: 3,
                    init: vec![1, 2, 3],
                },
            ],
            strings: vec![],
            spin: None,
        }
    }

    #[test]
    fn global_layout_is_contiguous() {
        let m = tiny_module();
        assert_eq!(m.global_base(GlobalId(0)), Module::GLOBAL_BASE);
        assert_eq!(m.global_base(GlobalId(1)), Module::GLOBAL_BASE + 2);
        assert_eq!(m.heap_base(), Module::GLOBAL_BASE + 5);
    }

    #[test]
    fn global_at_inverts_layout() {
        let m = tiny_module();
        assert_eq!(m.global_at(Module::GLOBAL_BASE + 1), Some((GlobalId(0), 1)));
        assert_eq!(m.global_at(Module::GLOBAL_BASE + 4), Some((GlobalId(1), 2)));
        assert_eq!(m.global_at(Module::GLOBAL_BASE + 5), None);
        assert_eq!(m.global_at(0), None);
    }

    #[test]
    fn describe_addr_names_globals() {
        let m = tiny_module();
        assert_eq!(m.describe_addr(Module::GLOBAL_BASE), "a[0]");
        assert_eq!(m.describe_addr(Module::GLOBAL_BASE + 3), "b[1]");
        assert!(m.describe_addr(m.heap_base() + 7).starts_with("heap+"));
    }

    #[test]
    fn serde_round_trip() {
        let m = tiny_module();
        let json = serde_json::to_string(&m).unwrap();
        let back: Module = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
