//! Compact identifier newtypes used throughout the IR.
//!
//! All identifiers are small integer newtypes so they can be used as dense
//! indices; keeping them distinct types prevents a whole class of
//! index-confusion bugs in the analysis code.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A virtual register inside one function. Registers hold `i64` values.
///
/// Function parameters occupy `r0..r{params}` on entry; the builder
/// allocates further registers on demand.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Reg(pub u16);

/// Index of a [`crate::Function`] within its [`crate::Module`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FuncId(pub u32);

/// Index of a [`crate::BasicBlock`] within its function. Block 0 is entry.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub u32);

/// Index of a global variable declaration within the module.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GlobalId(pub u32);

/// Index into the module string table (diagnostic messages).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StrId(pub u32);

/// Identifier of a detected spinning read loop (dense, per module).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SpinLoopId(pub u32);

/// A *program counter*: the static location of one instruction.
///
/// `idx == block.instrs.len()` denotes the block terminator, so every
/// control-transfer point also has an addressable location. `Pc` is the
/// currency of race reports ("racy contexts" are deduplicated pairs of
/// `Pc`s) and of the spin-instrumentation side tables.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Pc {
    /// Function containing the instruction.
    pub func: FuncId,
    /// Block within the function.
    pub block: BlockId,
    /// Instruction index within the block (`len` = terminator).
    pub idx: u32,
}

impl Pc {
    /// Construct a `Pc` from raw parts.
    pub fn new(func: FuncId, block: BlockId, idx: u32) -> Self {
        Pc { func, block, idx }
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}
impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}
impl fmt::Debug for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}
impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}
impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}
impl fmt::Debug for GlobalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}
impl fmt::Debug for StrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}
impl fmt::Debug for SpinLoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spin{}", self.0)
    }
}
impl fmt::Debug for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}:{:?}:{}", self.func, self.block, self.idx)
    }
}
impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_ordering_is_lexicographic() {
        let a = Pc::new(FuncId(0), BlockId(1), 2);
        let b = Pc::new(FuncId(0), BlockId(2), 0);
        let c = Pc::new(FuncId(1), BlockId(0), 0);
        assert!(a < b && b < c);
    }

    #[test]
    fn ids_format_compactly() {
        assert_eq!(format!("{:?}", Reg(3)), "r3");
        assert_eq!(
            format!("{:?}", Pc::new(FuncId(1), BlockId(2), 3)),
            "f1:b2:3"
        );
    }

    #[test]
    fn ids_are_copy_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Pc::new(FuncId(0), BlockId(0), 0));
        s.insert(Pc::new(FuncId(0), BlockId(0), 0));
        assert_eq!(s.len(), 1);
    }
}
