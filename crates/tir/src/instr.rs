//! Instruction set of the threaded IR.
//!
//! The instruction set is deliberately close to what a binary-level race
//! detector sees: plain and atomic loads/stores, compare-and-swap,
//! read-modify-write, fences, and — separately — *library* synchronization
//! operations (mutex/condvar/barrier/semaphore) whose semantics are only
//! visible to a detector configured with library knowledge. The
//! `spinrace-synclib` crate lowers the library operations to pure
//! memory-instruction implementations built around spinning read loops,
//! which is how the paper's `nolib` ("universal detector") configuration is
//! produced.

use crate::ids::{FuncId, GlobalId, Reg, StrId};
use crate::BlockId;
use serde::{Deserialize, Serialize};

/// Either a register or an immediate 64-bit constant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// Read the value of a virtual register.
    Reg(Reg),
    /// A constant.
    Imm(i64),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}
impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

impl Operand {
    /// The register this operand reads, if any.
    pub fn reg(&self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(*r),
            Operand::Imm(_) => None,
        }
    }
}

/// Binary ALU / comparison operations. Comparisons yield 0 or 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Signed division; division by zero traps the executing thread.
    Div,
    /// Signed remainder; division by zero traps the executing thread.
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Minimum of two signed values.
    Min,
    /// Maximum of two signed values.
    Max,
}

/// Unary operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Logical negation: 0 -> 1, non-zero -> 0.
    Not,
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement.
    BitNot,
}

/// Atomic read-modify-write operations (return the *old* value).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RmwOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    /// Unconditional exchange.
    Xchg,
    Min,
    Max,
}

/// Memory ordering annotation for atomic operations.
///
/// The VM executes everything sequentially consistently (it interleaves
/// whole instructions), so orderings do not change *program* results; they
/// exist so detectors can model what a binary-level tool would infer from
/// the instruction stream. The DRD-style baseline, for example, derives
/// happens-before edges from `Acquire`/`Release`/`SeqCst` atomics, while
/// the Helgrind+-style hybrid ignores them — exactly the asymmetry visible
/// in the paper's PARSEC table (`dedup` vs `x264`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemOrder {
    Relaxed,
    Acquire,
    Release,
    AcqRel,
    SeqCst,
}

impl MemOrder {
    /// Whether a load with this ordering has acquire semantics.
    pub fn acquires(self) -> bool {
        matches!(
            self,
            MemOrder::Acquire | MemOrder::AcqRel | MemOrder::SeqCst
        )
    }
    /// Whether a store with this ordering has release semantics.
    pub fn releases(self) -> bool {
        matches!(
            self,
            MemOrder::Release | MemOrder::AcqRel | MemOrder::SeqCst
        )
    }
}

/// Whether a memory access is a plain access or an atomic one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Atomicity {
    /// Ordinary, non-atomic access — the bread and butter of race detection.
    Plain,
    /// Atomic access with the given ordering.
    Atomic(MemOrder),
}

impl Atomicity {
    /// True if this is an atomic access.
    pub fn is_atomic(&self) -> bool {
        matches!(self, Atomicity::Atomic(_))
    }
}

/// An address expression: how instructions name memory.
///
/// Addresses are *word* granular (one address = one `i64` cell). Globals
/// are laid out contiguously by the VM; `Reg`-based addressing supports
/// heap objects and pointer-passing between threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AddrExpr {
    /// `&global + disp`
    Global { global: GlobalId, disp: i64 },
    /// `&global + index * scale + disp`
    GlobalIndexed {
        global: GlobalId,
        index: Reg,
        scale: i64,
        disp: i64,
    },
    /// `*(base) + disp` where `base` holds an address.
    Based { base: Reg, disp: i64 },
    /// `*(base) + index * scale + disp`.
    BasedIndexed {
        base: Reg,
        index: Reg,
        scale: i64,
        disp: i64,
    },
}

impl AddrExpr {
    /// Registers read when evaluating this address.
    pub fn regs(&self, out: &mut Vec<Reg>) {
        match self {
            AddrExpr::Global { .. } => {}
            AddrExpr::GlobalIndexed { index, .. } => out.push(*index),
            AddrExpr::Based { base, .. } => out.push(*base),
            AddrExpr::BasedIndexed { base, index, .. } => {
                out.push(*base);
                out.push(*index);
            }
        }
    }

    /// The global this address statically refers to, if known.
    pub fn global(&self) -> Option<GlobalId> {
        match self {
            AddrExpr::Global { global, .. } | AddrExpr::GlobalIndexed { global, .. } => {
                Some(*global)
            }
            _ => None,
        }
    }

    /// True when the address is fully static (global + constant disp).
    pub fn is_static(&self) -> bool {
        matches!(self, AddrExpr::Global { .. })
    }
}

/// One non-terminator instruction.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instr {
    /// `dst = value`
    Const { dst: Reg, value: i64 },
    /// `dst = src`
    Mov { dst: Reg, src: Reg },
    /// `dst = a <op> b`
    Bin {
        op: BinOp,
        dst: Reg,
        a: Operand,
        b: Operand,
    },
    /// `dst = <op> a`
    Un { op: UnOp, dst: Reg, a: Operand },
    /// `dst = address-of(global) + disp` — materialize a pointer.
    AddrOf {
        dst: Reg,
        global: GlobalId,
        disp: i64,
    },
    /// `dst = mem[addr]`
    Load {
        dst: Reg,
        addr: AddrExpr,
        atomic: Atomicity,
    },
    /// `mem[addr] = src`
    Store {
        src: Operand,
        addr: AddrExpr,
        atomic: Atomicity,
    },
    /// Atomic compare-and-swap. `dst` receives the *old* value; the swap
    /// succeeded iff `dst == expected`.
    Cas {
        dst: Reg,
        addr: AddrExpr,
        expected: Operand,
        new: Operand,
        order: MemOrder,
    },
    /// Atomic read-modify-write; `dst` receives the old value.
    Rmw {
        op: RmwOp,
        dst: Reg,
        addr: AddrExpr,
        src: Operand,
        order: MemOrder,
    },
    /// Memory fence.
    Fence { order: MemOrder },
    /// Allocate `words` fresh heap words; `dst` receives the base address.
    Alloc { dst: Reg, words: Operand },

    // ---- library synchronization (visible only to lib-aware detectors) ----
    /// Acquire the mutex whose state lives at `addr` (blocking).
    MutexLock { addr: AddrExpr },
    /// Release the mutex at `addr`.
    MutexUnlock { addr: AddrExpr },
    /// Signal one waiter of the condition variable at `cv`.
    CondSignal { cv: AddrExpr },
    /// Wake all waiters of the condition variable at `cv`.
    CondBroadcast { cv: AddrExpr },
    /// Atomically release `mutex`, wait on `cv`, re-acquire `mutex`.
    CondWait { cv: AddrExpr, mutex: AddrExpr },
    /// Initialize the barrier at `addr` for `count` parties.
    BarrierInit { addr: AddrExpr, count: Operand },
    /// Wait at the barrier at `addr`.
    BarrierWait { addr: AddrExpr },
    /// Initialize the counting semaphore at `addr` with `value`.
    SemInit { addr: AddrExpr, value: Operand },
    /// P operation (blocking decrement).
    SemWait { addr: AddrExpr },
    /// V operation (increment, wakes a waiter).
    SemPost { addr: AddrExpr },

    // ---- threads & calls ----
    /// Start a new thread running `func(arg)`; `dst` receives its id.
    Spawn {
        dst: Reg,
        func: FuncId,
        arg: Operand,
    },
    /// Block until the thread whose id is in `tid` terminates.
    Join { tid: Operand },
    /// Direct call; `args` are bound to the callee's parameter registers.
    Call {
        dst: Option<Reg>,
        func: FuncId,
        args: Vec<Operand>,
    },

    // ---- misc ----
    /// Scheduling hint (a no-op with a preemption point).
    Yield,
    /// No operation.
    Nop,
    /// Record `src` in the VM output log (used to verify program results).
    Output { src: Operand },
    /// Trap the thread if `cond` evaluates to 0.
    Assert { cond: Operand, msg: StrId },
}

impl Instr {
    /// The register defined (written) by this instruction, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Instr::Const { dst, .. }
            | Instr::Mov { dst, .. }
            | Instr::Bin { dst, .. }
            | Instr::Un { dst, .. }
            | Instr::AddrOf { dst, .. }
            | Instr::Load { dst, .. }
            | Instr::Cas { dst, .. }
            | Instr::Rmw { dst, .. }
            | Instr::Alloc { dst, .. }
            | Instr::Spawn { dst, .. } => Some(*dst),
            Instr::Call { dst, .. } => *dst,
            _ => None,
        }
    }

    /// Append all registers read by this instruction to `out`.
    pub fn uses(&self, out: &mut Vec<Reg>) {
        fn op(o: &Operand, out: &mut Vec<Reg>) {
            if let Operand::Reg(r) = o {
                out.push(*r)
            }
        }
        match self {
            Instr::Const { .. }
            | Instr::AddrOf { .. }
            | Instr::Fence { .. }
            | Instr::Yield
            | Instr::Nop => {}
            Instr::Mov { src, .. } => out.push(*src),
            Instr::Bin { a, b, .. } => {
                op(a, out);
                op(b, out);
            }
            Instr::Un { a, .. } => op(a, out),
            Instr::Load { addr, .. } => addr.regs(out),
            Instr::Store { src, addr, .. } => {
                op(src, out);
                addr.regs(out);
            }
            Instr::Cas {
                addr,
                expected,
                new,
                ..
            } => {
                addr.regs(out);
                op(expected, out);
                op(new, out);
            }
            Instr::Rmw { addr, src, .. } => {
                addr.regs(out);
                op(src, out);
            }
            Instr::Alloc { words, .. } => op(words, out),
            Instr::MutexLock { addr }
            | Instr::MutexUnlock { addr }
            | Instr::BarrierWait { addr }
            | Instr::SemWait { addr }
            | Instr::SemPost { addr } => addr.regs(out),
            Instr::BarrierInit { addr, count } => {
                addr.regs(out);
                op(count, out);
            }
            Instr::SemInit { addr, value } => {
                addr.regs(out);
                op(value, out);
            }
            Instr::CondSignal { cv } | Instr::CondBroadcast { cv } => cv.regs(out),
            Instr::CondWait { cv, mutex } => {
                cv.regs(out);
                mutex.regs(out);
            }
            Instr::Spawn { arg, .. } => op(arg, out),
            Instr::Join { tid } => op(tid, out),
            Instr::Call { args, .. } => {
                for a in args {
                    op(a, out)
                }
            }
            Instr::Output { src } => op(src, out),
            Instr::Assert { cond, .. } => op(cond, out),
        }
    }

    /// The address expression this instruction *loads* from, if any
    /// (plain/atomic loads; `Cas`/`Rmw` both read and write).
    pub fn load_addr(&self) -> Option<&AddrExpr> {
        match self {
            Instr::Load { addr, .. } | Instr::Cas { addr, .. } | Instr::Rmw { addr, .. } => {
                Some(addr)
            }
            _ => None,
        }
    }

    /// The address expression this instruction *stores* to, if any.
    pub fn store_addr(&self) -> Option<&AddrExpr> {
        match self {
            Instr::Store { addr, .. } | Instr::Cas { addr, .. } | Instr::Rmw { addr, .. } => {
                Some(addr)
            }
            _ => None,
        }
    }

    /// True for library synchronization operations.
    pub fn is_lib_sync(&self) -> bool {
        matches!(
            self,
            Instr::MutexLock { .. }
                | Instr::MutexUnlock { .. }
                | Instr::CondSignal { .. }
                | Instr::CondBroadcast { .. }
                | Instr::CondWait { .. }
                | Instr::BarrierInit { .. }
                | Instr::BarrierWait { .. }
                | Instr::SemInit { .. }
                | Instr::SemWait { .. }
                | Instr::SemPost { .. }
        )
    }

    /// True if the instruction is a pure value computation: no memory
    /// traffic, no synchronization, no observable effect. Pure instructions
    /// may appear freely inside a spinning read loop's condition slice.
    pub fn is_pure(&self) -> bool {
        matches!(
            self,
            Instr::Const { .. }
                | Instr::Mov { .. }
                | Instr::Bin { .. }
                | Instr::Un { .. }
                | Instr::AddrOf { .. }
                | Instr::Nop
        )
    }

    /// True if the instruction has an effect other than defining `dst`
    /// (stores, RMWs, sync ops, thread ops, I/O, allocation).
    ///
    /// `Load` is *not* side-effecting by this definition; the spin-loop
    /// "do-nothing body" criterion treats condition loads specially.
    pub fn has_side_effect(&self) -> bool {
        match self {
            Instr::Store { .. }
            | Instr::Cas { .. }
            | Instr::Rmw { .. }
            | Instr::Alloc { .. }
            | Instr::Spawn { .. }
            | Instr::Join { .. }
            | Instr::Call { .. }
            | Instr::Output { .. }
            | Instr::Assert { .. } => true,
            i if i.is_lib_sync() => true,
            _ => false,
        }
    }

    /// Callee of a direct call, if this is one.
    pub fn callee(&self) -> Option<FuncId> {
        match self {
            Instr::Call { func, .. } => Some(*func),
            _ => None,
        }
    }
}

/// Block terminator: every basic block ends in exactly one of these.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on `cond != 0`.
    Branch {
        cond: Operand,
        if_true: BlockId,
        if_false: BlockId,
    },
    /// Return from the current function (thread exit if at the root frame).
    Ret(Option<Operand>),
    /// Terminate the whole program immediately.
    Exit,
}

impl Terminator {
    /// Successor blocks within the same function.
    pub fn successors(&self) -> impl Iterator<Item = BlockId> + '_ {
        let (a, b) = match self {
            Terminator::Jump(t) => (Some(*t), None),
            Terminator::Branch {
                if_true, if_false, ..
            } => (Some(*if_true), Some(*if_false)),
            Terminator::Ret(_) | Terminator::Exit => (None, None),
        };
        a.into_iter().chain(b)
    }

    /// Registers read by the terminator.
    pub fn uses(&self, out: &mut Vec<Reg>) {
        match self {
            Terminator::Branch {
                cond: Operand::Reg(r),
                ..
            } => out.push(*r),
            Terminator::Ret(Some(Operand::Reg(r))) => out.push(*r),
            _ => {}
        }
    }

    /// The branch condition operand, if this is a conditional branch.
    pub fn branch_cond(&self) -> Option<Operand> {
        match self {
            Terminator::Branch { cond, .. } => Some(*cond),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u16) -> Reg {
        Reg(n)
    }

    #[test]
    fn def_and_uses_cover_loads() {
        let i = Instr::Load {
            dst: r(3),
            addr: AddrExpr::GlobalIndexed {
                global: GlobalId(0),
                index: r(1),
                scale: 1,
                disp: 0,
            },
            atomic: Atomicity::Plain,
        };
        assert_eq!(i.def(), Some(r(3)));
        let mut u = vec![];
        i.uses(&mut u);
        assert_eq!(u, vec![r(1)]);
        assert!(i.load_addr().is_some());
        assert!(i.store_addr().is_none());
    }

    #[test]
    fn cas_reads_and_writes_memory() {
        let i = Instr::Cas {
            dst: r(0),
            addr: AddrExpr::Global {
                global: GlobalId(2),
                disp: 1,
            },
            expected: Operand::Imm(0),
            new: Operand::Reg(r(5)),
            order: MemOrder::AcqRel,
        };
        assert!(i.load_addr().is_some());
        assert!(i.store_addr().is_some());
        assert!(i.has_side_effect());
        let mut u = vec![];
        i.uses(&mut u);
        assert_eq!(u, vec![r(5)]);
    }

    #[test]
    fn sync_ops_are_flagged() {
        let m = AddrExpr::Global {
            global: GlobalId(0),
            disp: 0,
        };
        assert!(Instr::MutexLock { addr: m }.is_lib_sync());
        assert!(Instr::MutexLock { addr: m }.has_side_effect());
        assert!(!Instr::Yield.is_lib_sync());
        assert!(!Instr::Yield.has_side_effect());
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::Branch {
            cond: Operand::Reg(r(0)),
            if_true: BlockId(1),
            if_false: BlockId(2),
        };
        let succ: Vec<_> = t.successors().collect();
        assert_eq!(succ, vec![BlockId(1), BlockId(2)]);
        assert_eq!(Terminator::Exit.successors().count(), 0);
    }

    #[test]
    fn orderings_classify() {
        assert!(MemOrder::Acquire.acquires());
        assert!(!MemOrder::Acquire.releases());
        assert!(MemOrder::SeqCst.acquires() && MemOrder::SeqCst.releases());
        assert!(!MemOrder::Relaxed.acquires() && !MemOrder::Relaxed.releases());
    }

    #[test]
    fn purity_classification() {
        assert!(Instr::Const {
            dst: r(0),
            value: 1
        }
        .is_pure());
        assert!(!Instr::Load {
            dst: r(0),
            addr: AddrExpr::Global {
                global: GlobalId(0),
                disp: 0
            },
            atomic: Atomicity::Plain
        }
        .is_pure());
        assert!(!Instr::Output {
            src: Operand::Imm(1)
        }
        .is_pure());
    }
}
