//! Structural validation of modules.
//!
//! Catches malformed IR early: dangling block/function/global/string
//! references, out-of-range registers, arity mismatches, and recursion
//! (direct or mutual) — recursion is rejected because the interprocedural
//! spin-loop analysis and the VM's frame accounting both assume a
//! call-graph DAG, which is also what compiled spin-wait code looks like.

use crate::ids::{BlockId, FuncId, Pc, Reg};
use crate::instr::Instr;
use crate::module::Module;
use std::fmt;

/// A structural defect in a module.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// `entry` points past the function table.
    BadEntry,
    /// Entry function must take no parameters.
    EntryHasParams,
    /// A terminator targets a block that does not exist.
    BadBlockTarget {
        func: FuncId,
        from: BlockId,
        to: BlockId,
    },
    /// A register index is `>= num_regs`.
    BadRegister {
        func: FuncId,
        block: BlockId,
        reg: Reg,
    },
    /// A call/spawn names a function that does not exist.
    BadFunctionRef { func: FuncId, target: u32 },
    /// Call argument count differs from callee parameter count.
    ArityMismatch {
        func: FuncId,
        callee: FuncId,
        expected: u16,
        got: usize,
    },
    /// Spawned functions must take exactly one parameter.
    SpawnArity { func: FuncId, target: FuncId },
    /// A memory operand names a global that does not exist.
    BadGlobalRef { func: FuncId, global: u32 },
    /// An `Assert` names a missing diagnostic string.
    BadStringRef { func: FuncId },
    /// The call graph contains a cycle through this function.
    Recursion { func: FuncId },
    /// Spin-table metadata references a location that is not a load.
    BadSpinTag { pc: Pc },
    /// Spin-table loop references a block outside its function.
    BadSpinLoop { func: FuncId, block: BlockId },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::BadEntry => write!(f, "entry function out of range"),
            ValidationError::EntryHasParams => write!(f, "entry function must take 0 parameters"),
            ValidationError::BadBlockTarget { func, from, to } => {
                write!(f, "{func:?}: {from:?} targets nonexistent {to:?}")
            }
            ValidationError::BadRegister { func, block, reg } => {
                write!(f, "{func:?}:{block:?}: register {reg:?} out of range")
            }
            ValidationError::BadFunctionRef { func, target } => {
                write!(f, "{func:?}: reference to nonexistent function f{target}")
            }
            ValidationError::ArityMismatch {
                func,
                callee,
                expected,
                got,
            } => write!(
                f,
                "{func:?}: call to {callee:?} passes {got} args, expected {expected}"
            ),
            ValidationError::SpawnArity { func, target } => {
                write!(f, "{func:?}: spawn target {target:?} must take 1 parameter")
            }
            ValidationError::BadGlobalRef { func, global } => {
                write!(f, "{func:?}: reference to nonexistent global g{global}")
            }
            ValidationError::BadStringRef { func } => {
                write!(f, "{func:?}: assert references missing string")
            }
            ValidationError::Recursion { func } => {
                write!(
                    f,
                    "call graph cycle through {func:?} (recursion unsupported)"
                )
            }
            ValidationError::BadSpinTag { pc } => {
                write!(f, "spin table tags non-load instruction at {pc:?}")
            }
            ValidationError::BadSpinLoop { func, block } => {
                write!(f, "spin loop references bad block {func:?}:{block:?}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validate a module; `Ok(())` means the VM and analyses can rely on all
/// indices being in range and the call graph being acyclic.
pub fn validate(m: &Module) -> Result<(), ValidationError> {
    if m.entry.0 as usize >= m.functions.len() {
        return Err(ValidationError::BadEntry);
    }
    if m.function(m.entry).params != 0 {
        return Err(ValidationError::EntryHasParams);
    }

    let nfuncs = m.functions.len() as u32;
    let nglobals = m.globals.len() as u32;
    let nstrings = m.strings.len() as u32;

    for (fi, func) in m.functions.iter().enumerate() {
        let fid = FuncId(fi as u32);
        for (bi, block) in func.iter_blocks() {
            // Register bounds: defs, uses, terminator uses.
            let mut regs: Vec<Reg> = Vec::new();
            for instr in &block.instrs {
                regs.clear();
                instr.uses(&mut regs);
                if let Some(d) = instr.def() {
                    regs.push(d);
                }
                for r in &regs {
                    if r.0 >= func.num_regs {
                        return Err(ValidationError::BadRegister {
                            func: fid,
                            block: bi,
                            reg: *r,
                        });
                    }
                }
                check_instr_refs(m, fid, instr, nfuncs, nglobals, nstrings)?;
            }
            regs.clear();
            block.term.uses(&mut regs);
            for r in &regs {
                if r.0 >= func.num_regs {
                    return Err(ValidationError::BadRegister {
                        func: fid,
                        block: bi,
                        reg: *r,
                    });
                }
            }
            for succ in block.term.successors() {
                if succ.0 as usize >= func.blocks.len() {
                    return Err(ValidationError::BadBlockTarget {
                        func: fid,
                        from: bi,
                        to: succ,
                    });
                }
            }
        }
    }

    check_acyclic(m)?;
    check_spin_table(m)?;
    Ok(())
}

fn check_instr_refs(
    m: &Module,
    fid: FuncId,
    instr: &Instr,
    nfuncs: u32,
    nglobals: u32,
    nstrings: u32,
) -> Result<(), ValidationError> {
    // Global references inside address expressions.
    for addr in [instr.load_addr(), instr.store_addr()].iter().flatten() {
        if let Some(g) = addr.global() {
            if g.0 >= nglobals {
                return Err(ValidationError::BadGlobalRef {
                    func: fid,
                    global: g.0,
                });
            }
        }
    }
    match instr {
        Instr::AddrOf { global, .. } if global.0 >= nglobals => {
            return Err(ValidationError::BadGlobalRef {
                func: fid,
                global: global.0,
            });
        }
        Instr::MutexLock { addr }
        | Instr::MutexUnlock { addr }
        | Instr::BarrierInit { addr, .. }
        | Instr::BarrierWait { addr }
        | Instr::SemInit { addr, .. }
        | Instr::SemWait { addr }
        | Instr::SemPost { addr } => {
            if let Some(g) = addr.global() {
                if g.0 >= nglobals {
                    return Err(ValidationError::BadGlobalRef {
                        func: fid,
                        global: g.0,
                    });
                }
            }
        }
        Instr::CondSignal { cv } | Instr::CondBroadcast { cv } => {
            if let Some(g) = cv.global() {
                if g.0 >= nglobals {
                    return Err(ValidationError::BadGlobalRef {
                        func: fid,
                        global: g.0,
                    });
                }
            }
        }
        Instr::CondWait { cv, mutex } => {
            for a in [cv, mutex] {
                if let Some(g) = a.global() {
                    if g.0 >= nglobals {
                        return Err(ValidationError::BadGlobalRef {
                            func: fid,
                            global: g.0,
                        });
                    }
                }
            }
        }
        Instr::Spawn { func, .. } => {
            if func.0 >= nfuncs {
                return Err(ValidationError::BadFunctionRef {
                    func: fid,
                    target: func.0,
                });
            }
            if m.function(*func).params != 1 {
                return Err(ValidationError::SpawnArity {
                    func: fid,
                    target: *func,
                });
            }
        }
        Instr::Call { func, args, .. } => {
            if func.0 >= nfuncs {
                return Err(ValidationError::BadFunctionRef {
                    func: fid,
                    target: func.0,
                });
            }
            let expected = m.function(*func).params;
            if args.len() != expected as usize {
                return Err(ValidationError::ArityMismatch {
                    func: fid,
                    callee: *func,
                    expected,
                    got: args.len(),
                });
            }
        }
        Instr::Assert { msg, .. } if msg.0 >= nstrings => {
            return Err(ValidationError::BadStringRef { func: fid });
        }
        _ => {}
    }
    Ok(())
}

/// DFS over the (direct-call) call graph; spawn edges are excluded because
/// they create a new frame stack rather than growing the current one, but a
/// spawn cycle would still mean unbounded thread creation — we accept that
/// as a runtime (step-quota) concern, not a structural one.
fn check_acyclic(m: &Module) -> Result<(), ValidationError> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks = vec![Mark::White; m.functions.len()];
    // Iterative DFS with an explicit stack to avoid deep recursion.
    for start in 0..m.functions.len() {
        if marks[start] != Mark::White {
            continue;
        }
        let mut stack: Vec<(usize, Vec<FuncId>, usize)> = vec![(start, callees(m, start), 0)];
        marks[start] = Mark::Grey;
        while let Some((node, succs, mut i)) = stack.pop() {
            let mut descended = false;
            while i < succs.len() {
                let s = succs[i].0 as usize;
                i += 1;
                match marks[s] {
                    Mark::Grey => {
                        return Err(ValidationError::Recursion {
                            func: FuncId(s as u32),
                        })
                    }
                    Mark::White => {
                        marks[s] = Mark::Grey;
                        stack.push((node, succs, i));
                        stack.push((s, callees(m, s), 0));
                        descended = true;
                        break;
                    }
                    Mark::Black => {}
                }
            }
            if !descended && i >= callees_len(m, node) {
                marks[node] = Mark::Black;
            }
        }
    }
    Ok(())
}

fn callees(m: &Module, f: usize) -> Vec<FuncId> {
    let mut out = Vec::new();
    for block in &m.functions[f].blocks {
        for instr in &block.instrs {
            if let Some(c) = instr.callee() {
                out.push(c);
            }
        }
    }
    out
}

fn callees_len(m: &Module, f: usize) -> usize {
    callees(m, f).len()
}

fn check_spin_table(m: &Module) -> Result<(), ValidationError> {
    let Some(spin) = &m.spin else { return Ok(()) };
    for info in &spin.loops {
        let func = m.function(info.func);
        for b in std::iter::once(info.header).chain(info.blocks.iter().copied()) {
            if b.0 as usize >= func.blocks.len() {
                return Err(ValidationError::BadSpinLoop {
                    func: info.func,
                    block: b,
                });
            }
        }
    }
    for pc in spin.tagged_loads.keys() {
        match m.instr_at(*pc) {
            Some(Instr::Load { .. }) => {}
            _ => return Err(ValidationError::BadSpinTag { pc: *pc }),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::instr::{Operand, Terminator};

    #[test]
    fn valid_module_passes() {
        let mut mb = ModuleBuilder::new("ok");
        let g = mb.global("g", 1);
        let helper = mb.function("helper", 1, |f| {
            let v = f.add(f.param(0), 1);
            f.ret(Some(Operand::Reg(v)));
        });
        mb.entry("main", |f| {
            let v = f.call(helper, &[Operand::Imm(1)]);
            f.store(g.at(0), v);
            f.ret(None);
        });
        assert!(mb.finish().is_ok());
    }

    #[test]
    fn recursion_is_rejected() {
        let mut mb = ModuleBuilder::new("rec");
        let f1 = mb.declare_function("f1", 0);
        mb.define_function(f1, |f| {
            f.call_void(f1, &[]);
            f.ret(None);
        });
        mb.entry("main", |f| {
            f.call_void(f1, &[]);
            f.ret(None);
        });
        let m = mb.finish_unchecked();
        assert!(matches!(
            validate(&m),
            Err(ValidationError::Recursion { .. })
        ));
    }

    #[test]
    fn mutual_recursion_is_rejected() {
        let mut mb = ModuleBuilder::new("rec2");
        let f1 = mb.declare_function("f1", 0);
        let f2 = mb.declare_function("f2", 0);
        mb.define_function(f1, |f| {
            f.call_void(f2, &[]);
            f.ret(None);
        });
        mb.define_function(f2, |f| {
            f.call_void(f1, &[]);
            f.ret(None);
        });
        mb.entry("main", |f| {
            f.ret(None);
        });
        let m = mb.finish_unchecked();
        assert!(matches!(
            validate(&m),
            Err(ValidationError::Recursion { .. })
        ));
    }

    #[test]
    fn bad_block_target_is_rejected() {
        let mut mb = ModuleBuilder::new("bb");
        mb.entry("main", |f| {
            f.ret(None);
        });
        let mut m = mb.finish_unchecked();
        m.functions[0].blocks[0].term = Terminator::Jump(crate::BlockId(9));
        assert!(matches!(
            validate(&m),
            Err(ValidationError::BadBlockTarget { .. })
        ));
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut mb = ModuleBuilder::new("ar");
        let h = mb.function("h", 2, |f| {
            f.ret(None);
        });
        mb.entry("main", |f| {
            f.call_void(h, &[Operand::Imm(1)]);
            f.ret(None);
        });
        let m = mb.finish_unchecked();
        assert!(matches!(
            validate(&m),
            Err(ValidationError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn spawn_target_needs_one_param() {
        let mut mb = ModuleBuilder::new("sp");
        let h = mb.function("h", 0, |f| {
            f.ret(None);
        });
        mb.entry("main", |f| {
            let mut fbreg = f.reg();
            // hand-roll a spawn to a 0-param function
            let _ = &mut fbreg;
            f.ret(None);
        });
        let mut m = mb.finish_unchecked();
        m.functions[1].blocks[0].instrs.push(crate::Instr::Spawn {
            dst: crate::Reg(0),
            func: h,
            arg: Operand::Imm(0),
        });
        m.functions[1].num_regs = 1;
        assert!(matches!(
            validate(&m),
            Err(ValidationError::SpawnArity { .. })
        ));
    }
}
