//! # SpinRace TIR — Threaded Intermediate Representation
//!
//! TIR is the program representation that the whole SpinRace stack operates
//! on. It plays the role that x86 machine code plays for the original
//! Helgrind+ implementation of *Jannesari & Tichy, "Identifying Ad-hoc
//! Synchronization for Enhanced Race Detection" (IPDPS 2010)*: the static
//! instrumentation phase (crate `spinrace-cfg` / `spinrace-spinfind`)
//! recovers control flow, finds small loops and classifies spinning read
//! loops on TIR, and the runtime phase (crate `spinrace-vm` /
//! `spinrace-detector`) executes instrumented TIR while tracking the
//! write/read dependencies that establish happens-before edges.
//!
//! ## Shape of the IR
//!
//! * A [`Module`] is a set of [`Function`]s plus global variable
//!   declarations, a string table for diagnostics, and (after
//!   instrumentation) a [`SpinTable`] describing detected spinning read
//!   loops.
//! * A [`Function`] is a list of [`BasicBlock`]s; block 0 is the entry.
//! * A [`BasicBlock`] is a straight-line sequence of [`Instr`]s followed by
//!   exactly one [`Terminator`].
//! * Values are 64-bit signed integers held in virtual registers ([`Reg`]).
//!   Memory is a flat, word-addressed space (one address = one `i64` cell);
//!   globals are contiguous word arrays, and a bump allocator provides heap
//!   words at run time.
//! * Synchronization exists at two levels, which is the crux of the paper:
//!   **library operations** ([`Instr::MutexLock`], [`Instr::CondWait`],
//!   [`Instr::BarrierWait`], …) whose semantics a "library-aware" detector
//!   understands, and **plain memory operations** (including atomics) from
//!   which `spinrace-synclib` builds the very same primitives out of
//!   spinning read loops, so that a detector with *no* library knowledge can
//!   be evaluated (`nolib` mode).
//!
//! ## Building programs
//!
//! Programs are assembled with [`ModuleBuilder`] / [`FunctionBuilder`]:
//!
//! ```
//! use spinrace_tir::{ModuleBuilder, Operand};
//!
//! let mut mb = ModuleBuilder::new("flag-handoff");
//! let flag = mb.global("flag", 1);
//! let data = mb.global("data", 1);
//!
//! // Worker: spin until flag != 0, then read data.
//! let worker = mb.function("worker", 1, |f| {
//!     let head = f.new_block();
//!     let done = f.new_block();
//!     f.jump(head);
//!     f.switch_to(head);
//!     let v = f.load(flag.at(0));
//!     f.branch(v, done, head);
//!     f.switch_to(done);
//!     let d = f.load(data.at(0));
//!     f.output(d);
//!     f.ret(None);
//! });
//!
//! mb.entry("main", |f| {
//!     let tid = f.spawn(worker, Operand::Imm(0));
//!     f.store(data.at(0), Operand::Imm(42));
//!     f.store(flag.at(0), Operand::Imm(1));
//!     f.join(tid);
//!     f.ret(None);
//! });
//!
//! let module = mb.finish().expect("valid module");
//! assert_eq!(module.functions.len(), 2);
//! ```

pub mod builder;
pub mod display;
pub mod ids;
pub mod instr;
pub mod module;
pub mod validate;

pub use builder::{FunctionBuilder, GlobalRef, ModuleBuilder};
pub use ids::{BlockId, FuncId, GlobalId, Pc, Reg, SpinLoopId, StrId};
pub use instr::{AddrExpr, Atomicity, BinOp, Instr, MemOrder, Operand, RmwOp, Terminator, UnOp};
pub use module::{BasicBlock, Function, GlobalDecl, Module, SpinLoopInfo, SpinTable};
pub use validate::{validate, ValidationError};
