//! Pretty-printing of modules — the textual assembly form used in
//! diagnostics, the `spinfinder_dump` example, and failing-test output.

use crate::instr::{AddrExpr, Atomicity, BinOp, Instr, Operand, RmwOp, Terminator, UnOp};
use crate::module::Module;
use std::fmt;

struct DisplayCtx<'a> {
    m: &'a Module,
}

impl DisplayCtx<'_> {
    fn addr(&self, a: &AddrExpr) -> String {
        let gname = |g: crate::GlobalId| self.m.globals[g.0 as usize].name.clone();
        match a {
            AddrExpr::Global { global, disp } => {
                if *disp == 0 {
                    format!("[{}]", gname(*global))
                } else {
                    format!("[{}+{}]", gname(*global), disp)
                }
            }
            AddrExpr::GlobalIndexed {
                global,
                index,
                scale,
                disp,
            } => format!("[{}+{index}*{scale}+{disp}]", gname(*global)),
            AddrExpr::Based { base, disp } => {
                if *disp == 0 {
                    format!("[{base}]")
                } else {
                    format!("[{base}+{disp}]")
                }
            }
            AddrExpr::BasedIndexed {
                base,
                index,
                scale,
                disp,
            } => format!("[{base}+{index}*{scale}+{disp}]"),
        }
    }

    fn op(&self, o: &Operand) -> String {
        match o {
            Operand::Reg(r) => format!("{r}"),
            Operand::Imm(v) => format!("{v}"),
        }
    }

    fn instr(&self, i: &Instr) -> String {
        let atom = |a: &Atomicity| match a {
            Atomicity::Plain => "".to_string(),
            Atomicity::Atomic(o) => format!(".atomic({o:?})"),
        };
        match i {
            Instr::Const { dst, value } => format!("{dst} = {value}"),
            Instr::Mov { dst, src } => format!("{dst} = {src}"),
            Instr::Bin { op, dst, a, b } => {
                format!("{dst} = {} {} {}", self.op(a), binop(*op), self.op(b))
            }
            Instr::Un { op, dst, a } => format!("{dst} = {}{}", unop(*op), self.op(a)),
            Instr::AddrOf { dst, global, disp } => format!(
                "{dst} = &{}+{}",
                self.m.globals[global.0 as usize].name, disp
            ),
            Instr::Load { dst, addr, atomic } => {
                format!("{dst} = load{} {}", atom(atomic), self.addr(addr))
            }
            Instr::Store { src, addr, atomic } => {
                format!(
                    "store{} {} <- {}",
                    atom(atomic),
                    self.addr(addr),
                    self.op(src)
                )
            }
            Instr::Cas {
                dst,
                addr,
                expected,
                new,
                order,
            } => format!(
                "{dst} = cas.{order:?} {} {} -> {}",
                self.addr(addr),
                self.op(expected),
                self.op(new)
            ),
            Instr::Rmw {
                op,
                dst,
                addr,
                src,
                order,
            } => format!(
                "{dst} = rmw.{}.{order:?} {} {}",
                rmwop(*op),
                self.addr(addr),
                self.op(src)
            ),
            Instr::Fence { order } => format!("fence.{order:?}"),
            Instr::Alloc { dst, words } => format!("{dst} = alloc {}", self.op(words)),
            Instr::MutexLock { addr } => format!("mutex_lock {}", self.addr(addr)),
            Instr::MutexUnlock { addr } => format!("mutex_unlock {}", self.addr(addr)),
            Instr::CondSignal { cv } => format!("cond_signal {}", self.addr(cv)),
            Instr::CondBroadcast { cv } => format!("cond_broadcast {}", self.addr(cv)),
            Instr::CondWait { cv, mutex } => {
                format!("cond_wait {} {}", self.addr(cv), self.addr(mutex))
            }
            Instr::BarrierInit { addr, count } => {
                format!("barrier_init {} {}", self.addr(addr), self.op(count))
            }
            Instr::BarrierWait { addr } => format!("barrier_wait {}", self.addr(addr)),
            Instr::SemInit { addr, value } => {
                format!("sem_init {} {}", self.addr(addr), self.op(value))
            }
            Instr::SemWait { addr } => format!("sem_wait {}", self.addr(addr)),
            Instr::SemPost { addr } => format!("sem_post {}", self.addr(addr)),
            Instr::Spawn { dst, func, arg } => format!(
                "{dst} = spawn {}({})",
                self.m.functions[func.0 as usize].name,
                self.op(arg)
            ),
            Instr::Join { tid } => format!("join {}", self.op(tid)),
            Instr::Call { dst, func, args } => {
                let args: Vec<_> = args.iter().map(|a| self.op(a)).collect();
                let call = format!(
                    "call {}({})",
                    self.m.functions[func.0 as usize].name,
                    args.join(", ")
                );
                match dst {
                    Some(d) => format!("{d} = {call}"),
                    None => call,
                }
            }
            Instr::Yield => "yield".into(),
            Instr::Nop => "nop".into(),
            Instr::Output { src } => format!("output {}", self.op(src)),
            Instr::Assert { cond, msg } => {
                format!("assert {} \"{}\"", self.op(cond), self.m.string(*msg))
            }
        }
    }

    fn term(&self, t: &Terminator) -> String {
        match t {
            Terminator::Jump(b) => format!("jump {b}"),
            Terminator::Branch {
                cond,
                if_true,
                if_false,
            } => format!("branch {} ? {if_true} : {if_false}", self.op(cond)),
            Terminator::Ret(None) => "ret".into(),
            Terminator::Ret(Some(v)) => format!("ret {}", self.op(v)),
            Terminator::Exit => "exit".into(),
        }
    }
}

fn binop(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::And => "&",
        BinOp::Or => "|",
        BinOp::Xor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Min => "min",
        BinOp::Max => "max",
    }
}

fn unop(op: UnOp) -> &'static str {
    match op {
        UnOp::Not => "!",
        UnOp::Neg => "-",
        UnOp::BitNot => "~",
    }
}

fn rmwop(op: RmwOp) -> &'static str {
    match op {
        RmwOp::Add => "add",
        RmwOp::Sub => "sub",
        RmwOp::And => "and",
        RmwOp::Or => "or",
        RmwOp::Xor => "xor",
        RmwOp::Xchg => "xchg",
        RmwOp::Min => "min",
        RmwOp::Max => "max",
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ctx = DisplayCtx { m: self };
        writeln!(f, "module {} {{", self.name)?;
        for g in &self.globals {
            if g.init.is_empty() {
                writeln!(f, "  global {}: {} words", g.name, g.words)?;
            } else {
                writeln!(f, "  global {}: {} words = {:?}", g.name, g.words, g.init)?;
            }
        }
        for (fi, func) in self.functions.iter().enumerate() {
            let marker = if crate::FuncId(fi as u32) == self.entry {
                " [entry]"
            } else {
                ""
            };
            writeln!(
                f,
                "  fn {}({} params, {} regs){marker} {{",
                func.name, func.params, func.num_regs
            )?;
            for (bi, block) in func.iter_blocks() {
                let spin_note = self
                    .spin
                    .as_ref()
                    .and_then(|s| {
                        s.loops
                            .iter()
                            .find(|l| l.func == crate::FuncId(fi as u32) && l.header == bi)
                    })
                    .map(|l| format!("   ; spin loop {:?} (weight {})", l.id, l.weight))
                    .unwrap_or_default();
                writeln!(f, "    {bi}:{spin_note}")?;
                for (ii, instr) in block.instrs.iter().enumerate() {
                    let tag = self
                        .spin
                        .as_ref()
                        .map(|s| {
                            let pc = crate::Pc::new(crate::FuncId(fi as u32), bi, ii as u32);
                            if s.tagged_loads.contains_key(&pc) {
                                "   ; [spin-read]"
                            } else {
                                ""
                            }
                        })
                        .unwrap_or("");
                    writeln!(f, "      {}{tag}", ctx.instr(instr))?;
                }
                writeln!(f, "      {}", ctx.term(&block.term))?;
            }
            writeln!(f, "  }}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::ModuleBuilder;

    #[test]
    fn display_includes_function_and_globals() {
        let mut mb = ModuleBuilder::new("demo");
        let g = mb.global("counter", 1);
        mb.entry("main", |f| {
            let v = f.load(g.at(0));
            let w = f.add(v, 1);
            f.store(g.at(0), w);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let text = m.to_string();
        assert!(text.contains("module demo"));
        assert!(text.contains("global counter"));
        assert!(text.contains("fn main"));
        assert!(text.contains("load [counter]"));
        assert!(text.contains("store [counter]"));
    }

    #[test]
    fn display_marks_entry() {
        let mut mb = ModuleBuilder::new("demo");
        mb.entry("main", |f| f.ret(None));
        let m = mb.finish().unwrap();
        assert!(m.to_string().contains("[entry]"));
    }
}
