//! The staged session API: **prepare once, execute once, detect many**.
//!
//! [`Session`] holds the run configuration (MSM flavour, VM config,
//! context cap, nolib library style) and stages the pipeline explicitly:
//!
//! 1. [`Session::prepare`] applies a tool's static phases (nolib lowering,
//!    spin instrumentation) and yields a [`PreparedModule`];
//! 2. [`PreparedModule::execute`] interprets the prepared module once and
//!    records the event stream as a replayable [`Trace`] inside an
//!    [`ExecutedRun`];
//! 3. [`ExecutedRun::detect`] / [`ExecutedRun::detect_many`] /
//!    [`ExecutedRun::detect_as`] replay the trace under any number of
//!    detector configurations — each replay is equivalent to having run
//!    that detector live (the VM hands events to sinks by reference,
//!    synchronously, and detectors are deterministic).
//!
//! Because the VM is deterministic, two tools whose preparation produced
//! the same module (same [`Module::fingerprint`]) see the same stream —
//! e.g. `Helgrind+ lib` and `DRD` (neither rewrites the module), or two
//! spin windows that accepted the same loops. Harnesses exploit this by
//! caching [`ExecutedRun`]s per fingerprint and fanning detection out.

use crate::parallel::{expect_engine, EngineError, EngineOptions, Schedule};
use crate::{AnalysisOutcome, AnalyzeError, DescribedReport, Tool};
use spinrace_detector::{DetectorConfig, MsmMode, RaceDetector};
use spinrace_spinfind::{SpinCriteria, SpinFinder};
use spinrace_synclib::{lower_to_spinlib_styled, LibStyle};
use spinrace_tir::Module;
use spinrace_tracefmt::{ChunkedTraceReader, StreamStats};
use spinrace_vm::{run_module, RunSummary, Tee, Trace, TraceRecorder, VmConfig};
use std::io;
use std::path::Path;

/// A configured analysis session over one source module.
#[derive(Clone, Copy, Debug)]
pub struct Session<'m> {
    module: &'m Module,
    msm: MsmMode,
    vm: VmConfig,
    context_cap: usize,
    nolib_style: LibStyle,
}

impl<'m> Session<'m> {
    /// Session with the defaults of [`crate::Analyzer::tool`]: short MSM,
    /// round-robin scheduling, cap 1000, textbook nolib primitives.
    pub fn for_module(module: &'m Module) -> Session<'m> {
        Session {
            module,
            msm: MsmMode::Short,
            vm: VmConfig::round_robin(),
            context_cap: 1000,
            nolib_style: LibStyle::Textbook,
        }
    }

    /// Select the memory state machine flavour (hybrid tools).
    pub fn msm(mut self, msm: MsmMode) -> Self {
        self.msm = msm;
        self
    }

    /// Switch to the long-running MSM (integration-test mode).
    pub fn long_msm(self) -> Self {
        self.msm(MsmMode::Long)
    }

    /// Use a seeded random scheduler.
    pub fn seed(mut self, seed: u64) -> Self {
        self.vm = VmConfig::random(seed);
        self
    }

    /// Override the VM configuration wholesale.
    pub fn vm_config(mut self, vm: VmConfig) -> Self {
        self.vm = vm;
        self
    }

    /// Override the racy-context cap.
    pub fn cap(mut self, cap: usize) -> Self {
        self.context_cap = cap;
        self
    }

    /// Library flavour used when lowering for `nolib` tools.
    pub fn nolib_style(mut self, style: LibStyle) -> Self {
        self.nolib_style = style;
        self
    }

    /// Use the obscure library flavour for nolib lowering.
    pub fn obscure_nolib(self) -> Self {
        self.nolib_style(LibStyle::Obscure)
    }

    /// Run `tool`'s static phases: lower the module for `nolib` tools,
    /// instrument spin loops for `+spin` tools.
    pub fn prepare(&self, tool: Tool) -> Result<PreparedModule, AnalyzeError> {
        let mut module = match tool {
            Tool::HelgrindNolibSpin { .. } => {
                lower_to_spinlib_styled(self.module, self.nolib_style)?
            }
            _ => self.module.clone(),
        };
        let spin_loops_found = match tool {
            Tool::HelgrindLibSpin { window } | Tool::HelgrindNolibSpin { window } => {
                let finder = SpinFinder::new(SpinCriteria::with_window(window));
                finder.instrument(&mut module).accepted()
            }
            _ => 0,
        };
        let fingerprint = module.fingerprint();
        Ok(PreparedModule {
            original_name: self.module.name.clone(),
            tool,
            module,
            fingerprint,
            spin_loops_found,
            msm: self.msm,
            vm: self.vm,
            context_cap: self.context_cap,
        })
    }
}

/// A module after a tool's static phases, ready to execute. Carries the
/// session knobs so detection configurations can be derived later.
#[derive(Clone, Debug)]
pub struct PreparedModule {
    original_name: String,
    tool: Tool,
    module: Module,
    fingerprint: u64,
    spin_loops_found: usize,
    msm: MsmMode,
    vm: VmConfig,
    context_cap: usize,
}

impl PreparedModule {
    /// The prepared (lowered/instrumented) module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The tool whose phases produced this module.
    pub fn tool(&self) -> Tool {
        self.tool
    }

    /// Spinning read loops accepted by the instrumentation phase.
    pub fn spin_loops_found(&self) -> usize {
        self.spin_loops_found
    }

    /// Structural fingerprint of the prepared module (computed once at
    /// prepare time) — the sharing key for trace caches: prepared modules
    /// with equal fingerprints produce identical event streams under the
    /// same VM configuration.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The VM configuration the session selected.
    pub fn vm_config(&self) -> VmConfig {
        self.vm
    }

    /// Detector configuration for `tool` under this session's MSM flavour
    /// and context cap.
    pub fn config_for(&self, tool: Tool) -> DetectorConfig {
        tool.detector_config(self.msm, self.context_cap)
    }

    /// Detector configuration for this module's own tool.
    pub fn default_config(&self) -> DetectorConfig {
        self.config_for(self.tool)
    }

    /// Interpret the module once, recording the full event stream.
    pub fn execute(self) -> Result<ExecutedRun, AnalyzeError> {
        let mut rec = TraceRecorder::new(&self.module, self.vm).labeled(self.tool.label());
        let summary = run_module(&self.module, self.vm, &mut rec)?;
        Ok(ExecutedRun {
            trace: rec.finish(summary),
            prepared: self,
        })
    }

    /// Interpret the module once with the default detector attached
    /// **live** — no event buffering. This is the classic `Analyzer`
    /// single-shot path: use it when one detection per execution is all
    /// that's needed (benches, overhead measurements).
    pub fn detect_live(&self) -> Result<AnalysisOutcome, AnalyzeError> {
        let mut det = RaceDetector::new(self.default_config());
        let summary = run_module(&self.module, self.vm, &mut det)?;
        Ok(self.assemble(self.tool.label(), det, summary))
    }

    /// Interpret the module once with the default detector attached live
    /// **and** a trace recorder teed into the same stream: one run yields
    /// both the outcome and a replayable [`Trace`] for further fan-out.
    pub fn execute_detecting(self) -> Result<(ExecutedRun, AnalysisOutcome), AnalyzeError> {
        let mut det = RaceDetector::new(self.default_config());
        let rec = TraceRecorder::new(&self.module, self.vm).labeled(self.tool.label());
        let mut tee = Tee::new(rec, &mut det);
        let summary = run_module(&self.module, self.vm, &mut tee)?;
        let (rec, _) = tee.into_inner();
        let outcome = self.assemble(self.tool.label(), det, summary.clone());
        Ok((
            ExecutedRun {
                trace: rec.finish(summary),
                prepared: self,
            },
            outcome,
        ))
    }

    /// Replay a binary trace **stream** under this module's own tool
    /// without materializing the event vector: the reader decodes one
    /// chunk ahead of the detector, so peak memory is O(chunk) rather
    /// than O(trace) and detection starts before the file has been fully
    /// read. Sequential-only — the parallel engine shards over a full
    /// event slice and goes through [`ExecutedRun`] instead.
    ///
    /// Fails with [`AnalyzeError::TraceMismatch`] when the stream's
    /// fingerprint does not match this prepared module, and with
    /// [`AnalyzeError::Trace`] on any decode error (corruption is
    /// detected per chunk, possibly mid-replay).
    pub fn try_detect_streamed<R: io::Read + Send>(
        &self,
        reader: ChunkedTraceReader<R>,
    ) -> Result<(AnalysisOutcome, StreamStats), AnalyzeError> {
        self.try_detect_streamed_with(self.default_config(), reader)
    }

    /// [`Self::try_detect_streamed`] under an explicit detector
    /// configuration (labelled with this module's own tool).
    pub fn try_detect_streamed_with<R: io::Read + Send>(
        &self,
        cfg: DetectorConfig,
        reader: ChunkedTraceReader<R>,
    ) -> Result<(AnalysisOutcome, StreamStats), AnalyzeError> {
        self.streamed_outcome(self.tool.label(), cfg, reader)
    }

    /// [`Self::try_detect_streamed`] under *another tool's* configuration
    /// and label — the streaming counterpart of
    /// [`ExecutedRun::detect_as`], with the same fingerprint-sharing
    /// contract.
    pub fn try_detect_streamed_as<R: io::Read + Send>(
        &self,
        tool: Tool,
        reader: ChunkedTraceReader<R>,
    ) -> Result<(AnalysisOutcome, StreamStats), AnalyzeError> {
        self.streamed_outcome(tool.label(), self.config_for(tool), reader)
    }

    fn streamed_outcome<R: io::Read + Send>(
        &self,
        label: String,
        cfg: DetectorConfig,
        reader: ChunkedTraceReader<R>,
    ) -> Result<(AnalysisOutcome, StreamStats), AnalyzeError> {
        if reader.header().module_fingerprint != self.fingerprint {
            return Err(AnalyzeError::TraceMismatch {
                trace_fingerprint: reader.header().module_fingerprint,
                module_fingerprint: self.fingerprint,
            });
        }
        let summary = reader.summary().clone();
        let mut det = RaceDetector::new(cfg);
        let stats = reader.replay_into(&mut det)?;
        Ok((self.assemble(label, det, summary), stats))
    }

    /// Build the user-facing outcome from a finished detector.
    fn assemble(
        &self,
        tool_label: String,
        det: RaceDetector,
        summary: RunSummary,
    ) -> AnalysisOutcome {
        self.assemble_parts(
            tool_label,
            det.reports(),
            det.metrics(),
            det.promoted_locations(),
            summary,
        )
    }

    /// Build the user-facing outcome from detection parts — shared by the
    /// live/sequential path ([`Self::assemble`]) and the parallel merge,
    /// so the two can never diverge in how reports are described.
    fn assemble_parts(
        &self,
        tool_label: String,
        collector: &spinrace_detector::ReportCollector,
        metrics: spinrace_detector::DetectorMetrics,
        promoted_locations: usize,
        summary: RunSummary,
    ) -> AnalysisOutcome {
        let reports: Vec<DescribedReport> = collector
            .reports()
            .iter()
            .map(|r| DescribedReport {
                location: self.module.describe_addr(r.addr),
                report: r.clone(),
            })
            .collect();
        AnalysisOutcome {
            module_name: self.original_name.clone(),
            tool_label,
            contexts: collector.contexts(),
            reports,
            metrics,
            promoted_locations,
            spin_loops_found: self.spin_loops_found,
            summary,
        }
    }
}

/// One recorded execution of a prepared module: the trace plus everything
/// needed to interpret detector replays against it.
#[derive(Clone, Debug)]
pub struct ExecutedRun {
    prepared: PreparedModule,
    trace: Trace,
}

impl ExecutedRun {
    /// Rebuild an executed run from a parsed [`Trace`] and the prepared
    /// module it was recorded from. Fails when the trace's fingerprint
    /// does not match `prepared` — replaying a stream against a different
    /// program would silently misattribute every address and pc.
    pub fn from_trace(prepared: PreparedModule, trace: Trace) -> Result<ExecutedRun, AnalyzeError> {
        if trace.header.module_fingerprint != prepared.fingerprint() {
            return Err(AnalyzeError::TraceMismatch {
                trace_fingerprint: trace.header.module_fingerprint,
                module_fingerprint: prepared.fingerprint(),
            });
        }
        Ok(ExecutedRun { prepared, trace })
    }

    /// Rebuild an executed run from a trace **file** in either on-disk
    /// encoding (binary columnar or JSON, told apart by their first
    /// bytes) — the same fingerprint check as [`Self::from_trace`]. The
    /// whole stream is materialized; it is the right entry point for the
    /// parallel replay engine and detection fan-out. For bounded-memory
    /// sequential replay, open a [`ChunkedTraceReader`] and use
    /// [`PreparedModule::try_detect_streamed`].
    pub fn from_trace_file(
        prepared: PreparedModule,
        path: &Path,
    ) -> Result<ExecutedRun, AnalyzeError> {
        let trace = spinrace_tracefmt::load_trace_file(path)?;
        ExecutedRun::from_trace(prepared, trace)
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Take the trace (e.g. to serialize it).
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// The prepared module this run executed.
    pub fn prepared(&self) -> &PreparedModule {
        &self.prepared
    }

    /// Statistics of the recorded run.
    pub fn summary(&self) -> &RunSummary {
        &self.trace.summary
    }

    /// Replay under this module's own tool with the session's defaults.
    pub fn detect(&self) -> AnalysisOutcome {
        self.detect_with(self.prepared.default_config())
    }

    /// Replay under an explicit detector configuration (labelled with this
    /// module's own tool).
    pub fn detect_with(&self, cfg: DetectorConfig) -> AnalysisOutcome {
        self.replay_outcome(self.prepared.tool.label(), cfg)
    }

    /// Replay once per configuration: one execution, many detections.
    pub fn detect_many(&self, cfgs: &[DetectorConfig]) -> Vec<AnalysisOutcome> {
        cfgs.iter().map(|&cfg| self.detect_with(cfg)).collect()
    }

    /// Replay under *another tool's* detector configuration. Only valid
    /// when that tool's preparation of the same source module yields a
    /// prepared module with the same fingerprint (e.g. `Helgrind+ lib`
    /// and `DRD`, which both run the unmodified module) — harnesses check
    /// fingerprints before sharing.
    pub fn detect_as(&self, tool: Tool) -> AnalysisOutcome {
        self.replay_outcome(tool.label(), self.prepared.config_for(tool))
    }

    fn replay_outcome(&self, label: String, cfg: DetectorConfig) -> AnalysisOutcome {
        let mut det = RaceDetector::new(cfg);
        self.trace.replay(&mut det);
        self.prepared
            .assemble(label, det, self.trace.summary.clone())
    }

    // ---- parallel sharded replay (see `crate::parallel`) ----

    /// Replay under this module's own tool on `workers` threads with the
    /// default [`Schedule::Balanced`] plan. The outcome — reports,
    /// contexts, metrics, promotions — is bit-identical to
    /// [`ExecutedRun::detect`] for every worker count and schedule; at
    /// 1 worker this takes the sequential fast path (no pool, no
    /// ownership gate — same cost as [`ExecutedRun::detect`]).
    ///
    /// Panics when the replay engine fails (a genuine worker panic is
    /// the only way that can happen without explicit [`EngineOptions`]);
    /// use [`ExecutedRun::try_detect_parallel`] to handle failure as a
    /// value.
    pub fn detect_parallel(&self, workers: usize) -> AnalysisOutcome {
        expect_engine(self.try_detect_parallel(workers))
    }

    /// [`ExecutedRun::detect_parallel`] with an explicit scheduling mode.
    pub fn detect_parallel_scheduled(&self, workers: usize, schedule: Schedule) -> AnalysisOutcome {
        expect_engine(self.try_detect_parallel_scheduled(workers, schedule))
    }

    /// Parallel replay under an explicit detector configuration (labelled
    /// with this module's own tool).
    pub fn detect_with_parallel(&self, cfg: DetectorConfig, workers: usize) -> AnalysisOutcome {
        expect_engine(self.try_detect_with_parallel(cfg, workers))
    }

    /// [`ExecutedRun::detect_with_parallel`] with an explicit schedule.
    pub fn detect_with_parallel_scheduled(
        &self,
        cfg: DetectorConfig,
        workers: usize,
        schedule: Schedule,
    ) -> AnalysisOutcome {
        expect_engine(self.try_detect_with_parallel_scheduled(cfg, workers, schedule))
    }

    /// Parallel replay under *another tool's* configuration — the
    /// fingerprint-sharing contract of [`ExecutedRun::detect_as`] applies.
    pub fn detect_as_parallel(&self, tool: Tool, workers: usize) -> AnalysisOutcome {
        expect_engine(self.try_detect_as_parallel(tool, workers))
    }

    /// [`ExecutedRun::detect_as_parallel`] with an explicit schedule.
    pub fn detect_as_parallel_scheduled(
        &self,
        tool: Tool,
        workers: usize,
        schedule: Schedule,
    ) -> AnalysisOutcome {
        expect_engine(self.try_detect_as_parallel_scheduled(tool, workers, schedule))
    }

    /// Parallel fan-out: one recorded execution, many parallel detections
    /// on **one** shared worker pool (threads are spawned once, not once
    /// per configuration — see [`crate::parallel::run_many_sharded`]).
    pub fn detect_many_parallel(
        &self,
        cfgs: &[DetectorConfig],
        workers: usize,
    ) -> Vec<AnalysisOutcome> {
        expect_engine(self.try_detect_many_parallel(cfgs, workers))
    }

    /// Tool fan-out on one shared pool: replay once per tool in `tools`,
    /// each labelled with its own tool. Every tool must satisfy the
    /// fingerprint-sharing contract of [`ExecutedRun::detect_as`].
    pub fn detect_many_as_parallel(&self, tools: &[Tool], workers: usize) -> Vec<AnalysisOutcome> {
        expect_engine(self.try_detect_many_as_parallel(tools, workers))
    }

    // ---- fallible parallel replay ----

    /// Fallible [`ExecutedRun::detect_parallel`]: a worker panic, handoff
    /// timeout, watchdog trip, or exhausted budget comes back as a
    /// structured [`EngineError`] instead of a panic or a hang.
    pub fn try_detect_parallel(&self, workers: usize) -> Result<AnalysisOutcome, EngineError> {
        self.try_detect_with_parallel(self.prepared.default_config(), workers)
    }

    /// Fallible [`ExecutedRun::detect_parallel_scheduled`].
    pub fn try_detect_parallel_scheduled(
        &self,
        workers: usize,
        schedule: Schedule,
    ) -> Result<AnalysisOutcome, EngineError> {
        self.try_detect_with_parallel_scheduled(self.prepared.default_config(), workers, schedule)
    }

    /// Fallible [`ExecutedRun::detect_with_parallel`].
    pub fn try_detect_with_parallel(
        &self,
        cfg: DetectorConfig,
        workers: usize,
    ) -> Result<AnalysisOutcome, EngineError> {
        self.try_detect_with_parallel_scheduled(cfg, workers, Schedule::default())
    }

    /// Fallible [`ExecutedRun::detect_with_parallel_scheduled`].
    pub fn try_detect_with_parallel_scheduled(
        &self,
        cfg: DetectorConfig,
        workers: usize,
        schedule: Schedule,
    ) -> Result<AnalysisOutcome, EngineError> {
        self.parallel_outcome(
            self.prepared.tool.label(),
            cfg,
            workers,
            EngineOptions::scheduled(schedule),
        )
    }

    /// Fallible [`ExecutedRun::detect_as_parallel`].
    pub fn try_detect_as_parallel(
        &self,
        tool: Tool,
        workers: usize,
    ) -> Result<AnalysisOutcome, EngineError> {
        self.try_detect_as_parallel_scheduled(tool, workers, Schedule::default())
    }

    /// Fallible [`ExecutedRun::detect_as_parallel_scheduled`].
    pub fn try_detect_as_parallel_scheduled(
        &self,
        tool: Tool,
        workers: usize,
        schedule: Schedule,
    ) -> Result<AnalysisOutcome, EngineError> {
        self.try_detect_as_parallel_opts(tool, workers, EngineOptions::scheduled(schedule))
    }

    /// Parallel replay under another tool's configuration with full
    /// [`EngineOptions`] control — schedule, watchdogs, budgets, and
    /// fault injection. This is the entry point `trace replay --fault`
    /// drives.
    pub fn try_detect_as_parallel_opts(
        &self,
        tool: Tool,
        workers: usize,
        opts: EngineOptions,
    ) -> Result<AnalysisOutcome, EngineError> {
        self.parallel_outcome(tool.label(), self.prepared.config_for(tool), workers, opts)
    }

    /// Fallible [`ExecutedRun::detect_many_parallel`].
    pub fn try_detect_many_parallel(
        &self,
        cfgs: &[DetectorConfig],
        workers: usize,
    ) -> Result<Vec<AnalysisOutcome>, EngineError> {
        let label = self.prepared.tool.label();
        Ok(crate::parallel::try_run_many_sharded(
            cfgs,
            &self.trace.events,
            workers,
            Schedule::default(),
        )?
        .into_iter()
        .map(|merged| self.merged_outcome(label.clone(), merged))
        .collect())
    }

    /// Fallible [`ExecutedRun::detect_many_as_parallel`].
    pub fn try_detect_many_as_parallel(
        &self,
        tools: &[Tool],
        workers: usize,
    ) -> Result<Vec<AnalysisOutcome>, EngineError> {
        let cfgs: Vec<DetectorConfig> =
            tools.iter().map(|&t| self.prepared.config_for(t)).collect();
        Ok(crate::parallel::try_run_many_sharded(
            &cfgs,
            &self.trace.events,
            workers,
            Schedule::default(),
        )?
        .into_iter()
        .zip(tools)
        .map(|(merged, tool)| self.merged_outcome(tool.label(), merged))
        .collect())
    }

    fn parallel_outcome(
        &self,
        label: String,
        cfg: DetectorConfig,
        workers: usize,
        opts: EngineOptions,
    ) -> Result<AnalysisOutcome, EngineError> {
        let merged = crate::parallel::try_run_sharded_opts(cfg, &self.trace.events, workers, opts)?;
        Ok(self.merged_outcome(label, merged))
    }

    fn merged_outcome(
        &self,
        label: String,
        merged: spinrace_detector::MergedDetection,
    ) -> AnalysisOutcome {
        self.prepared.assemble_parts(
            label,
            &merged.reports,
            merged.metrics,
            merged.promoted_locations,
            self.trace.summary.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Analyzer;
    use spinrace_tir::ModuleBuilder;

    fn racy() -> Module {
        let mut mb = ModuleBuilder::new("racy");
        let g = mb.global("g", 1);
        let w = mb.function("w", 1, |f| {
            let v = f.load(g.at(0));
            let v2 = f.add(v, 1);
            f.store(g.at(0), v2);
            f.ret(None);
        });
        mb.entry("main", |f| {
            let t1 = f.spawn(w, 0);
            let t2 = f.spawn(w, 1);
            f.join(t1);
            f.join(t2);
            f.ret(None);
        });
        mb.finish().unwrap()
    }

    /// The tentpole equivalence: one recorded trace replayed under a
    /// detector configuration yields byte-identical report lists and
    /// contexts to the live `Analyzer` run, for every paper tool.
    #[test]
    fn replay_equals_live_for_every_tool() {
        let m = racy();
        for tool in Tool::paper_lineup() {
            let live = Analyzer::tool(tool).analyze(&m).unwrap();
            let run = Session::for_module(&m)
                .prepare(tool)
                .unwrap()
                .execute()
                .unwrap();
            let replayed = run.detect();
            assert_eq!(replayed.contexts, live.contexts, "{}", tool.label());
            assert_eq!(replayed.reports.len(), live.reports.len());
            for (a, b) in replayed.reports.iter().zip(&live.reports) {
                assert_eq!(a.location, b.location);
                assert_eq!(a.report, b.report);
            }
            assert_eq!(replayed.metrics, live.metrics);
            assert_eq!(replayed.promoted_locations, live.promoted_locations);
            assert_eq!(replayed.summary, live.summary);
        }
    }

    #[test]
    fn lib_and_drd_share_one_prepared_module() {
        let m = racy();
        let session = Session::for_module(&m);
        let lib = session.prepare(Tool::HelgrindLib).unwrap();
        let drd = session.prepare(Tool::Drd).unwrap();
        assert_eq!(lib.fingerprint(), drd.fingerprint());
        let run = lib.execute().unwrap();
        let as_drd = run.detect_as(Tool::Drd);
        let live_drd = Analyzer::tool(Tool::Drd).analyze(&m).unwrap();
        assert_eq!(as_drd.contexts, live_drd.contexts);
        assert_eq!(as_drd.tool_label, "DRD");
    }

    #[test]
    fn detect_many_fans_out_configurations() {
        let m = racy();
        let run = Session::for_module(&m)
            .prepare(Tool::HelgrindLib)
            .unwrap()
            .execute()
            .unwrap();
        let short = run.prepared().config_for(Tool::HelgrindLib);
        let capped = short.with_cap(1);
        let outs = run.detect_many(&[short, capped]);
        assert_eq!(outs.len(), 2);
        assert!(outs[0].contexts >= outs[1].contexts);
        assert_eq!(outs[1].contexts, 1, "cap 1 clamps the context count");
    }

    #[test]
    fn pooled_tool_fanout_matches_individual_parallel_detections() {
        let m = racy();
        let run = Session::for_module(&m)
            .prepare(Tool::HelgrindLib)
            .unwrap()
            .execute()
            .unwrap();
        // Lib and DRD share the unmodified module's fingerprint, so both
        // may replay this recording (the detect_as contract).
        let tools = [Tool::HelgrindLib, Tool::Drd];
        for workers in [1, 2, 4] {
            let pooled = run.detect_many_as_parallel(&tools, workers);
            assert_eq!(pooled.len(), tools.len());
            for (tool, out) in tools.iter().zip(&pooled) {
                let solo = run.detect_as(*tool);
                assert_eq!(out.tool_label, solo.tool_label);
                assert_eq!(out.contexts, solo.contexts, "{workers} workers");
                assert_eq!(out.reports.len(), solo.reports.len());
                assert_eq!(out.metrics, solo.metrics, "{workers} workers");
            }
        }
    }

    #[test]
    fn scheduled_variants_agree_with_sequential() {
        let m = racy();
        let run = Session::for_module(&m)
            .prepare(Tool::HelgrindLibSpin { window: 7 })
            .unwrap()
            .execute()
            .unwrap();
        let seq = run.detect();
        for schedule in [Schedule::Static, Schedule::Balanced] {
            for workers in [1, 2, 4, 8] {
                let par = run.detect_parallel_scheduled(workers, schedule);
                assert_eq!(par.contexts, seq.contexts, "{schedule} at {workers}");
                assert_eq!(par.metrics, seq.metrics, "{schedule} at {workers}");
            }
        }
    }

    #[test]
    fn execute_detecting_tees_recorder_and_detector() {
        let m = racy();
        let prepared = Session::for_module(&m)
            .prepare(Tool::HelgrindLibSpin { window: 7 })
            .unwrap();
        let (run, live) = prepared.execute_detecting().unwrap();
        assert!(!live.is_clean());
        let replayed = run.detect();
        assert_eq!(replayed.contexts, live.contexts);
        assert_eq!(replayed.reports.len(), live.reports.len());
    }

    /// Streaming replay of the binary encoding produces the same outcome
    /// as the in-memory replay, with O(chunk) resident memory.
    #[test]
    fn streamed_detection_matches_in_memory_detection() {
        let m = racy();
        for tool in [Tool::HelgrindLib, Tool::HelgrindLibSpin { window: 7 }] {
            let run = Session::for_module(&m)
                .prepare(tool)
                .unwrap()
                .execute()
                .unwrap();
            let expected = run.detect();
            // Tiny chunks force many boundaries through the pipeline.
            let bytes = spinrace_tracefmt::encode_trace_chunked(run.trace(), 8);
            let reader = ChunkedTraceReader::new(&bytes[..]).unwrap();
            let (streamed, stats) = run.prepared().try_detect_streamed(reader).unwrap();
            assert_eq!(streamed.contexts, expected.contexts, "{}", tool.label());
            assert_eq!(streamed.reports.len(), expected.reports.len());
            for (a, b) in streamed.reports.iter().zip(&expected.reports) {
                assert_eq!(a.location, b.location);
                assert_eq!(a.report, b.report);
            }
            assert_eq!(streamed.metrics, expected.metrics);
            assert_eq!(streamed.summary, expected.summary);
            assert_eq!(stats.events, run.trace().events.len() as u64);
        }
    }

    #[test]
    fn streamed_detection_rejects_foreign_streams() {
        // A flag handoff: the spin tool instruments the waiter loop, so
        // its prepared module differs from the plain one.
        let mut mb = ModuleBuilder::new("handoff");
        let flag = mb.global("flag", 1);
        let waiter = mb.function("waiter", 1, |f| {
            let head = f.new_block();
            let done = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let v = f.load(flag.at(0));
            f.branch(v, done, head);
            f.switch_to(done);
            f.ret(None);
        });
        mb.entry("main", |f| {
            let t = f.spawn(waiter, 0);
            f.store(flag.at(0), 1);
            f.join(t);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let session = Session::for_module(&m);
        let run = session
            .prepare(Tool::HelgrindLibSpin { window: 7 })
            .unwrap()
            .execute()
            .unwrap();
        let plain = session.prepare(Tool::HelgrindLib).unwrap();
        assert_ne!(plain.fingerprint(), run.prepared().fingerprint());
        let bytes = spinrace_tracefmt::encode_trace(run.trace());
        let reader = ChunkedTraceReader::new(&bytes[..]).unwrap();
        assert!(matches!(
            plain.try_detect_streamed(reader),
            Err(AnalyzeError::TraceMismatch { .. })
        ));
    }

    /// `from_trace_file` accepts both on-disk encodings and applies the
    /// fingerprint check.
    #[test]
    fn from_trace_file_loads_either_encoding() {
        let m = racy();
        let session = Session::for_module(&m);
        let run = session
            .prepare(Tool::HelgrindLib)
            .unwrap()
            .execute()
            .unwrap();
        let expected = run.detect();
        let dir = std::env::temp_dir().join(format!(
            "spinrace-session-{}-{}",
            std::process::id(),
            run.trace().header.module_fingerprint
        ));
        std::fs::create_dir_all(&dir).unwrap();
        for format in [
            spinrace_tracefmt::TraceFormat::Binary,
            spinrace_tracefmt::TraceFormat::Json,
        ] {
            let path = dir.join(format!("t.{}", format.extension()));
            spinrace_tracefmt::write_trace_file(&path, run.trace(), format).unwrap();
            let prepared = session.prepare(Tool::HelgrindLib).unwrap();
            let reloaded = ExecutedRun::from_trace_file(prepared, &path).unwrap();
            let out = reloaded.detect();
            assert_eq!(out.contexts, expected.contexts, "{format}");
            assert_eq!(out.reports.len(), expected.reports.len(), "{format}");
        }
        let missing = dir.join("nope.sptrace");
        let prepared = session.prepare(Tool::HelgrindLib).unwrap();
        assert!(matches!(
            ExecutedRun::from_trace_file(prepared, &missing),
            Err(AnalyzeError::Trace(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn from_trace_rejects_foreign_traces() {
        // A flag handoff: the spin tool instruments the waiter loop, so
        // its prepared module differs from the uninstrumented one and the
        // trace must be refused.
        let mut mb = ModuleBuilder::new("handoff");
        let flag = mb.global("flag", 1);
        let waiter = mb.function("waiter", 1, |f| {
            let head = f.new_block();
            let done = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let v = f.load(flag.at(0));
            f.branch(v, done, head);
            f.switch_to(done);
            f.ret(None);
        });
        mb.entry("main", |f| {
            let t = f.spawn(waiter, 0);
            f.store(flag.at(0), 1);
            f.join(t);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let session = Session::for_module(&m);
        let run = session
            .prepare(Tool::HelgrindLib)
            .unwrap()
            .execute()
            .unwrap();
        let other = session
            .prepare(Tool::HelgrindLibSpin { window: 7 })
            .unwrap();
        assert_ne!(other.fingerprint(), run.prepared().fingerprint());
        let err = ExecutedRun::from_trace(other, run.into_trace());
        assert!(matches!(err, Err(AnalyzeError::TraceMismatch { .. })));

        // And the matching prepared module is accepted.
        let lib = session.prepare(Tool::HelgrindLib).unwrap();
        let run2 = session
            .prepare(Tool::HelgrindLib)
            .unwrap()
            .execute()
            .unwrap();
        assert!(ExecutedRun::from_trace(lib, run2.into_trace()).is_ok());
    }
}
