//! The staged session API: **prepare once, execute once, detect many**.
//!
//! [`Session`] holds the run configuration (MSM flavour, VM config,
//! context cap, nolib library style) and stages the pipeline explicitly:
//!
//! 1. [`Session::prepare`] applies a tool's static phases (nolib lowering,
//!    spin instrumentation) and yields a [`PreparedModule`];
//! 2. [`PreparedModule::execute`] interprets the prepared module once and
//!    records the event stream as a replayable [`Trace`] inside an
//!    [`ExecutedRun`];
//! 3. [`ExecutedRun::run`] executes a [`DetectRequest`] — replay the
//!    trace under any fan-out of tools/configurations, sequentially or
//!    on the parallel sharded engine, with schedules, watchdogs, and
//!    budgets — and each replay is equivalent to having run that
//!    detector live (the VM hands events to sinks by reference,
//!    synchronously, and detectors are deterministic). The historical
//!    `detect_*` method family remains as thin wrappers over `run`;
//!    see [`crate::request`] for the mapping.
//!
//! Because the VM is deterministic, two tools whose preparation produced
//! the same module (same [`Module::fingerprint`]) see the same stream —
//! e.g. `Helgrind+ lib` and `DRD` (neither rewrites the module), or two
//! spin windows that accepted the same loops. Harnesses exploit this by
//! caching [`ExecutedRun`]s per fingerprint and fanning detection out.

use crate::parallel::{
    expect_engine, BudgetResource, EngineError, EngineOptions, PartialMetrics, Schedule,
    PERIODIC_MASK,
};
use crate::request::{DetectMode, DetectOutcome, DetectRequest, DetectTarget};
use crate::{AnalysisOutcome, AnalyzeError, DescribedReport, Tool};
use spinrace_detector::{AnyDetector, DetectorConfig, MsmMode};
use spinrace_spinfind::{SpinCriteria, SpinFinder};
use spinrace_synclib::{lower_to_spinlib_styled, LibStyle};
use spinrace_tir::Module;
use spinrace_tracefmt::{chunk_mem, ChunkedTraceReader, StreamStats};
use spinrace_vm::{
    run_module, Event, EventSink, RunSummary, Tee, Trace, TraceError, TraceRecorder, VmConfig,
};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::time::Instant;

/// A configured analysis session over one source module.
#[derive(Clone, Copy, Debug)]
pub struct Session<'m> {
    module: &'m Module,
    msm: MsmMode,
    vm: VmConfig,
    context_cap: usize,
    nolib_style: LibStyle,
}

impl<'m> Session<'m> {
    /// Session with the defaults of [`crate::Analyzer::tool`]: short MSM,
    /// round-robin scheduling, cap 1000, textbook nolib primitives.
    pub fn for_module(module: &'m Module) -> Session<'m> {
        Session {
            module,
            msm: MsmMode::Short,
            vm: VmConfig::round_robin(),
            context_cap: 1000,
            nolib_style: LibStyle::Textbook,
        }
    }

    /// Select the memory state machine flavour (hybrid tools).
    pub fn msm(mut self, msm: MsmMode) -> Self {
        self.msm = msm;
        self
    }

    /// Switch to the long-running MSM (integration-test mode).
    pub fn long_msm(self) -> Self {
        self.msm(MsmMode::Long)
    }

    /// Use a seeded random scheduler.
    pub fn seed(mut self, seed: u64) -> Self {
        self.vm = VmConfig::random(seed);
        self
    }

    /// Override the VM configuration wholesale.
    pub fn vm_config(mut self, vm: VmConfig) -> Self {
        self.vm = vm;
        self
    }

    /// Override the racy-context cap.
    pub fn cap(mut self, cap: usize) -> Self {
        self.context_cap = cap;
        self
    }

    /// Library flavour used when lowering for `nolib` tools.
    pub fn nolib_style(mut self, style: LibStyle) -> Self {
        self.nolib_style = style;
        self
    }

    /// Use the obscure library flavour for nolib lowering.
    pub fn obscure_nolib(self) -> Self {
        self.nolib_style(LibStyle::Obscure)
    }

    /// Run `tool`'s static phases: lower the module for `nolib` tools,
    /// instrument spin loops for `+spin` tools.
    pub fn prepare(&self, tool: Tool) -> Result<PreparedModule, AnalyzeError> {
        let mut module = match tool {
            Tool::HelgrindNolibSpin { .. } => {
                lower_to_spinlib_styled(self.module, self.nolib_style)?
            }
            _ => self.module.clone(),
        };
        let spin_loops_found = match tool {
            Tool::HelgrindLibSpin { window } | Tool::HelgrindNolibSpin { window } => {
                let finder = SpinFinder::new(SpinCriteria::with_window(window));
                finder.instrument(&mut module).accepted()
            }
            _ => 0,
        };
        let fingerprint = module.fingerprint();
        Ok(PreparedModule {
            original_name: self.module.name.clone(),
            tool,
            module,
            fingerprint,
            spin_loops_found,
            msm: self.msm,
            vm: self.vm,
            context_cap: self.context_cap,
        })
    }
}

/// A module after a tool's static phases, ready to execute. Carries the
/// session knobs so detection configurations can be derived later.
#[derive(Clone, Debug)]
pub struct PreparedModule {
    original_name: String,
    tool: Tool,
    module: Module,
    fingerprint: u64,
    spin_loops_found: usize,
    msm: MsmMode,
    vm: VmConfig,
    context_cap: usize,
}

impl PreparedModule {
    /// The prepared (lowered/instrumented) module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The tool whose phases produced this module.
    pub fn tool(&self) -> Tool {
        self.tool
    }

    /// Spinning read loops accepted by the instrumentation phase.
    pub fn spin_loops_found(&self) -> usize {
        self.spin_loops_found
    }

    /// Structural fingerprint of the prepared module (computed once at
    /// prepare time) — the sharing key for trace caches: prepared modules
    /// with equal fingerprints produce identical event streams under the
    /// same VM configuration.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The VM configuration the session selected.
    pub fn vm_config(&self) -> VmConfig {
        self.vm
    }

    /// Detector configuration for `tool` under this session's MSM flavour
    /// and context cap.
    pub fn config_for(&self, tool: Tool) -> DetectorConfig {
        tool.detector_config(self.msm, self.context_cap)
    }

    /// Detector configuration for this module's own tool.
    pub fn default_config(&self) -> DetectorConfig {
        self.config_for(self.tool)
    }

    /// Interpret the module once, recording the full event stream.
    pub fn execute(self) -> Result<ExecutedRun, AnalyzeError> {
        let mut rec = TraceRecorder::new(&self.module, self.vm).labeled(self.tool.label());
        let summary = run_module(&self.module, self.vm, &mut rec)?;
        Ok(ExecutedRun {
            trace: rec.finish(summary),
            prepared: self,
        })
    }

    /// Interpret the module once with the default detector attached
    /// **live** — no event buffering. This is the classic `Analyzer`
    /// single-shot path: use it when one detection per execution is all
    /// that's needed (benches, overhead measurements).
    pub fn detect_live(&self) -> Result<AnalysisOutcome, AnalyzeError> {
        let mut det = AnyDetector::new(self.default_config());
        let summary = run_module(&self.module, self.vm, &mut det)?;
        Ok(self.assemble(self.tool.label(), det, summary))
    }

    /// Interpret the module once with the default detector attached live
    /// **and** a trace recorder teed into the same stream: one run yields
    /// both the outcome and a replayable [`Trace`] for further fan-out.
    pub fn execute_detecting(self) -> Result<(ExecutedRun, AnalysisOutcome), AnalyzeError> {
        let mut det = AnyDetector::new(self.default_config());
        let rec = TraceRecorder::new(&self.module, self.vm).labeled(self.tool.label());
        let mut tee = Tee::new(rec, &mut det);
        let summary = run_module(&self.module, self.vm, &mut tee)?;
        let (rec, _) = tee.into_inner();
        let outcome = self.assemble(self.tool.label(), det, summary.clone());
        Ok((
            ExecutedRun {
                trace: rec.finish(summary),
                prepared: self,
            },
            outcome,
        ))
    }

    /// Resolve a request's targets against this prepared module: each
    /// target becomes a `(tool label, detector configuration)` pair, in
    /// request order.
    pub(crate) fn resolve_targets(&self, req: &DetectRequest) -> Vec<(String, DetectorConfig)> {
        req.targets()
            .iter()
            .map(|t| match *t {
                DetectTarget::Own => (self.tool.label(), self.default_config()),
                DetectTarget::Tool(tool) => (tool.label(), self.config_for(tool)),
                DetectTarget::Config(cfg) => (self.tool.label(), cfg),
            })
            .collect()
    }

    /// Execute a [`DetectRequest`] against a binary trace **stream**
    /// without materializing the event vector: the reader decodes one
    /// chunk ahead of the detectors, so peak memory is O(chunk) rather
    /// than O(trace) and detection starts before the stream has been
    /// fully read. Replay is sequential regardless of the request's
    /// [`DetectMode`] (the parallel engine shards over a full event
    /// slice and goes through [`ExecutedRun`] instead), but the
    /// request's targets fan out on one pass and its watchdog/budget
    /// [`EngineOptions`] are enforced.
    ///
    /// Fails with [`AnalyzeError::TraceMismatch`] when the stream's
    /// fingerprint does not match this prepared module, with
    /// [`AnalyzeError::Trace`] on any decode error (corruption is
    /// detected per chunk, possibly mid-replay), and with
    /// [`AnalyzeError::Engine`] on a tripped watchdog or budget
    /// (event-budget trips replay exactly the affordable prefix and
    /// carry faithful [`PartialMetrics`]).
    pub fn try_run_streamed<R: io::Read + Send>(
        &self,
        req: &DetectRequest,
        reader: ChunkedTraceReader<R>,
    ) -> Result<(DetectOutcome, StreamStats), AnalyzeError> {
        self.try_run_streamed_observed(req, reader, |_| {})
    }

    /// [`Self::try_run_streamed`] with a per-chunk progress observer:
    /// after each decoded chunk has been fed to every target, `observe`
    /// is called once per target with the running totals and the
    /// reports that chunk newly produced — the hook a streaming server
    /// uses to push incremental verdicts before end-of-upload.
    pub fn try_run_streamed_observed<R, F>(
        &self,
        req: &DetectRequest,
        mut reader: ChunkedTraceReader<R>,
        mut observe: F,
    ) -> Result<(DetectOutcome, StreamStats), AnalyzeError>
    where
        R: io::Read + Send,
        F: FnMut(StreamProgress<'_>),
    {
        if reader.header().module_fingerprint != self.fingerprint {
            return Err(AnalyzeError::TraceMismatch {
                trace_fingerprint: reader.header().module_fingerprint,
                module_fingerprint: self.fingerprint,
            });
        }
        let summary = reader.summary().clone();
        let total = reader.header().events;
        let resolved = self.resolve_targets(req);
        let mut dets: Vec<AnyDetector> = resolved
            .iter()
            .map(|&(_, cfg)| AnyDetector::new(cfg))
            .collect();
        let mut seen: Vec<usize> = vec![0; dets.len()];
        let opts = req.engine_options();
        let limit = opts.budget.max_events.map_or(total, |m| m.min(total));
        let truncated = limit < total;
        let deadline = opts.watchdog.map(|d| (Instant::now() + d, d));
        let shadow_limit = opts.budget.max_shadow_bytes.unwrap_or(usize::MAX);

        // The same decode-ahead pipeline as `ChunkedTraceReader::
        // replay_into`, with the consumer side widened to many
        // detectors plus budget/watchdog enforcement mirroring the
        // engine's sequential pass (periodic checks every 4096 events).
        let resident = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = sync_channel::<Result<Vec<Event>, TraceError>>(1);

        let stats = std::thread::scope(|scope| -> Result<StreamStats, AnalyzeError> {
            let decoder_resident = Arc::clone(&resident);
            let decoder_peak = Arc::clone(&peak);
            let reader = &mut reader;
            scope.spawn(move || loop {
                match reader.next_chunk() {
                    Ok(Some(chunk)) => {
                        let now = decoder_resident.fetch_add(chunk_mem(&chunk), Ordering::Relaxed)
                            + chunk_mem(&chunk);
                        decoder_peak.fetch_max(now, Ordering::Relaxed);
                        // A closed receiver means the consumer bailed on
                        // an earlier error; just stop decoding.
                        if tx.send(Ok(chunk)).is_err() {
                            return;
                        }
                    }
                    Ok(None) => return,
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        return;
                    }
                }
            });

            let mut stats = StreamStats::default();
            for msg in rx {
                let chunk = msg.map_err(AnalyzeError::Trace)?;
                for ev in &chunk {
                    if truncated && stats.events == limit {
                        break;
                    }
                    if stats.events & (PERIODIC_MASK as u64) == 0 {
                        if let Some((at, d)) = deadline {
                            if Instant::now() >= at {
                                return Err(EngineError::Watchdog {
                                    limit_ms: d.as_millis() as u64,
                                }
                                .into());
                            }
                        }
                        if shadow_limit != usize::MAX {
                            for det in &dets {
                                let bytes = det.shadow_resident_bytes();
                                if bytes > shadow_limit {
                                    return Err(EngineError::BudgetExhausted {
                                        resource: BudgetResource::ShadowBytes,
                                        limit: shadow_limit as u64,
                                        used: bytes as u64,
                                        partial: PartialMetrics {
                                            events_processed: stats.events,
                                            contexts: det.racy_contexts(),
                                            shadow_bytes: bytes,
                                        },
                                    }
                                    .into());
                                }
                            }
                        }
                    }
                    for det in &mut dets {
                        det.on_event(ev);
                    }
                    stats.events += 1;
                }
                stats.chunks += 1;
                resident.fetch_sub(chunk_mem(&chunk), Ordering::Relaxed);
                if truncated && stats.events == limit {
                    let first = &dets[0];
                    return Err(EngineError::BudgetExhausted {
                        resource: BudgetResource::Events,
                        limit,
                        used: total,
                        partial: PartialMetrics {
                            events_processed: limit,
                            contexts: first.racy_contexts(),
                            shadow_bytes: first.shadow_resident_bytes(),
                        },
                    }
                    .into());
                }
                for (idx, det) in dets.iter().enumerate() {
                    let reports = det.reports().reports();
                    let new: Vec<DescribedReport> = reports[seen[idx]..]
                        .iter()
                        .map(|r| DescribedReport {
                            location: self.module.describe_addr(r.addr),
                            report: r.clone(),
                        })
                        .collect();
                    seen[idx] = reports.len();
                    observe(StreamProgress {
                        target: idx,
                        tool_label: &resolved[idx].0,
                        chunk: stats.chunks,
                        events: stats.events,
                        contexts: det.racy_contexts(),
                        new_reports: &new,
                    });
                }
            }
            // Final shadow check: the periodic poll samples every 4096
            // events, so a short stream that ends over budget lands here.
            if shadow_limit != usize::MAX {
                for det in &dets {
                    let bytes = det.shadow_resident_bytes();
                    if bytes > shadow_limit {
                        return Err(EngineError::BudgetExhausted {
                            resource: BudgetResource::ShadowBytes,
                            limit: shadow_limit as u64,
                            used: bytes as u64,
                            partial: PartialMetrics {
                                events_processed: stats.events,
                                contexts: det.racy_contexts(),
                                shadow_bytes: bytes,
                            },
                        }
                        .into());
                    }
                }
            }
            Ok(stats)
        })?;

        let mut stats = stats;
        stats.peak_resident_bytes = peak.load(Ordering::Relaxed);
        let outcomes = resolved
            .into_iter()
            .zip(dets)
            .map(|((label, _), det)| self.assemble(label, det, summary.clone()))
            .collect();
        Ok((DetectOutcome { outcomes }, stats))
    }

    /// Replay a binary trace stream under this module's own tool.
    ///
    /// Legacy wrapper: equivalent to
    /// [`try_run_streamed`](Self::try_run_streamed) with
    /// [`DetectRequest::own`] — prefer the request form.
    pub fn try_detect_streamed<R: io::Read + Send>(
        &self,
        reader: ChunkedTraceReader<R>,
    ) -> Result<(AnalysisOutcome, StreamStats), AnalyzeError> {
        let (out, stats) = self.try_run_streamed(&DetectRequest::own(), reader)?;
        Ok((out.into_single(), stats))
    }

    /// Streamed replay under an explicit detector configuration.
    ///
    /// Legacy wrapper: equivalent to
    /// [`try_run_streamed`](Self::try_run_streamed) with
    /// [`DetectRequest::config`] — prefer the request form.
    pub fn try_detect_streamed_with<R: io::Read + Send>(
        &self,
        cfg: DetectorConfig,
        reader: ChunkedTraceReader<R>,
    ) -> Result<(AnalysisOutcome, StreamStats), AnalyzeError> {
        let (out, stats) = self.try_run_streamed(&DetectRequest::config(cfg), reader)?;
        Ok((out.into_single(), stats))
    }

    /// Streamed replay under *another tool's* configuration and label —
    /// the fingerprint-sharing contract of [`ExecutedRun::detect_as`]
    /// applies.
    ///
    /// Legacy wrapper: equivalent to
    /// [`try_run_streamed`](Self::try_run_streamed) with
    /// [`DetectRequest::tool`] — prefer the request form.
    pub fn try_detect_streamed_as<R: io::Read + Send>(
        &self,
        tool: Tool,
        reader: ChunkedTraceReader<R>,
    ) -> Result<(AnalysisOutcome, StreamStats), AnalyzeError> {
        let (out, stats) = self.try_run_streamed(&DetectRequest::tool(tool), reader)?;
        Ok((out.into_single(), stats))
    }

    /// Build the user-facing outcome from a finished detector.
    fn assemble(
        &self,
        tool_label: String,
        det: AnyDetector,
        summary: RunSummary,
    ) -> AnalysisOutcome {
        self.assemble_parts(
            tool_label,
            det.reports(),
            det.metrics(),
            det.promoted_locations(),
            summary,
        )
    }

    /// Build the user-facing outcome from detection parts — shared by the
    /// live/sequential path ([`Self::assemble`]) and the parallel merge,
    /// so the two can never diverge in how reports are described.
    fn assemble_parts(
        &self,
        tool_label: String,
        collector: &spinrace_detector::ReportCollector,
        metrics: spinrace_detector::DetectorMetrics,
        promoted_locations: usize,
        summary: RunSummary,
    ) -> AnalysisOutcome {
        let reports: Vec<DescribedReport> = collector
            .reports()
            .iter()
            .map(|r| DescribedReport {
                location: self.module.describe_addr(r.addr),
                report: r.clone(),
            })
            .collect();
        AnalysisOutcome {
            module_name: self.original_name.clone(),
            tool_label,
            contexts: collector.contexts(),
            reports,
            metrics,
            promoted_locations,
            spin_loops_found: self.spin_loops_found,
            summary,
        }
    }
}

/// One per-target, per-chunk progress report from
/// [`PreparedModule::try_run_streamed_observed`]. Borrowed views into
/// the running detection — copy out what must outlive the callback.
#[derive(Debug)]
pub struct StreamProgress<'a> {
    /// Index of the target within the request's fan-out.
    pub target: usize,
    /// The target's tool label.
    pub tool_label: &'a str,
    /// Chunks consumed so far (this report fires after chunk `chunk`).
    pub chunk: u32,
    /// Events fed to every detector so far.
    pub events: u64,
    /// Racy contexts this target has recorded so far.
    pub contexts: usize,
    /// Reports this chunk newly produced for this target, described
    /// against the prepared module.
    pub new_reports: &'a [DescribedReport],
}

/// One recorded execution of a prepared module: the trace plus everything
/// needed to interpret detector replays against it.
#[derive(Clone, Debug)]
pub struct ExecutedRun {
    prepared: PreparedModule,
    trace: Trace,
}

impl ExecutedRun {
    /// Rebuild an executed run from a parsed [`Trace`] and the prepared
    /// module it was recorded from. Fails when the trace's fingerprint
    /// does not match `prepared` — replaying a stream against a different
    /// program would silently misattribute every address and pc.
    pub fn from_trace(prepared: PreparedModule, trace: Trace) -> Result<ExecutedRun, AnalyzeError> {
        if trace.header.module_fingerprint != prepared.fingerprint() {
            return Err(AnalyzeError::TraceMismatch {
                trace_fingerprint: trace.header.module_fingerprint,
                module_fingerprint: prepared.fingerprint(),
            });
        }
        Ok(ExecutedRun { prepared, trace })
    }

    /// Rebuild an executed run from a trace **file** in either on-disk
    /// encoding (binary columnar or JSON, told apart by their first
    /// bytes) — the same fingerprint check as [`Self::from_trace`]. The
    /// whole stream is materialized; it is the right entry point for the
    /// parallel replay engine and detection fan-out. For bounded-memory
    /// sequential replay, open a [`ChunkedTraceReader`] and use
    /// [`PreparedModule::try_detect_streamed`].
    pub fn from_trace_file(
        prepared: PreparedModule,
        path: &Path,
    ) -> Result<ExecutedRun, AnalyzeError> {
        let trace = spinrace_tracefmt::load_trace_file(path)?;
        ExecutedRun::from_trace(prepared, trace)
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Take the trace (e.g. to serialize it).
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// The prepared module this run executed.
    pub fn prepared(&self) -> &PreparedModule {
        &self.prepared
    }

    /// Statistics of the recorded run.
    pub fn summary(&self) -> &RunSummary {
        &self.trace.summary
    }

    // ---- the unified entry point ----

    /// Execute a [`DetectRequest`] against the recorded trace: every
    /// target replays on the mode the request selects (sequentially, or
    /// on the parallel sharded engine — multi-target fan-outs share one
    /// worker pool), under the request's schedule, watchdog, budget,
    /// and fault options. Outcomes come back in target order and are
    /// bit-identical across every mode, worker count, and schedule.
    ///
    /// [`DetectMode::Streamed`] degenerates to sequential here: the
    /// trace is already materialized. Bounded-memory streaming goes
    /// through [`PreparedModule::try_run_streamed`] instead.
    ///
    /// Fails with a structured [`EngineError`] on a worker panic, lost
    /// or timed-out handoff, watchdog trip, or exhausted budget;
    /// without explicit options none of those can happen and
    /// [`ExecutedRun::run`] is the convenient form.
    pub fn try_run(&self, req: &DetectRequest) -> Result<DetectOutcome, EngineError> {
        let resolved = self.prepared.resolve_targets(req);
        let workers = match req.mode() {
            DetectMode::Parallel { workers } => workers,
            DetectMode::Sequential | DetectMode::Streamed => 1,
        };
        let opts = req.engine_options();
        let outcomes = if resolved.len() == 1 {
            // The single-target path keeps the engine's full fault and
            // error machinery exactly as the `try_detect_*` family
            // exposed it.
            let (label, cfg) = resolved.into_iter().next().unwrap();
            let merged =
                crate::parallel::try_run_sharded_opts(cfg, &self.trace.events, workers, opts)?;
            vec![self.merged_outcome(label, merged)]
        } else {
            let cfgs: Vec<DetectorConfig> = resolved.iter().map(|&(_, cfg)| cfg).collect();
            crate::parallel::try_run_many_sharded_opts(&cfgs, &self.trace.events, workers, opts)?
                .into_iter()
                .zip(resolved)
                .map(|(merged, (label, _))| self.merged_outcome(label, merged))
                .collect()
        };
        Ok(DetectOutcome { outcomes })
    }

    /// [`Self::try_run`], unwrapped: panics when the replay engine
    /// fails (without explicit [`EngineOptions`] the only way that can
    /// happen is a genuine worker panic).
    pub fn run(&self, req: &DetectRequest) -> DetectOutcome {
        expect_engine(self.try_run(req))
    }

    // ---- legacy wrappers over `run`/`try_run` ----

    /// Replay under this module's own tool with the session's defaults.
    ///
    /// Legacy wrapper: equivalent to [`run`](Self::run) with
    /// [`DetectRequest::own`] — prefer the request form.
    pub fn detect(&self) -> AnalysisOutcome {
        self.run(&DetectRequest::own()).into_single()
    }

    /// Replay under an explicit detector configuration (labelled with this
    /// module's own tool).
    ///
    /// Legacy wrapper: equivalent to [`run`](Self::run) with
    /// [`DetectRequest::config`] — prefer the request form.
    pub fn detect_with(&self, cfg: DetectorConfig) -> AnalysisOutcome {
        self.run(&DetectRequest::config(cfg)).into_single()
    }

    /// Replay once per configuration: one execution, many detections.
    ///
    /// Legacy wrapper: equivalent to [`run`](Self::run) with
    /// [`DetectRequest::configs`] — prefer the request form.
    pub fn detect_many(&self, cfgs: &[DetectorConfig]) -> Vec<AnalysisOutcome> {
        self.run(&DetectRequest::configs(cfgs)).into_vec()
    }

    /// Replay under *another tool's* detector configuration. Only valid
    /// when that tool's preparation of the same source module yields a
    /// prepared module with the same fingerprint (e.g. `Helgrind+ lib`
    /// and `DRD`, which both run the unmodified module) — harnesses check
    /// fingerprints before sharing.
    ///
    /// Legacy wrapper: equivalent to [`run`](Self::run) with
    /// [`DetectRequest::tool`] — prefer the request form.
    pub fn detect_as(&self, tool: Tool) -> AnalysisOutcome {
        self.run(&DetectRequest::tool(tool)).into_single()
    }

    // ---- parallel sharded replay (see `crate::parallel`) ----

    /// Replay under this module's own tool on `workers` threads with the
    /// default [`Schedule::Balanced`] plan. The outcome — reports,
    /// contexts, metrics, promotions — is bit-identical to
    /// [`ExecutedRun::detect`] for every worker count and schedule; at
    /// 1 worker this takes the sequential fast path (no pool, no
    /// ownership gate — same cost as [`ExecutedRun::detect`]).
    ///
    /// Legacy wrapper: equivalent to [`run`](Self::run) with
    /// [`DetectRequest::own`]`.parallel(workers)` — prefer the request
    /// form.
    pub fn detect_parallel(&self, workers: usize) -> AnalysisOutcome {
        self.run(&DetectRequest::own().parallel(workers))
            .into_single()
    }

    /// [`ExecutedRun::detect_parallel`] with an explicit scheduling mode.
    ///
    /// Legacy wrapper: equivalent to [`run`](Self::run) with
    /// [`DetectRequest::own`]`.parallel(workers).scheduled(schedule)`.
    pub fn detect_parallel_scheduled(&self, workers: usize, schedule: Schedule) -> AnalysisOutcome {
        self.run(&DetectRequest::own().parallel(workers).scheduled(schedule))
            .into_single()
    }

    /// Parallel replay under an explicit detector configuration (labelled
    /// with this module's own tool).
    ///
    /// Legacy wrapper: equivalent to [`run`](Self::run) with
    /// [`DetectRequest::config`]`(cfg).parallel(workers)`.
    pub fn detect_with_parallel(&self, cfg: DetectorConfig, workers: usize) -> AnalysisOutcome {
        self.run(&DetectRequest::config(cfg).parallel(workers))
            .into_single()
    }

    /// [`ExecutedRun::detect_with_parallel`] with an explicit schedule.
    ///
    /// Legacy wrapper: equivalent to [`run`](Self::run) with
    /// [`DetectRequest::config`]`(cfg).parallel(workers).scheduled(schedule)`.
    pub fn detect_with_parallel_scheduled(
        &self,
        cfg: DetectorConfig,
        workers: usize,
        schedule: Schedule,
    ) -> AnalysisOutcome {
        self.run(
            &DetectRequest::config(cfg)
                .parallel(workers)
                .scheduled(schedule),
        )
        .into_single()
    }

    /// Parallel replay under *another tool's* configuration — the
    /// fingerprint-sharing contract of [`ExecutedRun::detect_as`] applies.
    ///
    /// Legacy wrapper: equivalent to [`run`](Self::run) with
    /// [`DetectRequest::tool`]`(tool).parallel(workers)`.
    pub fn detect_as_parallel(&self, tool: Tool, workers: usize) -> AnalysisOutcome {
        self.run(&DetectRequest::tool(tool).parallel(workers))
            .into_single()
    }

    /// [`ExecutedRun::detect_as_parallel`] with an explicit schedule.
    ///
    /// Legacy wrapper: equivalent to [`run`](Self::run) with
    /// [`DetectRequest::tool`]`(tool).parallel(workers).scheduled(schedule)`.
    pub fn detect_as_parallel_scheduled(
        &self,
        tool: Tool,
        workers: usize,
        schedule: Schedule,
    ) -> AnalysisOutcome {
        self.run(
            &DetectRequest::tool(tool)
                .parallel(workers)
                .scheduled(schedule),
        )
        .into_single()
    }

    /// Parallel fan-out: one recorded execution, many parallel detections
    /// on **one** shared worker pool (threads are spawned once, not once
    /// per configuration — see [`crate::parallel::run_many_sharded`]).
    ///
    /// Legacy wrapper: equivalent to [`run`](Self::run) with
    /// [`DetectRequest::configs`]`(cfgs).parallel(workers)`.
    pub fn detect_many_parallel(
        &self,
        cfgs: &[DetectorConfig],
        workers: usize,
    ) -> Vec<AnalysisOutcome> {
        self.run(&DetectRequest::configs(cfgs).parallel(workers))
            .into_vec()
    }

    /// Tool fan-out on one shared pool: replay once per tool in `tools`,
    /// each labelled with its own tool. Every tool must satisfy the
    /// fingerprint-sharing contract of [`ExecutedRun::detect_as`].
    ///
    /// Legacy wrapper: equivalent to [`run`](Self::run) with
    /// [`DetectRequest::tools`]`(tools).parallel(workers)`.
    pub fn detect_many_as_parallel(&self, tools: &[Tool], workers: usize) -> Vec<AnalysisOutcome> {
        self.run(&DetectRequest::tools(tools).parallel(workers))
            .into_vec()
    }

    // ---- fallible parallel replay ----

    /// Fallible [`ExecutedRun::detect_parallel`]: a worker panic, handoff
    /// timeout, watchdog trip, or exhausted budget comes back as a
    /// structured [`EngineError`] instead of a panic or a hang.
    ///
    /// Legacy wrapper: equivalent to [`try_run`](Self::try_run) with
    /// [`DetectRequest::own`]`.parallel(workers)`.
    pub fn try_detect_parallel(&self, workers: usize) -> Result<AnalysisOutcome, EngineError> {
        Ok(self
            .try_run(&DetectRequest::own().parallel(workers))?
            .into_single())
    }

    /// Fallible [`ExecutedRun::detect_parallel_scheduled`].
    ///
    /// Legacy wrapper: equivalent to [`try_run`](Self::try_run) with
    /// [`DetectRequest::own`]`.parallel(workers).scheduled(schedule)`.
    pub fn try_detect_parallel_scheduled(
        &self,
        workers: usize,
        schedule: Schedule,
    ) -> Result<AnalysisOutcome, EngineError> {
        Ok(self
            .try_run(&DetectRequest::own().parallel(workers).scheduled(schedule))?
            .into_single())
    }

    /// Fallible [`ExecutedRun::detect_with_parallel`].
    ///
    /// Legacy wrapper: equivalent to [`try_run`](Self::try_run) with
    /// [`DetectRequest::config`]`(cfg).parallel(workers)`.
    pub fn try_detect_with_parallel(
        &self,
        cfg: DetectorConfig,
        workers: usize,
    ) -> Result<AnalysisOutcome, EngineError> {
        Ok(self
            .try_run(&DetectRequest::config(cfg).parallel(workers))?
            .into_single())
    }

    /// Fallible [`ExecutedRun::detect_with_parallel_scheduled`].
    ///
    /// Legacy wrapper: equivalent to [`try_run`](Self::try_run) with
    /// [`DetectRequest::config`]`(cfg).parallel(workers).scheduled(schedule)`.
    pub fn try_detect_with_parallel_scheduled(
        &self,
        cfg: DetectorConfig,
        workers: usize,
        schedule: Schedule,
    ) -> Result<AnalysisOutcome, EngineError> {
        Ok(self
            .try_run(
                &DetectRequest::config(cfg)
                    .parallel(workers)
                    .scheduled(schedule),
            )?
            .into_single())
    }

    /// Fallible [`ExecutedRun::detect_as_parallel`].
    ///
    /// Legacy wrapper: equivalent to [`try_run`](Self::try_run) with
    /// [`DetectRequest::tool`]`(tool).parallel(workers)`.
    pub fn try_detect_as_parallel(
        &self,
        tool: Tool,
        workers: usize,
    ) -> Result<AnalysisOutcome, EngineError> {
        Ok(self
            .try_run(&DetectRequest::tool(tool).parallel(workers))?
            .into_single())
    }

    /// Fallible [`ExecutedRun::detect_as_parallel_scheduled`].
    ///
    /// Legacy wrapper: equivalent to [`try_run`](Self::try_run) with
    /// [`DetectRequest::tool`]`(tool).parallel(workers).scheduled(schedule)`.
    pub fn try_detect_as_parallel_scheduled(
        &self,
        tool: Tool,
        workers: usize,
        schedule: Schedule,
    ) -> Result<AnalysisOutcome, EngineError> {
        Ok(self
            .try_run(
                &DetectRequest::tool(tool)
                    .parallel(workers)
                    .scheduled(schedule),
            )?
            .into_single())
    }

    /// Parallel replay under another tool's configuration with full
    /// [`EngineOptions`] control — schedule, watchdogs, budgets, and
    /// fault injection. This is the entry point `trace replay --fault`
    /// drives.
    ///
    /// Legacy wrapper: equivalent to [`try_run`](Self::try_run) with
    /// [`DetectRequest::tool`]`(tool).parallel(workers).options(opts)`.
    pub fn try_detect_as_parallel_opts(
        &self,
        tool: Tool,
        workers: usize,
        opts: EngineOptions,
    ) -> Result<AnalysisOutcome, EngineError> {
        Ok(self
            .try_run(&DetectRequest::tool(tool).parallel(workers).options(opts))?
            .into_single())
    }

    /// Fallible [`ExecutedRun::detect_many_parallel`].
    ///
    /// Legacy wrapper: equivalent to [`try_run`](Self::try_run) with
    /// [`DetectRequest::configs`]`(cfgs).parallel(workers)`.
    pub fn try_detect_many_parallel(
        &self,
        cfgs: &[DetectorConfig],
        workers: usize,
    ) -> Result<Vec<AnalysisOutcome>, EngineError> {
        Ok(self
            .try_run(&DetectRequest::configs(cfgs).parallel(workers))?
            .into_vec())
    }

    /// Fallible [`ExecutedRun::detect_many_as_parallel`].
    ///
    /// Legacy wrapper: equivalent to [`try_run`](Self::try_run) with
    /// [`DetectRequest::tools`]`(tools).parallel(workers)`.
    pub fn try_detect_many_as_parallel(
        &self,
        tools: &[Tool],
        workers: usize,
    ) -> Result<Vec<AnalysisOutcome>, EngineError> {
        Ok(self
            .try_run(&DetectRequest::tools(tools).parallel(workers))?
            .into_vec())
    }

    fn merged_outcome(
        &self,
        label: String,
        merged: spinrace_detector::MergedDetection,
    ) -> AnalysisOutcome {
        self.prepared.assemble_parts(
            label,
            &merged.reports,
            merged.metrics,
            merged.promoted_locations,
            self.trace.summary.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Analyzer;
    use spinrace_tir::ModuleBuilder;

    fn racy() -> Module {
        let mut mb = ModuleBuilder::new("racy");
        let g = mb.global("g", 1);
        let w = mb.function("w", 1, |f| {
            let v = f.load(g.at(0));
            let v2 = f.add(v, 1);
            f.store(g.at(0), v2);
            f.ret(None);
        });
        mb.entry("main", |f| {
            let t1 = f.spawn(w, 0);
            let t2 = f.spawn(w, 1);
            f.join(t1);
            f.join(t2);
            f.ret(None);
        });
        mb.finish().unwrap()
    }

    /// The tentpole equivalence: one recorded trace replayed under a
    /// detector configuration yields byte-identical report lists and
    /// contexts to the live `Analyzer` run, for every paper tool.
    #[test]
    fn replay_equals_live_for_every_tool() {
        let m = racy();
        for tool in Tool::paper_lineup() {
            let live = Analyzer::tool(tool).analyze(&m).unwrap();
            let run = Session::for_module(&m)
                .prepare(tool)
                .unwrap()
                .execute()
                .unwrap();
            let replayed = run.run(&DetectRequest::own()).into_single();
            assert_eq!(replayed.contexts, live.contexts, "{}", tool.label());
            assert_eq!(replayed.reports.len(), live.reports.len());
            for (a, b) in replayed.reports.iter().zip(&live.reports) {
                assert_eq!(a.location, b.location);
                assert_eq!(a.report, b.report);
            }
            assert_eq!(replayed.metrics, live.metrics);
            assert_eq!(replayed.promoted_locations, live.promoted_locations);
            assert_eq!(replayed.summary, live.summary);
        }
    }

    #[test]
    fn lib_and_drd_share_one_prepared_module() {
        let m = racy();
        let session = Session::for_module(&m);
        let lib = session.prepare(Tool::HelgrindLib).unwrap();
        let drd = session.prepare(Tool::Drd).unwrap();
        assert_eq!(lib.fingerprint(), drd.fingerprint());
        let run = lib.execute().unwrap();
        let as_drd = run.run(&DetectRequest::tool(Tool::Drd)).into_single();
        let live_drd = Analyzer::tool(Tool::Drd).analyze(&m).unwrap();
        assert_eq!(as_drd.contexts, live_drd.contexts);
        assert_eq!(as_drd.tool_label, "DRD");
    }

    #[test]
    fn detect_many_fans_out_configurations() {
        let m = racy();
        let run = Session::for_module(&m)
            .prepare(Tool::HelgrindLib)
            .unwrap()
            .execute()
            .unwrap();
        let short = run.prepared().config_for(Tool::HelgrindLib);
        let capped = short.with_cap(1);
        let outs = run
            .run(&DetectRequest::configs(&[short, capped]))
            .into_vec();
        assert_eq!(outs.len(), 2);
        assert!(outs[0].contexts >= outs[1].contexts);
        assert_eq!(outs[1].contexts, 1, "cap 1 clamps the context count");
    }

    #[test]
    fn pooled_tool_fanout_matches_individual_parallel_detections() {
        let m = racy();
        let run = Session::for_module(&m)
            .prepare(Tool::HelgrindLib)
            .unwrap()
            .execute()
            .unwrap();
        // Lib and DRD share the unmodified module's fingerprint, so both
        // may replay this recording (the detect_as contract).
        let tools = [Tool::HelgrindLib, Tool::Drd];
        for workers in [1, 2, 4] {
            let pooled = run
                .run(&DetectRequest::tools(&tools).parallel(workers))
                .into_vec();
            assert_eq!(pooled.len(), tools.len());
            for (tool, out) in tools.iter().zip(&pooled) {
                let solo = run.run(&DetectRequest::tool(*tool)).into_single();
                assert_eq!(out.tool_label, solo.tool_label);
                assert_eq!(out.contexts, solo.contexts, "{workers} workers");
                assert_eq!(out.reports.len(), solo.reports.len());
                assert_eq!(out.metrics, solo.metrics, "{workers} workers");
            }
        }
    }

    #[test]
    fn scheduled_variants_agree_with_sequential() {
        let m = racy();
        let run = Session::for_module(&m)
            .prepare(Tool::HelgrindLibSpin { window: 7 })
            .unwrap()
            .execute()
            .unwrap();
        let seq = run.run(&DetectRequest::own()).into_single();
        for schedule in [Schedule::Static, Schedule::Balanced] {
            for workers in [1, 2, 4, 8] {
                let par = run
                    .run(&DetectRequest::own().parallel(workers).scheduled(schedule))
                    .into_single();
                assert_eq!(par.contexts, seq.contexts, "{schedule} at {workers}");
                assert_eq!(par.metrics, seq.metrics, "{schedule} at {workers}");
            }
        }
    }

    #[test]
    fn execute_detecting_tees_recorder_and_detector() {
        let m = racy();
        let prepared = Session::for_module(&m)
            .prepare(Tool::HelgrindLibSpin { window: 7 })
            .unwrap();
        let (run, live) = prepared.execute_detecting().unwrap();
        assert!(!live.is_clean());
        let replayed = run.run(&DetectRequest::own()).into_single();
        assert_eq!(replayed.contexts, live.contexts);
        assert_eq!(replayed.reports.len(), live.reports.len());
    }

    /// Streaming replay of the binary encoding produces the same outcome
    /// as the in-memory replay, with O(chunk) resident memory.
    #[test]
    fn streamed_detection_matches_in_memory_detection() {
        let m = racy();
        for tool in [Tool::HelgrindLib, Tool::HelgrindLibSpin { window: 7 }] {
            let run = Session::for_module(&m)
                .prepare(tool)
                .unwrap()
                .execute()
                .unwrap();
            let expected = run.run(&DetectRequest::own()).into_single();
            // Tiny chunks force many boundaries through the pipeline.
            let bytes = spinrace_tracefmt::encode_trace_chunked(run.trace(), 8);
            let reader = ChunkedTraceReader::new(&bytes[..]).unwrap();
            let (streamed, stats) = run
                .prepared()
                .try_run_streamed(&DetectRequest::own(), reader)
                .unwrap();
            let streamed = streamed.into_single();
            assert_eq!(streamed.contexts, expected.contexts, "{}", tool.label());
            assert_eq!(streamed.reports.len(), expected.reports.len());
            for (a, b) in streamed.reports.iter().zip(&expected.reports) {
                assert_eq!(a.location, b.location);
                assert_eq!(a.report, b.report);
            }
            assert_eq!(streamed.metrics, expected.metrics);
            assert_eq!(streamed.summary, expected.summary);
            assert_eq!(stats.events, run.trace().events.len() as u64);
        }
    }

    #[test]
    fn streamed_detection_rejects_foreign_streams() {
        // A flag handoff: the spin tool instruments the waiter loop, so
        // its prepared module differs from the plain one.
        let mut mb = ModuleBuilder::new("handoff");
        let flag = mb.global("flag", 1);
        let waiter = mb.function("waiter", 1, |f| {
            let head = f.new_block();
            let done = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let v = f.load(flag.at(0));
            f.branch(v, done, head);
            f.switch_to(done);
            f.ret(None);
        });
        mb.entry("main", |f| {
            let t = f.spawn(waiter, 0);
            f.store(flag.at(0), 1);
            f.join(t);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let session = Session::for_module(&m);
        let run = session
            .prepare(Tool::HelgrindLibSpin { window: 7 })
            .unwrap()
            .execute()
            .unwrap();
        let plain = session.prepare(Tool::HelgrindLib).unwrap();
        assert_ne!(plain.fingerprint(), run.prepared().fingerprint());
        let bytes = spinrace_tracefmt::encode_trace(run.trace());
        let reader = ChunkedTraceReader::new(&bytes[..]).unwrap();
        assert!(matches!(
            plain.try_run_streamed(&DetectRequest::own(), reader),
            Err(AnalyzeError::TraceMismatch { .. })
        ));
    }

    /// `from_trace_file` accepts both on-disk encodings and applies the
    /// fingerprint check.
    #[test]
    fn from_trace_file_loads_either_encoding() {
        let m = racy();
        let session = Session::for_module(&m);
        let run = session
            .prepare(Tool::HelgrindLib)
            .unwrap()
            .execute()
            .unwrap();
        let expected = run.run(&DetectRequest::own()).into_single();
        let dir = std::env::temp_dir().join(format!(
            "spinrace-session-{}-{}",
            std::process::id(),
            run.trace().header.module_fingerprint
        ));
        std::fs::create_dir_all(&dir).unwrap();
        for format in [
            spinrace_tracefmt::TraceFormat::Binary,
            spinrace_tracefmt::TraceFormat::Json,
        ] {
            let path = dir.join(format!("t.{}", format.extension()));
            spinrace_tracefmt::write_trace_file(&path, run.trace(), format).unwrap();
            let prepared = session.prepare(Tool::HelgrindLib).unwrap();
            let reloaded = ExecutedRun::from_trace_file(prepared, &path).unwrap();
            let out = reloaded.run(&DetectRequest::own()).into_single();
            assert_eq!(out.contexts, expected.contexts, "{format}");
            assert_eq!(out.reports.len(), expected.reports.len(), "{format}");
        }
        let missing = dir.join("nope.sptrace");
        let prepared = session.prepare(Tool::HelgrindLib).unwrap();
        assert!(matches!(
            ExecutedRun::from_trace_file(prepared, &missing),
            Err(AnalyzeError::Trace(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn from_trace_rejects_foreign_traces() {
        // A flag handoff: the spin tool instruments the waiter loop, so
        // its prepared module differs from the uninstrumented one and the
        // trace must be refused.
        let mut mb = ModuleBuilder::new("handoff");
        let flag = mb.global("flag", 1);
        let waiter = mb.function("waiter", 1, |f| {
            let head = f.new_block();
            let done = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let v = f.load(flag.at(0));
            f.branch(v, done, head);
            f.switch_to(done);
            f.ret(None);
        });
        mb.entry("main", |f| {
            let t = f.spawn(waiter, 0);
            f.store(flag.at(0), 1);
            f.join(t);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let session = Session::for_module(&m);
        let run = session
            .prepare(Tool::HelgrindLib)
            .unwrap()
            .execute()
            .unwrap();
        let other = session
            .prepare(Tool::HelgrindLibSpin { window: 7 })
            .unwrap();
        assert_ne!(other.fingerprint(), run.prepared().fingerprint());
        let err = ExecutedRun::from_trace(other, run.into_trace());
        assert!(matches!(err, Err(AnalyzeError::TraceMismatch { .. })));

        // And the matching prepared module is accepted.
        let lib = session.prepare(Tool::HelgrindLib).unwrap();
        let run2 = session
            .prepare(Tool::HelgrindLib)
            .unwrap()
            .execute()
            .unwrap();
        assert!(ExecutedRun::from_trace(lib, run2.into_trace()).is_ok());
    }

    /// Every legacy `detect_*` wrapper agrees with its request form —
    /// the contract that lets the old surface stay as one-liners.
    #[test]
    fn legacy_wrappers_delegate_to_requests() {
        let m = racy();
        let run = Session::for_module(&m)
            .prepare(Tool::HelgrindLib)
            .unwrap()
            .execute()
            .unwrap();
        let via_request = run.run(&DetectRequest::own()).into_single();
        let legacy = run.detect();
        assert_eq!(legacy.contexts, via_request.contexts);
        assert_eq!(legacy.reports.len(), via_request.reports.len());
        assert_eq!(legacy.metrics, via_request.metrics);

        let par = run.detect_parallel(4);
        assert_eq!(par.contexts, via_request.contexts);
        assert_eq!(par.metrics, via_request.metrics);

        let as_drd = run.detect_as(Tool::Drd);
        let as_drd_req = run.run(&DetectRequest::tool(Tool::Drd)).into_single();
        assert_eq!(as_drd.tool_label, as_drd_req.tool_label);
        assert_eq!(as_drd.contexts, as_drd_req.contexts);

        let cfg = run.prepared().default_config().with_cap(1);
        assert_eq!(
            run.detect_with(cfg).contexts,
            run.run(&DetectRequest::config(cfg)).into_single().contexts
        );
        assert_eq!(
            run.try_detect_parallel(2).unwrap().contexts,
            via_request.contexts
        );
    }

    /// A mixed-target request fans out own tool, foreign tool, and an
    /// explicit configuration on one pass, in target order.
    #[test]
    fn mixed_target_requests_fan_out_in_order() {
        let m = racy();
        let run = Session::for_module(&m)
            .prepare(Tool::HelgrindLib)
            .unwrap()
            .execute()
            .unwrap();
        let capped = run.prepared().default_config().with_cap(1);
        let req = DetectRequest::own()
            .and_target(DetectTarget::Tool(Tool::Drd))
            .and_target(DetectTarget::Config(capped))
            .parallel(2);
        let outs = run.run(&req).into_vec();
        assert_eq!(outs.len(), 3);
        assert_eq!(outs[0].tool_label, Tool::HelgrindLib.label());
        assert_eq!(outs[1].tool_label, Tool::Drd.label());
        assert_eq!(outs[2].tool_label, Tool::HelgrindLib.label());
        assert_eq!(outs[2].contexts, 1, "capped target honors its config");
        let solo_drd = run.run(&DetectRequest::tool(Tool::Drd)).into_single();
        assert_eq!(outs[1].contexts, solo_drd.contexts);
        assert_eq!(outs[1].metrics, solo_drd.metrics);
    }

    /// The streamed observer fires once per chunk per target, with
    /// verdict deltas that sum to the final report list — incremental
    /// verdicts are available before end-of-stream.
    #[test]
    fn streamed_observer_reports_incremental_progress() {
        let m = racy();
        let run = Session::for_module(&m)
            .prepare(Tool::HelgrindLib)
            .unwrap()
            .execute()
            .unwrap();
        let bytes = spinrace_tracefmt::encode_trace_chunked(run.trace(), 8);
        let reader = ChunkedTraceReader::new(&bytes[..]).unwrap();
        let chunks = reader.chunk_count();
        let tools = [Tool::HelgrindLib, Tool::Drd];
        let mut calls = 0u32;
        let mut deltas = vec![0usize; tools.len()];
        let (out, stats) = run
            .prepared()
            .try_run_streamed_observed(&DetectRequest::tools(&tools), reader, |p| {
                calls += 1;
                deltas[p.target] += p.new_reports.len();
                assert_eq!(p.tool_label, tools[p.target].label());
                assert!(p.chunk >= 1 && p.chunk <= chunks);
            })
            .unwrap();
        let outs = out.into_vec();
        assert_eq!(calls, chunks * tools.len() as u32);
        assert_eq!(stats.chunks, chunks);
        for (delta, out) in deltas.iter().zip(&outs) {
            assert_eq!(*delta, out.reports.len(), "deltas sum to the verdict");
        }
        let offline = run.run(&DetectRequest::tools(&tools)).into_vec();
        for (streamed, expected) in outs.iter().zip(&offline) {
            assert_eq!(streamed.contexts, expected.contexts);
            assert_eq!(streamed.metrics, expected.metrics);
        }
    }

    /// An event budget on a streamed request replays exactly the
    /// affordable prefix and surfaces `BudgetExhausted` with faithful
    /// partial metrics, mirroring the engine's sequential contract.
    #[test]
    fn streamed_budget_trips_with_partial_metrics() {
        let m = racy();
        let run = Session::for_module(&m)
            .prepare(Tool::HelgrindLib)
            .unwrap()
            .execute()
            .unwrap();
        let total = run.trace().events.len() as u64;
        let limit = total / 2;
        let bytes = spinrace_tracefmt::encode_trace_chunked(run.trace(), 8);
        let reader = ChunkedTraceReader::new(&bytes[..]).unwrap();
        let req = DetectRequest::own().budget(crate::Budget::default().with_max_events(limit));
        let err = run
            .prepared()
            .try_run_streamed(&req, reader)
            .expect_err("budget must trip");
        match err {
            AnalyzeError::Engine(EngineError::BudgetExhausted {
                resource: BudgetResource::Events,
                limit: l,
                used,
                partial,
            }) => {
                assert_eq!(l, limit);
                assert_eq!(used, total);
                assert_eq!(partial.events_processed, limit);
            }
            other => panic!("unexpected error: {other}"),
        }
    }
}
