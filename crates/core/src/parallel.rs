//! Parallel sharded trace replay — deterministic by construction.
//!
//! [`run_sharded`] replays one recorded event stream on a scoped thread
//! pool: plain data accesses are partitioned along the detector's
//! [`ShadowTable`](spinrace_detector::shadow::ShadowTable) shard seam,
//! while every synchronization-relevant event is broadcast so each
//! worker's thread vector clocks evolve exactly as a sequential
//! detector's would. Which worker owns which shard is a precomputed
//! [`SchedulePlan`]:
//!
//! * [`Schedule::Static`] — worker `i` of `W` owns shard `s` iff
//!   `s % W == i`, for the whole stream. Oblivious to skew.
//! * [`Schedule::Balanced`] (the default) — a pre-pass histograms
//!   owner-routed events per shard and LPT bin-packing spreads the load;
//!   when the distribution shifts mid-stream, the plan schedules whole
//!   shards to *change hands* at chunk boundaries (planned stealing).
//!   At a boundary the departing owner exports the shard's shadow pages
//!   plus the contents of the lockset ids they reference, and the new
//!   owner re-interns and implants them before touching any event past
//!   the boundary — per-shard event order is untouched, so the merged
//!   result stays byte-identical to [`Schedule::Static`] and to
//!   sequential replay.
//!
//! The merged result — reports, racy contexts, promotion counts, and the
//! full [`DetectorMetrics`](spinrace_detector::DetectorMetrics) — is
//! **bit-identical** to a sequential replay for any worker count and
//! either schedule, which is what lets harnesses and CLIs pick a worker
//! count from the machine without perturbing a single table number (the
//! CI `replay-determinism` job holds `--schedule balanced --workers
//! 1/2/4/8` to byte-equal output).
//!
//! At `workers <= 1` [`run_sharded`] takes the **sequential fast path**:
//! a plain [`RaceDetector`] loop with no seed pre-pass, no pool, and no
//! per-access ownership gate, so a 1-worker "parallel" detection costs
//! the same as a plain replay. ([`run_sharded_with_plan`] keeps the full
//! worker/merge machinery reachable at 1 worker for determinism tests.)
//!
//! The determinism mechanics (promotion-seed pre-pass, tagged report
//! attempts, the lockset op log, shard handoffs) live in
//! [`spinrace_detector::sharded`]; this module owns the orchestration:
//! seed computation, plan construction, event routing, the
//! `std::thread::scope` pool, the boundary handoff protocol, and the
//! fragment merge.
//!
//! # Failure modes
//!
//! The engine is **panic-safe and hang-free**: every worker runs under
//! `catch_unwind`, the first failure flips a shared cancellation flag
//! that every worker polls (in its event loop and inside every handoff
//! wait, which is a `wait_timeout` loop — no worker ever blocks
//! indefinitely on a dead peer's slot), and the coordinator joins all
//! workers and returns the first [`EngineError`] instead of propagating
//! the panic. The `try_run_*` entry points surface this as a `Result`;
//! the original infallible names remain as thin wrappers that panic with
//! the rendered error, preserving their historical behavior for callers
//! that treat engine failure as a bug. [`EngineOptions`] additionally
//! carries per-detection resource budgets ([`Budget`] — graceful
//! [`EngineError::BudgetExhausted`] with partial metrics), an optional
//! global watchdog, and a deterministic [`FaultPlan`] (panic / delay /
//! dropped handoff at the Nth event of worker W; off by default and a
//! single predictable compare per event when disabled) that CI uses to
//! prove every fault yields a structured error within a bounded wait.
//!
//! ```
//! use spinrace_core::{parallel, Session, Tool};
//! use spinrace_tir::ModuleBuilder;
//!
//! let mut mb = ModuleBuilder::new("racy");
//! let g = mb.global("g", 1);
//! let w = mb.function("w", 1, |f| {
//!     let v = f.load(g.at(0));
//!     let v2 = f.add(v, 1);
//!     f.store(g.at(0), v2);
//!     f.ret(None);
//! });
//! mb.entry("main", |f| {
//!     let t1 = f.spawn(w, 0);
//!     let t2 = f.spawn(w, 1);
//!     f.join(t1);
//!     f.join(t2);
//!     f.ret(None);
//! });
//! let m = mb.finish().unwrap();
//!
//! let run = Session::for_module(&m)
//!     .prepare(Tool::HelgrindLib)
//!     .unwrap()
//!     .execute()
//!     .unwrap();
//! let sequential = run.detect();
//! for workers in [1, 2, 4, 8] {
//!     let par = run.detect_parallel(workers);
//!     assert_eq!(par.contexts, sequential.contexts);
//!     assert_eq!(par.metrics, sequential.metrics);
//! }
//! assert!(parallel::default_workers() >= 1);
//! ```

use spinrace_detector::{
    compute_promotion_seeds, event_route, shard_of, try_merge_fragments, AnyDetector,
    DetectorConfig, EventRoute, MergedDetection, PromotionSeeds, RaceDetector, SchedulePlan,
    ShardHandoff, ShardSpec, ShardTransfer, WorkerFragment, NUM_SHARDS,
};
use spinrace_vm::trace::TraceError;
use spinrace_vm::{Event, EventSink};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

pub use spinrace_detector::Schedule;

/// How often (in events) workers poll for cancellation, the watchdog,
/// and the shadow budget: every 4096 events, so the hot loop pays one
/// masked compare per event in the common case.
pub(crate) const PERIODIC_MASK: usize = 0xFFF;

/// Granularity of a handoff wait: a stalled receiver re-checks the
/// cancellation flag at least this often, so a peer's failure unblocks
/// it within one tick even if the wake-up notification is lost.
const HANDOFF_TICK: Duration = Duration::from_millis(25);

/// Granularity of an injected delay: the stalled worker keeps polling
/// for cancellation, so a peer's watchdog can cut the delay short.
const DELAY_TICK: Duration = Duration::from_millis(10);

/// A structured parallel-replay failure. The engine returns the *first*
/// failure it observed; later failures on other workers (usually
/// cancellation fallout) are discarded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// A worker panicked; the payload is its rendered panic message.
    WorkerPanic {
        /// Index of the worker that panicked.
        worker: usize,
        /// The panic payload, downcast to a string where possible.
        payload: String,
    },
    /// A shard-handoff receiver waited past the handoff watchdog — the
    /// exporting peer is dead or stalled.
    HandoffTimeout {
        /// The waiting (importing) worker.
        worker: usize,
        /// The shard that never arrived.
        shard: usize,
        /// The plan boundary the handoff was scheduled at.
        boundary: usize,
        /// How long the receiver waited before giving up.
        waited_ms: u64,
    },
    /// A worker produced neither a fragment nor an error — it went
    /// silent (the defensive path fault injection's dropped-handoff
    /// scenario exercises).
    WorkerLost {
        /// Index of the silent worker.
        worker: usize,
    },
    /// The whole detection ran past [`EngineOptions::watchdog`].
    Watchdog {
        /// The configured limit.
        limit_ms: u64,
    },
    /// A resource budget was exhausted; detection terminated gracefully
    /// with partial results.
    BudgetExhausted {
        /// Which budget tripped.
        resource: BudgetResource,
        /// The configured ceiling.
        limit: u64,
        /// The observed value that exceeded it.
        used: u64,
        /// What the detection had seen when it stopped.
        partial: PartialMetrics,
    },
    /// The trace could not be decoded at all (wraps
    /// [`spinrace_vm::trace::TraceError`] so callers that feed the
    /// engine from serialized traces have one error type end to end).
    Trace(TraceError),
    /// The requested detector cannot run under this engine mode —
    /// e.g. predictive (sync-preserving) detection under sharded
    /// parallel replay, which is inherently sequential. The request is
    /// refused outright instead of silently degrading.
    Unsupported {
        /// What was asked for and why it cannot be served.
        reason: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::WorkerPanic { worker, payload } => {
                write!(f, "replay worker {worker} panicked: {payload}")
            }
            EngineError::HandoffTimeout {
                worker,
                shard,
                boundary,
                waited_ms,
            } => write!(
                f,
                "replay worker {worker} timed out after {waited_ms} ms waiting for the shard \
                 {shard} handoff at boundary {boundary} (exporting peer dead or stalled)"
            ),
            EngineError::WorkerLost { worker } => write!(
                f,
                "replay worker {worker} exited without producing a fragment or reporting an error"
            ),
            EngineError::Watchdog { limit_ms } => {
                write!(f, "replay exceeded the {limit_ms} ms watchdog")
            }
            EngineError::BudgetExhausted {
                resource,
                limit,
                used,
                partial,
            } => write!(
                f,
                "{resource} budget exhausted ({used} > {limit}); stopped after {} event(s), \
                 {} racy context(s) so far",
                partial.events_processed, partial.contexts
            ),
            EngineError::Trace(e) => write!(f, "trace decode failed: {e}"),
            EngineError::Unsupported { reason } => {
                write!(f, "unsupported detection request: {reason}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for EngineError {
    fn from(e: TraceError) -> EngineError {
        EngineError::Trace(e)
    }
}

/// The resource whose [`Budget`] ceiling a detection ran into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetResource {
    /// [`Budget::max_events`].
    Events,
    /// [`Budget::max_shadow_bytes`].
    ShadowBytes,
}

impl fmt::Display for BudgetResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BudgetResource::Events => "event",
            BudgetResource::ShadowBytes => "shadow-byte",
        })
    }
}

/// What a budget-terminated detection had seen when it stopped — enough
/// to report "analysis incomplete after N events, K contexts" the way a
/// production tool would.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PartialMetrics {
    /// Events processed before termination.
    pub events_processed: u64,
    /// Racy contexts recorded so far (0 when the tripping pass cannot
    /// see the merged collector — e.g. a single worker of a pool).
    pub contexts: usize,
    /// Shadow memory resident at termination, from the observing pass.
    pub shadow_bytes: usize,
}

/// Per-detection resource ceilings. `None` (the default) means
/// unlimited; enforcement is free when unlimited.
///
/// * `max_events` bounds the number of events a detection may process.
///   It is exact and deterministic: the affordable prefix is replayed
///   (sequentially) for faithful partial metrics, then
///   [`EngineError::BudgetExhausted`] is returned.
/// * `max_shadow_bytes` bounds resident shadow memory. It is checked
///   periodically (every 4096 events) against a cheap
///   O(shards) resident-size estimate; in a parallel run each worker
///   checks its own shadow share, so the trip point may vary with the
///   worker count — the guarantee is graceful termination, not a
///   byte-stable threshold.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// Maximum events one detection may process.
    pub max_events: Option<u64>,
    /// Maximum resident shadow bytes (per sequential detection, or per
    /// worker in a parallel run).
    pub max_shadow_bytes: Option<usize>,
}

impl Budget {
    /// Is every ceiling disabled?
    pub fn is_unlimited(&self) -> bool {
        self.max_events.is_none() && self.max_shadow_bytes.is_none()
    }

    /// Bound the number of events one detection may process.
    pub fn with_max_events(mut self, max_events: u64) -> Budget {
        self.max_events = Some(max_events);
        self
    }

    /// Bound the resident shadow bytes of one detection.
    pub fn with_max_shadow_bytes(mut self, max_shadow_bytes: usize) -> Budget {
        self.max_shadow_bytes = Some(max_shadow_bytes);
        self
    }
}

/// What to inject, for [`FaultPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic (caught by the pool; surfaces as
    /// [`EngineError::WorkerPanic`]).
    Panic,
    /// Stall for the given number of milliseconds (cancellation-aware:
    /// the sleep is cut short once a peer's watchdog fails the run).
    Delay(u64),
    /// Go silent: stop processing and never publish another handoff —
    /// a model of a worker that died without unwinding. Surfaces as
    /// [`EngineError::HandoffTimeout`] when a peer was waiting on it,
    /// or [`EngineError::WorkerLost`] otherwise.
    DropHandoff,
}

/// A deterministic injected fault: at the `at_event`-th event of worker
/// `worker`, do `kind`. Off by default; when armed, the only per-event
/// cost on the victim worker is one integer compare (other workers pay
/// nothing — their trigger resolves to `u64::MAX`).
///
/// Parses from `panic:W:N`, `delay:W:N:MS`, and `drop:W:N` (the
/// `trace replay --fault` spelling).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// The worker the fault is injected into.
    pub worker: usize,
    /// The event index (in the full stream scan) at which it fires.
    pub at_event: u64,
    /// What happens.
    pub kind: FaultKind,
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FaultKind::Panic => write!(f, "panic:{}:{}", self.worker, self.at_event),
            FaultKind::Delay(ms) => write!(f, "delay:{}:{}:{ms}", self.worker, self.at_event),
            FaultKind::DropHandoff => write!(f, "drop:{}:{}", self.worker, self.at_event),
        }
    }
}

/// A fault spec [`FaultPlan::from_str`] could not parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseFaultError(pub String);

impl fmt::Display for ParseFaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bad fault spec {:?} (expected panic:W:N, delay:W:N:MS or drop:W:N)",
            self.0
        )
    }
}

impl std::error::Error for ParseFaultError {}

impl FromStr for FaultPlan {
    type Err = ParseFaultError;

    fn from_str(s: &str) -> Result<FaultPlan, ParseFaultError> {
        let bad = || ParseFaultError(s.to_string());
        let num = |t: &str| t.trim().parse::<u64>().map_err(|_| bad());
        let parts: Vec<&str> = s.split(':').collect();
        let (kind, worker, at_event) = match parts.as_slice() {
            ["panic", w, n] => (FaultKind::Panic, num(w)?, num(n)?),
            ["delay", w, n, ms] => (FaultKind::Delay(num(ms)?), num(w)?, num(n)?),
            ["drop", w, n] => (FaultKind::DropHandoff, num(w)?, num(n)?),
            _ => return Err(bad()),
        };
        Ok(FaultPlan {
            worker: usize::try_from(worker).map_err(|_| bad())?,
            at_event,
            kind,
        })
    }
}

/// Everything configurable about one engine run beyond the worker
/// count. [`EngineOptions::default`] reproduces the historical engine
/// behavior exactly (balanced schedule, 10 s handoff watchdog, no
/// global watchdog, no budgets, no faults).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineOptions {
    /// Shard-to-worker scheduling mode.
    pub schedule: Schedule,
    /// How long a receiver waits on one shard handoff before failing
    /// the run with [`EngineError::HandoffTimeout`].
    pub handoff_timeout: Duration,
    /// Optional wall-clock ceiling for the whole detection
    /// ([`EngineError::Watchdog`] when exceeded). `None` = unlimited.
    pub watchdog: Option<Duration>,
    /// Resource budgets.
    pub budget: Budget,
    /// Deterministic fault injection (tests/CI only; `None` in
    /// production use).
    pub fault: Option<FaultPlan>,
}

impl Default for EngineOptions {
    fn default() -> EngineOptions {
        EngineOptions {
            schedule: Schedule::default(),
            handoff_timeout: Duration::from_secs(10),
            watchdog: None,
            budget: Budget::default(),
            fault: None,
        }
    }
}

impl EngineOptions {
    /// Defaults with an explicit schedule.
    pub fn scheduled(schedule: Schedule) -> EngineOptions {
        EngineOptions {
            schedule,
            ..EngineOptions::default()
        }
    }

    /// Set the shard-to-worker scheduling mode.
    pub fn with_schedule(mut self, schedule: Schedule) -> EngineOptions {
        self.schedule = schedule;
        self
    }

    /// Set the per-handoff wait ceiling.
    pub fn with_handoff_timeout(mut self, limit: Duration) -> EngineOptions {
        self.handoff_timeout = limit;
        self
    }

    /// Bound the whole detection by a wall-clock watchdog.
    pub fn with_watchdog(mut self, limit: Duration) -> EngineOptions {
        self.watchdog = Some(limit);
        self
    }

    /// Set resource budgets.
    pub fn with_budget(mut self, budget: Budget) -> EngineOptions {
        self.budget = budget;
        self
    }

    /// Arm deterministic fault injection (tests/CI only).
    pub fn with_fault(mut self, fault: FaultPlan) -> EngineOptions {
        self.fault = Some(fault);
        self
    }
}

/// A sensible worker count for this machine: the available parallelism,
/// clamped to the shard count (extra workers would own no shards).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(NUM_SHARDS)
}

/// Unwrap an engine result the way the pre-`Result` engine behaved: a
/// failure (necessarily a genuine worker panic back then) propagated as
/// a panic out of the coordinator.
pub(crate) fn expect_engine<T>(result: Result<T, EngineError>) -> T {
    result.unwrap_or_else(|e| panic!("parallel replay failed: {e}"))
}

/// Replay `events` under `cfg` on `workers` scoped threads with the
/// default [`Schedule::Balanced`] plan and merge the fragments into the
/// sequential detection result. `workers` is clamped to
/// `1..=`[`NUM_SHARDS`]; the output is identical for every worker count.
/// At 1 worker this routes through the plain sequential detector loop —
/// no pool, no ownership gate (use [`run_sharded_with_plan`] to force
/// the worker machinery at width 1). Panics when the engine fails; use
/// [`try_run_sharded`] to handle failure as a value.
pub fn run_sharded(cfg: DetectorConfig, events: &[Event], workers: usize) -> MergedDetection {
    expect_engine(try_run_sharded(cfg, events, workers))
}

/// [`run_sharded`] with an explicit scheduling mode.
pub fn run_sharded_scheduled(
    cfg: DetectorConfig,
    events: &[Event],
    workers: usize,
    schedule: Schedule,
) -> MergedDetection {
    expect_engine(try_run_sharded_scheduled(cfg, events, workers, schedule))
}

/// Replay under an explicit precomputed [`SchedulePlan`], always through
/// the full worker/merge machinery — even at `plan.workers() == 1`,
/// which is the determinism baseline the proptests force.
pub fn run_sharded_with_plan(
    cfg: DetectorConfig,
    events: &[Event],
    plan: Arc<SchedulePlan>,
) -> MergedDetection {
    expect_engine(try_run_sharded_with_plan(cfg, events, plan))
}

/// Replay `events` once per configuration on **one** scoped worker pool:
/// each worker thread processes every configuration's job in order, so a
/// tool fan-out over the same trace pays thread spawn/join once instead
/// of once per tool. Results are merged per configuration, in input
/// order, each byte-identical to its sequential replay. Panics when the
/// engine fails; use [`try_run_many_sharded`] to handle failure.
pub fn run_many_sharded(
    cfgs: &[DetectorConfig],
    events: &[Event],
    workers: usize,
    schedule: Schedule,
) -> Vec<MergedDetection> {
    expect_engine(try_run_many_sharded(cfgs, events, workers, schedule))
}

/// Fallible [`run_sharded`].
pub fn try_run_sharded(
    cfg: DetectorConfig,
    events: &[Event],
    workers: usize,
) -> Result<MergedDetection, EngineError> {
    try_run_sharded_opts(cfg, events, workers, EngineOptions::default())
}

/// Fallible [`run_sharded_scheduled`].
pub fn try_run_sharded_scheduled(
    cfg: DetectorConfig,
    events: &[Event],
    workers: usize,
    schedule: Schedule,
) -> Result<MergedDetection, EngineError> {
    try_run_sharded_opts(cfg, events, workers, EngineOptions::scheduled(schedule))
}

/// The full-control engine entry point: schedule, handoff watchdog,
/// global watchdog, budgets, and fault injection via [`EngineOptions`].
pub fn try_run_sharded_opts(
    cfg: DetectorConfig,
    events: &[Event],
    workers: usize,
    opts: EngineOptions,
) -> Result<MergedDetection, EngineError> {
    let workers = workers.clamp(1, NUM_SHARDS);
    if workers <= 1 || exceeds_event_budget(events, &opts) {
        // Either the sequential fast path proper, or graceful event-
        // budget termination: the affordable prefix is replayed
        // sequentially for faithful partial metrics, and the result is
        // the budget error.
        return try_run_sequential(cfg, events, opts);
    }
    if cfg.is_predictive() {
        return Err(unsupported_predictive());
    }
    let seeds = Arc::new(compute_promotion_seeds(cfg, events));
    let plan = Arc::new(make_plan(cfg, &seeds, events, workers, opts.schedule));
    try_run_planned(cfg, events, &seeds, &plan, opts)
}

/// Fallible [`run_sharded_with_plan`].
pub fn try_run_sharded_with_plan(
    cfg: DetectorConfig,
    events: &[Event],
    plan: Arc<SchedulePlan>,
) -> Result<MergedDetection, EngineError> {
    try_run_sharded_with_plan_opts(cfg, events, plan, EngineOptions::default())
}

/// [`try_run_sharded_with_plan`] with explicit [`EngineOptions`] — the
/// entry point the fault-injection matrix drives (a precomputed plan
/// pins the handoff topology the faults are aimed at).
pub fn try_run_sharded_with_plan_opts(
    cfg: DetectorConfig,
    events: &[Event],
    plan: Arc<SchedulePlan>,
    opts: EngineOptions,
) -> Result<MergedDetection, EngineError> {
    if exceeds_event_budget(events, &opts) {
        return try_run_sequential(cfg, events, opts);
    }
    if cfg.is_predictive() {
        return Err(unsupported_predictive());
    }
    let seeds = Arc::new(compute_promotion_seeds(cfg, events));
    try_run_planned(cfg, events, &seeds, &plan, opts)
}

/// Fallible [`run_many_sharded`].
pub fn try_run_many_sharded(
    cfgs: &[DetectorConfig],
    events: &[Event],
    workers: usize,
    schedule: Schedule,
) -> Result<Vec<MergedDetection>, EngineError> {
    try_run_many_sharded_opts(cfgs, events, workers, EngineOptions::scheduled(schedule))
}

/// [`try_run_many_sharded`] with explicit [`EngineOptions`]. The whole
/// fan-out shares one pool and one cancellation domain: the first
/// failure in any configuration's pass fails the batch.
pub fn try_run_many_sharded_opts(
    cfgs: &[DetectorConfig],
    events: &[Event],
    workers: usize,
    opts: EngineOptions,
) -> Result<Vec<MergedDetection>, EngineError> {
    let workers = workers.clamp(1, NUM_SHARDS);
    if workers <= 1 {
        return cfgs
            .iter()
            .map(|&cfg| try_run_sequential(cfg, events, opts))
            .collect();
    }
    if cfgs.iter().any(|c| c.is_predictive()) {
        return Err(unsupported_predictive());
    }
    if exceeds_event_budget(events, &opts) {
        let Some(&cfg) = cfgs.first() else {
            return Ok(Vec::new());
        };
        return Err(try_run_sequential(cfg, events, opts)
            .expect_err("prefix replay under an exceeded event budget must error"));
    }
    let jobs: Vec<Job> = cfgs
        .iter()
        .map(|&cfg| {
            let seeds = Arc::new(compute_promotion_seeds(cfg, events));
            let plan = Arc::new(make_plan(cfg, &seeds, events, workers, opts.schedule));
            Job::new(cfg, seeds, plan)
        })
        .collect();
    let shared = EngineShared::new(&opts);
    let mut per_worker: Vec<Vec<Option<WorkerFragment>>> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|index| {
                let jobs = &jobs;
                let shared = &shared;
                s.spawn(move || {
                    jobs.iter()
                        .map(|job| worker_pass_guarded(events, job, index, shared, opts))
                        .collect::<Vec<Option<WorkerFragment>>>()
                })
            })
            .collect();
        for (index, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(v) => per_worker.push(v),
                Err(payload) => {
                    shared.fail(EngineError::WorkerPanic {
                        worker: index,
                        payload: panic_message(payload.as_ref()),
                    });
                    per_worker.push(Vec::new());
                }
            }
        }
    });
    if let Some(err) = shared.take() {
        return Err(err);
    }
    let mut columns: Vec<_> = per_worker.into_iter().map(|v| v.into_iter()).collect();
    cfgs.iter()
        .map(|cfg| {
            let mut fragments = Vec::with_capacity(columns.len());
            for (worker, c) in columns.iter_mut().enumerate() {
                match c.next().flatten() {
                    Some(f) => fragments.push(f),
                    None => return Err(EngineError::WorkerLost { worker }),
                }
            }
            try_merge_fragments(cfg.context_cap, fragments)
                .ok_or(EngineError::WorkerLost { worker: 0 })
        })
        .collect()
}

/// The refusal every parallel entry point returns for predictive
/// configurations (sync-preserving release clocks flow through per-lock
/// conflict maps in trace order — there is no sound shard split).
fn unsupported_predictive() -> EngineError {
    EngineError::Unsupported {
        reason: "predictive (sync-preserving) detection is a single sequential pass; \
                 use sequential or streamed mode instead of parallel replay"
            .to_string(),
    }
}

/// Does `events` overflow the configured event budget?
fn exceeds_event_budget(events: &[Event], opts: &EngineOptions) -> bool {
    opts.budget
        .max_events
        .is_some_and(|max| events.len() as u64 > max)
}

/// The single-worker fast path: a plain sequential detector fed through
/// the ordinary [`EventSink`] loop, sealed into the merged-detection
/// shape. No seed pre-pass, no plan, no ownership gate per access —
/// just the periodic watchdog/budget poll, which is dormant (two
/// predictable compares every 4096 events) under default options.
fn try_run_sequential(
    cfg: DetectorConfig,
    events: &[Event],
    opts: EngineOptions,
) -> Result<MergedDetection, EngineError> {
    let limit = opts
        .budget
        .max_events
        .map_or(events.len(), |m| (m as usize).min(events.len()));
    let truncated = limit < events.len();
    let deadline = opts.watchdog.map(|d| (Instant::now() + d, d));
    let shadow_limit = opts.budget.max_shadow_bytes.unwrap_or(usize::MAX);
    let mut det = AnyDetector::new(cfg);
    for (i, ev) in events[..limit].iter().enumerate() {
        if i & PERIODIC_MASK == 0 {
            if let Some((at, d)) = deadline {
                if Instant::now() >= at {
                    return Err(EngineError::Watchdog {
                        limit_ms: d.as_millis() as u64,
                    });
                }
            }
            if shadow_limit != usize::MAX {
                let bytes = det.shadow_resident_bytes();
                if bytes > shadow_limit {
                    return Err(EngineError::BudgetExhausted {
                        resource: BudgetResource::ShadowBytes,
                        limit: shadow_limit as u64,
                        used: bytes as u64,
                        partial: PartialMetrics {
                            events_processed: i as u64,
                            contexts: det.racy_contexts(),
                            shadow_bytes: bytes,
                        },
                    });
                }
            }
        }
        det.on_event(ev);
    }
    if truncated {
        return Err(EngineError::BudgetExhausted {
            resource: BudgetResource::Events,
            limit: limit as u64,
            used: events.len() as u64,
            partial: PartialMetrics {
                events_processed: limit as u64,
                contexts: det.racy_contexts(),
                shadow_bytes: det.shadow_resident_bytes(),
            },
        });
    }
    // Final shadow check: the periodic poll samples every 4096 events,
    // so a short run that ends over budget is caught here.
    if shadow_limit != usize::MAX {
        let bytes = det.shadow_resident_bytes();
        if bytes > shadow_limit {
            return Err(EngineError::BudgetExhausted {
                resource: BudgetResource::ShadowBytes,
                limit: shadow_limit as u64,
                used: bytes as u64,
                partial: PartialMetrics {
                    events_processed: events.len() as u64,
                    contexts: det.racy_contexts(),
                    shadow_bytes: bytes,
                },
            });
        }
    }
    Ok(det.into_detection())
}

fn make_plan(
    cfg: DetectorConfig,
    seeds: &PromotionSeeds,
    events: &[Event],
    workers: usize,
    schedule: Schedule,
) -> SchedulePlan {
    match schedule {
        Schedule::Static => SchedulePlan::static_plan(workers),
        Schedule::Balanced => SchedulePlan::balanced(cfg, seeds, events, workers),
    }
}

/// One configuration's replay job on the shared pool: the config, its
/// promotion seeds and plan, and one rendezvous slot per planned shard
/// transfer for the boundary handoff protocol.
struct Job {
    cfg: DetectorConfig,
    seeds: Arc<PromotionSeeds>,
    plan: Arc<SchedulePlan>,
    transfers: Vec<ShardTransfer>,
    slots: Vec<(Mutex<Option<ShardHandoff>>, Condvar)>,
}

impl Job {
    fn new(cfg: DetectorConfig, seeds: Arc<PromotionSeeds>, plan: Arc<SchedulePlan>) -> Job {
        let transfers = plan.transfers();
        let slots = transfers
            .iter()
            .map(|_| (Mutex::new(None), Condvar::new()))
            .collect();
        Job {
            cfg,
            seeds,
            plan,
            transfers,
            slots,
        }
    }

    /// Kick every handoff condvar so peers blocked in [`wait_for_handoff`]
    /// re-check the cancellation flag immediately instead of on the next
    /// tick. Purely a latency fast path — correctness never depends on a
    /// notification arriving, because every wait is tick-bounded.
    fn wake_all(&self) {
        for slot in &self.slots {
            slot.1.notify_all();
        }
    }
}

/// Lock a mutex, ignoring poison: handoff slots hold plain data
/// (`Option<ShardHandoff>`), and a panicking peer is reported through
/// the engine's failure channel — a poisoned flag on the slot carries
/// no extra information and must not cascade into more panics.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Cross-worker failure channel: the first error wins, flips the
/// cancellation flag, and every worker drains out at its next periodic
/// check or handoff-wait wakeup. Also owns the global watchdog deadline
/// so any polling site can trip it.
struct EngineShared {
    cancelled: AtomicBool,
    failure: Mutex<Option<EngineError>>,
    deadline: Option<Instant>,
    watchdog_ms: u64,
}

impl EngineShared {
    fn new(opts: &EngineOptions) -> EngineShared {
        EngineShared {
            cancelled: AtomicBool::new(false),
            failure: Mutex::new(None),
            deadline: opts.watchdog.map(|d| Instant::now() + d),
            watchdog_ms: opts.watchdog.map_or(0, |d| d.as_millis() as u64),
        }
    }

    /// Record `err` if no failure is recorded yet, then cancel everyone.
    fn fail(&self, err: EngineError) {
        let mut guard = lock_unpoisoned(&self.failure);
        if guard.is_none() {
            *guard = Some(err);
        }
        drop(guard);
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// Should the calling worker stop? True once any failure is recorded,
    /// or once the global watchdog deadline passes (which records the
    /// watchdog failure as a side effect).
    fn should_stop(&self) -> bool {
        if self.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(at) = self.deadline {
            if Instant::now() >= at {
                self.fail(EngineError::Watchdog {
                    limit_ms: self.watchdog_ms,
                });
                return true;
            }
        }
        false
    }

    fn take(&self) -> Option<EngineError> {
        lock_unpoisoned(&self.failure).take()
    }
}

/// Render a panic payload for [`EngineError::WorkerPanic`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn try_run_planned(
    cfg: DetectorConfig,
    events: &[Event],
    seeds: &Arc<PromotionSeeds>,
    plan: &Arc<SchedulePlan>,
    opts: EngineOptions,
) -> Result<MergedDetection, EngineError> {
    let job = Job::new(cfg, Arc::clone(seeds), Arc::clone(plan));
    let workers = plan.workers();
    let shared = EngineShared::new(&opts);
    let mut results: Vec<Option<WorkerFragment>> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|index| {
                let job = &job;
                let shared = &shared;
                s.spawn(move || worker_pass_guarded(events, job, index, shared, opts))
            })
            .collect();
        for (index, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(fragment) => results.push(fragment),
                Err(payload) => {
                    // catch_unwind should have absorbed this; a panic
                    // escaping the guard (e.g. from a Drop) still must
                    // not abort the whole process.
                    shared.fail(EngineError::WorkerPanic {
                        worker: index,
                        payload: panic_message(payload.as_ref()),
                    });
                    results.push(None);
                }
            }
        }
    });
    finish_engine(cfg, &shared, results)
}

/// Coordinator epilogue: surface the first recorded failure, detect
/// silently-lost workers, or merge the complete fragment set.
fn finish_engine(
    cfg: DetectorConfig,
    shared: &EngineShared,
    results: Vec<Option<WorkerFragment>>,
) -> Result<MergedDetection, EngineError> {
    if let Some(err) = shared.take() {
        return Err(err);
    }
    let mut fragments = Vec::with_capacity(results.len());
    for (worker, r) in results.into_iter().enumerate() {
        match r {
            Some(f) => fragments.push(f),
            None => return Err(EngineError::WorkerLost { worker }),
        }
    }
    try_merge_fragments(cfg.context_cap, fragments).ok_or(EngineError::WorkerLost { worker: 0 })
}

/// [`worker_pass`] under a panic guard: a panic becomes a recorded
/// [`EngineError::WorkerPanic`] plus cancellation, and any early exit
/// (panic, fault, cancellation, budget) wakes all blocked peers so they
/// drain promptly instead of on the next wait tick.
fn worker_pass_guarded(
    events: &[Event],
    job: &Job,
    index: usize,
    shared: &EngineShared,
    opts: EngineOptions,
) -> Option<WorkerFragment> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        worker_pass(events, job, index, shared, opts)
    }));
    let fragment = match result {
        Ok(f) => f,
        Err(payload) => {
            shared.fail(EngineError::WorkerPanic {
                worker: index,
                payload: panic_message(payload.as_ref()),
            });
            None
        }
    };
    if fragment.is_none() {
        job.wake_all();
    }
    fragment
}

/// Wait for the handoff published into `slot`, bounded by the per-handoff
/// timeout and the engine's cancellation flag. Returns `None` (after
/// recording [`EngineError::HandoffTimeout`] if it was a timeout) when
/// the wait must be abandoned.
fn wait_for_handoff(
    slot: &(Mutex<Option<ShardHandoff>>, Condvar),
    t: &ShardTransfer,
    index: usize,
    shared: &EngineShared,
    opts: EngineOptions,
) -> Option<ShardHandoff> {
    let start = Instant::now();
    let deadline = start + opts.handoff_timeout;
    let mut guard = lock_unpoisoned(&slot.0);
    loop {
        if let Some(h) = guard.take() {
            return Some(h);
        }
        if shared.should_stop() {
            return None;
        }
        let now = Instant::now();
        if now >= deadline {
            shared.fail(EngineError::HandoffTimeout {
                worker: index,
                shard: t.shard,
                boundary: t.boundary,
                waited_ms: start.elapsed().as_millis() as u64,
            });
            return None;
        }
        let wait = HANDOFF_TICK.min(deadline - now);
        guard = match slot.1.wait_timeout(guard, wait) {
            Ok((g, _)) => g,
            Err(p) => p.into_inner().0,
        };
    }
}

/// Sleep `ms` milliseconds in cancellation-aware ticks. Returns `false`
/// (caller should drain out) if the engine cancelled mid-sleep.
fn injected_delay(ms: u64, shared: &EngineShared) -> bool {
    let deadline = Instant::now() + Duration::from_millis(ms);
    loop {
        if shared.should_stop() {
            return false;
        }
        let now = Instant::now();
        if now >= deadline {
            return true;
        }
        std::thread::sleep(DELAY_TICK.min(deadline - now));
    }
}

/// One worker's scan of the whole event slice: route inline, process
/// owned + broadcast events, and at each plan boundary run the handoff
/// protocol — publish **all** departing shards first, then block on
/// incoming ones, then switch the ownership gate to the next phase.
/// Publishing before waiting makes the protocol deadlock-free by
/// induction over boundaries: every worker reaches every boundary (all
/// workers scan the full slice), and a worker that waits has already
/// published everything its peers at this boundary could need.
///
/// Returns `None` when the worker drains out early — cancellation,
/// handoff timeout, shadow budget, or an injected fault. All failure
/// modes other than [`FaultKind::DropHandoff`] (deliberately a *silent*
/// death) record their reason in `shared` before returning.
fn worker_pass(
    events: &[Event],
    job: &Job,
    index: usize,
    shared: &EngineShared,
    opts: EngineOptions,
) -> Option<WorkerFragment> {
    let Job {
        cfg,
        seeds,
        plan,
        transfers,
        slots,
    } = job;
    let spec = ShardSpec::planned(Arc::clone(plan), index);
    let mut det = RaceDetector::new_worker(*cfg, spec, Arc::clone(seeds));
    // Local copy of the current phase's assignment keeps the per-event
    // ownership gate a plain array index.
    let mut cur = *plan.assignment(0);
    let boundaries = plan.boundaries();
    let mut next_phase = 1usize;
    let (fault_at, fault_kind) = match opts.fault {
        Some(f) if f.worker == index => (f.at_event, Some(f.kind)),
        _ => (u64::MAX, None),
    };
    let shadow_limit = opts.budget.max_shadow_bytes.unwrap_or(usize::MAX);
    for (i, ev) in events.iter().enumerate() {
        if i & PERIODIC_MASK == 0 {
            if shared.should_stop() {
                return None;
            }
            if shadow_limit != usize::MAX {
                let bytes = det.shadow_resident_bytes();
                if bytes > shadow_limit {
                    shared.fail(EngineError::BudgetExhausted {
                        resource: BudgetResource::ShadowBytes,
                        limit: shadow_limit as u64,
                        used: bytes as u64,
                        partial: PartialMetrics {
                            events_processed: i as u64,
                            contexts: 0,
                            shadow_bytes: bytes,
                        },
                    });
                    return None;
                }
            }
        }
        // The fault site is checked *before* the boundary protocol, so
        // `at_event == boundary` injects before the shard export and
        // `at_event == boundary + 1` injects just after it.
        if i as u64 == fault_at {
            match fault_kind {
                Some(FaultKind::Panic) => {
                    panic!("injected fault: worker {index} panics at event {i}")
                }
                Some(FaultKind::Delay(ms)) if !injected_delay(ms, shared) => return None,
                Some(FaultKind::Delay(_)) => {}
                // Silent worker death: no export, no error recorded.
                // A waiting peer reports HandoffTimeout; otherwise the
                // coordinator reports WorkerLost for the missing
                // fragment.
                Some(FaultKind::DropHandoff) => return None,
                None => {}
            }
        }
        while next_phase <= boundaries.len() && i as u64 >= boundaries[next_phase - 1] {
            let b = next_phase - 1;
            for (t, slot) in transfers.iter().zip(slots) {
                if t.boundary == b && t.from == index {
                    let handoff = det.export_shard(t.shard);
                    *lock_unpoisoned(&slot.0) = Some(handoff);
                    slot.1.notify_all();
                }
            }
            for (t, slot) in transfers.iter().zip(slots) {
                if t.boundary == b && t.to == index {
                    let handoff = wait_for_handoff(slot, t, index, shared, opts)?;
                    det.import_shard(handoff);
                }
            }
            det.enter_phase(next_phase);
            cur = *plan.assignment(next_phase);
            next_phase += 1;
        }
        let mine = match event_route(*cfg, seeds, ev) {
            EventRoute::Broadcast => true,
            EventRoute::Owner(addr) => cur[shard_of(addr)] as usize == index,
        };
        if mine {
            det.on_event_at(i as u64, ev);
        }
    }
    // Final shadow check, mirroring the sequential path: short runs
    // that end over budget between periodic polls are caught here.
    if shadow_limit != usize::MAX {
        let bytes = det.shadow_resident_bytes();
        if bytes > shadow_limit {
            shared.fail(EngineError::BudgetExhausted {
                resource: BudgetResource::ShadowBytes,
                limit: shadow_limit as u64,
                used: bytes as u64,
                partial: PartialMetrics {
                    events_processed: events.len() as u64,
                    contexts: 0,
                    shadow_bytes: bytes,
                },
            });
            return None;
        }
    }
    Some(det.into_fragment())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinrace_detector::MsmMode;
    use spinrace_tir::{Module, ModuleBuilder};
    use spinrace_vm::{record_run, VmConfig};

    /// Locked counters + an ad-hoc flag handoff + a deliberate race: all
    /// detector features (locksets, promotion, HB reports) in one module.
    fn mixed_module() -> Module {
        let mut mb = ModuleBuilder::new("mixed");
        let mu = mb.global("mu", 1);
        let shared = mb.global("shared", 1);
        let flag = mb.global("flag", 1);
        let data = mb.global("data", 1);
        let victim = mb.global("victim", 1);
        let w = mb.function("w", 1, |f| {
            f.lock(mu.at(0));
            let v = f.load(shared.at(0));
            let v2 = f.add(v, 1);
            f.store(shared.at(0), v2);
            f.unlock(mu.at(0));
            let r = f.load(victim.at(0));
            let r2 = f.add(r, 1);
            f.store(victim.at(0), r2);
            f.ret(None);
        });
        let waiter = mb.function("waiter", 1, |f| {
            let head = f.new_block();
            let done = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let v = f.load(flag.at(0));
            f.branch(v, done, head);
            f.switch_to(done);
            let d = f.load(data.at(0));
            f.output(d);
            f.ret(None);
        });
        mb.entry("main", |f| {
            let tw = f.spawn(waiter, 0);
            let t1 = f.spawn(w, 0);
            let t2 = f.spawn(w, 1);
            f.store(data.at(0), 7);
            f.store(flag.at(0), 1);
            f.join(t1);
            f.join(t2);
            f.join(tw);
            f.ret(None);
        });
        mb.finish().unwrap()
    }

    fn assert_matches_sequential(merged: &MergedDetection, seq: &RaceDetector, what: &str) {
        assert_eq!(
            merged.reports.reports(),
            seq.reports().reports(),
            "reports diverge: {what}"
        );
        assert_eq!(merged.reports.contexts(), seq.racy_contexts(), "{what}");
        assert_eq!(
            merged.promoted_locations,
            seq.promoted_locations(),
            "{what}"
        );
        assert_eq!(merged.metrics, seq.metrics(), "metrics diverge: {what}");
    }

    #[test]
    fn sharded_replay_equals_sequential_for_all_worker_counts() {
        let m = mixed_module();
        let trace = record_run(&m, VmConfig::round_robin(), "test").unwrap();
        for cfg in [
            DetectorConfig::helgrind_lib(MsmMode::Short),
            DetectorConfig::helgrind_lib_spin(MsmMode::Short),
            DetectorConfig::helgrind_lib_spin(MsmMode::Long),
            DetectorConfig::drd(),
        ] {
            let mut seq = RaceDetector::new(cfg);
            trace.replay(&mut seq);
            for schedule in [Schedule::Static, Schedule::Balanced] {
                for workers in [1, 2, 3, 4, 8] {
                    let merged = run_sharded_scheduled(cfg, &trace.events, workers, schedule);
                    assert_matches_sequential(
                        &merged,
                        &seq,
                        &format!("{workers} workers, {schedule}"),
                    );
                }
            }
        }
    }

    #[test]
    fn one_worker_forced_through_the_engine_equals_the_fast_path() {
        // run_sharded at 1 worker takes the sequential fast path; a
        // 1-worker *plan* forces the full worker/merge machinery. Both
        // must agree with a plain sequential detector.
        let m = mixed_module();
        let trace = record_run(&m, VmConfig::round_robin(), "test").unwrap();
        for cfg in [
            DetectorConfig::helgrind_lib_spin(MsmMode::Short),
            DetectorConfig::drd(),
        ] {
            let mut seq = RaceDetector::new(cfg);
            trace.replay(&mut seq);
            let fast = run_sharded(cfg, &trace.events, 1);
            assert_matches_sequential(&fast, &seq, "fast path");
            let forced =
                run_sharded_with_plan(cfg, &trace.events, Arc::new(SchedulePlan::static_plan(1)));
            assert_matches_sequential(&forced, &seq, "forced 1-worker engine");
            assert_eq!(fast.reports.reports(), forced.reports.reports());
            assert_eq!(fast.metrics, forced.metrics);
        }
    }

    /// A raw stream whose hot shard moves mid-stream: phase A hammers
    /// shard 0 (with a lock held, so shard cells carry lockset ids),
    /// phase B hammers shards 2 and 3. A small-chunk balanced plan must
    /// schedule at least one shard handoff, and the handed-off replay
    /// must still be byte-identical to sequential.
    #[test]
    fn planned_shard_handoffs_preserve_sequential_results() {
        use spinrace_vm::Event;
        let pc = |n| spinrace_tir::Pc::new(spinrace_tir::FuncId(0), spinrace_tir::BlockId(0), n);
        let write = |tid: u32, addr: u64, at: u32| Event::Write {
            tid,
            addr,
            value: 1,
            pc: pc(at),
            stack: 0,
            atomic: None,
        };
        let mut events = vec![
            Event::Spawn {
                parent: 0,
                child: 1,
                pc: pc(0),
            },
            Event::MutexLock {
                tid: 1,
                mutex: 0x9000,
                pc: pc(1),
            },
        ];
        // A few locked writes to shard 2 first, so the shard that later
        // changes hands carries populated cells whose lockset ids must be
        // re-interned by the importer.
        for i in 0..8u64 {
            events.push(write(1, (2 << 6) | i, 5));
        }
        // Phase A: 256 writes to shard 0 (addresses 0x00..0x3F plus page
        // strides keep shard_of == 0), lock held.
        for i in 0..256u64 {
            events.push(write(1, (i % 64) | ((i / 64) << 9), 10));
        }
        events.push(Event::MutexUnlock {
            tid: 1,
            mutex: 0x9000,
            pc: pc(2),
        });
        // Phase B: the traffic moves to shards 2 and 3.
        for i in 0..128u64 {
            let shard = 2 + (i % 2);
            events.push(write(1, (shard << 6) | (i % 64), 20));
        }
        let cfg = DetectorConfig::helgrind_lib(MsmMode::Short);
        let seeds = compute_promotion_seeds(cfg, &events);
        let plan = SchedulePlan::balanced_chunked(cfg, &seeds, &events, 2, 64);
        assert!(
            plan.handoffs() > 0,
            "the shifted stream must schedule a steal, got {:?}",
            plan.transfers()
        );
        let mut seq = RaceDetector::new(cfg);
        for ev in &events {
            seq.on_event(ev);
        }
        let merged = run_sharded_with_plan(cfg, &events, Arc::new(plan));
        assert_matches_sequential(&merged, &seq, "handed-off replay");
    }

    #[test]
    fn run_many_matches_individual_runs() {
        let m = mixed_module();
        let trace = record_run(&m, VmConfig::round_robin(), "test").unwrap();
        let cfgs = [
            DetectorConfig::helgrind_lib(MsmMode::Short),
            DetectorConfig::helgrind_lib_spin(MsmMode::Long),
            DetectorConfig::drd(),
        ];
        for workers in [1, 2, 4] {
            let many = run_many_sharded(&cfgs, &trace.events, workers, Schedule::Balanced);
            assert_eq!(many.len(), cfgs.len());
            for (cfg, merged) in cfgs.iter().zip(&many) {
                let mut seq = RaceDetector::new(*cfg);
                trace.replay(&mut seq);
                assert_matches_sequential(merged, &seq, &format!("pooled at {workers} workers"));
            }
        }
    }

    #[test]
    fn cap_saturation_is_reproduced_exactly() {
        let m = mixed_module();
        let trace = record_run(&m, VmConfig::round_robin(), "test").unwrap();
        let cfg = DetectorConfig::helgrind_lib(MsmMode::Short).with_cap(1);
        let mut seq = RaceDetector::new(cfg);
        trace.replay(&mut seq);
        for workers in [1, 2, 4] {
            let merged = run_sharded(cfg, &trace.events, workers);
            assert_eq!(merged.reports.reports(), seq.reports().reports());
            assert_eq!(merged.reports.contexts(), 1);
            assert_eq!(merged.reports.dropped(), seq.reports().dropped());
        }
    }

    #[test]
    fn repeat_attempts_of_capped_contexts_match_sequential_dropped() {
        // A raw stream where the same capped-out context races repeatedly:
        // after ctx (pcA, pcB) fills the cap, every round re-attempts ctx
        // (pcB, pcA), and the sequential collector counts each attempt as
        // dropped. The merge must reproduce that count, not just the
        // recorded reports.
        use spinrace_vm::Event;
        let pc = |n| spinrace_tir::Pc::new(spinrace_tir::FuncId(0), spinrace_tir::BlockId(0), n);
        let mut events = vec![
            Event::Spawn {
                parent: 0,
                child: 1,
                pc: pc(0),
            },
            Event::Spawn {
                parent: 0,
                child: 2,
                pc: pc(0),
            },
        ];
        for _ in 0..3 {
            for (tid, at) in [(1u32, 10u32), (2, 20)] {
                events.push(Event::Write {
                    tid,
                    addr: 0x1000,
                    value: 1,
                    pc: pc(at),
                    stack: 0,
                    atomic: None,
                });
            }
        }
        let cfg = DetectorConfig::helgrind_lib(MsmMode::Short).with_cap(1);
        let mut seq = RaceDetector::new(cfg);
        for ev in &events {
            seq.on_event(ev);
        }
        assert!(seq.reports().dropped() > 0, "the scenario must saturate");
        for workers in [1, 2, 4] {
            let merged = run_sharded(cfg, &events, workers);
            assert_eq!(merged.reports.reports(), seq.reports().reports());
            assert_eq!(
                merged.reports.dropped(),
                seq.reports().dropped(),
                "dropped diverges at {workers} workers"
            );
        }
    }

    #[test]
    fn worker_counts_beyond_the_shard_count_clamp() {
        let m = mixed_module();
        let trace = record_run(&m, VmConfig::round_robin(), "test").unwrap();
        let cfg = DetectorConfig::drd();
        let a = run_sharded(cfg, &trace.events, NUM_SHARDS);
        let b = run_sharded(cfg, &trace.events, 64);
        assert_eq!(a.reports.reports(), b.reports.reports());
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn fault_plan_parses_and_round_trips() {
        for (s, plan) in [
            (
                "panic:1:100",
                FaultPlan {
                    worker: 1,
                    at_event: 100,
                    kind: FaultKind::Panic,
                },
            ),
            (
                "delay:0:42:2500",
                FaultPlan {
                    worker: 0,
                    at_event: 42,
                    kind: FaultKind::Delay(2500),
                },
            ),
            (
                "drop:3:7",
                FaultPlan {
                    worker: 3,
                    at_event: 7,
                    kind: FaultKind::DropHandoff,
                },
            ),
        ] {
            assert_eq!(s.parse::<FaultPlan>().unwrap(), plan, "parse {s:?}");
            assert_eq!(plan.to_string().parse::<FaultPlan>().unwrap(), plan);
        }
        for bad in [
            "",
            "panic",
            "panic:1",
            "panic:1:2:3",
            "delay:1:2",
            "drop:1:2:3",
            "boom:1:2",
            "panic:x:2",
            "panic:1:y",
            "delay:1:2:z",
        ] {
            assert!(bad.parse::<FaultPlan>().is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn event_budget_reports_partial_metrics_from_the_prefix() {
        let m = mixed_module();
        let trace = record_run(&m, VmConfig::round_robin(), "test").unwrap();
        let cfg = DetectorConfig::helgrind_lib(MsmMode::Short);
        let budget = (trace.events.len() / 2) as u64;
        let opts = EngineOptions {
            budget: Budget {
                max_events: Some(budget),
                max_shadow_bytes: None,
            },
            ..EngineOptions::default()
        };
        // Ground truth: a sequential detector over the affordable prefix.
        let mut prefix = RaceDetector::new(cfg);
        for ev in &trace.events[..budget as usize] {
            prefix.on_event(ev);
        }
        for workers in [1, 2, 4] {
            let err = try_run_sharded_opts(cfg, &trace.events, workers, opts)
                .expect_err("budget must trip");
            match err {
                EngineError::BudgetExhausted {
                    resource: BudgetResource::Events,
                    limit,
                    used,
                    partial,
                } => {
                    assert_eq!(limit, budget);
                    assert_eq!(used, trace.events.len() as u64);
                    assert_eq!(partial.events_processed, budget);
                    assert_eq!(
                        partial.contexts,
                        prefix.racy_contexts(),
                        "partial metrics diverge at {workers} workers"
                    );
                }
                other => panic!("expected event-budget error, got {other}"),
            }
        }
    }

    #[test]
    fn shadow_budget_trips_with_partial_metrics() {
        let m = mixed_module();
        let trace = record_run(&m, VmConfig::round_robin(), "test").unwrap();
        let cfg = DetectorConfig::helgrind_lib(MsmMode::Short);
        let opts = EngineOptions {
            budget: Budget {
                max_events: None,
                max_shadow_bytes: Some(1),
            },
            ..EngineOptions::default()
        };
        for workers in [1, 2] {
            let err = try_run_sharded_opts(cfg, &trace.events, workers, opts)
                .expect_err("a 1-byte shadow budget must trip");
            match err {
                EngineError::BudgetExhausted {
                    resource: BudgetResource::ShadowBytes,
                    limit,
                    used,
                    ..
                } => {
                    assert_eq!(limit, 1);
                    assert!(used > 1);
                }
                other => panic!("expected shadow-budget error, got {other}"),
            }
        }
    }

    #[test]
    fn explicit_default_options_stay_byte_identical_to_sequential() {
        let m = mixed_module();
        let trace = record_run(&m, VmConfig::round_robin(), "test").unwrap();
        let cfg = DetectorConfig::helgrind_lib_spin(MsmMode::Short);
        let mut seq = RaceDetector::new(cfg);
        trace.replay(&mut seq);
        for schedule in [Schedule::Static, Schedule::Balanced] {
            for workers in [2, 4, 8] {
                let merged = try_run_sharded_opts(
                    cfg,
                    &trace.events,
                    workers,
                    EngineOptions::scheduled(schedule),
                )
                .unwrap();
                assert_matches_sequential(
                    &merged,
                    &seq,
                    &format!("opts path, {workers} workers, {schedule}"),
                );
            }
        }
    }
}
