//! Parallel sharded trace replay — deterministic by construction.
//!
//! [`run_sharded`] replays one recorded event stream on a scoped thread
//! pool: plain data accesses are partitioned along the detector's
//! [`ShadowTable`](spinrace_detector::shadow::ShadowTable) shard seam,
//! while every synchronization-relevant event is broadcast so each
//! worker's thread vector clocks evolve exactly as a sequential
//! detector's would. Which worker owns which shard is a precomputed
//! [`SchedulePlan`]:
//!
//! * [`Schedule::Static`] — worker `i` of `W` owns shard `s` iff
//!   `s % W == i`, for the whole stream. Oblivious to skew.
//! * [`Schedule::Balanced`] (the default) — a pre-pass histograms
//!   owner-routed events per shard and LPT bin-packing spreads the load;
//!   when the distribution shifts mid-stream, the plan schedules whole
//!   shards to *change hands* at chunk boundaries (planned stealing).
//!   At a boundary the departing owner exports the shard's shadow pages
//!   plus the contents of the lockset ids they reference, and the new
//!   owner re-interns and implants them before touching any event past
//!   the boundary — per-shard event order is untouched, so the merged
//!   result stays byte-identical to [`Schedule::Static`] and to
//!   sequential replay.
//!
//! The merged result — reports, racy contexts, promotion counts, and the
//! full [`DetectorMetrics`](spinrace_detector::DetectorMetrics) — is
//! **bit-identical** to a sequential replay for any worker count and
//! either schedule, which is what lets harnesses and CLIs pick a worker
//! count from the machine without perturbing a single table number (the
//! CI `replay-determinism` job holds `--schedule balanced --workers
//! 1/2/4/8` to byte-equal output).
//!
//! At `workers <= 1` [`run_sharded`] takes the **sequential fast path**:
//! a plain [`RaceDetector`] loop with no seed pre-pass, no pool, and no
//! per-access ownership gate, so a 1-worker "parallel" detection costs
//! the same as a plain replay. ([`run_sharded_with_plan`] keeps the full
//! worker/merge machinery reachable at 1 worker for determinism tests.)
//!
//! The determinism mechanics (promotion-seed pre-pass, tagged report
//! attempts, the lockset op log, shard handoffs) live in
//! [`spinrace_detector::sharded`]; this module owns the orchestration:
//! seed computation, plan construction, event routing, the
//! `std::thread::scope` pool, the boundary handoff protocol, and the
//! fragment merge.
//!
//! ```
//! use spinrace_core::{parallel, Session, Tool};
//! use spinrace_tir::ModuleBuilder;
//!
//! let mut mb = ModuleBuilder::new("racy");
//! let g = mb.global("g", 1);
//! let w = mb.function("w", 1, |f| {
//!     let v = f.load(g.at(0));
//!     let v2 = f.add(v, 1);
//!     f.store(g.at(0), v2);
//!     f.ret(None);
//! });
//! mb.entry("main", |f| {
//!     let t1 = f.spawn(w, 0);
//!     let t2 = f.spawn(w, 1);
//!     f.join(t1);
//!     f.join(t2);
//!     f.ret(None);
//! });
//! let m = mb.finish().unwrap();
//!
//! let run = Session::for_module(&m)
//!     .prepare(Tool::HelgrindLib)
//!     .unwrap()
//!     .execute()
//!     .unwrap();
//! let sequential = run.detect();
//! for workers in [1, 2, 4, 8] {
//!     let par = run.detect_parallel(workers);
//!     assert_eq!(par.contexts, sequential.contexts);
//!     assert_eq!(par.metrics, sequential.metrics);
//! }
//! assert!(parallel::default_workers() >= 1);
//! ```

use spinrace_detector::{
    compute_promotion_seeds, event_route, merge_fragments, shard_of, DetectorConfig, EventRoute,
    MergedDetection, PromotionSeeds, RaceDetector, SchedulePlan, ShardHandoff, ShardSpec,
    ShardTransfer, WorkerFragment, NUM_SHARDS,
};
use spinrace_vm::{Event, EventSink};
use std::sync::{Arc, Condvar, Mutex};

pub use spinrace_detector::Schedule;

/// A sensible worker count for this machine: the available parallelism,
/// clamped to the shard count (extra workers would own no shards).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(NUM_SHARDS)
}

/// Replay `events` under `cfg` on `workers` scoped threads with the
/// default [`Schedule::Balanced`] plan and merge the fragments into the
/// sequential detection result. `workers` is clamped to
/// `1..=`[`NUM_SHARDS`]; the output is identical for every worker count.
/// At 1 worker this routes through the plain sequential detector loop —
/// no pool, no ownership gate (use [`run_sharded_with_plan`] to force
/// the worker machinery at width 1).
pub fn run_sharded(cfg: DetectorConfig, events: &[Event], workers: usize) -> MergedDetection {
    run_sharded_scheduled(cfg, events, workers, Schedule::default())
}

/// [`run_sharded`] with an explicit scheduling mode.
pub fn run_sharded_scheduled(
    cfg: DetectorConfig,
    events: &[Event],
    workers: usize,
    schedule: Schedule,
) -> MergedDetection {
    let workers = workers.clamp(1, NUM_SHARDS);
    if workers <= 1 {
        return run_sequential(cfg, events);
    }
    let seeds = Arc::new(compute_promotion_seeds(cfg, events));
    let plan = Arc::new(make_plan(cfg, &seeds, events, workers, schedule));
    run_planned(cfg, events, &seeds, &plan)
}

/// Replay under an explicit precomputed [`SchedulePlan`], always through
/// the full worker/merge machinery — even at `plan.workers() == 1`,
/// which is the determinism baseline the proptests force.
pub fn run_sharded_with_plan(
    cfg: DetectorConfig,
    events: &[Event],
    plan: Arc<SchedulePlan>,
) -> MergedDetection {
    let seeds = Arc::new(compute_promotion_seeds(cfg, events));
    run_planned(cfg, events, &seeds, &plan)
}

/// Replay `events` once per configuration on **one** scoped worker pool:
/// each worker thread processes every configuration's job in order, so a
/// tool fan-out over the same trace pays thread spawn/join once instead
/// of once per tool. Results are merged per configuration, in input
/// order, each byte-identical to its sequential replay.
pub fn run_many_sharded(
    cfgs: &[DetectorConfig],
    events: &[Event],
    workers: usize,
    schedule: Schedule,
) -> Vec<MergedDetection> {
    let workers = workers.clamp(1, NUM_SHARDS);
    if workers <= 1 {
        return cfgs
            .iter()
            .map(|&cfg| run_sequential(cfg, events))
            .collect();
    }
    let jobs: Vec<Job> = cfgs
        .iter()
        .map(|&cfg| {
            let seeds = Arc::new(compute_promotion_seeds(cfg, events));
            let plan = Arc::new(make_plan(cfg, &seeds, events, workers, schedule));
            Job::new(cfg, seeds, plan)
        })
        .collect();
    let mut per_worker: Vec<Vec<WorkerFragment>> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|index| {
                let jobs = &jobs;
                s.spawn(move || {
                    jobs.iter()
                        .map(|job| worker_pass(events, job, index))
                        .collect::<Vec<WorkerFragment>>()
                })
            })
            .collect();
        for h in handles {
            per_worker.push(h.join().expect("replay worker panicked"));
        }
    });
    let mut columns: Vec<_> = per_worker.into_iter().map(|v| v.into_iter()).collect();
    cfgs.iter()
        .map(|cfg| {
            let fragments: Vec<WorkerFragment> =
                columns.iter_mut().map(|c| c.next().unwrap()).collect();
            merge_fragments(cfg.context_cap, fragments)
        })
        .collect()
}

/// The single-worker fast path: a plain sequential detector fed through
/// the ordinary [`EventSink`] loop, sealed into the merged-detection
/// shape. No seed pre-pass, no plan, no ownership gate per access.
fn run_sequential(cfg: DetectorConfig, events: &[Event]) -> MergedDetection {
    let mut det = RaceDetector::new(cfg);
    for ev in events {
        det.on_event(ev);
    }
    det.into_detection()
}

fn make_plan(
    cfg: DetectorConfig,
    seeds: &PromotionSeeds,
    events: &[Event],
    workers: usize,
    schedule: Schedule,
) -> SchedulePlan {
    match schedule {
        Schedule::Static => SchedulePlan::static_plan(workers),
        Schedule::Balanced => SchedulePlan::balanced(cfg, seeds, events, workers),
    }
}

/// One configuration's replay job on the shared pool: the config, its
/// promotion seeds and plan, and one rendezvous slot per planned shard
/// transfer for the boundary handoff protocol.
struct Job {
    cfg: DetectorConfig,
    seeds: Arc<PromotionSeeds>,
    plan: Arc<SchedulePlan>,
    transfers: Vec<ShardTransfer>,
    slots: Vec<(Mutex<Option<ShardHandoff>>, Condvar)>,
}

impl Job {
    fn new(cfg: DetectorConfig, seeds: Arc<PromotionSeeds>, plan: Arc<SchedulePlan>) -> Job {
        let transfers = plan.transfers();
        let slots = transfers
            .iter()
            .map(|_| (Mutex::new(None), Condvar::new()))
            .collect();
        Job {
            cfg,
            seeds,
            plan,
            transfers,
            slots,
        }
    }
}

fn run_planned(
    cfg: DetectorConfig,
    events: &[Event],
    seeds: &Arc<PromotionSeeds>,
    plan: &Arc<SchedulePlan>,
) -> MergedDetection {
    let job = Job::new(cfg, Arc::clone(seeds), Arc::clone(plan));
    let workers = plan.workers();
    let mut fragments: Vec<WorkerFragment> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|index| {
                let job = &job;
                s.spawn(move || worker_pass(events, job, index))
            })
            .collect();
        for h in handles {
            fragments.push(h.join().expect("replay worker panicked"));
        }
    });
    merge_fragments(cfg.context_cap, fragments)
}

/// One worker's scan of the whole event slice: route inline, process
/// owned + broadcast events, and at each plan boundary run the handoff
/// protocol — publish **all** departing shards first, then block on
/// incoming ones, then switch the ownership gate to the next phase.
/// Publishing before waiting makes the protocol deadlock-free by
/// induction over boundaries: every worker reaches every boundary (all
/// workers scan the full slice), and a worker that waits has already
/// published everything its peers at this boundary could need.
fn worker_pass(events: &[Event], job: &Job, index: usize) -> WorkerFragment {
    let Job {
        cfg,
        seeds,
        plan,
        transfers,
        slots,
    } = job;
    let spec = ShardSpec::planned(Arc::clone(plan), index);
    let mut det = RaceDetector::new_worker(*cfg, spec, Arc::clone(seeds));
    // Local copy of the current phase's assignment keeps the per-event
    // ownership gate a plain array index.
    let mut cur = *plan.assignment(0);
    let boundaries = plan.boundaries();
    let mut next_phase = 1usize;
    for (i, ev) in events.iter().enumerate() {
        while next_phase <= boundaries.len() && i as u64 >= boundaries[next_phase - 1] {
            let b = next_phase - 1;
            for (t, slot) in transfers.iter().zip(slots) {
                if t.boundary == b && t.from == index {
                    let handoff = det.export_shard(t.shard);
                    *slot.0.lock().expect("handoff slot poisoned") = Some(handoff);
                    slot.1.notify_all();
                }
            }
            for (t, slot) in transfers.iter().zip(slots) {
                if t.boundary == b && t.to == index {
                    let mut guard = slot.0.lock().expect("handoff slot poisoned");
                    while guard.is_none() {
                        guard = slot.1.wait(guard).expect("handoff slot poisoned");
                    }
                    det.import_shard(guard.take().unwrap());
                }
            }
            det.enter_phase(next_phase);
            cur = *plan.assignment(next_phase);
            next_phase += 1;
        }
        let mine = match event_route(*cfg, seeds, ev) {
            EventRoute::Broadcast => true,
            EventRoute::Owner(addr) => cur[shard_of(addr)] as usize == index,
        };
        if mine {
            det.on_event_at(i as u64, ev);
        }
    }
    det.into_fragment()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinrace_detector::MsmMode;
    use spinrace_tir::{Module, ModuleBuilder};
    use spinrace_vm::{record_run, VmConfig};

    /// Locked counters + an ad-hoc flag handoff + a deliberate race: all
    /// detector features (locksets, promotion, HB reports) in one module.
    fn mixed_module() -> Module {
        let mut mb = ModuleBuilder::new("mixed");
        let mu = mb.global("mu", 1);
        let shared = mb.global("shared", 1);
        let flag = mb.global("flag", 1);
        let data = mb.global("data", 1);
        let victim = mb.global("victim", 1);
        let w = mb.function("w", 1, |f| {
            f.lock(mu.at(0));
            let v = f.load(shared.at(0));
            let v2 = f.add(v, 1);
            f.store(shared.at(0), v2);
            f.unlock(mu.at(0));
            let r = f.load(victim.at(0));
            let r2 = f.add(r, 1);
            f.store(victim.at(0), r2);
            f.ret(None);
        });
        let waiter = mb.function("waiter", 1, |f| {
            let head = f.new_block();
            let done = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let v = f.load(flag.at(0));
            f.branch(v, done, head);
            f.switch_to(done);
            let d = f.load(data.at(0));
            f.output(d);
            f.ret(None);
        });
        mb.entry("main", |f| {
            let tw = f.spawn(waiter, 0);
            let t1 = f.spawn(w, 0);
            let t2 = f.spawn(w, 1);
            f.store(data.at(0), 7);
            f.store(flag.at(0), 1);
            f.join(t1);
            f.join(t2);
            f.join(tw);
            f.ret(None);
        });
        mb.finish().unwrap()
    }

    fn assert_matches_sequential(merged: &MergedDetection, seq: &RaceDetector, what: &str) {
        assert_eq!(
            merged.reports.reports(),
            seq.reports().reports(),
            "reports diverge: {what}"
        );
        assert_eq!(merged.reports.contexts(), seq.racy_contexts(), "{what}");
        assert_eq!(
            merged.promoted_locations,
            seq.promoted_locations(),
            "{what}"
        );
        assert_eq!(merged.metrics, seq.metrics(), "metrics diverge: {what}");
    }

    #[test]
    fn sharded_replay_equals_sequential_for_all_worker_counts() {
        let m = mixed_module();
        let trace = record_run(&m, VmConfig::round_robin(), "test").unwrap();
        for cfg in [
            DetectorConfig::helgrind_lib(MsmMode::Short),
            DetectorConfig::helgrind_lib_spin(MsmMode::Short),
            DetectorConfig::helgrind_lib_spin(MsmMode::Long),
            DetectorConfig::drd(),
        ] {
            let mut seq = RaceDetector::new(cfg);
            trace.replay(&mut seq);
            for schedule in [Schedule::Static, Schedule::Balanced] {
                for workers in [1, 2, 3, 4, 8] {
                    let merged = run_sharded_scheduled(cfg, &trace.events, workers, schedule);
                    assert_matches_sequential(
                        &merged,
                        &seq,
                        &format!("{workers} workers, {schedule}"),
                    );
                }
            }
        }
    }

    #[test]
    fn one_worker_forced_through_the_engine_equals_the_fast_path() {
        // run_sharded at 1 worker takes the sequential fast path; a
        // 1-worker *plan* forces the full worker/merge machinery. Both
        // must agree with a plain sequential detector.
        let m = mixed_module();
        let trace = record_run(&m, VmConfig::round_robin(), "test").unwrap();
        for cfg in [
            DetectorConfig::helgrind_lib_spin(MsmMode::Short),
            DetectorConfig::drd(),
        ] {
            let mut seq = RaceDetector::new(cfg);
            trace.replay(&mut seq);
            let fast = run_sharded(cfg, &trace.events, 1);
            assert_matches_sequential(&fast, &seq, "fast path");
            let forced =
                run_sharded_with_plan(cfg, &trace.events, Arc::new(SchedulePlan::static_plan(1)));
            assert_matches_sequential(&forced, &seq, "forced 1-worker engine");
            assert_eq!(fast.reports.reports(), forced.reports.reports());
            assert_eq!(fast.metrics, forced.metrics);
        }
    }

    /// A raw stream whose hot shard moves mid-stream: phase A hammers
    /// shard 0 (with a lock held, so shard cells carry lockset ids),
    /// phase B hammers shards 2 and 3. A small-chunk balanced plan must
    /// schedule at least one shard handoff, and the handed-off replay
    /// must still be byte-identical to sequential.
    #[test]
    fn planned_shard_handoffs_preserve_sequential_results() {
        use spinrace_vm::Event;
        let pc = |n| spinrace_tir::Pc::new(spinrace_tir::FuncId(0), spinrace_tir::BlockId(0), n);
        let write = |tid: u32, addr: u64, at: u32| Event::Write {
            tid,
            addr,
            value: 1,
            pc: pc(at),
            stack: 0,
            atomic: None,
        };
        let mut events = vec![
            Event::Spawn {
                parent: 0,
                child: 1,
                pc: pc(0),
            },
            Event::MutexLock {
                tid: 1,
                mutex: 0x9000,
                pc: pc(1),
            },
        ];
        // A few locked writes to shard 2 first, so the shard that later
        // changes hands carries populated cells whose lockset ids must be
        // re-interned by the importer.
        for i in 0..8u64 {
            events.push(write(1, (2 << 6) | i, 5));
        }
        // Phase A: 256 writes to shard 0 (addresses 0x00..0x3F plus page
        // strides keep shard_of == 0), lock held.
        for i in 0..256u64 {
            events.push(write(1, (i % 64) | ((i / 64) << 9), 10));
        }
        events.push(Event::MutexUnlock {
            tid: 1,
            mutex: 0x9000,
            pc: pc(2),
        });
        // Phase B: the traffic moves to shards 2 and 3.
        for i in 0..128u64 {
            let shard = 2 + (i % 2);
            events.push(write(1, (shard << 6) | (i % 64), 20));
        }
        let cfg = DetectorConfig::helgrind_lib(MsmMode::Short);
        let seeds = compute_promotion_seeds(cfg, &events);
        let plan = SchedulePlan::balanced_chunked(cfg, &seeds, &events, 2, 64);
        assert!(
            plan.handoffs() > 0,
            "the shifted stream must schedule a steal, got {:?}",
            plan.transfers()
        );
        let mut seq = RaceDetector::new(cfg);
        for ev in &events {
            seq.on_event(ev);
        }
        let merged = run_sharded_with_plan(cfg, &events, Arc::new(plan));
        assert_matches_sequential(&merged, &seq, "handed-off replay");
    }

    #[test]
    fn run_many_matches_individual_runs() {
        let m = mixed_module();
        let trace = record_run(&m, VmConfig::round_robin(), "test").unwrap();
        let cfgs = [
            DetectorConfig::helgrind_lib(MsmMode::Short),
            DetectorConfig::helgrind_lib_spin(MsmMode::Long),
            DetectorConfig::drd(),
        ];
        for workers in [1, 2, 4] {
            let many = run_many_sharded(&cfgs, &trace.events, workers, Schedule::Balanced);
            assert_eq!(many.len(), cfgs.len());
            for (cfg, merged) in cfgs.iter().zip(&many) {
                let mut seq = RaceDetector::new(*cfg);
                trace.replay(&mut seq);
                assert_matches_sequential(merged, &seq, &format!("pooled at {workers} workers"));
            }
        }
    }

    #[test]
    fn cap_saturation_is_reproduced_exactly() {
        let m = mixed_module();
        let trace = record_run(&m, VmConfig::round_robin(), "test").unwrap();
        let cfg = DetectorConfig::helgrind_lib(MsmMode::Short).with_cap(1);
        let mut seq = RaceDetector::new(cfg);
        trace.replay(&mut seq);
        for workers in [1, 2, 4] {
            let merged = run_sharded(cfg, &trace.events, workers);
            assert_eq!(merged.reports.reports(), seq.reports().reports());
            assert_eq!(merged.reports.contexts(), 1);
            assert_eq!(merged.reports.dropped(), seq.reports().dropped());
        }
    }

    #[test]
    fn repeat_attempts_of_capped_contexts_match_sequential_dropped() {
        // A raw stream where the same capped-out context races repeatedly:
        // after ctx (pcA, pcB) fills the cap, every round re-attempts ctx
        // (pcB, pcA), and the sequential collector counts each attempt as
        // dropped. The merge must reproduce that count, not just the
        // recorded reports.
        use spinrace_vm::Event;
        let pc = |n| spinrace_tir::Pc::new(spinrace_tir::FuncId(0), spinrace_tir::BlockId(0), n);
        let mut events = vec![
            Event::Spawn {
                parent: 0,
                child: 1,
                pc: pc(0),
            },
            Event::Spawn {
                parent: 0,
                child: 2,
                pc: pc(0),
            },
        ];
        for _ in 0..3 {
            for (tid, at) in [(1u32, 10u32), (2, 20)] {
                events.push(Event::Write {
                    tid,
                    addr: 0x1000,
                    value: 1,
                    pc: pc(at),
                    stack: 0,
                    atomic: None,
                });
            }
        }
        let cfg = DetectorConfig::helgrind_lib(MsmMode::Short).with_cap(1);
        let mut seq = RaceDetector::new(cfg);
        for ev in &events {
            seq.on_event(ev);
        }
        assert!(seq.reports().dropped() > 0, "the scenario must saturate");
        for workers in [1, 2, 4] {
            let merged = run_sharded(cfg, &events, workers);
            assert_eq!(merged.reports.reports(), seq.reports().reports());
            assert_eq!(
                merged.reports.dropped(),
                seq.reports().dropped(),
                "dropped diverges at {workers} workers"
            );
        }
    }

    #[test]
    fn worker_counts_beyond_the_shard_count_clamp() {
        let m = mixed_module();
        let trace = record_run(&m, VmConfig::round_robin(), "test").unwrap();
        let cfg = DetectorConfig::drd();
        let a = run_sharded(cfg, &trace.events, NUM_SHARDS);
        let b = run_sharded(cfg, &trace.events, 64);
        assert_eq!(a.reports.reports(), b.reports.reports());
        assert_eq!(a.metrics, b.metrics);
    }
}
