//! Parallel sharded trace replay — deterministic by construction.
//!
//! [`run_sharded`] replays one recorded event stream on a scoped thread
//! pool: plain data accesses are partitioned along the detector's
//! [`ShadowTable`](spinrace_detector::shadow::ShadowTable) shard seam
//! (worker *i* of *W* owns shard `s` iff `s % W == i`), while every
//! synchronization-relevant event is broadcast so each worker's thread
//! vector clocks evolve exactly as a sequential detector's would. The
//! merged result — reports, racy contexts, promotion counts, and the full
//! [`DetectorMetrics`](spinrace_detector::DetectorMetrics) — is
//! **bit-identical** to a sequential replay for
//! any worker count, which is what lets harnesses and CLIs pick a worker
//! count from the machine without perturbing a single table number (the
//! CI `replay-determinism` job holds `--workers 1/2/4/8` to byte-equal
//! output).
//!
//! The determinism mechanics (promotion-seed pre-pass, tagged report
//! attempts, the lockset op log) live in [`spinrace_detector::sharded`];
//! this module owns the orchestration: seed computation, event routing,
//! the `std::thread::scope` pool, and the fragment merge.
//!
//! ```
//! use spinrace_core::{parallel, Session, Tool};
//! use spinrace_tir::ModuleBuilder;
//!
//! let mut mb = ModuleBuilder::new("racy");
//! let g = mb.global("g", 1);
//! let w = mb.function("w", 1, |f| {
//!     let v = f.load(g.at(0));
//!     let v2 = f.add(v, 1);
//!     f.store(g.at(0), v2);
//!     f.ret(None);
//! });
//! mb.entry("main", |f| {
//!     let t1 = f.spawn(w, 0);
//!     let t2 = f.spawn(w, 1);
//!     f.join(t1);
//!     f.join(t2);
//!     f.ret(None);
//! });
//! let m = mb.finish().unwrap();
//!
//! let run = Session::for_module(&m)
//!     .prepare(Tool::HelgrindLib)
//!     .unwrap()
//!     .execute()
//!     .unwrap();
//! let sequential = run.detect();
//! for workers in [1, 2, 4, 8] {
//!     let par = run.detect_parallel(workers);
//!     assert_eq!(par.contexts, sequential.contexts);
//!     assert_eq!(par.metrics, sequential.metrics);
//! }
//! assert!(parallel::default_workers() >= 1);
//! ```

use spinrace_detector::{
    compute_promotion_seeds, event_route, merge_fragments, DetectorConfig, EventRoute,
    MergedDetection, RaceDetector, ShardSpec, WorkerFragment, NUM_SHARDS,
};
use spinrace_vm::Event;
use std::sync::Arc;

/// A sensible worker count for this machine: the available parallelism,
/// clamped to the shard count (extra workers would own no shards).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(NUM_SHARDS)
}

/// Replay `events` under `cfg` on `workers` scoped threads and merge the
/// fragments into the sequential detection result. `workers` is clamped
/// to `1..=`[`NUM_SHARDS`]; the output is identical for every worker
/// count (including 1, which still exercises the full worker/merge
/// machinery — useful as the determinism baseline).
pub fn run_sharded(cfg: DetectorConfig, events: &[Event], workers: usize) -> MergedDetection {
    let workers = workers.clamp(1, NUM_SHARDS);
    let seeds = Arc::new(compute_promotion_seeds(cfg, events));
    let mut fragments: Vec<WorkerFragment> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|index| {
                let seeds = Arc::clone(&seeds);
                s.spawn(move || {
                    let spec = ShardSpec { workers, index };
                    let mut det = RaceDetector::new_worker(cfg, spec, Arc::clone(&seeds));
                    // Each worker scans the shared slice and routes
                    // inline — the routing work parallelizes with the
                    // detection work instead of being a serial
                    // partitioning pass.
                    for (i, ev) in events.iter().enumerate() {
                        let mine = match event_route(cfg, &seeds, ev) {
                            EventRoute::Broadcast => true,
                            EventRoute::Owner(addr) => spec.owns_addr(addr),
                        };
                        if mine {
                            det.on_event_at(i as u64, ev);
                        }
                    }
                    det.into_fragment()
                })
            })
            .collect();
        for h in handles {
            fragments.push(h.join().expect("replay worker panicked"));
        }
    });
    merge_fragments(cfg.context_cap, fragments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinrace_detector::MsmMode;
    use spinrace_tir::{Module, ModuleBuilder};
    use spinrace_vm::{record_run, VmConfig};

    /// Locked counters + an ad-hoc flag handoff + a deliberate race: all
    /// detector features (locksets, promotion, HB reports) in one module.
    fn mixed_module() -> Module {
        let mut mb = ModuleBuilder::new("mixed");
        let mu = mb.global("mu", 1);
        let shared = mb.global("shared", 1);
        let flag = mb.global("flag", 1);
        let data = mb.global("data", 1);
        let victim = mb.global("victim", 1);
        let w = mb.function("w", 1, |f| {
            f.lock(mu.at(0));
            let v = f.load(shared.at(0));
            let v2 = f.add(v, 1);
            f.store(shared.at(0), v2);
            f.unlock(mu.at(0));
            let r = f.load(victim.at(0));
            let r2 = f.add(r, 1);
            f.store(victim.at(0), r2);
            f.ret(None);
        });
        let waiter = mb.function("waiter", 1, |f| {
            let head = f.new_block();
            let done = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let v = f.load(flag.at(0));
            f.branch(v, done, head);
            f.switch_to(done);
            let d = f.load(data.at(0));
            f.output(d);
            f.ret(None);
        });
        mb.entry("main", |f| {
            let tw = f.spawn(waiter, 0);
            let t1 = f.spawn(w, 0);
            let t2 = f.spawn(w, 1);
            f.store(data.at(0), 7);
            f.store(flag.at(0), 1);
            f.join(t1);
            f.join(t2);
            f.join(tw);
            f.ret(None);
        });
        mb.finish().unwrap()
    }

    #[test]
    fn sharded_replay_equals_sequential_for_all_worker_counts() {
        let m = mixed_module();
        let trace = record_run(&m, VmConfig::round_robin(), "test").unwrap();
        for cfg in [
            DetectorConfig::helgrind_lib(MsmMode::Short),
            DetectorConfig::helgrind_lib_spin(MsmMode::Short),
            DetectorConfig::helgrind_lib_spin(MsmMode::Long),
            DetectorConfig::drd(),
        ] {
            let mut seq = RaceDetector::new(cfg);
            trace.replay(&mut seq);
            for workers in [1, 2, 3, 4, 8] {
                let merged = run_sharded(cfg, &trace.events, workers);
                assert_eq!(
                    merged.reports.reports(),
                    seq.reports().reports(),
                    "reports diverge at {workers} workers"
                );
                assert_eq!(merged.reports.contexts(), seq.racy_contexts());
                assert_eq!(merged.promoted_locations, seq.promoted_locations());
                assert_eq!(
                    merged.metrics,
                    seq.metrics(),
                    "metrics diverge at {workers} workers"
                );
            }
        }
    }

    #[test]
    fn cap_saturation_is_reproduced_exactly() {
        let m = mixed_module();
        let trace = record_run(&m, VmConfig::round_robin(), "test").unwrap();
        let cfg = DetectorConfig::helgrind_lib(MsmMode::Short).with_cap(1);
        let mut seq = RaceDetector::new(cfg);
        trace.replay(&mut seq);
        for workers in [1, 2, 4] {
            let merged = run_sharded(cfg, &trace.events, workers);
            assert_eq!(merged.reports.reports(), seq.reports().reports());
            assert_eq!(merged.reports.contexts(), 1);
            assert_eq!(merged.reports.dropped(), seq.reports().dropped());
        }
    }

    #[test]
    fn repeat_attempts_of_capped_contexts_match_sequential_dropped() {
        // A raw stream where the same capped-out context races repeatedly:
        // after ctx (pcA, pcB) fills the cap, every round re-attempts ctx
        // (pcB, pcA), and the sequential collector counts each attempt as
        // dropped. The merge must reproduce that count, not just the
        // recorded reports.
        use spinrace_vm::Event;
        let pc = |n| spinrace_tir::Pc::new(spinrace_tir::FuncId(0), spinrace_tir::BlockId(0), n);
        let mut events = vec![
            Event::Spawn {
                parent: 0,
                child: 1,
                pc: pc(0),
            },
            Event::Spawn {
                parent: 0,
                child: 2,
                pc: pc(0),
            },
        ];
        for _ in 0..3 {
            for (tid, at) in [(1u32, 10u32), (2, 20)] {
                events.push(Event::Write {
                    tid,
                    addr: 0x1000,
                    value: 1,
                    pc: pc(at),
                    stack: 0,
                    atomic: None,
                });
            }
        }
        let cfg = DetectorConfig::helgrind_lib(MsmMode::Short).with_cap(1);
        let mut seq = RaceDetector::new(cfg);
        for ev in &events {
            use spinrace_vm::EventSink;
            seq.on_event(ev);
        }
        assert!(seq.reports().dropped() > 0, "the scenario must saturate");
        for workers in [1, 2, 4] {
            let merged = run_sharded(cfg, &events, workers);
            assert_eq!(merged.reports.reports(), seq.reports().reports());
            assert_eq!(
                merged.reports.dropped(),
                seq.reports().dropped(),
                "dropped diverges at {workers} workers"
            );
        }
    }

    #[test]
    fn worker_counts_beyond_the_shard_count_clamp() {
        let m = mixed_module();
        let trace = record_run(&m, VmConfig::round_robin(), "test").unwrap();
        let cfg = DetectorConfig::drd();
        let a = run_sharded(cfg, &trace.events, NUM_SHARDS);
        let b = run_sharded(cfg, &trace.events, 64);
        assert_eq!(a.reports.reports(), b.reports.reports());
        assert_eq!(a.metrics, b.metrics);
    }
}
