//! # SpinRace core — the analysis pipeline
//!
//! The pipeline is staged around an explicit, replayable trace artifact
//! (see [`session`]): **prepare** (lower/instrument), **execute** (one VM
//! run, recorded as a [`spinrace_vm::Trace`]), **detect** (replay the
//! trace under any number of detector configurations), **report**.
//!
//! The staged [`Session`] API is the primary interface — one execution
//! fans out to many detections:
//!
//! ```
//! use spinrace_core::{Session, Tool};
//! use spinrace_tir::ModuleBuilder;
//!
//! // A racy program: two threads increment without synchronization.
//! let mut mb = ModuleBuilder::new("racy");
//! let g = mb.global("g", 1);
//! let w = mb.function("w", 1, |f| {
//!     let v = f.load(g.at(0));
//!     let v2 = f.add(v, 1);
//!     f.store(g.at(0), v2);
//!     f.ret(None);
//! });
//! mb.entry("main", |f| {
//!     let t1 = f.spawn(w, 0);
//!     let t2 = f.spawn(w, 1);
//!     f.join(t1);
//!     f.join(t2);
//!     f.ret(None);
//! });
//! let m = mb.finish().unwrap();
//!
//! // Prepare once, execute once…
//! let run = Session::for_module(&m)
//!     .prepare(Tool::HelgrindLibSpin { window: 7 })
//!     .unwrap()
//!     .execute()
//!     .unwrap();
//!
//! // …then detect as often as needed on the recorded trace: the default
//! // configuration, a capped variant, even another tool that shares the
//! // same prepared module.
//! let out = run.detect();
//! assert!(out.has_race_on("g"));
//! let capped = run.detect_with(run.prepared().default_config().with_cap(1));
//! assert_eq!(capped.contexts, 1);
//!
//! // The trace itself serializes; parsing it back replays identically.
//! let json = run.trace().to_json();
//! let parsed = spinrace_vm::Trace::from_json(&json).unwrap();
//! assert_eq!(&parsed, run.trace());
//! ```
//!
//! [`Analyzer`] remains as the one-call compatibility wrapper over a
//! session (prepare → live detect, no recording).

pub mod parallel;
pub mod request;
pub mod session;

pub use parallel::{
    default_workers, Budget, BudgetResource, EngineError, EngineOptions, FaultKind, FaultPlan,
    PartialMetrics, Schedule,
};
pub use request::{DetectMode, DetectOutcome, DetectRequest, DetectTarget};
pub use session::{ExecutedRun, PreparedModule, Session, StreamProgress};

use spinrace_detector::{DetectorMetrics, MsmMode, RaceReport};
use spinrace_synclib::{LibStyle, LowerError};
use spinrace_tir::Module;
use spinrace_vm::{RunSummary, TraceError, VmConfig, VmError};
use std::fmt;
use std::str::FromStr;

/// The four tool configurations of the paper's tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tool {
    /// Hybrid detector with library knowledge, no spin detection.
    HelgrindLib,
    /// Hybrid with library knowledge plus spin detection at `window`.
    HelgrindLibSpin {
        /// Spin-detection basic-block window (paper default 7).
        window: u32,
    },
    /// The universal detector: module lowered to the spin library, no
    /// library knowledge, spin detection at `window`.
    HelgrindNolibSpin {
        /// Spin-detection basic-block window.
        window: u32,
    },
    /// Pure happens-before baseline.
    Drd,
    /// Sync-preserving predictive detection: reports races in correct
    /// reorderings of the recorded trace (mutex edges kept only between
    /// conflicting critical sections). Inherently sequential — parallel
    /// replay refuses it with [`EngineError::Unsupported`].
    SyncPreserving,
}

impl Tool {
    /// Table label, e.g. `Helgrind+ lib+spin(7)`.
    pub fn label(&self) -> String {
        self.to_string()
    }

    /// The paper's standard tool line-up with the default window.
    pub fn paper_lineup() -> [Tool; 4] {
        [
            Tool::HelgrindLib,
            Tool::HelgrindLibSpin { window: 7 },
            Tool::HelgrindNolibSpin { window: 7 },
            Tool::Drd,
        ]
    }

    /// The detector configuration this tool runs under `msm` with the
    /// given racy-context cap — the single source of the tool→detector
    /// mapping (sessions, CLIs, and benches all derive from here).
    pub fn detector_config(&self, msm: MsmMode, cap: usize) -> spinrace_detector::DetectorConfig {
        use spinrace_detector::DetectorConfig;
        let cfg = match self {
            Tool::HelgrindLib => DetectorConfig::helgrind_lib(msm),
            Tool::HelgrindLibSpin { .. } => DetectorConfig::helgrind_lib_spin(msm),
            Tool::HelgrindNolibSpin { .. } => DetectorConfig::helgrind_nolib_spin(msm),
            Tool::Drd => DetectorConfig::drd(),
            Tool::SyncPreserving => DetectorConfig::sync_preserving(),
        };
        cfg.with_cap(cap)
    }

    /// Is this a predictive (reordering-aware) tool? Predictive passes
    /// are single-threaded: use sequential or streamed modes.
    pub fn is_predictive(&self) -> bool {
        matches!(self, Tool::SyncPreserving)
    }
}

impl fmt::Display for Tool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tool::HelgrindLib => f.write_str("Helgrind+ lib"),
            Tool::HelgrindLibSpin { window } => write!(f, "Helgrind+ lib+spin({window})"),
            Tool::HelgrindNolibSpin { window } => write!(f, "Helgrind+ nolib+spin({window})"),
            Tool::Drd => f.write_str("DRD"),
            Tool::SyncPreserving => f.write_str("SyncPreserving"),
        }
    }
}

/// A tool name that [`Tool::from_str`] could not parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseToolError(pub String);

impl fmt::Display for ParseToolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown tool {:?} (expected `lib`, `lib+spin[(W)]`, `nolib+spin[(W)]`, `drd` or \
             `sync-preserving`, optionally prefixed with `Helgrind+ `)",
            self.0
        )
    }
}

impl std::error::Error for ParseToolError {}

impl FromStr for Tool {
    type Err = ParseToolError;

    /// Parses the canonical table labels ([`Tool::label`]) and the short
    /// forms used on command lines: `lib`, `lib+spin`, `lib+spin(5)`,
    /// `nolib+spin`, `nolib+spin(5)`, `drd`, `sync-preserving`
    /// (case-insensitive for `drd` and `sync-preserving`; the window
    /// defaults to the paper's 7 when omitted).
    fn from_str(s: &str) -> Result<Tool, ParseToolError> {
        let err = || ParseToolError(s.to_string());
        let t = s.trim();
        if t.eq_ignore_ascii_case("drd") {
            return Ok(Tool::Drd);
        }
        // `SyncPreserving` / `sync-preserving` / `sync_preserving`.
        let squashed: String = t
            .chars()
            .filter(|c| !matches!(c, '-' | '_'))
            .map(|c| c.to_ascii_lowercase())
            .collect();
        if squashed == "syncpreserving" {
            return Ok(Tool::SyncPreserving);
        }
        let t = t
            .strip_prefix("Helgrind+")
            .map(str::trim_start)
            .unwrap_or(t);
        let (base, window) = match t.split_once('(') {
            Some((base, rest)) => {
                let digits = rest.strip_suffix(')').ok_or_else(err)?;
                let w: u32 = digits.trim().parse().map_err(|_| err())?;
                (base.trim_end(), Some(w))
            }
            None => (t, None),
        };
        match (base, window) {
            ("lib", None) => Ok(Tool::HelgrindLib),
            ("lib+spin", w) => Ok(Tool::HelgrindLibSpin {
                window: w.unwrap_or(7),
            }),
            ("nolib+spin", w) => Ok(Tool::HelgrindNolibSpin {
                window: w.unwrap_or(7),
            }),
            _ => Err(err()),
        }
    }
}

/// A fully configured analysis pipeline — the one-call compatibility
/// wrapper over [`Session`]: `analyze` prepares and runs the detector
/// live in a single pass (no trace recording). Use [`Session`] when one
/// execution should fan out to several detections.
#[derive(Clone, Copy, Debug)]
pub struct Analyzer {
    /// The tool (detector + preparation steps).
    pub tool: Tool,
    /// Short or long memory state machine (hybrid tools).
    pub msm: MsmMode,
    /// VM configuration (scheduler, step limits).
    pub vm: VmConfig,
    /// Racy-context cap.
    pub context_cap: usize,
    /// Library flavour used when lowering for `nolib` tools. `Textbook`
    /// primitives are fully detectable; `Obscure` models real library
    /// internals whose condition-variable paths dodge the spin patterns
    /// (used for the PARSEC nolib experiments).
    pub nolib_style: LibStyle,
}

impl Analyzer {
    /// Analyzer for a tool with short-MSM, round-robin defaults.
    pub fn tool(tool: Tool) -> Analyzer {
        Analyzer {
            tool,
            msm: MsmMode::Short,
            vm: VmConfig::round_robin(),
            context_cap: 1000,
            nolib_style: LibStyle::Textbook,
        }
    }

    /// Use the obscure library flavour for nolib lowering.
    pub fn obscure_nolib(mut self) -> Analyzer {
        self.nolib_style = LibStyle::Obscure;
        self
    }

    /// Switch to the long-running MSM (integration-test mode).
    pub fn long_msm(mut self) -> Analyzer {
        self.msm = MsmMode::Long;
        self
    }

    /// Use a seeded random scheduler.
    pub fn seed(mut self, seed: u64) -> Analyzer {
        self.vm = VmConfig::random(seed);
        self
    }

    /// Override the VM configuration wholesale.
    pub fn vm_config(mut self, vm: VmConfig) -> Analyzer {
        self.vm = vm;
        self
    }

    /// Override the racy-context cap.
    pub fn cap(mut self, cap: usize) -> Analyzer {
        self.context_cap = cap;
        self
    }

    /// The session this analyzer's knobs describe.
    pub fn session<'m>(&self, module: &'m Module) -> Session<'m> {
        Session::for_module(module)
            .msm(self.msm)
            .vm_config(self.vm)
            .cap(self.context_cap)
            .nolib_style(self.nolib_style)
    }

    /// Run the full pipeline on `module`: prepare, then execute with the
    /// detector attached live.
    pub fn analyze(&self, module: &Module) -> Result<AnalysisOutcome, AnalyzeError> {
        self.session(module).prepare(self.tool)?.detect_live()
    }
}

/// A race report plus the human-readable location of the raced address
/// (resolved against the analyzed module's globals).
#[derive(Clone, Debug)]
pub struct DescribedReport {
    /// e.g. `"flag"` or `"slots[2]"` or `"heap+0x10"`.
    pub location: String,
    /// The raw report.
    pub report: RaceReport,
}

/// Everything a harness needs from one run.
#[derive(Clone, Debug)]
pub struct AnalysisOutcome {
    /// Name of the *original* module.
    pub module_name: String,
    /// Tool label (table column).
    pub tool_label: String,
    /// Distinct racy contexts (capped) — the paper's headline metric.
    pub contexts: usize,
    /// One representative report per context.
    pub reports: Vec<DescribedReport>,
    /// Detector memory metrics.
    pub metrics: DetectorMetrics,
    /// Locations promoted to sync locations by the spin feature.
    pub promoted_locations: usize,
    /// Spinning read loops found by the instrumentation phase.
    pub spin_loops_found: usize,
    /// VM run statistics.
    pub summary: RunSummary,
}

impl AnalysisOutcome {
    /// Was any race reported at a location whose description matches
    /// `name` (exact global name, or `name[...]` element)?
    pub fn has_race_on(&self, name: &str) -> bool {
        self.reports.iter().any(|r| {
            r.location == name
                || r.location
                    .strip_prefix(name)
                    .is_some_and(|rest| rest.starts_with('['))
        })
    }

    /// True when no races at all were reported.
    pub fn is_clean(&self) -> bool {
        self.contexts == 0
    }
}

/// Pipeline failures.
#[derive(Clone, Debug)]
pub enum AnalyzeError {
    /// The lowering pass failed (e.g. undersized barrier object).
    Lower(LowerError),
    /// Execution failed (trap, deadlock, step limit).
    Vm(VmError),
    /// A trace was offered for replay against a prepared module it was
    /// not recorded from (fingerprints differ).
    TraceMismatch {
        /// Fingerprint in the trace header.
        trace_fingerprint: u64,
        /// Fingerprint of the prepared module.
        module_fingerprint: u64,
    },
    /// A trace file could not be read or decoded (either encoding).
    Trace(TraceError),
    /// The replay engine failed or a resource budget tripped
    /// ([`EngineError`] from a [`DetectRequest`] execution).
    Engine(EngineError),
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Lower(e) => write!(f, "lowering failed: {e}"),
            AnalyzeError::Vm(e) => write!(f, "execution failed: {e}"),
            AnalyzeError::TraceMismatch {
                trace_fingerprint,
                module_fingerprint,
            } => write!(
                f,
                "trace fingerprint {trace_fingerprint:#018x} does not match prepared module \
                 {module_fingerprint:#018x}"
            ),
            AnalyzeError::Trace(e) => write!(f, "{e}"),
            AnalyzeError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

impl From<LowerError> for AnalyzeError {
    fn from(e: LowerError) -> Self {
        AnalyzeError::Lower(e)
    }
}
impl From<VmError> for AnalyzeError {
    fn from(e: VmError) -> Self {
        AnalyzeError::Vm(e)
    }
}
impl From<TraceError> for AnalyzeError {
    fn from(e: TraceError) -> Self {
        AnalyzeError::Trace(e)
    }
}
impl From<EngineError> for AnalyzeError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::Trace(e) => AnalyzeError::Trace(e),
            other => AnalyzeError::Engine(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinrace_tir::ModuleBuilder;

    /// Race-free flag handoff — the paper's canonical motivating example.
    fn flag_handoff() -> Module {
        let mut mb = ModuleBuilder::new("flag-handoff");
        let flag = mb.global("flag", 1);
        let data = mb.global("data", 1);
        let waiter = mb.function("waiter", 1, |f| {
            let head = f.new_block();
            let done = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let v = f.load(flag.at(0));
            f.branch(v, done, head);
            f.switch_to(done);
            let d = f.load(data.at(0));
            f.output(d);
            f.ret(None);
        });
        mb.entry("main", |f| {
            let t = f.spawn(waiter, 0);
            f.store(data.at(0), 42);
            f.store(flag.at(0), 1);
            f.join(t);
            f.ret(None);
        });
        mb.finish().unwrap()
    }

    #[test]
    fn lib_mode_floods_on_adhoc_sync() {
        let out = Analyzer::tool(Tool::HelgrindLib)
            .analyze(&flag_handoff())
            .unwrap();
        assert!(out.contexts >= 2, "sync + apparent races reported");
        assert!(out.has_race_on("flag"), "synchronization race");
        assert!(out.has_race_on("data"), "apparent race");
    }

    #[test]
    fn spin_mode_is_clean_on_adhoc_sync() {
        let out = Analyzer::tool(Tool::HelgrindLibSpin { window: 7 })
            .analyze(&flag_handoff())
            .unwrap();
        assert!(out.is_clean(), "reports: {:?}", out.reports);
        assert_eq!(out.spin_loops_found, 1);
        assert!(out.promoted_locations >= 1);
    }

    #[test]
    fn drd_also_floods_on_plain_flag() {
        let out = Analyzer::tool(Tool::Drd).analyze(&flag_handoff()).unwrap();
        assert!(!out.is_clean());
    }

    #[test]
    fn nolib_spin_handles_lowered_locks() {
        // Lock-protected counter, analyzed with zero library knowledge.
        let mut mb = ModuleBuilder::new("locked");
        let mu = mb.global("mu", 1);
        let g = mb.global("g", 1);
        let w = mb.function("w", 1, |f| {
            f.lock(mu.at(0));
            let v = f.load(g.at(0));
            let v2 = f.add(v, 1);
            f.store(g.at(0), v2);
            f.unlock(mu.at(0));
            f.ret(None);
        });
        mb.entry("main", |f| {
            let t1 = f.spawn(w, 0);
            let t2 = f.spawn(w, 1);
            f.join(t1);
            f.join(t2);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let out = Analyzer::tool(Tool::HelgrindNolibSpin { window: 7 })
            .analyze(&m)
            .unwrap();
        assert!(out.is_clean(), "reports: {:?}", out.reports);
        assert!(out.spin_loops_found >= 1, "TTAS loop instrumented");
    }

    #[test]
    fn racy_program_is_caught_by_every_tool() {
        let mut mb = ModuleBuilder::new("racy");
        let g = mb.global("g", 1);
        let w = mb.function("w", 1, |f| {
            let v = f.load(g.at(0));
            let v2 = f.add(v, 1);
            f.store(g.at(0), v2);
            f.ret(None);
        });
        mb.entry("main", |f| {
            let t1 = f.spawn(w, 0);
            let t2 = f.spawn(w, 1);
            f.join(t1);
            f.join(t2);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        for tool in Tool::paper_lineup() {
            let out = Analyzer::tool(tool).analyze(&m).unwrap();
            assert!(out.has_race_on("g"), "{} must catch the race", tool.label());
        }
    }

    #[test]
    fn labels_match_paper_columns() {
        assert_eq!(Tool::HelgrindLib.label(), "Helgrind+ lib");
        assert_eq!(
            Tool::HelgrindLibSpin { window: 7 }.label(),
            "Helgrind+ lib+spin(7)"
        );
        assert_eq!(
            Tool::HelgrindNolibSpin { window: 3 }.label(),
            "Helgrind+ nolib+spin(3)"
        );
        assert_eq!(Tool::Drd.label(), "DRD");
        assert_eq!(Tool::SyncPreserving.label(), "SyncPreserving");
    }

    #[test]
    fn tool_labels_round_trip_through_from_str() {
        // The paper lineup plus non-default windows: Display → FromStr is
        // the identity, which is what lets CLIs take --tool arguments.
        let mut tools = Tool::paper_lineup().to_vec();
        tools.push(Tool::HelgrindLibSpin { window: 3 });
        tools.push(Tool::HelgrindNolibSpin { window: 12 });
        tools.push(Tool::SyncPreserving);
        for tool in tools {
            let label = tool.label();
            assert_eq!(label.parse::<Tool>().unwrap(), tool, "{label}");
        }
    }

    #[test]
    fn tool_from_str_accepts_short_forms() {
        assert_eq!("lib".parse::<Tool>().unwrap(), Tool::HelgrindLib);
        assert_eq!(
            "lib+spin".parse::<Tool>().unwrap(),
            Tool::HelgrindLibSpin { window: 7 }
        );
        assert_eq!(
            "lib+spin(5)".parse::<Tool>().unwrap(),
            Tool::HelgrindLibSpin { window: 5 }
        );
        assert_eq!(
            "nolib+spin(9)".parse::<Tool>().unwrap(),
            Tool::HelgrindNolibSpin { window: 9 }
        );
        assert_eq!("drd".parse::<Tool>().unwrap(), Tool::Drd);
        assert_eq!("DRD".parse::<Tool>().unwrap(), Tool::Drd);
        for sp in ["sync-preserving", "sync_preserving", "SyncPreserving"] {
            assert_eq!(sp.parse::<Tool>().unwrap(), Tool::SyncPreserving);
            assert!(sp.parse::<Tool>().unwrap().is_predictive());
        }
        assert!(!Tool::Drd.is_predictive());
        for bad in ["", "lib+spin(", "lib+spin()", "helgrind", "spin(7)"] {
            assert!(bad.parse::<Tool>().is_err(), "{bad:?} must not parse");
        }
    }
}
