//! # SpinRace core — the analysis pipeline
//!
//! One call runs the full stack of the paper for a single
//! `(program, tool, schedule)` triple:
//!
//! 1. **Prepare** — for `nolib` tools, lower the module through
//!    `spinrace-synclib` (library ops become spin-loop implementations);
//!    for `+spin` tools, run the `spinrace-spinfind` instrumentation phase
//!    with the configured basic-block window.
//! 2. **Execute** — interpret the module in `spinrace-vm` under a
//!    deterministic scheduler, streaming events.
//! 3. **Detect** — feed the stream to a `spinrace-detector` configuration.
//! 4. **Report** — racy contexts, per-report address descriptions, memory
//!    metrics, and run statistics.
//!
//! ```
//! use spinrace_core::{Analyzer, Tool};
//! use spinrace_tir::ModuleBuilder;
//!
//! // A racy program: two threads increment without synchronization.
//! let mut mb = ModuleBuilder::new("racy");
//! let g = mb.global("g", 1);
//! let w = mb.function("w", 1, |f| {
//!     let v = f.load(g.at(0));
//!     let v2 = f.add(v, 1);
//!     f.store(g.at(0), v2);
//!     f.ret(None);
//! });
//! mb.entry("main", |f| {
//!     let t1 = f.spawn(w, 0);
//!     let t2 = f.spawn(w, 1);
//!     f.join(t1);
//!     f.join(t2);
//!     f.ret(None);
//! });
//! let m = mb.finish().unwrap();
//!
//! let outcome = Analyzer::tool(Tool::HelgrindLibSpin { window: 7 })
//!     .analyze(&m)
//!     .unwrap();
//! assert!(outcome.contexts >= 1);
//! ```

use spinrace_detector::{DetectorConfig, DetectorMetrics, MsmMode, RaceDetector, RaceReport};
use spinrace_spinfind::{SpinCriteria, SpinFinder};
use spinrace_synclib::{lower_to_spinlib_styled, LibStyle, LowerError};
use spinrace_tir::Module;
use spinrace_vm::{run_module, RunSummary, VmConfig, VmError};
use std::fmt;

/// The four tool configurations of the paper's tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tool {
    /// Hybrid detector with library knowledge, no spin detection.
    HelgrindLib,
    /// Hybrid with library knowledge plus spin detection at `window`.
    HelgrindLibSpin {
        /// Spin-detection basic-block window (paper default 7).
        window: u32,
    },
    /// The universal detector: module lowered to the spin library, no
    /// library knowledge, spin detection at `window`.
    HelgrindNolibSpin {
        /// Spin-detection basic-block window.
        window: u32,
    },
    /// Pure happens-before baseline.
    Drd,
}

impl Tool {
    /// Table label, e.g. `Helgrind+ lib+spin(7)`.
    pub fn label(&self) -> String {
        match self {
            Tool::HelgrindLib => "Helgrind+ lib".into(),
            Tool::HelgrindLibSpin { window } => format!("Helgrind+ lib+spin({window})"),
            Tool::HelgrindNolibSpin { window } => format!("Helgrind+ nolib+spin({window})"),
            Tool::Drd => "DRD".into(),
        }
    }

    /// The paper's standard tool line-up with the default window.
    pub fn paper_lineup() -> [Tool; 4] {
        [
            Tool::HelgrindLib,
            Tool::HelgrindLibSpin { window: 7 },
            Tool::HelgrindNolibSpin { window: 7 },
            Tool::Drd,
        ]
    }
}

/// A fully configured analysis pipeline.
#[derive(Clone, Copy, Debug)]
pub struct Analyzer {
    /// The tool (detector + preparation steps).
    pub tool: Tool,
    /// Short or long memory state machine (hybrid tools).
    pub msm: MsmMode,
    /// VM configuration (scheduler, step limits).
    pub vm: VmConfig,
    /// Racy-context cap.
    pub context_cap: usize,
    /// Library flavour used when lowering for `nolib` tools. `Textbook`
    /// primitives are fully detectable; `Obscure` models real library
    /// internals whose condition-variable paths dodge the spin patterns
    /// (used for the PARSEC nolib experiments).
    pub nolib_style: LibStyle,
}

impl Analyzer {
    /// Analyzer for a tool with short-MSM, round-robin defaults.
    pub fn tool(tool: Tool) -> Analyzer {
        Analyzer {
            tool,
            msm: MsmMode::Short,
            vm: VmConfig::round_robin(),
            context_cap: 1000,
            nolib_style: LibStyle::Textbook,
        }
    }

    /// Use the obscure library flavour for nolib lowering.
    pub fn obscure_nolib(mut self) -> Analyzer {
        self.nolib_style = LibStyle::Obscure;
        self
    }

    /// Switch to the long-running MSM (integration-test mode).
    pub fn long_msm(mut self) -> Analyzer {
        self.msm = MsmMode::Long;
        self
    }

    /// Use a seeded random scheduler.
    pub fn seed(mut self, seed: u64) -> Analyzer {
        self.vm = VmConfig::random(seed);
        self
    }

    /// Override the VM configuration wholesale.
    pub fn vm_config(mut self, vm: VmConfig) -> Analyzer {
        self.vm = vm;
        self
    }

    /// Override the racy-context cap.
    pub fn cap(mut self, cap: usize) -> Analyzer {
        self.context_cap = cap;
        self
    }

    fn detector_config(&self) -> DetectorConfig {
        let cfg = match self.tool {
            Tool::HelgrindLib => DetectorConfig::helgrind_lib(self.msm),
            Tool::HelgrindLibSpin { .. } => DetectorConfig::helgrind_lib_spin(self.msm),
            Tool::HelgrindNolibSpin { .. } => DetectorConfig::helgrind_nolib_spin(self.msm),
            Tool::Drd => DetectorConfig::drd(),
        };
        cfg.with_cap(self.context_cap)
    }

    /// Run the full pipeline on `module`.
    pub fn analyze(&self, module: &Module) -> Result<AnalysisOutcome, AnalyzeError> {
        // 1. Prepare.
        let mut prepared = match self.tool {
            Tool::HelgrindNolibSpin { .. } => lower_to_spinlib_styled(module, self.nolib_style)?,
            _ => module.clone(),
        };
        let spin_loops_found = match self.tool {
            Tool::HelgrindLibSpin { window } | Tool::HelgrindNolibSpin { window } => {
                let finder = SpinFinder::new(SpinCriteria::with_window(window));
                let analysis = finder.instrument(&mut prepared);
                analysis.accepted()
            }
            _ => 0,
        };

        // 2 + 3. Execute with the detector attached.
        let mut det = RaceDetector::new(self.detector_config());
        let summary = run_module(&prepared, self.vm, &mut det)?;

        // 4. Report.
        let reports: Vec<DescribedReport> = det
            .reports()
            .reports()
            .iter()
            .map(|r| DescribedReport {
                location: prepared.describe_addr(r.addr),
                report: r.clone(),
            })
            .collect();
        Ok(AnalysisOutcome {
            module_name: module.name.clone(),
            tool_label: self.tool.label(),
            contexts: det.racy_contexts(),
            reports,
            metrics: det.metrics(),
            promoted_locations: det.promoted_locations(),
            spin_loops_found,
            summary,
        })
    }
}

/// A race report plus the human-readable location of the raced address
/// (resolved against the analyzed module's globals).
#[derive(Clone, Debug)]
pub struct DescribedReport {
    /// e.g. `"flag"` or `"slots[2]"` or `"heap+0x10"`.
    pub location: String,
    /// The raw report.
    pub report: RaceReport,
}

/// Everything a harness needs from one run.
#[derive(Clone, Debug)]
pub struct AnalysisOutcome {
    /// Name of the *original* module.
    pub module_name: String,
    /// Tool label (table column).
    pub tool_label: String,
    /// Distinct racy contexts (capped) — the paper's headline metric.
    pub contexts: usize,
    /// One representative report per context.
    pub reports: Vec<DescribedReport>,
    /// Detector memory metrics.
    pub metrics: DetectorMetrics,
    /// Locations promoted to sync locations by the spin feature.
    pub promoted_locations: usize,
    /// Spinning read loops found by the instrumentation phase.
    pub spin_loops_found: usize,
    /// VM run statistics.
    pub summary: RunSummary,
}

impl AnalysisOutcome {
    /// Was any race reported at a location whose description matches
    /// `name` (exact global name, or `name[...]` element)?
    pub fn has_race_on(&self, name: &str) -> bool {
        self.reports.iter().any(|r| {
            r.location == name
                || r.location
                    .strip_prefix(name)
                    .is_some_and(|rest| rest.starts_with('['))
        })
    }

    /// True when no races at all were reported.
    pub fn is_clean(&self) -> bool {
        self.contexts == 0
    }
}

/// Pipeline failures.
#[derive(Clone, Debug)]
pub enum AnalyzeError {
    /// The lowering pass failed (e.g. undersized barrier object).
    Lower(LowerError),
    /// Execution failed (trap, deadlock, step limit).
    Vm(VmError),
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Lower(e) => write!(f, "lowering failed: {e}"),
            AnalyzeError::Vm(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

impl From<LowerError> for AnalyzeError {
    fn from(e: LowerError) -> Self {
        AnalyzeError::Lower(e)
    }
}
impl From<VmError> for AnalyzeError {
    fn from(e: VmError) -> Self {
        AnalyzeError::Vm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinrace_tir::ModuleBuilder;

    /// Race-free flag handoff — the paper's canonical motivating example.
    fn flag_handoff() -> Module {
        let mut mb = ModuleBuilder::new("flag-handoff");
        let flag = mb.global("flag", 1);
        let data = mb.global("data", 1);
        let waiter = mb.function("waiter", 1, |f| {
            let head = f.new_block();
            let done = f.new_block();
            f.jump(head);
            f.switch_to(head);
            let v = f.load(flag.at(0));
            f.branch(v, done, head);
            f.switch_to(done);
            let d = f.load(data.at(0));
            f.output(d);
            f.ret(None);
        });
        mb.entry("main", |f| {
            let t = f.spawn(waiter, 0);
            f.store(data.at(0), 42);
            f.store(flag.at(0), 1);
            f.join(t);
            f.ret(None);
        });
        mb.finish().unwrap()
    }

    #[test]
    fn lib_mode_floods_on_adhoc_sync() {
        let out = Analyzer::tool(Tool::HelgrindLib)
            .analyze(&flag_handoff())
            .unwrap();
        assert!(out.contexts >= 2, "sync + apparent races reported");
        assert!(out.has_race_on("flag"), "synchronization race");
        assert!(out.has_race_on("data"), "apparent race");
    }

    #[test]
    fn spin_mode_is_clean_on_adhoc_sync() {
        let out = Analyzer::tool(Tool::HelgrindLibSpin { window: 7 })
            .analyze(&flag_handoff())
            .unwrap();
        assert!(out.is_clean(), "reports: {:?}", out.reports);
        assert_eq!(out.spin_loops_found, 1);
        assert!(out.promoted_locations >= 1);
    }

    #[test]
    fn drd_also_floods_on_plain_flag() {
        let out = Analyzer::tool(Tool::Drd).analyze(&flag_handoff()).unwrap();
        assert!(!out.is_clean());
    }

    #[test]
    fn nolib_spin_handles_lowered_locks() {
        // Lock-protected counter, analyzed with zero library knowledge.
        let mut mb = ModuleBuilder::new("locked");
        let mu = mb.global("mu", 1);
        let g = mb.global("g", 1);
        let w = mb.function("w", 1, |f| {
            f.lock(mu.at(0));
            let v = f.load(g.at(0));
            let v2 = f.add(v, 1);
            f.store(g.at(0), v2);
            f.unlock(mu.at(0));
            f.ret(None);
        });
        mb.entry("main", |f| {
            let t1 = f.spawn(w, 0);
            let t2 = f.spawn(w, 1);
            f.join(t1);
            f.join(t2);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        let out = Analyzer::tool(Tool::HelgrindNolibSpin { window: 7 })
            .analyze(&m)
            .unwrap();
        assert!(out.is_clean(), "reports: {:?}", out.reports);
        assert!(out.spin_loops_found >= 1, "TTAS loop instrumented");
    }

    #[test]
    fn racy_program_is_caught_by_every_tool() {
        let mut mb = ModuleBuilder::new("racy");
        let g = mb.global("g", 1);
        let w = mb.function("w", 1, |f| {
            let v = f.load(g.at(0));
            let v2 = f.add(v, 1);
            f.store(g.at(0), v2);
            f.ret(None);
        });
        mb.entry("main", |f| {
            let t1 = f.spawn(w, 0);
            let t2 = f.spawn(w, 1);
            f.join(t1);
            f.join(t2);
            f.ret(None);
        });
        let m = mb.finish().unwrap();
        for tool in Tool::paper_lineup() {
            let out = Analyzer::tool(tool).analyze(&m).unwrap();
            assert!(out.has_race_on("g"), "{} must catch the race", tool.label());
        }
    }

    #[test]
    fn labels_match_paper_columns() {
        assert_eq!(Tool::HelgrindLib.label(), "Helgrind+ lib");
        assert_eq!(
            Tool::HelgrindLibSpin { window: 7 }.label(),
            "Helgrind+ lib+spin(7)"
        );
        assert_eq!(
            Tool::HelgrindNolibSpin { window: 3 }.label(),
            "Helgrind+ nolib+spin(3)"
        );
        assert_eq!(Tool::Drd.label(), "DRD");
    }
}
