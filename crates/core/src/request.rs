//! The unified detection request: **one** entry point over the whole
//! `{tool source} × {sequential/parallel/streamed} × {schedule/options}`
//! space the legacy `detect_*` method family spans.
//!
//! A [`DetectRequest`] names *what* to detect (its targets: the run's own
//! tool, other tools sharing the prepared module, or explicit detector
//! configurations), *how* (its [`DetectMode`]), and under which
//! [`EngineOptions`] (schedule, watchdog, budgets, fault injection). It
//! is executed by [`ExecutedRun::run`] / [`ExecutedRun::try_run`] against
//! a recorded trace, and by [`PreparedModule::try_run_streamed`] against
//! a binary chunk stream — the same request type a detection server
//! decodes straight off the wire.
//!
//! ```
//! use spinrace_core::{DetectRequest, Schedule, Session, Tool};
//! use spinrace_tir::ModuleBuilder;
//!
//! let mut mb = ModuleBuilder::new("racy");
//! let g = mb.global("g", 1);
//! let w = mb.function("w", 1, |f| {
//!     let v = f.load(g.at(0));
//!     let v2 = f.add(v, 1);
//!     f.store(g.at(0), v2);
//!     f.ret(None);
//! });
//! mb.entry("main", |f| {
//!     let t1 = f.spawn(w, 0);
//!     let t2 = f.spawn(w, 1);
//!     f.join(t1);
//!     f.join(t2);
//!     f.ret(None);
//! });
//! let m = mb.finish().unwrap();
//!
//! let run = Session::for_module(&m)
//!     .prepare(Tool::HelgrindLib)
//!     .unwrap()
//!     .execute()
//!     .unwrap();
//!
//! // Sequential replay under the run's own tool…
//! let out = run.run(&DetectRequest::own()).into_single();
//! assert!(out.has_race_on("g"));
//!
//! // …and the same request parallelized, scheduled, and fanned out over
//! // two tools on one worker pool — byte-identical per target.
//! let req = DetectRequest::tools(&[Tool::HelgrindLib, Tool::Drd])
//!     .parallel(4)
//!     .scheduled(Schedule::Balanced);
//! let outs = run.run(&req).into_vec();
//! assert_eq!(outs.len(), 2);
//! assert_eq!(outs[0].contexts, out.contexts);
//! ```
//!
//! [`ExecutedRun::run`]: crate::ExecutedRun::run
//! [`ExecutedRun::try_run`]: crate::ExecutedRun::try_run
//! [`PreparedModule::try_run_streamed`]: crate::PreparedModule::try_run_streamed

use crate::parallel::{Budget, EngineOptions, FaultPlan, Schedule};
use crate::{AnalysisOutcome, Tool};
use spinrace_detector::DetectorConfig;
use std::time::Duration;

/// One detection target: which detector configuration (and label) a
/// request resolves against the prepared module it runs on.
#[derive(Clone, Copy, Debug)]
pub enum DetectTarget {
    /// The run's own tool, under the session's MSM flavour and cap —
    /// what the legacy `detect()` family used.
    Own,
    /// Another tool's configuration and label. Only valid when that
    /// tool's preparation of the same source module yields the same
    /// fingerprint (the `detect_as` sharing contract).
    Tool(Tool),
    /// An explicit detector configuration, labelled with the run's own
    /// tool (the `detect_with` form).
    Config(DetectorConfig),
}

/// How a request replays the stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DetectMode {
    /// One in-order pass per target — the deterministic baseline.
    Sequential,
    /// The sharded parallel engine on `workers` threads (clamped to
    /// `1..=NUM_SHARDS`); bit-identical to [`DetectMode::Sequential`]
    /// at every width and schedule.
    Parallel {
        /// Worker thread count.
        workers: usize,
    },
    /// Chunk-streamed sequential replay — O(chunk) peak memory, used by
    /// [`PreparedModule::try_run_streamed`]. On an [`ExecutedRun`]
    /// (where the stream is already materialized) this degenerates to
    /// [`DetectMode::Sequential`].
    ///
    /// [`PreparedModule::try_run_streamed`]: crate::PreparedModule::try_run_streamed
    /// [`ExecutedRun`]: crate::ExecutedRun
    Streamed,
}

/// A unified detection request — see the [module docs](self) for the
/// legacy-method mapping and examples.
#[derive(Clone, Debug)]
pub struct DetectRequest {
    targets: Vec<DetectTarget>,
    mode: DetectMode,
    options: EngineOptions,
}

impl Default for DetectRequest {
    /// [`DetectRequest::own`]: the run's own tool, sequentially, under
    /// default engine options.
    fn default() -> DetectRequest {
        DetectRequest::own()
    }
}

impl DetectRequest {
    fn with_targets(targets: Vec<DetectTarget>) -> DetectRequest {
        DetectRequest {
            targets,
            mode: DetectMode::Sequential,
            options: EngineOptions::default(),
        }
    }

    /// Detect under the run's own tool (the legacy `detect()` target).
    pub fn own() -> DetectRequest {
        DetectRequest::with_targets(vec![DetectTarget::Own])
    }

    /// Detect under another tool's configuration and label (the legacy
    /// `detect_as` target — the fingerprint-sharing contract applies).
    pub fn tool(tool: Tool) -> DetectRequest {
        DetectRequest::with_targets(vec![DetectTarget::Tool(tool)])
    }

    /// Fan out over several tools on one request (the legacy
    /// `detect_many_as_parallel` targets).
    pub fn tools(tools: &[Tool]) -> DetectRequest {
        DetectRequest::with_targets(tools.iter().map(|&t| DetectTarget::Tool(t)).collect())
    }

    /// Detect under an explicit configuration, labelled with the run's
    /// own tool (the legacy `detect_with` target).
    pub fn config(cfg: DetectorConfig) -> DetectRequest {
        DetectRequest::with_targets(vec![DetectTarget::Config(cfg)])
    }

    /// Fan out over several explicit configurations (the legacy
    /// `detect_many` targets).
    pub fn configs(cfgs: &[DetectorConfig]) -> DetectRequest {
        DetectRequest::with_targets(cfgs.iter().map(|&c| DetectTarget::Config(c)).collect())
    }

    /// Append one more target to the fan-out.
    pub fn and_target(mut self, target: DetectTarget) -> DetectRequest {
        self.targets.push(target);
        self
    }

    /// Replay sequentially (the default).
    pub fn sequential(mut self) -> DetectRequest {
        self.mode = DetectMode::Sequential;
        self
    }

    /// Replay on the parallel sharded engine with `workers` threads.
    pub fn parallel(mut self, workers: usize) -> DetectRequest {
        self.mode = DetectMode::Parallel { workers };
        self
    }

    /// Replay as a chunked stream (see [`DetectMode::Streamed`]).
    pub fn streamed(mut self) -> DetectRequest {
        self.mode = DetectMode::Streamed;
        self
    }

    /// Select the shard-to-worker scheduling mode.
    pub fn scheduled(mut self, schedule: Schedule) -> DetectRequest {
        self.options.schedule = schedule;
        self
    }

    /// Set resource budgets (event and shadow-byte ceilings).
    pub fn budget(mut self, budget: Budget) -> DetectRequest {
        self.options.budget = budget;
        self
    }

    /// Bound the whole detection by a wall-clock watchdog.
    pub fn watchdog(mut self, limit: Duration) -> DetectRequest {
        self.options.watchdog = Some(limit);
        self
    }

    /// Override the per-handoff wait ceiling of the parallel engine.
    pub fn handoff_timeout(mut self, limit: Duration) -> DetectRequest {
        self.options.handoff_timeout = limit;
        self
    }

    /// Arm deterministic fault injection (tests/CI only).
    pub fn fault(mut self, fault: FaultPlan) -> DetectRequest {
        self.options.fault = Some(fault);
        self
    }

    /// Replace the engine options wholesale (schedule, watchdog,
    /// budgets, and fault plan at once).
    pub fn options(mut self, options: EngineOptions) -> DetectRequest {
        self.options = options;
        self
    }

    /// The request's targets, in fan-out order.
    pub fn targets(&self) -> &[DetectTarget] {
        &self.targets
    }

    /// The replay mode.
    pub fn mode(&self) -> DetectMode {
        self.mode
    }

    /// The engine options the replay runs under.
    pub fn engine_options(&self) -> EngineOptions {
        self.options
    }
}

/// The result of one [`DetectRequest`]: one [`AnalysisOutcome`] per
/// target, in request order.
#[derive(Clone, Debug)]
pub struct DetectOutcome {
    /// Per-target outcomes, ordered as the request's targets.
    pub outcomes: Vec<AnalysisOutcome>,
}

impl DetectOutcome {
    /// The single outcome of a one-target request.
    ///
    /// # Panics
    /// When the request had zero or several targets.
    pub fn into_single(self) -> AnalysisOutcome {
        assert_eq!(
            self.outcomes.len(),
            1,
            "into_single on a {}-target outcome",
            self.outcomes.len()
        );
        self.outcomes.into_iter().next().unwrap()
    }

    /// All outcomes, consuming the result.
    pub fn into_vec(self) -> Vec<AnalysisOutcome> {
        self.outcomes
    }

    /// Number of per-target outcomes.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// True when the request had no targets.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Iterate the per-target outcomes.
    pub fn iter(&self) -> std::slice::Iter<'_, AnalysisOutcome> {
        self.outcomes.iter()
    }
}

impl IntoIterator for DetectOutcome {
    type Item = AnalysisOutcome;
    type IntoIter = std::vec::IntoIter<AnalysisOutcome>;

    fn into_iter(self) -> Self::IntoIter {
        self.outcomes.into_iter()
    }
}
