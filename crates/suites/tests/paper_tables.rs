//! Shape assertions for the paper's tables, over the real pipeline.
//!
//! We do not chase the paper's exact cell values (different substrate);
//! we assert the *relations* the paper's conclusions rest on.

use spinrace_core::Tool;
use spinrace_suites::{all_cases, all_programs, run_drt, run_parsec};

fn print_drt(t: &spinrace_suites::DrtTable) {
    println!(
        "{:<28} {:>12} {:>12} {:>8} {:>8}",
        "Tool", "FalseAlarms", "MissedRaces", "Failed", "Correct"
    );
    for r in &t.rows {
        println!(
            "{:<28} {:>12} {:>12} {:>8} {:>8}",
            r.tool, r.false_alarms, r.missed_races, r.failed, r.correct
        );
    }
}

#[test]
fn table1_data_race_test_shape() {
    let table = run_drt(&Tool::paper_lineup());
    print_drt(&table);
    let lib = table.row("Helgrind+ lib").unwrap().clone();
    let spin = table.row("Helgrind+ lib+spin(7)").unwrap().clone();
    let nolib = table.row("Helgrind+ nolib+spin(7)").unwrap().clone();
    let drd = table.row("DRD").unwrap().clone();

    // Spin detection removes the bulk of the false alarms (paper: 32→8).
    assert!(
        spin.false_alarms * 2 < lib.false_alarms,
        "lib {} vs spin {}",
        lib.false_alarms,
        spin.false_alarms
    );
    // ...and one false negative (paper: 8→7).
    assert!(spin.missed_races < lib.missed_races);
    // The universal detector is within a whisker of lib+spin (paper: +1 FA).
    assert!(
        (nolib.false_alarms as i64 - spin.false_alarms as i64).abs() <= 2,
        "nolib {} vs spin {}",
        nolib.false_alarms,
        spin.false_alarms
    );
    // DRD misses by far the most races (paper: 20 vs 7-8).
    assert!(drd.missed_races > lib.missed_races * 2);
    // DRD has fewer false alarms than the hybrid without spin (13 vs 32).
    assert!(drd.false_alarms < lib.false_alarms);
    // The best tool is lib+spin (paper: 105 correct of 120).
    assert!(spin.correct >= lib.correct && spin.correct >= drd.correct);

    // Print exact numbers for EXPERIMENTS.md.
    for r in &table.rows {
        eprintln!(
            "T1 {}: FA={} missed={} failed={} correct={}",
            r.tool, r.false_alarms, r.missed_races, r.failed, r.correct
        );
    }
}

#[test]
fn table2_window_sweep_shape() {
    let windows = [3u32, 6, 7, 8];
    let tools: Vec<Tool> = windows
        .iter()
        .map(|&w| Tool::HelgrindLibSpin { window: w })
        .collect();
    let table = run_drt(&tools);
    print_drt(&table);
    let fa: Vec<usize> = table.rows.iter().map(|r| r.false_alarms).collect();
    // Paper: 24, 23, 8, 8 — a small drop from 3→6, a cliff at 7, flat after.
    assert!(fa[0] > fa[1], "spin(3) {} > spin(6) {}", fa[0], fa[1]);
    assert!(
        fa[1] > fa[2] + 5,
        "cliff at window 7: {} vs {}",
        fa[1],
        fa[2]
    );
    assert_eq!(fa[2], fa[3], "windows 7 and 8 identical");
}

#[test]
fn table45_parsec_shape() {
    let programs = all_programs();
    let tools = Tool::paper_lineup();
    let seeds = [1u64, 2, 3];
    let table = run_parsec(&programs, &tools, &seeds);
    println!(
        "{:<14} {:>14} {:>18} {:>20} {:>10}",
        "program", "Helgrind+ lib", "lib+spin(7)", "nolib+spin(7)", "DRD"
    );
    for (i, p) in table.programs.iter().enumerate() {
        println!(
            "{:<14} {:>14.1} {:>18.1} {:>20.1} {:>10.1}",
            p,
            table.cells[i][0].mean_contexts,
            table.cells[i][1].mean_contexts,
            table.cells[i][2].mean_contexts,
            table.cells[i][3].mean_contexts
        );
    }
    let cell = |prog: &str, tool: usize| {
        table.cells[table.programs.iter().position(|p| p == prog).unwrap()][tool].mean_contexts
    };

    // Programs without ad-hoc sync: silent everywhere (paper rows 1-4).
    for prog in ["blackscholes", "swaptions", "fluidanimate", "canneal"] {
        for tool in 0..4 {
            assert_eq!(cell(prog, tool), 0.0, "{prog} tool {tool}");
        }
    }
    // freqmine (unknown OpenMP): lib floods, spin fixes almost all.
    assert!(cell("freqmine", 0) > 10.0);
    assert!(cell("freqmine", 1) <= 8.0, "small residual (paper: 2)");
    // 5 of 8 ad-hoc programs drop to zero with lib+spin (paper).
    for prog in ["vips", "facesim", "dedup", "streamcluster", "raytrace"] {
        assert_eq!(cell(prog, 1), 0.0, "{prog} lib+spin");
        assert!(cell(prog, 0) > 0.0, "{prog} lib must flood");
    }
    // The obscure three retain residuals.
    for prog in ["bodytrack", "ferret", "x264"] {
        assert!(cell(prog, 1) > 0.0, "{prog} keeps a residual");
        assert!(
            cell(prog, 1) < cell(prog, 0),
            "{prog} still improves over lib"
        );
    }
    // nolib regression on the obscure-library programs (paper: bodytrack
    // 3.6→32.4, ferret 2→47, x264 19→28).
    for prog in ["bodytrack", "ferret", "x264"] {
        assert!(
            cell(prog, 2) > cell(prog, 1),
            "{prog} nolib {} vs lib+spin {}",
            cell(prog, 2),
            cell(prog, 1)
        );
    }
    // DRD: clean on atomics-based dedup, floods on plain-store programs.
    assert_eq!(cell("dedup", 3), 0.0);
    for prog in [
        "vips",
        "facesim",
        "x264",
        "streamcluster",
        "raytrace",
        "freqmine",
    ] {
        assert!(cell(prog, 3) > cell(prog, 1), "{prog} DRD floods");
    }
}

#[test]
fn drt_case_count_is_stable() {
    assert_eq!(all_cases().len(), 120);
}
