//! The generated-workloads table — the suite where ground truth is
//! *computed*, not recorded.
//!
//! T1/T2 and the PARSEC tables pin tools against numbers measured once
//! and checked in; a regression there says "the numbers moved", not "the
//! numbers are wrong". This table runs the `spinrace-workloads`
//! generator families (both the race-free and the seeded variants of
//! each) through the tool lineup and classifies every outcome against
//! the workload's own [`Oracle`]: a failing
//! row is a *soundness* bug (a
//! missed injected race) or a *completeness* bug (a report on a
//! correct-by-construction program) — no recorded baseline involved.
//!
//! Like the other suites, execution is trace-centric (one VM run per
//! distinct prepared module, cached by fingerprint) and detection runs
//! through the parallel sharded engine, so the table doubles as a
//! determinism check for the merge path on oracle-bearing streams.

use crate::harness::lineup_outcomes;
use spinrace_core::{AnalysisOutcome, Session, Tool};
use spinrace_workloads::{Family, Oracle, OracleVerdict, WorkloadSpec};

/// Judge one analysis outcome against a workload oracle: every described
/// report becomes one `(location, prior tid, current tid)` observation,
/// judged against the ground truth the producing tool's class owes
/// (reorder-only injections are invisible to witnessed-interleaving
/// tools — see [`Oracle::expected_for`]). The single adapter between
/// `AnalysisOutcome` and `Oracle::verdict_for` — shared by this table,
/// the oracle test suite, and `trace gen`, so the mapping can never
/// silently diverge between checkers.
pub fn judge_outcome(oracle: &Oracle, out: &AnalysisOutcome) -> OracleVerdict {
    let predictive = out
        .tool_label
        .parse::<Tool>()
        .map(|t| t.is_predictive())
        .unwrap_or(false);
    oracle.verdict_for(
        predictive,
        out.reports.iter().map(|r| {
            (
                r.location.as_str(),
                r.report.prior.tid,
                r.report.current.tid,
            )
        }),
    )
}

/// The standard spec list: for every family, one race-free and one
/// seeded variant (distinct seeds, modest sizes — the point here is
/// oracle coverage, not stream length; `perf` owns the long streams).
pub fn standard_specs() -> Vec<WorkloadSpec> {
    let mut specs = Vec::new();
    for (i, fam) in Family::all().into_iter().enumerate() {
        let base = WorkloadSpec::new(fam)
            .events_per_thread(48)
            .seed(100 + i as u64);
        specs.push(base);
        specs.push(base.races(2).seed(200 + i as u64));
    }
    // One genuinely wide case: the fan-out family at 32 threads.
    specs.push(
        WorkloadSpec::new(Family::Fanout)
            .threads(32)
            .events_per_thread(24)
            .races(3)
            .seed(300),
    );
    specs
}

/// One workload × tool classification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkloadRow {
    /// Family short name.
    pub family: String,
    /// Spec-encoded workload name.
    pub spec: String,
    /// Oracle summary (`race-free` / `seeded(n)`).
    pub oracle: String,
    /// Tool label.
    pub tool: String,
    /// Racy contexts reported.
    pub contexts: usize,
    /// Contexts the oracle demands.
    pub expected: usize,
    /// Injected races the tool failed to report (soundness).
    pub missed: usize,
    /// Reports matching no injected race (completeness).
    pub unexpected: usize,
}

impl WorkloadRow {
    /// Did this tool report exactly the ground truth?
    pub fn pass(&self) -> bool {
        self.missed == 0 && self.unexpected == 0 && self.contexts == self.expected
    }
}

/// The whole table.
#[derive(Clone, Debug)]
pub struct WorkloadTable {
    /// One row per workload × tool, workload-major in
    /// [`standard_specs`] order.
    pub rows: Vec<WorkloadRow>,
    /// VM executions performed (distinct prepared modules, not
    /// workloads × tools).
    pub vm_runs: usize,
}

impl WorkloadTable {
    /// Do all rows pass their oracles?
    pub fn all_pass(&self) -> bool {
        self.rows.iter().all(WorkloadRow::pass)
    }

    /// The failing rows, if any.
    pub fn failures(&self) -> Vec<&WorkloadRow> {
        self.rows.iter().filter(|r| !r.pass()).collect()
    }

    /// Row for a given workload spec name and tool label.
    pub fn row(&self, spec: &str, tool: &str) -> Option<&WorkloadRow> {
        self.rows.iter().find(|r| r.spec == spec && r.tool == tool)
    }
}

/// Run the standard workload specs under `tools`.
pub fn run_workloads(tools: &[Tool]) -> WorkloadTable {
    run_workloads_with(tools, &standard_specs())
}

/// Run a specific spec list under `tools`.
pub fn run_workloads_with(tools: &[Tool], specs: &[WorkloadSpec]) -> WorkloadTable {
    let mut rows = Vec::with_capacity(specs.len() * tools.len());
    let mut vm_runs = 0;
    for spec in specs {
        let wl = spec.build();
        let session = Session::for_module(&wl.module).vm_config(spec.vm_config());
        let (outs, runs) = lineup_outcomes(&session, tools);
        vm_runs += runs;
        for (&tool, result) in tools.iter().zip(outs) {
            let row = match result {
                Ok(out) => {
                    let verdict = judge_outcome(&wl.oracle, &out);
                    WorkloadRow {
                        family: spec.family.name().to_string(),
                        spec: spec.name(),
                        oracle: wl.oracle.describe(),
                        tool: tool.label(),
                        contexts: out.contexts,
                        expected: wl.oracle.expected_for(tool.is_predictive()).len(),
                        missed: verdict.missed.len(),
                        unexpected: verdict.unexpected.len(),
                    }
                }
                // A pipeline failure misses every injected race and, on a
                // race-free workload, is its own kind of unsoundness —
                // record it as missing everything plus one "unexpected"
                // marker so `pass()` can never be true.
                Err(_) => WorkloadRow {
                    family: spec.family.name().to_string(),
                    spec: spec.name(),
                    oracle: wl.oracle.describe(),
                    tool: tool.label(),
                    contexts: 0,
                    expected: wl.oracle.expected_for(tool.is_predictive()).len(),
                    missed: wl.oracle.expected_for(tool.is_predictive()).len(),
                    unexpected: 1,
                },
            };
            rows.push(row);
        }
    }
    WorkloadTable { rows, vm_runs }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline guarantee: the whole lineup — HB tools plus the
    /// predictive pass — is sound and complete on every standard
    /// workload (including the reorder-only families, where the HB
    /// tools owe 0 and `SyncPreserving` owes the injected set) — and
    /// stays that way.
    #[test]
    fn full_lineup_passes_every_standard_workload() {
        let mut tools = Tool::paper_lineup().to_vec();
        tools.push(Tool::SyncPreserving);
        let table = run_workloads(&tools);
        assert_eq!(table.rows.len(), standard_specs().len() * tools.len());
        assert!(table.all_pass(), "oracle failures: {:#?}", table.failures());
        // The reorder-only families are actually exercised: their racy
        // rows demand a non-zero count from the predictive tool only.
        let sp = Tool::SyncPreserving.label();
        let reorder_rows: Vec<_> = table
            .rows
            .iter()
            .filter(|r| (r.family == "straddle" || r.family == "publish") && r.expected > 0)
            .collect();
        assert!(!reorder_rows.is_empty());
        assert!(reorder_rows.iter().all(|r| r.tool == sp));
    }

    /// Trace fan-out works here exactly as in the other suites: tools
    /// sharing a prepared module share one VM execution.
    #[test]
    fn executions_are_shared_across_tools() {
        let tools = Tool::paper_lineup();
        let table = run_workloads_with(&tools, &[WorkloadSpec::new(Family::Zipf)]);
        // Zipf has no spin loops and no library sync, so lib, lib+spin
        // and DRD all share the unmodified module; only nolib lowering
        // (renaming the module) forces a second execution.
        assert_eq!(table.vm_runs, 2);
    }

    /// `Oracle::RaceFree` rows demand zero contexts; seeded rows demand
    /// the exact count.
    #[test]
    fn expected_counts_follow_the_oracle() {
        let specs = [
            WorkloadSpec::new(Family::Ring).seed(7),
            WorkloadSpec::new(Family::Ring).races(3).seed(7),
        ];
        let table = run_workloads_with(&[Tool::Drd], &specs);
        assert_eq!(table.rows[0].expected, 0);
        assert_eq!(table.rows[1].expected, 3);
        assert!(table.all_pass(), "{:#?}", table.failures());
    }

    #[test]
    fn oracle_export_is_usable_downstream() {
        // Downstream consumers (report/bench) read oracles straight off
        // built workloads.
        let oracle = WorkloadSpec::new(Family::Barrier).build().oracle;
        assert_eq!(oracle.describe(), "race-free");
    }
}
