//! The 120-case `data-race-test`-style suite.
//!
//! Every case is a self-contained TIR program plus ground truth: whether
//! it is racy, and if so on which global. The composition is engineered so
//! each tool column of the paper's Table 1/2 fails for the *reasons* the
//! paper identifies (see the category docs).

mod adhoc;
mod racy;
mod sync_ok;

use spinrace_tir::Module;

/// Case category — determines which tools are expected to mis-classify.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    /// Race-free, library primitives only (locks/CVs/barriers/sems/join).
    LibSync,
    /// Race-free, plain-store ad-hoc spin synchronization. False alarms
    /// for `Helgrind+ lib` and DRD; clean for `+spin` when the loop weight
    /// fits the window.
    AdhocPlain {
        /// Effective loop weight in basic blocks.
        weight: u32,
    },
    /// Race-free, atomic-flag ad-hoc spin synchronization. False alarms
    /// for `Helgrind+ lib` only (DRD credits the atomics).
    AdhocAtomic {
        /// Effective loop weight in basic blocks.
        weight: u32,
    },
    /// Race-free, ad-hoc patterns that defeat the spin criteria (impure
    /// condition calls, oversized loops, working bodies). False alarms
    /// for every tool — the paper's residual false positives.
    Obscure,
    /// Racy, no synchronization at all: every tool catches it.
    RacyPlain,
    /// Racy, but the racing accesses are fortuitously ordered through an
    /// atomic flag DRD credits as synchronization: DRD misses, the hybrid
    /// configurations catch.
    RacyAtomicOrdered,
    /// Racy, but the racing store hides behind a schedule-dependent
    /// branch the deterministic schedule never takes: everyone misses.
    RacyLatent,
    /// Racy, and additionally floods `lib`-mode detectors with dozens of
    /// ad-hoc false contexts so the real race drowns past the report cap:
    /// `lib` and DRD miss it, `+spin` configurations recover it (the
    /// paper's removed false negative).
    RacyFlooded,
}

/// One suite case.
pub struct DrtCase {
    /// Stable id (1-based, dense).
    pub id: u32,
    /// Human-readable name.
    pub name: String,
    /// Category (drives expectations).
    pub category: Category,
    /// Ground truth: does the program contain a data race?
    pub racy: bool,
    /// For racy cases: the global the race is on.
    pub race_location: Option<&'static str>,
    /// Number of threads the case spawns (main included).
    pub threads: u32,
    /// The program.
    pub module: Module,
}

/// Build all 120 cases. Deterministic: ids, names and programs are stable
/// across calls.
pub fn all_cases() -> Vec<DrtCase> {
    let mut cases = Vec::with_capacity(120);
    sync_ok::build(&mut cases);
    adhoc::build(&mut cases);
    racy::build(&mut cases);
    for (i, c) in cases.iter_mut().enumerate() {
        c.id = (i + 1) as u32;
    }
    assert_eq!(cases.len(), 120, "the suite is specified at 120 cases");
    cases
}

pub(crate) fn case(
    name: impl Into<String>,
    category: Category,
    racy: bool,
    race_location: Option<&'static str>,
    threads: u32,
    module: Module,
) -> DrtCase {
    DrtCase {
        id: 0,
        name: name.into(),
        category,
        racy,
        race_location,
        threads,
        module,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinrace_vm::{run_module, NullSink, VmConfig};

    #[test]
    fn exactly_120_cases_with_unique_names() {
        let cases = all_cases();
        assert_eq!(cases.len(), 120);
        let mut names: Vec<&str> = cases.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 120, "duplicate case names");
    }

    #[test]
    fn racy_cases_name_their_victim() {
        for c in all_cases() {
            assert_eq!(
                c.racy,
                c.race_location.is_some(),
                "case {} ({})",
                c.id,
                c.name
            );
        }
    }

    #[test]
    fn composition_matches_the_design() {
        let cases = all_cases();
        let count = |f: &dyn Fn(&Category) -> bool| cases.iter().filter(|c| f(&c.category)).count();
        assert_eq!(count(&|c| matches!(c, Category::LibSync)), 52);
        assert_eq!(count(&|c| matches!(c, Category::AdhocPlain { .. })), 5);
        assert_eq!(count(&|c| matches!(c, Category::AdhocAtomic { .. })), 19);
        assert_eq!(count(&|c| matches!(c, Category::Obscure)), 8);
        assert_eq!(count(&|c| matches!(c, Category::RacyPlain)), 15);
        assert_eq!(count(&|c| matches!(c, Category::RacyAtomicOrdered)), 13);
        assert_eq!(count(&|c| matches!(c, Category::RacyLatent)), 7);
        assert_eq!(count(&|c| matches!(c, Category::RacyFlooded)), 1);
        // window-weight distribution for Table 2
        let weights: Vec<u32> = cases
            .iter()
            .filter_map(|c| match c.category {
                Category::AdhocPlain { weight } | Category::AdhocAtomic { weight } => Some(weight),
                _ => None,
            })
            .collect();
        assert_eq!(weights.iter().filter(|&&w| w <= 3).count(), 8);
        assert_eq!(weights.iter().filter(|&&w| (4..=6).contains(&w)).count(), 1);
        assert_eq!(weights.iter().filter(|&&w| w == 7).count(), 15);
    }

    #[test]
    fn every_case_runs_to_completion_round_robin() {
        for c in all_cases() {
            let r = run_module(&c.module, VmConfig::round_robin(), &mut NullSink);
            assert!(
                r.is_ok(),
                "case {} ({}) failed: {:?}",
                c.id,
                c.name,
                r.err()
            );
        }
    }

    #[test]
    fn thread_counts_span_2_to_16() {
        let cases = all_cases();
        assert!(cases.iter().any(|c| c.threads >= 16));
        assert!(cases.iter().all(|c| c.threads >= 2));
    }
}
