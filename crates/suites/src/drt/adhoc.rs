//! Race-free ad-hoc synchronization cases (32).
//!
//! * 5 plain-store flag handoffs (false alarms for `lib` **and** DRD);
//! * 19 atomic-flag handoffs (false alarms for `lib` only — DRD credits
//!   the acquire/release atomics);
//! * 8 obscure patterns that defeat the spin criteria (false alarms for
//!   every configuration — the paper's residual false positives).
//!
//! Spin-loop weights are distributed to reproduce Table 2 exactly:
//! 8 loops of weight ≤ 3, one of weight 4–6, fifteen of weight 7
//! ("loop conditions use templates and complex function calls"), and the
//! obscure loops beyond every window.

use super::{case, Category, DrtCase};
use spinrace_tir::{MemOrder, Module, ModuleBuilder, Operand};

pub(super) fn build(out: &mut Vec<DrtCase>) {
    // ---- plain-store ad-hoc (5): weights 1, 2, 3, 7, 7 ----
    for w in [1u32, 2, 3] {
        out.push(case(
            format!("adhoc_plain_w{w}"),
            Category::AdhocPlain { weight: w },
            false,
            None,
            2,
            flag_handoff(&format!("adhoc_plain_w{w}"), w, false, 1),
        ));
    }
    for (i, threads) in [(0u32, 1u32), (1, 2)] {
        out.push(case(
            format!("adhoc_plain_call7_{i}"),
            Category::AdhocPlain { weight: 7 },
            false,
            None,
            threads + 1,
            flag_handoff_call(&format!("adhoc_plain_call7_{i}"), 6, false, threads),
        ));
    }

    // ---- atomic-flag ad-hoc (19): 5×(≤3), 1×5, 13×7 ----
    for (i, w) in [(0u32, 1u32), (1, 2), (2, 3), (3, 1), (4, 2)] {
        let readers = 1 + i % 2;
        out.push(case(
            format!("adhoc_atomic_w{w}_{i}"),
            Category::AdhocAtomic { weight: w },
            false,
            None,
            readers + 1,
            flag_handoff(&format!("adhoc_atomic_w{w}_{i}"), w, true, readers),
        ));
    }
    out.push(case(
        "adhoc_atomic_w5",
        Category::AdhocAtomic { weight: 5 },
        false,
        None,
        2,
        flag_handoff("adhoc_atomic_w5", 5, true, 1),
    ));
    // six call-based weight-7 loops
    for i in 0..6u32 {
        let readers = 1 + i % 3;
        out.push(case(
            format!("adhoc_atomic_call7_{i}"),
            Category::AdhocAtomic { weight: 7 },
            false,
            None,
            readers + 1,
            flag_handoff_call(&format!("adhoc_atomic_call7_{i}"), 6, true, readers),
        ));
    }
    // seven padded weight-7 loops
    for i in 0..7u32 {
        let readers = 1 + i % 2;
        out.push(case(
            format!("adhoc_atomic_pad7_{i}"),
            Category::AdhocAtomic { weight: 7 },
            false,
            None,
            readers + 1,
            flag_handoff(&format!("adhoc_atomic_pad7_{i}"), 7, true, readers),
        ));
    }

    // ---- obscure (8) ----
    for i in 0..3u32 {
        out.push(case(
            format!("obscure_impure_cond_{i}"),
            Category::Obscure,
            false,
            None,
            2,
            impure_condition(&format!("obscure_impure_cond_{i}")),
        ));
    }
    for (i, w) in [(0u32, 9u32), (1, 10), (2, 9)] {
        out.push(case(
            format!("obscure_oversized_{i}"),
            Category::Obscure,
            false,
            None,
            2,
            flag_handoff(&format!("obscure_oversized_{i}"), w, false, 1),
        ));
    }
    for i in 0..2u32 {
        out.push(case(
            format!("obscure_busy_body_{i}"),
            Category::Obscure,
            false,
            None,
            2,
            busy_body(&format!("obscure_busy_body_{i}")),
        ));
    }
}

/// Flag handoff whose spin loop is padded to exactly `weight` blocks.
/// `atomic` selects atomic flag accesses (release store / acquire loads).
/// `readers` waiters spin on the same flag and then read the data.
fn flag_handoff(name: &str, weight: u32, atomic: bool, readers: u32) -> Module {
    let mut mb = ModuleBuilder::new(name);
    let flag = mb.global("flag", 1);
    let data = mb.global("data", 1);
    let sink = mb.global("sink", 8);
    let waiter = mb.function("waiter", 1, |f| {
        let head = f.new_block();
        let done = f.new_block();
        f.jump(head);
        f.switch_to(head);
        let v = if atomic {
            f.load_atomic(flag.at(0), MemOrder::Acquire)
        } else {
            f.load(flag.at(0))
        };
        if weight == 1 {
            f.branch(v, done, head);
        } else {
            let mut pads = Vec::new();
            for _ in 0..weight - 1 {
                pads.push(f.new_block());
            }
            f.branch(v, done, pads[0]);
            for (i, &p) in pads.iter().enumerate() {
                f.switch_to(p);
                f.yield_();
                let next = if i + 1 < pads.len() {
                    pads[i + 1]
                } else {
                    head
                };
                f.jump(next);
            }
        }
        f.switch_to(done);
        let d = f.load(data.at(0));
        f.store(sink.idx(f.param(0)), d);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let tids: Vec<_> = (0..readers).map(|i| f.spawn(waiter, i as i64)).collect();
        f.store(data.at(0), 17);
        if atomic {
            f.store_atomic(flag.at(0), 1, MemOrder::Release);
        } else {
            f.store(flag.at(0), 1);
        }
        for tid in tids {
            f.join(tid);
        }
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Flag handoff whose loop condition is evaluated through a *pure helper
/// function* with `callee_blocks` basic blocks — the paper's "templates
/// and complex function calls" pattern. Effective weight = 1 + callee.
fn flag_handoff_call(name: &str, callee_blocks: u32, atomic: bool, readers: u32) -> Module {
    let mut mb = ModuleBuilder::new(name);
    let flag = mb.global("flag", 1);
    let data = mb.global("data", 1);
    let sink = mb.global("sink", 8);
    let check = mb.function("check_flag", 0, |f| {
        let mut prev = f.current();
        for _ in 1..callee_blocks {
            let nb = f.new_block();
            f.switch_to(prev);
            f.nop();
            f.jump(nb);
            prev = nb;
            f.switch_to(nb);
        }
        f.switch_to(prev);
        let v = if atomic {
            f.load_atomic(flag.at(0), MemOrder::Acquire)
        } else {
            f.load(flag.at(0))
        };
        f.ret(Some(Operand::Reg(v)));
    });
    let waiter = mb.function("waiter", 1, |f| {
        let head = f.new_block();
        let done = f.new_block();
        f.jump(head);
        f.switch_to(head);
        let v = f.call(check, &[]);
        f.branch(v, done, head);
        f.switch_to(done);
        let d = f.load(data.at(0));
        f.store(sink.idx(f.param(0)), d);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let tids: Vec<_> = (0..readers).map(|i| f.spawn(waiter, i as i64)).collect();
        f.store(data.at(0), 23);
        if atomic {
            f.store_atomic(flag.at(0), 1, MemOrder::Release);
        } else {
            f.store(flag.at(0), 1);
        }
        for tid in tids {
            f.join(tid);
        }
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Spin whose condition helper also *writes* a scratch counter — an
/// impure condition call (models function-pointer-style evaluation the
/// analysis cannot follow). Correct at run time, invisible to the
/// instrumentation phase.
fn impure_condition(name: &str) -> Module {
    let mut mb = ModuleBuilder::new(name);
    let flag = mb.global("flag", 1);
    let data = mb.global("data", 1);
    let scratch = mb.global("scratch", 4);
    let check = mb.function("check_and_count", 1, |f| {
        // per-caller scratch slot keeps this free of *real* races
        let s = f.load(scratch.idx(f.param(0)));
        let s2 = f.add(s, 1);
        f.store(scratch.idx(f.param(0)), s2);
        let v = f.load(flag.at(0));
        f.ret(Some(Operand::Reg(v)));
    });
    let waiter = mb.function("waiter", 1, |f| {
        let head = f.new_block();
        let done = f.new_block();
        f.jump(head);
        f.switch_to(head);
        let v = f.call(check, &[Operand::Reg(f.param(0))]);
        f.branch(v, done, head);
        f.switch_to(done);
        let d = f.load(data.at(0));
        f.output(d);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t = f.spawn(waiter, 1);
        f.store(data.at(0), 29);
        f.store(flag.at(0), 1);
        f.join(t);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Spin loop whose body performs unrelated stores ("working wait") — the
/// strict do-nothing criterion rejects it.
fn busy_body(name: &str) -> Module {
    let mut mb = ModuleBuilder::new(name);
    let flag = mb.global("flag", 1);
    let data = mb.global("data", 1);
    let spins = mb.global("spins", 4);
    let waiter = mb.function("waiter", 1, |f| {
        let head = f.new_block();
        let body = f.new_block();
        let done = f.new_block();
        f.jump(head);
        f.switch_to(head);
        let v = f.load(flag.at(0));
        f.branch(v, done, body);
        f.switch_to(body);
        // spin-count bookkeeping in a per-thread slot
        let s = f.load(spins.idx(f.param(0)));
        let s2 = f.add(s, 1);
        f.store(spins.idx(f.param(0)), s2);
        f.jump(head);
        f.switch_to(done);
        let d = f.load(data.at(0));
        f.output(d);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t = f.spawn(waiter, 1);
        f.store(data.at(0), 37);
        f.store(flag.at(0), 1);
        f.join(t);
        f.ret(None);
    });
    mb.finish().unwrap()
}
