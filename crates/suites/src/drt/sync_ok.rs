//! Race-free cases using library primitives only (52 cases).
//!
//! Every detector configuration should stay silent here; in `nolib` mode
//! the primitives are lowered and the spin detection has to recover them
//! (the paper's universal-detector claim).

use super::{case, Category, DrtCase};
use spinrace_tir::{Module, ModuleBuilder};

pub(super) fn build(out: &mut Vec<DrtCase>) {
    // ---- locks (14) ----
    for t in [2u32, 4, 8, 16] {
        out.push(case(
            format!("lock_counter_{t}t"),
            Category::LibSync,
            false,
            None,
            t + 1,
            lock_counter(t),
        ));
    }
    for t in [2u32, 8] {
        out.push(case(
            format!("lock_slots_{t}t"),
            Category::LibSync,
            false,
            None,
            t + 1,
            lock_slots(t),
        ));
    }
    for t in [2u32, 4] {
        out.push(case(
            format!("lock_list_{t}t"),
            Category::LibSync,
            false,
            None,
            t + 1,
            lock_list(t),
        ));
    }
    for t in [2u32, 4] {
        out.push(case(
            format!("two_locks_ordered_{t}t"),
            Category::LibSync,
            false,
            None,
            t + 1,
            two_locks_ordered(t),
        ));
    }
    for t in [2u32, 3] {
        out.push(case(
            format!("lock_handoff_{t}t"),
            Category::LibSync,
            false,
            None,
            t + 1,
            lock_handoff(t),
        ));
    }
    for t in [2u32, 8] {
        out.push(case(
            format!("lock_rw_{t}t"),
            Category::LibSync,
            false,
            None,
            t + 1,
            lock_rw(t),
        ));
    }

    // ---- condition variables (10) ----
    out.push(case(
        "cv_handshake_signal",
        Category::LibSync,
        false,
        None,
        2,
        cv_handshake(false),
    ));
    out.push(case(
        "cv_handshake_broadcast",
        Category::LibSync,
        false,
        None,
        2,
        cv_handshake(true),
    ));
    for t in [4u32, 8] {
        out.push(case(
            format!("cv_multiwaiter_{t}t"),
            Category::LibSync,
            false,
            None,
            t + 1,
            cv_multiwaiter(t),
        ));
    }
    out.push(case(
        "cv_pingpong",
        Category::LibSync,
        false,
        None,
        2,
        cv_pingpong(4),
    ));
    out.push(case(
        "cv_pingpong_long",
        Category::LibSync,
        false,
        None,
        2,
        cv_pingpong(8),
    ));
    for (p, c) in [(1u32, 1u32), (1, 2), (2, 1), (2, 2)] {
        out.push(case(
            format!("cv_bounded_buffer_{p}p{c}c"),
            Category::LibSync,
            false,
            None,
            p + c + 1,
            cv_bounded_buffer(p, c),
        ));
    }

    // ---- barriers (8) ----
    for t in [2u32, 4, 8, 16] {
        out.push(case(
            format!("barrier_phase_{t}t"),
            Category::LibSync,
            false,
            None,
            t + 1,
            barrier_phase(t),
        ));
    }
    for t in [2u32, 4, 8, 16] {
        out.push(case(
            format!("barrier_reduce_{t}t"),
            Category::LibSync,
            false,
            None,
            t + 1,
            barrier_reduce(t),
        ));
    }

    // ---- semaphores (6) ----
    for t in [2u32, 4] {
        out.push(case(
            format!("sem_lock_{t}t"),
            Category::LibSync,
            false,
            None,
            t + 1,
            sem_lock(t),
        ));
    }
    for t in [2u32, 3] {
        out.push(case(
            format!("sem_handoff_{t}t"),
            Category::LibSync,
            false,
            None,
            t + 1,
            sem_handoff(t),
        ));
    }
    for t in [4u32, 8] {
        out.push(case(
            format!("sem_multiplex_{t}t"),
            Category::LibSync,
            false,
            None,
            t + 1,
            sem_multiplex(t),
        ));
    }

    // ---- join ordering (6) ----
    for t in [4u32, 8, 16] {
        out.push(case(
            format!("join_fanout_{t}t"),
            Category::LibSync,
            false,
            None,
            t + 1,
            join_fanout(t),
        ));
    }
    out.push(case(
        "join_tree",
        Category::LibSync,
        false,
        None,
        4,
        join_tree(),
    ));
    out.push(case(
        "join_pipeline",
        Category::LibSync,
        false,
        None,
        3,
        join_pipeline(),
    ));
    out.push(case(
        "join_result",
        Category::LibSync,
        false,
        None,
        2,
        join_result(),
    ));

    // ---- mixed (8) ----
    for t in [4u32, 8] {
        out.push(case(
            format!("barrier_locks_{t}t"),
            Category::LibSync,
            false,
            None,
            t + 1,
            barrier_locks(t),
        ));
    }
    for t in [2u32, 4] {
        out.push(case(
            format!("cv_locks_{t}t"),
            Category::LibSync,
            false,
            None,
            t + 1,
            cv_locks(t),
        ));
    }
    out.push(case(
        "sem_barrier",
        Category::LibSync,
        false,
        None,
        5,
        sem_barrier(4),
    ));
    out.push(case(
        "lock_phases_join",
        Category::LibSync,
        false,
        None,
        5,
        lock_phases_join(4),
    ));
    out.push(case(
        "producer_consumer_mixed",
        Category::LibSync,
        false,
        None,
        3,
        producer_consumer_mixed(),
    ));
    out.push(case(
        "all_primitives",
        Category::LibSync,
        false,
        None,
        3,
        all_primitives(),
    ));
}

/// `t` workers each add `iters` to a counter under one mutex.
fn lock_counter(t: u32) -> Module {
    let mut mb = ModuleBuilder::new(format!("lock_counter_{t}t"));
    let mu = mb.global("mu", 1);
    let counter = mb.global("counter", 1);
    let worker = mb.function("worker", 1, |f| {
        for _ in 0..3 {
            f.lock(mu.at(0));
            let v = f.load(counter.at(0));
            let v2 = f.add(v, 1);
            f.store(counter.at(0), v2);
            f.unlock(mu.at(0));
        }
        f.ret(None);
    });
    mb.entry("main", |f| {
        let tids: Vec<_> = (0..t).map(|i| f.spawn(worker, i as i64)).collect();
        for tid in tids {
            f.join(tid);
        }
        let v = f.load(counter.at(0));
        f.output(v);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Per-slot mutexes: each worker hits two slots under their own locks.
fn lock_slots(t: u32) -> Module {
    let mut mb = ModuleBuilder::new(format!("lock_slots_{t}t"));
    let mus = mb.global("mus", t as u64);
    let slots = mb.global("slots", t as u64);
    let n = t as i64;
    let worker = mb.function("worker", 1, |f| {
        let id = f.param(0);
        let next = f.add(id, 1);
        let next = f.bin(spinrace_tir::BinOp::Rem, next, n);
        for target in [id, next] {
            f.lock(mus.idx(target));
            let v = f.load(slots.idx(target));
            let v2 = f.add(v, 1);
            f.store(slots.idx(target), v2);
            f.unlock(mus.idx(target));
        }
        f.ret(None);
    });
    mb.entry("main", |f| {
        let tids: Vec<_> = (0..t).map(|i| f.spawn(worker, i as i64)).collect();
        for tid in tids {
            f.join(tid);
        }
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// A shared array + length, both guarded by one mutex (a "list").
fn lock_list(t: u32) -> Module {
    let mut mb = ModuleBuilder::new(format!("lock_list_{t}t"));
    let mu = mb.global("mu", 1);
    let len = mb.global("len", 1);
    let items = mb.global("items", 64);
    let worker = mb.function("worker", 1, |f| {
        for _ in 0..2 {
            f.lock(mu.at(0));
            let l = f.load(len.at(0));
            f.store(items.idx(l), f.param(0));
            let l2 = f.add(l, 1);
            f.store(len.at(0), l2);
            f.unlock(mu.at(0));
        }
        f.ret(None);
    });
    mb.entry("main", |f| {
        let tids: Vec<_> = (0..t).map(|i| f.spawn(worker, i as i64)).collect();
        for tid in tids {
            f.join(tid);
        }
        let l = f.load(len.at(0));
        f.output(l);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Two mutexes always taken in the same order (no deadlock, no race).
fn two_locks_ordered(t: u32) -> Module {
    let mut mb = ModuleBuilder::new(format!("two_locks_ordered_{t}t"));
    let m1 = mb.global("m1", 1);
    let m2 = mb.global("m2", 1);
    let a = mb.global("a", 1);
    let b = mb.global("b", 1);
    let worker = mb.function("worker", 1, |f| {
        f.lock(m1.at(0));
        f.lock(m2.at(0));
        let va = f.load(a.at(0));
        let vb = f.load(b.at(0));
        let s = f.add(va, vb);
        f.store(a.at(0), s);
        f.store(b.at(0), s);
        f.unlock(m2.at(0));
        f.unlock(m1.at(0));
        f.ret(None);
    });
    mb.entry("main", |f| {
        let tids: Vec<_> = (0..t).map(|i| f.spawn(worker, i as i64)).collect();
        for tid in tids {
            f.join(tid);
        }
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Ownership handoff: value written in one CS, consumed in another.
fn lock_handoff(t: u32) -> Module {
    let mut mb = ModuleBuilder::new(format!("lock_handoff_{t}t"));
    let mu = mb.global("mu", 1);
    let boxv = mb.global("boxv", 1);
    let worker = mb.function("worker", 1, |f| {
        f.lock(mu.at(0));
        let v = f.load(boxv.at(0));
        let v2 = f.add(v, 10);
        f.store(boxv.at(0), v2);
        f.unlock(mu.at(0));
        f.ret(None);
    });
    mb.entry("main", |f| {
        f.lock(mu.at(0));
        f.store(boxv.at(0), 5);
        f.unlock(mu.at(0));
        let tids: Vec<_> = (0..t).map(|i| f.spawn(worker, i as i64)).collect();
        for tid in tids {
            f.join(tid);
        }
        f.lock(mu.at(0));
        let v = f.load(boxv.at(0));
        f.unlock(mu.at(0));
        f.output(v);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Readers and one writer all under a single mutex.
fn lock_rw(t: u32) -> Module {
    let mut mb = ModuleBuilder::new(format!("lock_rw_{t}t"));
    let mu = mb.global("mu", 1);
    let data = mb.global("data", 1);
    let sink = mb.global("sink", 32);
    let reader = mb.function("reader", 1, |f| {
        f.lock(mu.at(0));
        let v = f.load(data.at(0));
        f.store(sink.idx(f.param(0)), v);
        f.unlock(mu.at(0));
        f.ret(None);
    });
    let writer = mb.function("writer", 1, |f| {
        f.lock(mu.at(0));
        f.store(data.at(0), 9);
        f.unlock(mu.at(0));
        f.ret(None);
    });
    mb.entry("main", |f| {
        let w = f.spawn(writer, 0);
        let tids: Vec<_> = (1..t).map(|i| f.spawn(reader, i as i64)).collect();
        f.join(w);
        for tid in tids {
            f.join(tid);
        }
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// One producer, one consumer over `ready` + CV (signal or broadcast).
fn cv_handshake(broadcast: bool) -> Module {
    let name = if broadcast {
        "cv_handshake_broadcast"
    } else {
        "cv_handshake_signal"
    };
    let mut mb = ModuleBuilder::new(name);
    let mu = mb.global("mu", 1);
    let cv = mb.global("cv", 1);
    let ready = mb.global("ready", 1);
    let data = mb.global("data", 1);
    let consumer = mb.function("consumer", 1, |f| {
        let check = f.new_block();
        let sleep = f.new_block();
        let done = f.new_block();
        f.lock(mu.at(0));
        f.jump(check);
        f.switch_to(check);
        let r = f.load(ready.at(0));
        f.branch(r, done, sleep);
        f.switch_to(sleep);
        f.wait(cv.at(0), mu.at(0));
        f.jump(check);
        f.switch_to(done);
        let d = f.load(data.at(0));
        f.unlock(mu.at(0));
        f.output(d);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t = f.spawn(consumer, 0);
        f.lock(mu.at(0));
        f.store(data.at(0), 64);
        f.store(ready.at(0), 1);
        if broadcast {
            f.broadcast(cv.at(0));
        } else {
            f.signal(cv.at(0));
        }
        f.unlock(mu.at(0));
        f.join(t);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// `t` waiters released by one broadcast, predicate re-checked in a loop.
fn cv_multiwaiter(t: u32) -> Module {
    let mut mb = ModuleBuilder::new(format!("cv_multiwaiter_{t}t"));
    let mu = mb.global("mu", 1);
    let cv = mb.global("cv", 1);
    let go = mb.global("go", 1);
    let counter = mb.global("counter", 1);
    let waiter = mb.function("waiter", 1, |f| {
        let check = f.new_block();
        let sleep = f.new_block();
        let done = f.new_block();
        f.lock(mu.at(0));
        f.jump(check);
        f.switch_to(check);
        let g = f.load(go.at(0));
        f.branch(g, done, sleep);
        f.switch_to(sleep);
        f.wait(cv.at(0), mu.at(0));
        f.jump(check);
        f.switch_to(done);
        let c = f.load(counter.at(0));
        let c2 = f.add(c, 1);
        f.store(counter.at(0), c2);
        f.unlock(mu.at(0));
        f.ret(None);
    });
    mb.entry("main", |f| {
        let tids: Vec<_> = (0..t).map(|i| f.spawn(waiter, i as i64)).collect();
        for _ in 0..20 {
            f.yield_();
        }
        f.lock(mu.at(0));
        f.store(go.at(0), 1);
        f.broadcast(cv.at(0));
        f.unlock(mu.at(0));
        for tid in tids {
            f.join(tid);
        }
        let v = f.load(counter.at(0));
        f.output(v);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Two threads alternate turns through one CV (`rounds` exchanges).
fn cv_pingpong(rounds: i64) -> Module {
    let mut mb = ModuleBuilder::new(format!("cv_pingpong_{rounds}"));
    let mu = mb.global("mu", 1);
    let cv = mb.global("cv", 1);
    let turn = mb.global("turn", 1);
    let ball = mb.global("ball", 1);
    let player = mb.function("player", 1, |f| {
        let me = f.param(0);
        for _ in 0..rounds {
            let check = f.new_block();
            let sleep = f.new_block();
            let mine = f.new_block();
            f.lock(mu.at(0));
            f.jump(check);
            f.switch_to(check);
            let tv = f.load(turn.at(0));
            let isme = f.eq(tv, me);
            f.branch(isme, mine, sleep);
            f.switch_to(sleep);
            f.wait(cv.at(0), mu.at(0));
            f.jump(check);
            f.switch_to(mine);
            let b = f.load(ball.at(0));
            let b2 = f.add(b, 1);
            f.store(ball.at(0), b2);
            let other = f.sub(1, me);
            f.store(turn.at(0), other);
            f.broadcast(cv.at(0));
            f.unlock(mu.at(0));
        }
        f.ret(None);
    });
    mb.entry("main", |f| {
        let a = f.spawn(player, 0);
        let b = f.spawn(player, 1);
        f.join(a);
        f.join(b);
        let v = f.load(ball.at(0));
        f.output(v);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Bounded buffer with not-full/not-empty condition variables.
fn cv_bounded_buffer(producers: u32, consumers: u32) -> Module {
    let mut mb = ModuleBuilder::new(format!("cv_bb_{producers}p{consumers}c"));
    let mu = mb.global("mu", 1);
    let notfull = mb.global("notfull", 1);
    let notempty = mb.global("notempty", 1);
    let buf = mb.global("buf", 4);
    let fill = mb.global("fill", 1);
    let produced = mb.global("produced", 1);
    let consumed = mb.global("consumed", 1);
    let per_producer = 4i64;
    let total = per_producer * producers as i64;
    let per_consumer = total / consumers as i64;
    let producer = mb.function("producer", 1, |f| {
        for _ in 0..per_producer {
            let check = f.new_block();
            let sleep = f.new_block();
            let put = f.new_block();
            f.lock(mu.at(0));
            f.jump(check);
            f.switch_to(check);
            let n = f.load(fill.at(0));
            let full = f.ge(n, 4);
            f.branch(full, sleep, put);
            f.switch_to(sleep);
            f.wait(notfull.at(0), mu.at(0));
            f.jump(check);
            f.switch_to(put);
            let n2 = f.load(fill.at(0));
            f.store(buf.idx(n2), f.param(0));
            let n3 = f.add(n2, 1);
            f.store(fill.at(0), n3);
            let p = f.load(produced.at(0));
            let p2 = f.add(p, 1);
            f.store(produced.at(0), p2);
            f.broadcast(notempty.at(0));
            f.unlock(mu.at(0));
        }
        f.ret(None);
    });
    let consumer = mb.function("consumer", 1, |f| {
        for _ in 0..per_consumer {
            let check = f.new_block();
            let sleep = f.new_block();
            let take = f.new_block();
            f.lock(mu.at(0));
            f.jump(check);
            f.switch_to(check);
            let n = f.load(fill.at(0));
            let empty = f.eq(n, 0);
            f.branch(empty, sleep, take);
            f.switch_to(sleep);
            f.wait(notempty.at(0), mu.at(0));
            f.jump(check);
            f.switch_to(take);
            let n2 = f.load(fill.at(0));
            let n3 = f.sub(n2, 1);
            let v = f.load(buf.idx(n3));
            let _ = v;
            f.store(fill.at(0), n3);
            let c = f.load(consumed.at(0));
            let c2 = f.add(c, 1);
            f.store(consumed.at(0), c2);
            f.broadcast(notfull.at(0));
            f.unlock(mu.at(0));
        }
        f.ret(None);
    });
    mb.entry("main", |f| {
        let mut tids = Vec::new();
        for i in 0..producers {
            tids.push(f.spawn(producer, i as i64));
        }
        for i in 0..consumers {
            tids.push(f.spawn(consumer, i as i64));
        }
        for tid in tids {
            f.join(tid);
        }
        let c = f.load(consumed.at(0));
        f.output(c);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Write-own-slot, barrier, read-all — the classic race-free phase split.
fn barrier_phase(t: u32) -> Module {
    let mut mb = ModuleBuilder::new(format!("barrier_phase_{t}t"));
    let bar = mb.global("bar", 3);
    let slots = mb.global("slots", t as u64);
    let sums = mb.global("sums", t as u64);
    let n = t as i64;
    let worker = mb.function("worker", 1, |f| {
        let id = f.param(0);
        let v = f.add(id, 100);
        f.store(slots.idx(id), v);
        f.barrier_wait(bar.at(0));
        let mut total = f.const_(0);
        for i in 0..n {
            let s = f.load(slots.at(i));
            total = f.add(total, s);
        }
        f.store(sums.idx(id), total);
        f.ret(None);
    });
    mb.entry("main", |f| {
        f.barrier_init(bar.at(0), n);
        let tids: Vec<_> = (0..t).map(|i| f.spawn(worker, i as i64)).collect();
        for tid in tids {
            f.join(tid);
        }
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Two barrier rounds with a tree-free reduction into slot 0 by thread 0.
fn barrier_reduce(t: u32) -> Module {
    let mut mb = ModuleBuilder::new(format!("barrier_reduce_{t}t"));
    let bar = mb.global("bar", 3);
    let slots = mb.global("slots", t as u64);
    let result = mb.global("result", 1);
    let n = t as i64;
    let worker = mb.function("worker", 1, |f| {
        let id = f.param(0);
        let sq = f.mul(id, id);
        f.store(slots.idx(id), sq);
        f.barrier_wait(bar.at(0));
        // thread 0 reduces
        let reduce = f.new_block();
        let skip = f.new_block();
        let iszero = f.eq(id, 0);
        f.branch(iszero, reduce, skip);
        f.switch_to(reduce);
        let mut total = f.const_(0);
        for i in 0..n {
            let s = f.load(slots.at(i));
            total = f.add(total, s);
        }
        f.store(result.at(0), total);
        f.jump(skip);
        f.switch_to(skip);
        f.barrier_wait(bar.at(0));
        let r = f.load(result.at(0));
        let _ = r;
        f.ret(None);
    });
    mb.entry("main", |f| {
        f.barrier_init(bar.at(0), n);
        let tids: Vec<_> = (0..t).map(|i| f.spawn(worker, i as i64)).collect();
        for tid in tids {
            f.join(tid);
        }
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Binary semaphore as a mutex.
fn sem_lock(t: u32) -> Module {
    let mut mb = ModuleBuilder::new(format!("sem_lock_{t}t"));
    let sem = mb.global("sem", 1);
    let counter = mb.global("counter", 1);
    let worker = mb.function("worker", 1, |f| {
        for _ in 0..3 {
            f.sem_wait(sem.at(0));
            let v = f.load(counter.at(0));
            let v2 = f.add(v, 1);
            f.store(counter.at(0), v2);
            f.sem_post(sem.at(0));
        }
        f.ret(None);
    });
    mb.entry("main", |f| {
        f.sem_init(sem.at(0), 1);
        let tids: Vec<_> = (0..t).map(|i| f.spawn(worker, i as i64)).collect();
        for tid in tids {
            f.join(tid);
        }
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Producer posts after writing; consumers wait before reading.
fn sem_handoff(t: u32) -> Module {
    let mut mb = ModuleBuilder::new(format!("sem_handoff_{t}t"));
    let sem = mb.global("sem", 1);
    let data = mb.global("data", 1);
    let sink = mb.global("sink", 16);
    let consumer = mb.function("consumer", 1, |f| {
        f.sem_wait(sem.at(0));
        let v = f.load(data.at(0));
        f.store(sink.idx(f.param(0)), v);
        f.sem_post(sem.at(0));
        f.ret(None);
    });
    mb.entry("main", |f| {
        f.sem_init(sem.at(0), 0);
        let tids: Vec<_> = (0..t).map(|i| f.spawn(consumer, i as i64)).collect();
        f.store(data.at(0), 31);
        f.sem_post(sem.at(0));
        for tid in tids {
            f.join(tid);
        }
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Counting semaphore of 2 permits; slots are per-thread (disjoint).
fn sem_multiplex(t: u32) -> Module {
    let mut mb = ModuleBuilder::new(format!("sem_multiplex_{t}t"));
    let sem = mb.global("sem", 1);
    let slots = mb.global("slots", t as u64);
    let worker = mb.function("worker", 1, |f| {
        f.sem_wait(sem.at(0));
        f.store(slots.idx(f.param(0)), 1);
        f.sem_post(sem.at(0));
        f.ret(None);
    });
    mb.entry("main", |f| {
        f.sem_init(sem.at(0), 2);
        let tids: Vec<_> = (0..t).map(|i| f.spawn(worker, i as i64)).collect();
        for tid in tids {
            f.join(tid);
        }
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Disjoint slices, ordering purely by join.
fn join_fanout(t: u32) -> Module {
    let mut mb = ModuleBuilder::new(format!("join_fanout_{t}t"));
    let slots = mb.global("slots", t as u64);
    let n = t as i64;
    let worker = mb.function("worker", 1, |f| {
        let id = f.param(0);
        let v = f.mul(id, 3);
        f.store(slots.idx(id), v);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let tids: Vec<_> = (0..t).map(|i| f.spawn(worker, i as i64)).collect();
        for tid in tids {
            f.join(tid);
        }
        let mut total = f.const_(0);
        for i in 0..n {
            let s = f.load(slots.at(i));
            total = f.add(total, s);
        }
        f.output(total);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Nested spawn/join: main -> A -> (B, C).
fn join_tree() -> Module {
    let mut mb = ModuleBuilder::new("join_tree");
    let cells = mb.global("cells", 3);
    let leaf = mb.function("leaf", 1, |f| {
        let id = f.param(0);
        f.store(cells.idx(id), id);
        f.ret(None);
    });
    let mid = mb.function("mid", 1, |f| {
        let b = f.spawn(leaf, 1);
        let c = f.spawn(leaf, 2);
        f.join(b);
        f.join(c);
        let v1 = f.load(cells.at(1));
        let v2 = f.load(cells.at(2));
        let s = f.add(v1, v2);
        f.store(cells.at(0), s);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let a = f.spawn(mid, 0);
        f.join(a);
        let v = f.load(cells.at(0));
        f.output(v);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Sequential pipeline through join: stage1 -> join -> stage2.
fn join_pipeline() -> Module {
    let mut mb = ModuleBuilder::new("join_pipeline");
    let buf = mb.global("buf", 1);
    let s1 = mb.function("stage1", 1, |f| {
        f.store(buf.at(0), 11);
        f.ret(None);
    });
    let s2 = mb.function("stage2", 1, |f| {
        let v = f.load(buf.at(0));
        let v2 = f.mul(v, 2);
        f.store(buf.at(0), v2);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let a = f.spawn(s1, 0);
        f.join(a);
        let b = f.spawn(s2, 0);
        f.join(b);
        let v = f.load(buf.at(0));
        f.output(v);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Worker leaves a result in a global; main reads it only after join.
fn join_result() -> Module {
    let mut mb = ModuleBuilder::new("join_result");
    let result = mb.global("result", 1);
    let worker = mb.function("worker", 1, |f| {
        let v = f.mul(f.param(0), 7);
        f.store(result.at(0), v);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t = f.spawn(worker, 6);
        f.join(t);
        let v = f.load(result.at(0));
        f.output(v);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Barrier phases with a lock-protected shared accumulator inside phases.
fn barrier_locks(t: u32) -> Module {
    let mut mb = ModuleBuilder::new(format!("barrier_locks_{t}t"));
    let bar = mb.global("bar", 3);
    let mu = mb.global("mu", 1);
    let acc = mb.global("acc", 1);
    let n = t as i64;
    let worker = mb.function("worker", 1, |f| {
        for _ in 0..2 {
            f.lock(mu.at(0));
            let v = f.load(acc.at(0));
            let v2 = f.add(v, 1);
            f.store(acc.at(0), v2);
            f.unlock(mu.at(0));
            f.barrier_wait(bar.at(0));
        }
        f.ret(None);
    });
    mb.entry("main", |f| {
        f.barrier_init(bar.at(0), n);
        let tids: Vec<_> = (0..t).map(|i| f.spawn(worker, i as i64)).collect();
        for tid in tids {
            f.join(tid);
        }
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// A CV-signalled stage where the payload is also lock-protected.
fn cv_locks(t: u32) -> Module {
    let mut mb = ModuleBuilder::new(format!("cv_locks_{t}t"));
    let mu = mb.global("mu", 1);
    let cv = mb.global("cv", 1);
    let stage = mb.global("stage", 1);
    let payload = mb.global("payload", 1);
    let n = t as i64;
    let worker = mb.function("worker", 1, |f| {
        let id = f.param(0);
        let check = f.new_block();
        let sleep = f.new_block();
        let work = f.new_block();
        f.lock(mu.at(0));
        f.jump(check);
        f.switch_to(check);
        let s = f.load(stage.at(0));
        let mine = f.eq(s, id);
        f.branch(mine, work, sleep);
        f.switch_to(sleep);
        f.wait(cv.at(0), mu.at(0));
        f.jump(check);
        f.switch_to(work);
        let p = f.load(payload.at(0));
        let p2 = f.add(p, 1);
        f.store(payload.at(0), p2);
        let s2 = f.add(id, 1);
        f.store(stage.at(0), s2);
        f.broadcast(cv.at(0));
        f.unlock(mu.at(0));
        f.ret(None);
    });
    mb.entry("main", |f| {
        let tids: Vec<_> = (0..t).map(|i| f.spawn(worker, i as i64)).collect();
        for tid in tids {
            f.join(tid);
        }
        let p = f.load(payload.at(0));
        let expected = f.eq(p, n);
        f.assert_(expected, "all stages ran");
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Semaphore gate followed by a barrier round.
fn sem_barrier(t: u32) -> Module {
    let mut mb = ModuleBuilder::new("sem_barrier");
    let sem = mb.global("sem", 1);
    let bar = mb.global("bar", 3);
    let slots = mb.global("slots", t as u64);
    let n = t as i64;
    let worker = mb.function("worker", 1, |f| {
        f.sem_wait(sem.at(0));
        f.store(slots.idx(f.param(0)), 1);
        f.sem_post(sem.at(0));
        f.barrier_wait(bar.at(0));
        let mut total = f.const_(0);
        for i in 0..n {
            let s = f.load(slots.at(i));
            total = f.add(total, s);
        }
        let _ = total;
        f.ret(None);
    });
    mb.entry("main", |f| {
        f.sem_init(sem.at(0), 1);
        f.barrier_init(bar.at(0), n);
        let tids: Vec<_> = (0..t).map(|i| f.spawn(worker, i as i64)).collect();
        for tid in tids {
            f.join(tid);
        }
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Phase 1 under locks, join-all, main runs phase 2 single-threaded.
fn lock_phases_join(t: u32) -> Module {
    let mut mb = ModuleBuilder::new("lock_phases_join");
    let mu = mb.global("mu", 1);
    let acc = mb.global("acc", 1);
    let worker = mb.function("worker", 1, |f| {
        f.lock(mu.at(0));
        let v = f.load(acc.at(0));
        let v2 = f.add(v, f.param(0));
        f.store(acc.at(0), v2);
        f.unlock(mu.at(0));
        f.ret(None);
    });
    mb.entry("main", |f| {
        let tids: Vec<_> = (0..t).map(|i| f.spawn(worker, i as i64)).collect();
        for tid in tids {
            f.join(tid);
        }
        // no lock needed after join
        let v = f.load(acc.at(0));
        let v2 = f.mul(v, 2);
        f.store(acc.at(0), v2);
        f.output(v2);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Producer/consumer: semaphore for data-ready, mutex for the stats.
fn producer_consumer_mixed() -> Module {
    let mut mb = ModuleBuilder::new("producer_consumer_mixed");
    let sem = mb.global("sem", 1);
    let mu = mb.global("mu", 1);
    let data = mb.global("data", 4);
    let stats = mb.global("stats", 1);
    let producer = mb.function("producer", 1, |f| {
        for i in 0..4 {
            f.store(data.at(i), 10 + i);
            f.sem_post(sem.at(0));
        }
        f.ret(None);
    });
    let consumer = mb.function("consumer", 1, |f| {
        for i in 0..4 {
            f.sem_wait(sem.at(0));
            let v = f.load(data.at(i));
            f.lock(mu.at(0));
            let s = f.load(stats.at(0));
            let s2 = f.add(s, v);
            f.store(stats.at(0), s2);
            f.unlock(mu.at(0));
        }
        f.ret(None);
    });
    mb.entry("main", |f| {
        f.sem_init(sem.at(0), 0);
        let p = f.spawn(producer, 0);
        let c = f.spawn(consumer, 0);
        f.join(p);
        f.join(c);
        let s = f.load(stats.at(0));
        f.output(s);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// One case that exercises every library primitive.
fn all_primitives() -> Module {
    let mut mb = ModuleBuilder::new("all_primitives");
    let mu = mb.global("mu", 1);
    let cv = mb.global("cv", 1);
    let bar = mb.global("bar", 3);
    let sem = mb.global("sem", 1);
    let ready = mb.global("ready", 1);
    let value = mb.global("value", 1);
    let worker = mb.function("worker", 1, |f| {
        // CV wait for readiness
        let check = f.new_block();
        let sleep = f.new_block();
        let go = f.new_block();
        f.lock(mu.at(0));
        f.jump(check);
        f.switch_to(check);
        let r = f.load(ready.at(0));
        f.branch(r, go, sleep);
        f.switch_to(sleep);
        f.wait(cv.at(0), mu.at(0));
        f.jump(check);
        f.switch_to(go);
        f.unlock(mu.at(0));
        // semaphore-guarded increment
        f.sem_wait(sem.at(0));
        let v = f.load(value.at(0));
        let v2 = f.add(v, 1);
        f.store(value.at(0), v2);
        f.sem_post(sem.at(0));
        // barrier with main
        f.barrier_wait(bar.at(0));
        f.ret(None);
    });
    mb.entry("main", |f| {
        f.sem_init(sem.at(0), 1);
        f.barrier_init(bar.at(0), 3);
        let t1 = f.spawn(worker, 0);
        let t2 = f.spawn(worker, 1);
        f.lock(mu.at(0));
        f.store(ready.at(0), 1);
        f.broadcast(cv.at(0));
        f.unlock(mu.at(0));
        f.barrier_wait(bar.at(0));
        let v = f.load(value.at(0));
        f.output(v);
        f.join(t1);
        f.join(t2);
        f.ret(None);
    });
    mb.finish().unwrap()
}
