//! Racy cases (36).
//!
//! * 15 plainly racy programs — every tool catches them;
//! * 13 races hidden behind *fortuitous atomic ordering* — DRD credits the
//!   atomic flag as synchronization and misses them, the hybrid
//!   configurations catch them;
//! * 7 latent races behind schedule-dependent branches the deterministic
//!   round-robin schedule never takes — everyone misses them;
//! * 1 race drowned past the report cap by an ad-hoc false-positive flood
//!   — `lib` and DRD miss it, the `+spin` configurations recover it (the
//!   paper's removed false negative).
//!
//! Every racy case races on the global named `victim`.

use super::{case, Category, DrtCase};
use spinrace_tir::{MemOrder, Module, ModuleBuilder};

pub(super) fn build(out: &mut Vec<DrtCase>) {
    // ---- plainly racy (15) ----
    for t in [2u32, 4, 8, 16] {
        out.push(case(
            format!("racy_counter_{t}t"),
            Category::RacyPlain,
            true,
            Some("victim"),
            t + 1,
            racy_counter(t),
        ));
    }
    for t in [2u32, 4] {
        out.push(case(
            format!("racy_rw_{t}t"),
            Category::RacyPlain,
            true,
            Some("victim"),
            t + 1,
            racy_rw(t),
        ));
    }
    out.push(case(
        "racy_array_overlap",
        Category::RacyPlain,
        true,
        Some("victim"),
        3,
        racy_array_overlap(),
    ));
    out.push(case(
        "racy_publish_no_flag",
        Category::RacyPlain,
        true,
        Some("victim"),
        2,
        racy_publish_no_flag(),
    ));
    out.push(case(
        "racy_double_init",
        Category::RacyPlain,
        true,
        Some("victim"),
        3,
        racy_double_init(),
    ));
    out.push(case(
        "racy_missing_join",
        Category::RacyPlain,
        true,
        Some("victim"),
        2,
        racy_missing_join(),
    ));
    for t in [2u32, 4] {
        out.push(case(
            format!("racy_one_side_locked_{t}t"),
            Category::RacyPlain,
            true,
            Some("victim"),
            t + 1,
            racy_one_side_locked(t),
        ));
    }
    out.push(case(
        "racy_barrier_bypass",
        Category::RacyPlain,
        true,
        Some("victim"),
        4,
        racy_barrier_bypass(),
    ));
    out.push(case(
        "racy_init_after_spawn",
        Category::RacyPlain,
        true,
        Some("victim"),
        2,
        racy_init_after_spawn(),
    ));
    out.push(case(
        "racy_sem_wrong_order",
        Category::RacyPlain,
        true,
        Some("victim"),
        2,
        racy_sem_wrong_order(),
    ));

    // ---- DRD-hidden: fortuitous atomic ordering (13) ----
    for i in 0..13u32 {
        out.push(case(
            format!("racy_atomic_ordered_{i}"),
            Category::RacyAtomicOrdered,
            true,
            Some("victim"),
            3,
            racy_atomic_ordered(i),
        ));
    }

    // ---- latent: schedule-dependent branch (7) ----
    for i in 0..7u32 {
        out.push(case(
            format!("racy_latent_{i}"),
            Category::RacyLatent,
            true,
            Some("victim"),
            3,
            racy_latent(i),
        ));
    }

    // ---- the flood case (1) ----
    out.push(case(
        "racy_flooded",
        Category::RacyFlooded,
        true,
        Some("victim"),
        13,
        racy_flooded(),
    ));
}

/// Unsynchronized increments from `t` threads.
fn racy_counter(t: u32) -> Module {
    let mut mb = ModuleBuilder::new(format!("racy_counter_{t}t"));
    let victim = mb.global("victim", 1);
    let worker = mb.function("worker", 1, |f| {
        let v = f.load(victim.at(0));
        let v2 = f.add(v, 1);
        f.store(victim.at(0), v2);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let tids: Vec<_> = (0..t).map(|i| f.spawn(worker, i as i64)).collect();
        for tid in tids {
            f.join(tid);
        }
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// One unsynchronized writer, several readers.
fn racy_rw(t: u32) -> Module {
    let mut mb = ModuleBuilder::new(format!("racy_rw_{t}t"));
    let victim = mb.global("victim", 1);
    let sink = mb.global("sink", 8);
    let writer = mb.function("writer", 1, |f| {
        f.store(victim.at(0), 3);
        f.ret(None);
    });
    let reader = mb.function("reader", 1, |f| {
        let v = f.load(victim.at(0));
        f.store(sink.idx(f.param(0)), v);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let w = f.spawn(writer, 0);
        let tids: Vec<_> = (1..t).map(|i| f.spawn(reader, i as i64)).collect();
        f.join(w);
        for tid in tids {
            f.join(tid);
        }
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Two threads write overlapping array slices; `victim` is the overlap.
fn racy_array_overlap() -> Module {
    let mut mb = ModuleBuilder::new("racy_array_overlap");
    let left = mb.global("left", 3);
    let victim = mb.global("victim", 1);
    let right = mb.global("right", 3);
    let a = mb.function("writer_a", 1, |f| {
        for i in 0..3 {
            f.store(left.at(i), 1);
        }
        f.store(victim.at(0), 1);
        f.ret(None);
    });
    let b = mb.function("writer_b", 1, |f| {
        f.store(victim.at(0), 2);
        for i in 0..3 {
            f.store(right.at(i), 2);
        }
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t1 = f.spawn(a, 0);
        let t2 = f.spawn(b, 0);
        f.join(t1);
        f.join(t2);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Publication without any flag: reader may see torn state.
fn racy_publish_no_flag() -> Module {
    let mut mb = ModuleBuilder::new("racy_publish_no_flag");
    let victim = mb.global("victim", 1);
    let reader = mb.function("reader", 1, |f| {
        let v = f.load(victim.at(0));
        f.output(v);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t = f.spawn(reader, 0);
        f.store(victim.at(0), 88);
        f.join(t);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Two threads both lazily "initialize" the same cell.
fn racy_double_init() -> Module {
    let mut mb = ModuleBuilder::new("racy_double_init");
    let victim = mb.global("victim", 1);
    let init = mb.function("init", 1, |f| {
        let skip = f.new_block();
        let doit = f.new_block();
        let v = f.load(victim.at(0));
        f.branch(v, skip, doit);
        f.switch_to(doit);
        f.store(victim.at(0), 5);
        f.jump(skip);
        f.switch_to(skip);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t1 = f.spawn(init, 0);
        let t2 = f.spawn(init, 1);
        f.join(t1);
        f.join(t2);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Main reads the worker's result *before* joining it.
fn racy_missing_join() -> Module {
    let mut mb = ModuleBuilder::new("racy_missing_join");
    let victim = mb.global("victim", 1);
    let worker = mb.function("worker", 1, |f| {
        f.store(victim.at(0), 7);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t = f.spawn(worker, 0);
        let v = f.load(victim.at(0)); // too early
        f.output(v);
        f.join(t);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Half of the threads use the lock, the other half do not.
fn racy_one_side_locked(t: u32) -> Module {
    let mut mb = ModuleBuilder::new(format!("racy_one_side_locked_{t}t"));
    let mu = mb.global("mu", 1);
    let victim = mb.global("victim", 1);
    let locked = mb.function("locked", 1, |f| {
        f.lock(mu.at(0));
        let v = f.load(victim.at(0));
        let v2 = f.add(v, 1);
        f.store(victim.at(0), v2);
        f.unlock(mu.at(0));
        f.ret(None);
    });
    let unlocked = mb.function("unlocked", 1, |f| {
        let v = f.load(victim.at(0));
        let v2 = f.add(v, 1);
        f.store(victim.at(0), v2);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let mut tids = Vec::new();
        for i in 0..t {
            if i % 2 == 0 {
                tids.push(f.spawn(locked, i as i64));
            } else {
                tids.push(f.spawn(unlocked, i as i64));
            }
        }
        for tid in tids {
            f.join(tid);
        }
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Three threads meet at a barrier; a fourth ignores it and writes.
fn racy_barrier_bypass() -> Module {
    let mut mb = ModuleBuilder::new("racy_barrier_bypass");
    let bar = mb.global("bar", 3);
    let victim = mb.global("victim", 1);
    let synced = mb.function("synced", 1, |f| {
        let id = f.param(0);
        let write = f.new_block();
        let after = f.new_block();
        let iszero = f.eq(id, 0);
        f.branch(iszero, write, after);
        f.switch_to(write);
        f.store(victim.at(0), 1);
        f.jump(after);
        f.switch_to(after);
        f.barrier_wait(bar.at(0));
        let v = f.load(victim.at(0));
        let _ = v;
        f.ret(None);
    });
    let rogue = mb.function("rogue", 1, |f| {
        f.store(victim.at(0), 99);
        f.ret(None);
    });
    mb.entry("main", |f| {
        f.barrier_init(bar.at(0), 2);
        let t1 = f.spawn(synced, 0);
        let t2 = f.spawn(synced, 1);
        let t3 = f.spawn(rogue, 2);
        f.join(t1);
        f.join(t2);
        f.join(t3);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Main initializes shared state *after* spawning its reader.
fn racy_init_after_spawn() -> Module {
    let mut mb = ModuleBuilder::new("racy_init_after_spawn");
    let victim = mb.global("victim", 1);
    let reader = mb.function("reader", 1, |f| {
        for _ in 0..4 {
            f.yield_();
        }
        let v = f.load(victim.at(0));
        f.output(v);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t = f.spawn(reader, 0);
        f.store(victim.at(0), 1); // should have happened before the spawn
        f.join(t);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// The "signal" semaphore is posted *before* the payload write.
fn racy_sem_wrong_order() -> Module {
    let mut mb = ModuleBuilder::new("racy_sem_wrong_order");
    let sem = mb.global("sem", 1);
    let victim = mb.global("victim", 1);
    let consumer = mb.function("consumer", 1, |f| {
        f.sem_wait(sem.at(0));
        let v = f.load(victim.at(0));
        f.output(v);
        f.ret(None);
    });
    mb.entry("main", |f| {
        f.sem_init(sem.at(0), 0);
        let t = f.spawn(consumer, 0);
        f.sem_post(sem.at(0)); // bug: post precedes the write
        f.store(victim.at(0), 55);
        f.join(t);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// The race DRD misses: T1 writes `victim` then release-stores an atomic
/// flag; T2, *later in every schedule we run*, acquire-loads the flag
/// (and ignores it) before writing `victim`. DRD takes the release/acquire
/// pair as synchronization and sees the writes as ordered; the hybrid
/// detectors do not credit bare atomic orderings and report the race.
fn racy_atomic_ordered(variant: u32) -> Module {
    let mut mb = ModuleBuilder::new(format!("racy_atomic_ordered_{variant}"));
    let victim = mb.global("victim", 1);
    let aflag = mb.global("aflag", 1);
    let order = match variant % 3 {
        0 => MemOrder::SeqCst,
        1 => MemOrder::Release,
        _ => MemOrder::AcqRel,
    };
    let load_order = match variant % 3 {
        0 => MemOrder::SeqCst,
        1 => MemOrder::Acquire,
        _ => MemOrder::AcqRel,
    };
    let first = mb.function("first", 1, |f| {
        if variant.is_multiple_of(2) {
            f.store(victim.at(0), 1);
        } else {
            let v = f.load(victim.at(0));
            let v2 = f.add(v, 1);
            f.store(victim.at(0), v2);
        }
        f.store_atomic(aflag.at(0), 1, order);
        f.ret(None);
    });
    let second = mb.function("second", 1, |f| {
        // Enough padding that the acquire load lands after the release
        // store under round-robin (and nearly every random seed).
        for _ in 0..8 + variant as usize % 4 {
            f.nop();
        }
        let observed = f.load_atomic(aflag.at(0), load_order);
        let _ = observed; // checked nowhere — not real synchronization
        f.store(victim.at(0), 2);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t1 = f.spawn(first, 0);
        let t2 = f.spawn(second, 1);
        f.join(t1);
        f.join(t2);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// A latent race: T2 only writes `victim` if it observes T1's progress,
/// which the round-robin schedule never lets it see. Dynamically silent
/// for every detector; racy under other schedules (ground truth: racy).
fn racy_latent(variant: u32) -> Module {
    let mut mb = ModuleBuilder::new(format!("racy_latent_{variant}"));
    let victim = mb.global("victim", 1);
    let progress = mb.global("progress", 1);
    let first = mb.function("first", 1, |f| {
        f.store(victim.at(0), 1);
        // progress announced late
        for _ in 0..10 + variant as usize {
            f.nop();
        }
        f.store(progress.at(0), 1);
        f.ret(None);
    });
    let second = mb.function("second", 1, |f| {
        let p = f.load(progress.at(0)); // runs early: sees 0
        let write = f.new_block();
        let skip = f.new_block();
        f.branch(p, write, skip);
        f.switch_to(write);
        f.store(victim.at(0), 2);
        f.jump(skip);
        f.switch_to(skip);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let t1 = f.spawn(first, 0);
        let t2 = f.spawn(second, 1);
        f.join(t1);
        f.join(t2);
        f.ret(None);
    });
    mb.finish().unwrap()
}

/// Ten plain flag handoffs flood `lib`-mode detectors with ~30 false
/// contexts; the real `victim` race happens afterwards and drowns past
/// the drt report cap (25). With spin detection the flood disappears and
/// the race is reported — the paper's recovered false negative.
fn racy_flooded() -> Module {
    let mut mb = ModuleBuilder::new("racy_flooded");
    let flags = mb.global("flags", 10);
    let datas = mb.global("datas", 10);
    let sink = mb.global("sink", 10);
    let victim = mb.global("victim", 1);
    let waiter = mb.function("waiter", 1, |f| {
        let id = f.param(0);
        let head = f.new_block();
        let done = f.new_block();
        f.jump(head);
        f.switch_to(head);
        let v = f.load(flags.idx(id));
        f.branch(v, done, head);
        f.switch_to(done);
        let d = f.load(datas.idx(id));
        f.store(sink.idx(id), d);
        f.ret(None);
    });
    let racer = mb.function("racer", 1, |f| {
        let v = f.load(victim.at(0));
        let v2 = f.add(v, f.param(0));
        f.store(victim.at(0), v2);
        f.ret(None);
    });
    mb.entry("main", |f| {
        let tids: Vec<_> = (0..10).map(|i| f.spawn(waiter, i as i64)).collect();
        for i in 0..10 {
            f.store(datas.at(i), 100 + i);
            f.store(flags.at(i), 1);
        }
        for tid in tids {
            f.join(tid);
        }
        // the real race, reported only after the flood
        let r1 = f.spawn(racer, 1);
        let r2 = f.spawn(racer, 2);
        f.join(r1);
        f.join(r2);
        f.ret(None);
    });
    mb.finish().unwrap()
}
