//! # SpinRace suites — the paper's evaluation workloads
//!
//! Two workload families, mirroring the paper's evaluation section:
//!
//! * [`drt`] — a 120-case suite in the mould of Google's `data-race-test`
//!   (the framework the paper evaluates on): racy and race-free programs
//!   over 2–16 threads covering library primitives, ad-hoc flag
//!   synchronization (plain and atomic, with spin-loop weights probing the
//!   3–8 basic-block window), obscure patterns that defeat the spin
//!   criteria, and races hidden from specific detectors (fortuitous
//!   atomic ordering for DRD, report-cap floods for `lib` mode, latent
//!   schedule-dependent branches for everyone).
//! * [`parsec`] — thirteen miniature programs reproducing the
//!   *synchronization skeletons* of the PARSEC 2.0 applications the paper
//!   measures (which primitives, which ad-hoc patterns, per its
//!   characteristics table), with partially unrolled kernels so
//!   racy-context counts reach paper-like magnitudes.
//!
//! [`harness`] classifies analysis outcomes against ground truth and
//! aggregates the numbers behind every table of the paper.
//!
//! A third table lives alongside the paper's two: [`workloads`] runs the
//! `spinrace-workloads` generator families — programs whose true race
//! set is *computed*, not recorded — through the lineup and classifies
//! every outcome against the workload's oracle (soundness and
//! completeness on known ground truth).

//! [`rebind`] re-prepares the module a serialized trace names in its
//! header (probing scales and nolib styles until the fingerprint
//! matches), so replay tools and the analysis server can bind uploads
//! back to source locations.

pub mod drt;
pub mod harness;
pub mod parsec;
pub mod rebind;
pub mod workloads;

pub use drt::{all_cases, Category, DrtCase};
pub use harness::{
    run_drt, run_drt_with, run_parsec, CaseOutcome, DrtRow, DrtTable, ParsecCell, ParsecTable,
};
pub use parsec::{all_programs, ParsecProgram};
pub use rebind::{
    nolib_styles, prepared_for_replay, prepared_matching, rebuild_run, try_rebuild_run, MAX_SCALE,
};
pub use workloads::{
    judge_outcome, run_workloads, run_workloads_with, standard_specs, WorkloadRow, WorkloadTable,
};
