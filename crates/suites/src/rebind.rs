//! Rebind a serialized trace to a freshly prepared module, from its
//! header alone.
//!
//! A trace header names the program, its VM configuration, the
//! recording tool, and the prepared module's fingerprint — but not the
//! scale or nolib library style (preparation inputs, not run
//! configuration). These helpers re-prepare candidate modules until one
//! reproduces the recorded fingerprint, which is exactly the guarantee
//! replay needs: a fingerprint match means the stream replays against
//! the very module it was recorded from, so reports carry source
//! locations. Shared by the `trace` CLI and the analysis server, which
//! must rebind every upload before detection.

use crate::parsec::all_programs;
use spinrace_core::{AnalyzeError, ExecutedRun, PreparedModule, Session, Tool};
use spinrace_detector::MsmMode;
use spinrace_synclib::LibStyle;
use spinrace_vm::{Trace, TraceHeader};
use spinrace_workloads::WorkloadSpec;

/// Largest `--scale` the `trace record` CLI accepts, and the last scale
/// [`prepared_matching`] probes when rebinding a trace to its module.
pub const MAX_SCALE: u32 = 32;

/// The nolib library styles a tool's preparation can have used (only
/// nolib lowering is style-sensitive).
pub fn nolib_styles(tool: Tool) -> &'static [LibStyle] {
    if matches!(tool, Tool::HelgrindNolibSpin { .. }) {
        &[LibStyle::Textbook, LibStyle::Obscure]
    } else {
        &[LibStyle::Textbook]
    }
}

/// Bind the trace to a freshly prepared module. Prefers the preparation
/// of `tool` (a fingerprint match means the replay equals a live `tool`
/// run); falls back to the recording tool's preparation with a warning.
/// Returns `None` when the program is unknown or no probed scale
/// reproduces the recorded module.
pub fn rebuild_run(trace: &Trace, tool: Tool, msm: MsmMode, cap: usize) -> Option<ExecutedRun> {
    let prepared = prepared_for_replay(&trace.header, tool, msm, cap)?;
    ExecutedRun::from_trace(prepared, trace.clone()).ok()
}

/// The preparation a replay should bind to: the *requested* tool's when
/// its fingerprint matches the header (the replay then equals a live
/// `tool` run), else the recording tool's, with a plain warning that the
/// results describe the recorded stream.
pub fn prepared_for_replay(
    header: &TraceHeader,
    tool: Tool,
    msm: MsmMode,
    cap: usize,
) -> Option<PreparedModule> {
    if let Some(prepared) = prepared_matching(header, tool, msm, cap) {
        return Some(prepared);
    }
    let rec_tool: Tool = header.tool_label.parse().ok()?;
    if rec_tool == tool {
        return None;
    }
    let prepared = prepared_matching(header, rec_tool, msm, cap)?;
    eprintln!(
        "note: stream was recorded from the `{}` preparation; results show that stream under \
         `{}`'s detector configuration, NOT what a live `{}` run would report",
        rec_tool.label(),
        tool.label(),
        tool.label(),
    );
    Some(prepared)
}

/// Re-prepare the program named in the trace header under `prep_tool`,
/// probing scales `1..=MAX_SCALE` (the header does not record the scale),
/// and return the preparation whose fingerprint matches the recording.
pub fn prepared_matching(
    header: &TraceHeader,
    prep_tool: Tool,
    msm: MsmMode,
    cap: usize,
) -> Option<PreparedModule> {
    // Lowered (nolib) modules are renamed `<name>.nolib`.
    let base = header
        .module_name
        .strip_suffix(".nolib")
        .unwrap_or(&header.module_name);
    // Generated workloads encode their full spec in the module name, so
    // the rebuild needs no program table and no scale probing — only the
    // nolib style is still a free preparation input.
    if let Some(spec) = WorkloadSpec::from_name(base) {
        let module = spec.build().module;
        for &style in nolib_styles(prep_tool) {
            let prepared = Session::for_module(&module)
                .msm(msm)
                .cap(cap)
                .vm_config(header.vm)
                .nolib_style(style)
                .prepare(prep_tool);
            let Ok(prepared) = prepared else { continue };
            if prepared.fingerprint() == header.module_fingerprint {
                return Some(prepared);
            }
        }
        return None;
    }
    let programs = all_programs();
    let prog = programs.iter().find(|p| p.name == base)?;
    // The header records neither the scale nor the nolib library style
    // (both are preparation inputs, not run configuration), so probe:
    // every scale record accepts, and — for nolib tools, whose lowering
    // is the only style-sensitive phase — both library styles.
    for scale in 1..=MAX_SCALE {
        let module = (prog.build)(prog.threads, prog.size * scale);
        for &style in nolib_styles(prep_tool) {
            let prepared = Session::for_module(&module)
                .msm(msm)
                .cap(cap)
                .vm_config(header.vm)
                .nolib_style(style)
                .prepare(prep_tool);
            let Ok(prepared) = prepared else { continue };
            if prepared.fingerprint() == header.module_fingerprint {
                return Some(prepared);
            }
        }
    }
    None
}

/// [`rebuild_run`], but with the mismatch distinguished: `Err` carries
/// the [`AnalyzeError::TraceMismatch`] (or decode failure) when a
/// preparation was found but the trace refused to bind to it.
pub fn try_rebuild_run(
    trace: &Trace,
    tool: Tool,
    msm: MsmMode,
    cap: usize,
) -> Option<Result<ExecutedRun, AnalyzeError>> {
    let prepared = prepared_for_replay(&trace.header, tool, msm, cap)?;
    Some(ExecutedRun::from_trace(prepared, trace.clone()))
}
