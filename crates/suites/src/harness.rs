//! Classification harness: runs tools over the suites and aggregates the
//! numbers behind every table of the paper.

use crate::drt::DrtCase;
use crate::parsec::ParsecProgram;
use spinrace_core::{AnalysisOutcome, Analyzer, Tool};

/// The report cap used for drt runs. Small enough that a determined
/// false-positive flood can drown a late real race (the paper's removed
/// false negative); large enough that ordinary cases are unaffected.
pub const DRT_CAP: usize = 25;

/// One case × tool result.
#[derive(Clone, Debug)]
pub struct CaseOutcome {
    /// Case id.
    pub case_id: u32,
    /// Case name.
    pub case_name: String,
    /// Tool label.
    pub tool: String,
    /// Racy context count.
    pub contexts: usize,
    /// For racy cases: was the expected race reported?
    pub detected: bool,
    /// For race-free cases: was anything reported?
    pub false_alarm: bool,
    /// Pipeline error, if any (counts as a failed case).
    pub error: Option<String>,
}

/// Per-tool aggregate over the whole suite — one row of the paper's
/// Table 1 / Table 2.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DrtRow {
    /// Tool label.
    pub tool: String,
    /// Race-free cases with ≥1 report.
    pub false_alarms: usize,
    /// Racy cases where the expected race went unreported.
    pub missed_races: usize,
    /// `false_alarms + missed_races`.
    pub failed: usize,
    /// `120 - failed`.
    pub correct: usize,
}

/// The whole drt table plus per-case detail.
#[derive(Clone, Debug)]
pub struct DrtTable {
    /// One row per tool, in input order.
    pub rows: Vec<DrtRow>,
    /// Every individual outcome (for drill-down).
    pub outcomes: Vec<CaseOutcome>,
}

impl DrtTable {
    /// Row for a given tool label.
    pub fn row(&self, label: &str) -> Option<&DrtRow> {
        self.rows.iter().find(|r| r.tool == label)
    }
}

/// Classify one outcome against its case's ground truth.
pub fn classify(case: &DrtCase, out: &AnalysisOutcome) -> (bool, bool) {
    if case.racy {
        let detected = case
            .race_location
            .map(|loc| out.has_race_on(loc))
            .unwrap_or(false);
        (detected, false)
    } else {
        (false, !out.is_clean())
    }
}

/// Run the full drt suite for each tool (round-robin schedule, short MSM,
/// drt report cap). This regenerates the paper's Table 1 (with the
/// standard lineup) and Table 2 (with a window sweep lineup).
pub fn run_drt(tools: &[Tool]) -> DrtTable {
    run_drt_with(tools, &crate::drt::all_cases())
}

/// Same, over a provided case list (useful for category slices in tests).
pub fn run_drt_with(tools: &[Tool], cases: &[DrtCase]) -> DrtTable {
    let mut rows = Vec::with_capacity(tools.len());
    let mut outcomes = Vec::new();
    for &tool in tools {
        let analyzer = Analyzer::tool(tool).cap(DRT_CAP);
        let mut false_alarms = 0;
        let mut missed = 0;
        for case in cases {
            match analyzer.analyze(&case.module) {
                Ok(out) => {
                    let (detected, fa) = classify(case, &out);
                    if case.racy && !detected {
                        missed += 1;
                    }
                    if fa {
                        false_alarms += 1;
                    }
                    outcomes.push(CaseOutcome {
                        case_id: case.id,
                        case_name: case.name.clone(),
                        tool: tool.label(),
                        contexts: out.contexts,
                        detected,
                        false_alarm: fa,
                        error: None,
                    });
                }
                Err(e) => {
                    // An execution failure counts against the tool's
                    // correct column like a miss/false alarm would.
                    if case.racy {
                        missed += 1;
                    } else {
                        false_alarms += 1;
                    }
                    outcomes.push(CaseOutcome {
                        case_id: case.id,
                        case_name: case.name.clone(),
                        tool: tool.label(),
                        contexts: 0,
                        detected: false,
                        false_alarm: !case.racy,
                        error: Some(e.to_string()),
                    });
                }
            }
        }
        let failed = false_alarms + missed;
        rows.push(DrtRow {
            tool: tool.label(),
            false_alarms,
            missed_races: missed,
            failed,
            correct: cases.len() - failed,
        });
    }
    DrtTable { rows, outcomes }
}

/// One PARSEC table cell: racy contexts averaged over the seeds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParsecCell {
    /// Mean distinct racy contexts across seeds (capped at 1000 per run).
    pub mean_contexts: f64,
    /// Minimum across seeds.
    pub min: usize,
    /// Maximum across seeds.
    pub max: usize,
}

/// The PARSEC racy-context table: `cells[program][tool]`.
#[derive(Clone, Debug)]
pub struct ParsecTable {
    /// Program names, row order.
    pub programs: Vec<String>,
    /// Tool labels, column order.
    pub tools: Vec<String>,
    /// `cells[row][col]`.
    pub cells: Vec<Vec<ParsecCell>>,
}

impl ParsecTable {
    /// Cell by program and tool label.
    pub fn cell(&self, program: &str, tool: &str) -> Option<ParsecCell> {
        let r = self.programs.iter().position(|p| p == program)?;
        let c = self.tools.iter().position(|t| t == tool)?;
        Some(self.cells[r][c])
    }
}

/// Run the PARSEC suite: long MSM (integration mode), cap 1000, averaging
/// over `seeds` random schedules — fractional averages exactly as in the
/// paper's tables. `nolib` runs use each program's library-internals
/// flavour (obscure for the programs whose real libraries defeated the
/// patterns).
pub fn run_parsec(programs: &[ParsecProgram], tools: &[Tool], seeds: &[u64]) -> ParsecTable {
    let mut cells = Vec::with_capacity(programs.len());
    for prog in programs {
        let module = (prog.build)(prog.threads, prog.size);
        let mut row = Vec::with_capacity(tools.len());
        for &tool in tools {
            let mut counts = Vec::with_capacity(seeds.len());
            for &seed in seeds {
                let mut analyzer = Analyzer::tool(tool).long_msm().seed(seed);
                if prog.obscure_nolib {
                    analyzer = analyzer.obscure_nolib();
                }
                let contexts = match analyzer.analyze(&module) {
                    Ok(out) => out.contexts,
                    // A failed run counts as saturation (a real tool would
                    // report "analysis incomplete").
                    Err(_) => 1000,
                };
                counts.push(contexts);
            }
            let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
            row.push(ParsecCell {
                mean_contexts: mean,
                min: counts.iter().copied().min().unwrap_or(0),
                max: counts.iter().copied().max().unwrap_or(0),
            });
        }
        cells.push(row);
    }
    ParsecTable {
        programs: programs.iter().map(|p| p.name.to_string()).collect(),
        tools: tools.iter().map(|t| t.label()).collect(),
        cells,
    }
}
