//! Classification harness: runs tools over the suites and aggregates the
//! numbers behind every table of the paper.
//!
//! Since the session redesign the harness is **trace-centric**: for each
//! case (and, for PARSEC, each seed) every tool's module is prepared, but
//! the VM only runs once per *distinct prepared module* — the recorded
//! [`spinrace_core::ExecutedRun`] is cached by module fingerprint and
//! each tool's detector replays the shared trace. `Helgrind+ lib` and
//! `DRD` always share one execution (neither rewrites the module), and
//! window-sweep lineups share whenever two windows accept the same loops.
//! Replayed detection is bit-identical to a live run, so the tables are
//! unchanged; only the number of VM executions drops.
//!
//! Detection itself runs through the **parallel sharded replay** engine
//! (`spinrace_core::parallel`) with as many workers as the machine
//! offers, and the tools sharing one execution fan out on **one** shared
//! worker pool (a multi-target [`spinrace_core::DetectRequest`] through
//! [`spinrace_core::ExecutedRun::try_run`])
//! — thread spawn/join is paid once per distinct execution, not once per
//! tool, which is what lets tiny traces run at full pool width. Parallel
//! replay is bit-identical to sequential replay for any worker count, so
//! the tables are still byte-for-byte the paper's numbers on every
//! machine — the pinned-table regression tests double as a determinism
//! check for the parallel engine.

use crate::drt::DrtCase;
use crate::parsec::ParsecProgram;
use spinrace_core::{
    default_workers, AnalysisOutcome, DetectRequest, PreparedModule, Session, Tool,
};

/// The report cap used for drt runs. Small enough that a determined
/// false-positive flood can drown a late real race (the paper's removed
/// false negative); large enough that ordinary cases are unaffected.
pub const DRT_CAP: usize = 25;

/// One case × tool result.
#[derive(Clone, Debug)]
pub struct CaseOutcome {
    /// Case id.
    pub case_id: u32,
    /// Case name.
    pub case_name: String,
    /// Tool label.
    pub tool: String,
    /// Racy context count.
    pub contexts: usize,
    /// For racy cases: was the expected race reported?
    pub detected: bool,
    /// For race-free cases: was anything reported?
    pub false_alarm: bool,
    /// Pipeline error, if any (counts as a failed case).
    pub error: Option<String>,
}

/// Per-tool aggregate over the whole suite — one row of the paper's
/// Table 1 / Table 2.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DrtRow {
    /// Tool label.
    pub tool: String,
    /// Race-free cases with ≥1 report.
    pub false_alarms: usize,
    /// Racy cases where the expected race went unreported.
    pub missed_races: usize,
    /// `false_alarms + missed_races`.
    pub failed: usize,
    /// `120 - failed`.
    pub correct: usize,
}

/// The whole drt table plus per-case detail.
#[derive(Clone, Debug)]
pub struct DrtTable {
    /// One row per tool, in input order.
    pub rows: Vec<DrtRow>,
    /// Every individual outcome (for drill-down).
    pub outcomes: Vec<CaseOutcome>,
    /// VM executions actually performed. With trace fan-out this is the
    /// number of *distinct prepared modules*, at most (and typically well
    /// under) `tools × cases`.
    pub vm_runs: usize,
}

impl DrtTable {
    /// Row for a given tool label.
    pub fn row(&self, label: &str) -> Option<&DrtRow> {
        self.rows.iter().find(|r| r.tool == label)
    }
}

/// Classify one outcome against its case's ground truth.
pub fn classify(case: &DrtCase, out: &AnalysisOutcome) -> (bool, bool) {
    if case.racy {
        let detected = case
            .race_location
            .map(|loc| out.has_race_on(loc))
            .unwrap_or(false);
        (detected, false)
    } else {
        (false, !out.is_clean())
    }
}

/// Run a whole tool lineup over one session: prepare every tool, group
/// the prepared modules by fingerprint (first-seen order), execute each
/// distinct module once, and fan each group's detections out on **one**
/// shared worker pool. Returns per-tool outcomes in lineup order plus the
/// number of VM executions performed; a prepare/execute failure surfaces
/// as that tool's (or that whole group's) `Err`. (Shared with the
/// generated-workloads table in [`crate::workloads`].)
pub(crate) fn lineup_outcomes(
    session: &Session<'_>,
    tools: &[Tool],
) -> (Vec<Result<AnalysisOutcome, String>>, usize) {
    let mut results: Vec<Option<Result<AnalysisOutcome, String>>> =
        (0..tools.len()).map(|_| None).collect();
    // Distinct prepared modules, each with the lineup indices sharing it.
    let mut groups: Vec<(PreparedModule, Vec<usize>)> = Vec::new();
    for (ti, &tool) in tools.iter().enumerate() {
        match session.prepare(tool) {
            Ok(p) => {
                if let Some((_, members)) = groups
                    .iter_mut()
                    .find(|(g, _)| g.fingerprint() == p.fingerprint())
                {
                    members.push(ti);
                } else {
                    groups.push((p, vec![ti]));
                }
            }
            Err(e) => results[ti] = Some(Err(e.to_string())),
        }
    }
    let mut vm_runs = 0;
    for (prepared, members) in groups {
        match prepared.execute() {
            Ok(run) => {
                vm_runs += 1;
                // Predictive tools are single-pass: they replay the same
                // shared trace sequentially while the rest of the group
                // fans out on the parallel pool (the engine would refuse
                // a mixed parallel request with `Unsupported`).
                let (seq, par): (Vec<usize>, Vec<usize>) = members
                    .into_iter()
                    .partition(|&ti| tools[ti].is_predictive());
                for (members, parallel) in [(par, true), (seq, false)] {
                    if members.is_empty() {
                        continue;
                    }
                    let member_tools: Vec<Tool> = members.iter().map(|&ti| tools[ti]).collect();
                    let req = DetectRequest::tools(&member_tools);
                    let req = if parallel {
                        req.parallel(default_workers())
                    } else {
                        req.sequential()
                    };
                    match run.try_run(&req) {
                        Ok(outs) => {
                            for (ti, out) in members.into_iter().zip(outs) {
                                results[ti] = Some(Ok(out));
                            }
                        }
                        Err(e) => {
                            let msg = format!("replay failed: {e}");
                            for ti in members {
                                results[ti] = Some(Err(msg.clone()));
                            }
                        }
                    }
                }
            }
            Err(e) => {
                let msg = e.to_string();
                for ti in members {
                    results[ti] = Some(Err(msg.clone()));
                }
            }
        }
    }
    let outcomes = results
        .into_iter()
        .map(|r| r.expect("every tool prepared or grouped"))
        .collect();
    (outcomes, vm_runs)
}

/// Run the full drt suite for each tool (round-robin schedule, short MSM,
/// drt report cap). This regenerates the paper's Table 1 (with the
/// standard lineup) and Table 2 (with a window sweep lineup).
pub fn run_drt(tools: &[Tool]) -> DrtTable {
    run_drt_with(tools, &crate::drt::all_cases())
}

/// Same, over a provided case list (useful for category slices in tests).
///
/// Trace fan-out: each case's module is executed once per *distinct
/// prepared module* across the lineup, and every tool's detector replays
/// the recorded trace (identical to a live run; see the module docs).
pub fn run_drt_with(tools: &[Tool], cases: &[DrtCase]) -> DrtTable {
    // Aggregates and per-case detail, indexed by tool; flattened to the
    // historical tool-major order at the end.
    let mut agg = vec![(0usize, 0usize); tools.len()];
    let mut detail: Vec<Vec<CaseOutcome>> = vec![Vec::with_capacity(cases.len()); tools.len()];
    let mut vm_runs = 0;
    for case in cases {
        let session = Session::for_module(&case.module).cap(DRT_CAP);
        let (outs, runs) = lineup_outcomes(&session, tools);
        vm_runs += runs;
        for (ti, (&tool, result)) in tools.iter().zip(outs).enumerate() {
            match result {
                Ok(out) => {
                    let (detected, fa) = classify(case, &out);
                    if case.racy && !detected {
                        agg[ti].1 += 1;
                    }
                    if fa {
                        agg[ti].0 += 1;
                    }
                    detail[ti].push(CaseOutcome {
                        case_id: case.id,
                        case_name: case.name.clone(),
                        tool: tool.label(),
                        contexts: out.contexts,
                        detected,
                        false_alarm: fa,
                        error: None,
                    });
                }
                Err(e) => {
                    // A pipeline failure counts against the tool's
                    // correct column like a miss/false alarm would.
                    if case.racy {
                        agg[ti].1 += 1;
                    } else {
                        agg[ti].0 += 1;
                    }
                    detail[ti].push(CaseOutcome {
                        case_id: case.id,
                        case_name: case.name.clone(),
                        tool: tool.label(),
                        contexts: 0,
                        detected: false,
                        false_alarm: !case.racy,
                        error: Some(e),
                    });
                }
            }
        }
    }
    let rows = tools
        .iter()
        .zip(&agg)
        .map(|(&tool, &(false_alarms, missed))| {
            let failed = false_alarms + missed;
            DrtRow {
                tool: tool.label(),
                false_alarms,
                missed_races: missed,
                failed,
                correct: cases.len() - failed,
            }
        })
        .collect();
    DrtTable {
        rows,
        outcomes: detail.into_iter().flatten().collect(),
        vm_runs,
    }
}

/// One PARSEC table cell: racy contexts averaged over the seeds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParsecCell {
    /// Mean distinct racy contexts across seeds (capped at 1000 per run).
    pub mean_contexts: f64,
    /// Minimum across seeds.
    pub min: usize,
    /// Maximum across seeds.
    pub max: usize,
}

/// The PARSEC racy-context table: `cells[program][tool]`.
#[derive(Clone, Debug)]
pub struct ParsecTable {
    /// Program names, row order.
    pub programs: Vec<String>,
    /// Tool labels, column order.
    pub tools: Vec<String>,
    /// `cells[row][col]`.
    pub cells: Vec<Vec<ParsecCell>>,
    /// VM executions performed (distinct prepared modules × seeds), at
    /// most `programs × tools × seeds`.
    pub vm_runs: usize,
}

impl ParsecTable {
    /// Cell by program and tool label.
    pub fn cell(&self, program: &str, tool: &str) -> Option<ParsecCell> {
        let r = self.programs.iter().position(|p| p == program)?;
        let c = self.tools.iter().position(|t| t == tool)?;
        Some(self.cells[r][c])
    }
}

/// Run the PARSEC suite: long MSM (integration mode), cap 1000, averaging
/// over `seeds` random schedules — fractional averages exactly as in the
/// paper's tables. `nolib` runs use each program's library-internals
/// flavour (obscure for the programs whose real libraries defeated the
/// patterns).
pub fn run_parsec(programs: &[ParsecProgram], tools: &[Tool], seeds: &[u64]) -> ParsecTable {
    let mut cells = Vec::with_capacity(programs.len());
    let mut vm_runs = 0;
    for prog in programs {
        let module = (prog.build)(prog.threads, prog.size);
        // counts[tool][seed]; filled seed-major so each seed's distinct
        // prepared modules execute once and fan out across the lineup.
        let mut counts = vec![Vec::with_capacity(seeds.len()); tools.len()];
        for &seed in seeds {
            let mut session = Session::for_module(&module).long_msm().seed(seed);
            if prog.obscure_nolib {
                session = session.obscure_nolib();
            }
            let (outs, runs) = lineup_outcomes(&session, tools);
            vm_runs += runs;
            for (ti, result) in outs.into_iter().enumerate() {
                let contexts = match result {
                    Ok(out) => out.contexts,
                    // A failed run counts as saturation (a real tool would
                    // report "analysis incomplete").
                    Err(_) => 1000,
                };
                counts[ti].push(contexts);
            }
        }
        let row = counts
            .iter()
            .map(|c| ParsecCell {
                mean_contexts: c.iter().sum::<usize>() as f64 / c.len() as f64,
                min: c.iter().copied().min().unwrap_or(0),
                max: c.iter().copied().max().unwrap_or(0),
            })
            .collect();
        cells.push(row);
    }
    ParsecTable {
        programs: programs.iter().map(|p| p.name.to_string()).collect(),
        tools: tools.iter().map(|t| t.label()).collect(),
        cells,
        vm_runs,
    }
}
