//! Classification harness: runs tools over the suites and aggregates the
//! numbers behind every table of the paper.
//!
//! Since the session redesign the harness is **trace-centric**: for each
//! case (and, for PARSEC, each seed) every tool's module is prepared, but
//! the VM only runs once per *distinct prepared module* — the recorded
//! [`spinrace_core::ExecutedRun`] is cached by module fingerprint and
//! each tool's detector replays the shared trace. `Helgrind+ lib` and
//! `DRD` always share one execution (neither rewrites the module), and
//! window-sweep lineups share whenever two windows accept the same loops.
//! Replayed detection is bit-identical to a live run, so the tables are
//! unchanged; only the number of VM executions drops.
//!
//! Detection itself runs through the **parallel sharded replay** engine
//! (`spinrace_core::parallel`) with as many workers as the machine
//! offers. Parallel replay is bit-identical to sequential replay for any
//! worker count, so the tables are still byte-for-byte the paper's
//! numbers on every machine — the pinned-table regression tests double as
//! a determinism check for the parallel engine.

use crate::drt::DrtCase;
use crate::parsec::ParsecProgram;
use spinrace_core::{parallel, AnalysisOutcome, ExecutedRun, Session, Tool};

/// The report cap used for drt runs. Small enough that a determined
/// false-positive flood can drown a late real race (the paper's removed
/// false negative); large enough that ordinary cases are unaffected.
pub const DRT_CAP: usize = 25;

/// One case × tool result.
#[derive(Clone, Debug)]
pub struct CaseOutcome {
    /// Case id.
    pub case_id: u32,
    /// Case name.
    pub case_name: String,
    /// Tool label.
    pub tool: String,
    /// Racy context count.
    pub contexts: usize,
    /// For racy cases: was the expected race reported?
    pub detected: bool,
    /// For race-free cases: was anything reported?
    pub false_alarm: bool,
    /// Pipeline error, if any (counts as a failed case).
    pub error: Option<String>,
}

/// Per-tool aggregate over the whole suite — one row of the paper's
/// Table 1 / Table 2.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DrtRow {
    /// Tool label.
    pub tool: String,
    /// Race-free cases with ≥1 report.
    pub false_alarms: usize,
    /// Racy cases where the expected race went unreported.
    pub missed_races: usize,
    /// `false_alarms + missed_races`.
    pub failed: usize,
    /// `120 - failed`.
    pub correct: usize,
}

/// The whole drt table plus per-case detail.
#[derive(Clone, Debug)]
pub struct DrtTable {
    /// One row per tool, in input order.
    pub rows: Vec<DrtRow>,
    /// Every individual outcome (for drill-down).
    pub outcomes: Vec<CaseOutcome>,
    /// VM executions actually performed. With trace fan-out this is the
    /// number of *distinct prepared modules*, at most (and typically well
    /// under) `tools × cases`.
    pub vm_runs: usize,
}

impl DrtTable {
    /// Row for a given tool label.
    pub fn row(&self, label: &str) -> Option<&DrtRow> {
        self.rows.iter().find(|r| r.tool == label)
    }
}

/// Classify one outcome against its case's ground truth.
pub fn classify(case: &DrtCase, out: &AnalysisOutcome) -> (bool, bool) {
    if case.racy {
        let detected = case
            .race_location
            .map(|loc| out.has_race_on(loc))
            .unwrap_or(false);
        (detected, false)
    } else {
        (false, !out.is_clean())
    }
}

/// Below this many events the scoped-pool spawn constant dominates any
/// parallel win, so the harness caps the pool at two workers there —
/// still the real parallel engine (partition + merge, keeping the pinned
/// tables a determinism check), just without paying a full-width scan of
/// a tiny stream on every worker.
const SMALL_TRACE_EVENTS: usize = 10_000;

/// Prepare `tool` for the session, then replay a cached trace if another
/// tool's preparation already produced (and executed) the same module;
/// otherwise execute once and cache the run. Detection replays the trace
/// through the sharded parallel engine — identical results at any width.
/// (Shared with the generated-workloads table in [`crate::workloads`].)
pub(crate) fn outcome_via_cache(
    session: &Session<'_>,
    tool: Tool,
    cache: &mut Vec<ExecutedRun>,
) -> Result<AnalysisOutcome, String> {
    let workers_for = |run: &ExecutedRun| {
        if run.trace().events.len() < SMALL_TRACE_EVENTS {
            parallel::default_workers().min(2)
        } else {
            parallel::default_workers()
        }
    };
    let prepared = session.prepare(tool).map_err(|e| e.to_string())?;
    if let Some(run) = cache
        .iter()
        .find(|r| r.prepared().fingerprint() == prepared.fingerprint())
    {
        return Ok(run.detect_as_parallel(tool, workers_for(run)));
    }
    let run = prepared.execute().map_err(|e| e.to_string())?;
    let out = run.detect_as_parallel(tool, workers_for(&run));
    cache.push(run);
    Ok(out)
}

/// Run the full drt suite for each tool (round-robin schedule, short MSM,
/// drt report cap). This regenerates the paper's Table 1 (with the
/// standard lineup) and Table 2 (with a window sweep lineup).
pub fn run_drt(tools: &[Tool]) -> DrtTable {
    run_drt_with(tools, &crate::drt::all_cases())
}

/// Same, over a provided case list (useful for category slices in tests).
///
/// Trace fan-out: each case's module is executed once per *distinct
/// prepared module* across the lineup, and every tool's detector replays
/// the recorded trace (identical to a live run; see the module docs).
pub fn run_drt_with(tools: &[Tool], cases: &[DrtCase]) -> DrtTable {
    // Aggregates and per-case detail, indexed by tool; flattened to the
    // historical tool-major order at the end.
    let mut agg = vec![(0usize, 0usize); tools.len()];
    let mut detail: Vec<Vec<CaseOutcome>> = vec![Vec::with_capacity(cases.len()); tools.len()];
    let mut vm_runs = 0;
    for case in cases {
        let session = Session::for_module(&case.module).cap(DRT_CAP);
        let mut cache: Vec<ExecutedRun> = Vec::with_capacity(tools.len());
        for (ti, &tool) in tools.iter().enumerate() {
            match outcome_via_cache(&session, tool, &mut cache) {
                Ok(out) => {
                    let (detected, fa) = classify(case, &out);
                    if case.racy && !detected {
                        agg[ti].1 += 1;
                    }
                    if fa {
                        agg[ti].0 += 1;
                    }
                    detail[ti].push(CaseOutcome {
                        case_id: case.id,
                        case_name: case.name.clone(),
                        tool: tool.label(),
                        contexts: out.contexts,
                        detected,
                        false_alarm: fa,
                        error: None,
                    });
                }
                Err(e) => {
                    // A pipeline failure counts against the tool's
                    // correct column like a miss/false alarm would.
                    if case.racy {
                        agg[ti].1 += 1;
                    } else {
                        agg[ti].0 += 1;
                    }
                    detail[ti].push(CaseOutcome {
                        case_id: case.id,
                        case_name: case.name.clone(),
                        tool: tool.label(),
                        contexts: 0,
                        detected: false,
                        false_alarm: !case.racy,
                        error: Some(e),
                    });
                }
            }
        }
        vm_runs += cache.len();
    }
    let rows = tools
        .iter()
        .zip(&agg)
        .map(|(&tool, &(false_alarms, missed))| {
            let failed = false_alarms + missed;
            DrtRow {
                tool: tool.label(),
                false_alarms,
                missed_races: missed,
                failed,
                correct: cases.len() - failed,
            }
        })
        .collect();
    DrtTable {
        rows,
        outcomes: detail.into_iter().flatten().collect(),
        vm_runs,
    }
}

/// One PARSEC table cell: racy contexts averaged over the seeds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParsecCell {
    /// Mean distinct racy contexts across seeds (capped at 1000 per run).
    pub mean_contexts: f64,
    /// Minimum across seeds.
    pub min: usize,
    /// Maximum across seeds.
    pub max: usize,
}

/// The PARSEC racy-context table: `cells[program][tool]`.
#[derive(Clone, Debug)]
pub struct ParsecTable {
    /// Program names, row order.
    pub programs: Vec<String>,
    /// Tool labels, column order.
    pub tools: Vec<String>,
    /// `cells[row][col]`.
    pub cells: Vec<Vec<ParsecCell>>,
    /// VM executions performed (distinct prepared modules × seeds), at
    /// most `programs × tools × seeds`.
    pub vm_runs: usize,
}

impl ParsecTable {
    /// Cell by program and tool label.
    pub fn cell(&self, program: &str, tool: &str) -> Option<ParsecCell> {
        let r = self.programs.iter().position(|p| p == program)?;
        let c = self.tools.iter().position(|t| t == tool)?;
        Some(self.cells[r][c])
    }
}

/// Run the PARSEC suite: long MSM (integration mode), cap 1000, averaging
/// over `seeds` random schedules — fractional averages exactly as in the
/// paper's tables. `nolib` runs use each program's library-internals
/// flavour (obscure for the programs whose real libraries defeated the
/// patterns).
pub fn run_parsec(programs: &[ParsecProgram], tools: &[Tool], seeds: &[u64]) -> ParsecTable {
    let mut cells = Vec::with_capacity(programs.len());
    let mut vm_runs = 0;
    for prog in programs {
        let module = (prog.build)(prog.threads, prog.size);
        // counts[tool][seed]; filled seed-major so each seed's distinct
        // prepared modules execute once and fan out across the lineup.
        let mut counts = vec![Vec::with_capacity(seeds.len()); tools.len()];
        for &seed in seeds {
            let mut session = Session::for_module(&module).long_msm().seed(seed);
            if prog.obscure_nolib {
                session = session.obscure_nolib();
            }
            let mut cache: Vec<ExecutedRun> = Vec::with_capacity(tools.len());
            for (ti, &tool) in tools.iter().enumerate() {
                let contexts = match outcome_via_cache(&session, tool, &mut cache) {
                    Ok(out) => out.contexts,
                    // A failed run counts as saturation (a real tool would
                    // report "analysis incomplete").
                    Err(_) => 1000,
                };
                counts[ti].push(contexts);
            }
            vm_runs += cache.len();
        }
        let row = counts
            .iter()
            .map(|c| ParsecCell {
                mean_contexts: c.iter().sum::<usize>() as f64 / c.len() as f64,
                min: c.iter().copied().min().unwrap_or(0),
                max: c.iter().copied().max().unwrap_or(0),
            })
            .collect();
        cells.push(row);
    }
    ParsecTable {
        programs: programs.iter().map(|p| p.name.to_string()).collect(),
        tools: tools.iter().map(|t| t.label()).collect(),
        cells,
        vm_runs,
    }
}
